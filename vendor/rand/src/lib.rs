//! Offline stand-in for `rand` 0.8.
//!
//! The build environment has no network access, so the real `rand` cannot
//! be fetched. This shim provides the exact API surface the workspace
//! uses — `rngs::StdRng`, [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension methods `gen`, `gen_range` and `gen_bool` — backed by a
//! splitmix64 generator. All use in this repository is seeded (for
//! reproducible experiments), so no OS entropy source is needed.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be constructed from a small seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

/// Extension methods over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore + Sized {
    /// Samples a value from the standard distribution of `T`
    /// (`f64`/`f32` uniform in `[0, 1)`, integers uniform over their range,
    /// `bool` fair).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<T: RngCore + Sized> Rng for T {}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 random mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(usize, u64, u32, u16, u8);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + (rng.next_u64() % span) as i64) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start() as i64, *self.end() as i64);
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64 + 1;
                (lo + (rng.next_u64() % span) as i64) as $t
            }
        }
    )*};
}

impl_sample_range_int!(isize, i64, i32, i16, i8);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

impl_sample_range_float!(f64, f32);

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator (splitmix64).
    ///
    /// Not the cryptographic ChaCha generator of real `rand` — every use in
    /// this repository is a seeded simulation/experiment, where statistical
    /// quality and determinism are what matter.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..10 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let u = rng.gen_range(3usize..17);
            assert!((3..17).contains(&u));
            let f = rng.gen_range(1.0f64..=2.0);
            assert!((1.0..=2.0).contains(&f));
            let unit = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&unit));
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(1);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }
}
