//! Offline stand-in for `proptest`.
//!
//! The build environment has no network access, so the real `proptest`
//! cannot be fetched. This shim keeps the workspace's property-based tests
//! running: the [`proptest!`] macro expands each property into a `#[test]`
//! that samples its strategies from a deterministic per-case RNG and runs
//! the body `ProptestConfig::cases` times.
//!
//! Differences from real proptest, by design:
//!
//! * no shrinking — a failing case reports its seed and inputs instead;
//! * strategies are plain samplers ([`Strategy::generate`]), covering the
//!   shapes used in this repository: numeric ranges, tuples of strategies,
//!   `collection::vec`, and [`Just`];
//! * rejected cases ([`prop_assume!`]) are retried up to 16× the case
//!   budget before the test passes vacuously on the accepted subset.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Per-property configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted random cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed; the case is skipped, not failed.
    Reject,
    /// An assertion failed with this message.
    Fail(String),
}

impl TestCaseError {
    /// A failed assertion.
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }
}

/// Deterministic RNG handed to [`Strategy::generate`].
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// RNG for case number `case` of the property named `name`.
    pub fn for_case(name: &str, case: u64) -> Self {
        // FNV-1a over the property name, mixed with the case index, so
        // different properties see different streams.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(
            h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }
}

/// A sampler for values of type `Self::Value`.
///
/// Unlike real proptest there is no value tree or shrinking; a strategy
/// simply draws a value from the RNG.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_strategy_for_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

impl_strategy_for_range!(usize, u64, u32, u16, u8, isize, i64, i32, f64, f32);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
        )
    }
}

/// Strategy producing a fixed value every time.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec`s with a random length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vectors of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.is_empty() {
                self.size.start
            } else {
                rng.0.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property-based test file needs, mirroring
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use crate::{Just, ProptestConfig, Strategy, TestCaseError, TestRng};
}

/// Declares property-based tests.
///
/// Accepts the same surface syntax as real proptest's macro for the forms
/// used in this repository: an optional `#![proptest_config(..)]` header
/// followed by `#[test] fn name(binding in strategy, ..) { body }` items.
#[macro_export]
macro_rules! proptest {
    (@run $cfg:expr;) => {};
    (@run $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut accepted: u32 = 0;
            let mut attempt: u64 = 0;
            let max_attempts: u64 = (config.cases as u64) * 16 + 64;
            while accepted < config.cases && attempt < max_attempts {
                let mut rng = $crate::TestRng::for_case(stringify!($name), attempt);
                attempt += 1;
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "property `{}` failed at case seed {}: {}",
                            stringify!($name),
                            attempt - 1,
                            msg
                        );
                    }
                }
            }
        }
        $crate::proptest!(@run $cfg; $($rest)*);
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run $cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run $crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Asserts a condition inside a [`proptest!`] body; on failure the current
/// case fails with the formatted message (no panic mid-case).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                l, r
            )));
        }
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_vecs_sample_in_bounds(
            n in 2usize..9,
            xs in collection::vec(0.5f64..2.0, 1..5),
            pair in (0usize..4, 1.0f64..3.0),
        ) {
            prop_assert!((2..9).contains(&n));
            prop_assert!(!xs.is_empty() && xs.len() < 5);
            for x in &xs {
                prop_assert!((0.5..2.0).contains(x), "x = {x}");
            }
            prop_assert!(pair.0 < 4);
            prop_assert!((1.0..3.0).contains(&pair.1));
        }

        #[test]
        fn assume_rejects_without_failing(v in 0usize..10) {
            prop_assume!(v % 2 == 0);
            prop_assert_eq!(v % 2, 0);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = TestRng::for_case("p", 3);
        let mut b = TestRng::for_case("p", 3);
        let s = 0usize..100;
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
        let mut c = TestRng::for_case("q", 3);
        // Different property names almost surely diverge.
        let _ = s.generate(&mut c);
    }
}
