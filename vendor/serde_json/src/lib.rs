//! Offline stand-in for `serde_json`.
//!
//! Prints any [`serde::Serialize`] value (per the vendored `serde` shim's
//! [`serde::Value`] data model) as real JSON text. Only the serialization
//! half is implemented — nothing in the workspace parses JSON.

#![warn(missing_docs)]

use std::fmt;

pub use serde::Value;

/// Serialization error type.
///
/// The vendored data model is infallible to print, so this is never
/// constructed; it exists so call sites can keep using `?`.
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("serde_json shim error")
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

/// Serializes `value` as a pretty-printed JSON string (two-space indent,
/// matching real `serde_json::to_string_pretty`).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(x) => write_float(out, *x),
        Value::String(s) => write_json_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_float(out: &mut String, x: f64) {
    if x.is_finite() {
        // Match serde_json: floats always carry a decimal point or exponent.
        let s = format!("{x}");
        let needs_dot = !s.contains('.') && !s.contains('e') && !s.contains('E');
        out.push_str(&s);
        if needs_dot {
            out.push_str(".0");
        }
    } else {
        // JSON has no NaN/Infinity; serde_json emits null.
        out.push_str("null");
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_prints_nested_objects() {
        let v = Value::Object(vec![
            ("a".to_string(), Value::UInt(1)),
            (
                "b".to_string(),
                Value::Array(vec![Value::Float(0.5), Value::Null]),
            ),
        ]);
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "{\n  \"a\": 1,\n  \"b\": [\n    0.5,\n    null\n  ]\n}");
    }

    #[test]
    fn compact_output_and_escaping() {
        let v = Value::Object(vec![("k\"ey".to_string(), Value::String("a\nb".into()))]);
        assert_eq!(to_string(&v).unwrap(), "{\"k\\\"ey\":\"a\\nb\"}");
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }
}
