//! Offline stand-in for `serde`.
//!
//! The build environment has no network access, so the real `serde` cannot
//! be fetched. This shim keeps the workspace's `use serde::{Deserialize,
//! Serialize}` imports and `#[derive(Serialize, Deserialize)]` attributes
//! compiling, and it is *functional* for the one thing the workspace does
//! with serde: rendering result structs as JSON via the sibling
//! `serde_json` shim.
//!
//! Instead of serde's visitor-based `Serializer` plumbing, [`Serialize`]
//! converts a value into the self-describing [`Value`] tree, which
//! `serde_json` then prints. [`Deserialize`] is a marker trait only —
//! nothing in the workspace deserializes.

#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap};

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value, mirroring the JSON data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating-point number (non-finite values print as `null`).
    Float(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

/// A type that can be rendered into the [`Value`] data model.
///
/// The derive macro (re-exported from `serde_derive`) implements this for
/// structs and enums using serde's externally-tagged conventions.
pub trait Serialize {
    /// Converts `self` into a [`Value`] tree.
    fn serialize(&self) -> Value;
}

/// Marker trait standing in for `serde::Deserialize`.
///
/// Nothing in the workspace deserializes; the derive emits an empty impl so
/// `#[derive(Deserialize)]` keeps compiling.
pub trait Deserialize {}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
    )*};
}

impl_serialize_int!(i8, i16, i32, i64, isize);
impl_serialize_uint!(u8, u16, u32, u64, usize);

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for () {
    fn serialize(&self) -> Value {
        Value::Null
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize(&self) -> Value {
        Value::Array(vec![self.0.serialize(), self.1.serialize()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize(&self) -> Value {
        Value::Array(vec![
            self.0.serialize(),
            self.1.serialize(),
            self.2.serialize(),
        ])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize, D: Serialize> Serialize for (A, B, C, D) {
    fn serialize(&self) -> Value {
        Value::Array(vec![
            self.0.serialize(),
            self.1.serialize(),
            self.2.serialize(),
            self.3.serialize(),
        ])
    }
}

impl<K: ToString, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn serialize(&self) -> Value {
        // Sort for deterministic output, like serde_json with sorted maps.
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.serialize()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}

impl<K: ToString, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.serialize()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_map_to_expected_variants() {
        assert_eq!(3usize.serialize(), Value::UInt(3));
        assert_eq!((-2i32).serialize(), Value::Int(-2));
        assert_eq!(1.5f64.serialize(), Value::Float(1.5));
        assert_eq!(true.serialize(), Value::Bool(true));
        assert_eq!("x".serialize(), Value::String("x".into()));
        assert_eq!(Option::<u32>::None.serialize(), Value::Null);
    }

    #[test]
    fn collections_nest() {
        let v = vec![(1usize, 2.0f64)];
        assert_eq!(
            v.serialize(),
            Value::Array(vec![Value::Array(vec![Value::UInt(1), Value::Float(2.0)])])
        );
    }
}
