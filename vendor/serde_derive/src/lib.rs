//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no network access, so the real `serde_derive`
//! (and its `syn`/`quote` dependency tree) cannot be fetched. This crate
//! re-implements the two derive macros the workspace actually uses with a
//! hand-rolled token parser. It supports the subset of Rust item shapes
//! present in this repository:
//!
//! * structs with named fields,
//! * tuple structs (newtype structs serialize transparently),
//! * unit structs,
//! * enums with unit, tuple and struct variants (externally tagged, like
//!   real serde).
//!
//! Container/field `#[serde(...)]` attributes and generic type parameters
//! are intentionally unsupported; hitting one is a compile error rather
//! than silent misbehaviour.

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};

/// Field layout of a struct or of a single enum variant.
enum Fields {
    /// No payload (`struct S;` or `Variant`).
    Unit,
    /// Parenthesised payload with this many fields.
    Tuple(usize),
    /// Braced payload with these field names.
    Named(Vec<String>),
}

/// Parsed shape of the item the derive is attached to.
enum Shape {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

struct Item {
    name: String,
    shape: Shape,
}

/// Derives `serde::Serialize` by generating a `serialize(&self) -> Value`
/// body that mirrors serde's default (externally tagged) data model.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = serialize_body(&item);
    format!(
        "impl ::serde::Serialize for {} {{ fn serialize(&self) -> ::serde::Value {{ {} }} }}",
        item.name, body
    )
    .parse()
    .expect("serde_derive stub: generated Serialize impl failed to parse")
}

/// Derives the (marker) `serde::Deserialize` trait. Nothing in this
/// workspace deserializes, so the impl is empty; the derive exists so that
/// `#[derive(Deserialize)]` keeps compiling against the vendored shim.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    format!("impl ::serde::Deserialize for {} {{}}", item.name)
        .parse()
        .expect("serde_derive stub: generated Deserialize impl failed to parse")
}

fn serialize_body(item: &Item) -> String {
    match &item.shape {
        Shape::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        Shape::Struct(Fields::Tuple(1)) => "::serde::Serialize::serialize(&self.0)".to_string(),
        Shape::Struct(Fields::Tuple(n)) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", elems.join(", "))
        }
        Shape::Struct(Fields::Named(fields)) => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::serialize(&self.{f}))"))
                .collect();
            format!("::serde::Value::Object(vec![{}])", pairs.join(", "))
        }
        Shape::Enum(variants) => {
            let mut arms = Vec::new();
            for (vname, fields) in variants {
                let arm = match fields {
                    Fields::Unit => format!(
                        "{n}::{v} => ::serde::Value::String(\"{v}\".to_string()),",
                        n = item.name,
                        v = vname
                    ),
                    Fields::Tuple(1) => format!(
                        "{n}::{v}(f0) => ::serde::Value::Object(vec![(\"{v}\".to_string(), ::serde::Serialize::serialize(f0))]),",
                        n = item.name,
                        v = vname
                    ),
                    Fields::Tuple(k) => {
                        let binds: Vec<String> = (0..*k).map(|i| format!("f{i}")).collect();
                        let elems: Vec<String> = (0..*k)
                            .map(|i| format!("::serde::Serialize::serialize(f{i})"))
                            .collect();
                        format!(
                            "{n}::{v}({b}) => ::serde::Value::Object(vec![(\"{v}\".to_string(), ::serde::Value::Array(vec![{e}]))]),",
                            n = item.name,
                            v = vname,
                            b = binds.join(", "),
                            e = elems.join(", ")
                        )
                    }
                    Fields::Named(fs) => {
                        let binds = fs.join(", ");
                        let pairs: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{f}\".to_string(), ::serde::Serialize::serialize({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "{n}::{v} {{ {b} }} => ::serde::Value::Object(vec![(\"{v}\".to_string(), ::serde::Value::Object(vec![{p}]))]),",
                            n = item.name,
                            v = vname,
                            b = binds,
                            p = pairs.join(", ")
                        )
                    }
                };
                arms.push(arm);
            }
            format!("match self {{ {} }}", arms.join(" "))
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attributes(&toks, &mut i);
    skip_visibility(&toks, &mut i);
    let kind = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive stub: expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive stub: expected item name, found {other}"),
    };
    i += 1;
    if matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive stub: generic type `{name}` is not supported");
    }
    let shape = match kind.as_str() {
        "struct" => Shape::Struct(parse_struct_fields(&toks, i)),
        "enum" => {
            let group = expect_brace(&toks, i, &name);
            Shape::Enum(parse_variants(group))
        }
        other => panic!("serde_derive stub: cannot derive for `{other}` items"),
    };
    Item { name, shape }
}

fn expect_brace<'a>(toks: &'a [TokenTree], i: usize, name: &str) -> &'a Group {
    match toks.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
        _ => panic!("serde_derive stub: expected braced body for `{name}`"),
    }
}

fn parse_struct_fields(toks: &[TokenTree], i: usize) -> Fields {
    match toks.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Fields::Named(parse_named_fields(g))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Fields::Tuple(count_tuple_fields(g))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
        None => Fields::Unit,
        other => panic!("serde_derive stub: unexpected struct body {other:?}"),
    }
}

fn parse_named_fields(group: &Group) -> Vec<String> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attributes(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        skip_visibility(&toks, &mut i);
        let fname = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive stub: expected field name, found {other}"),
        };
        i += 1;
        match &toks[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive stub: expected `:` after `{fname}`, found {other}"),
        }
        skip_type_until_comma(&toks, &mut i);
        fields.push(fname);
    }
    fields
}

fn count_tuple_fields(group: &Group) -> usize {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < toks.len() {
        skip_attributes(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        count += 1;
        skip_type_until_comma(&toks, &mut i);
    }
    count
}

fn parse_variants(group: &Group) -> Vec<(String, Fields)> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attributes(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let vname = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive stub: expected variant name, found {other}"),
        };
        i += 1;
        let fields = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g))
            }
            _ => Fields::Unit,
        };
        // Skip an optional `= discriminant` and the trailing comma.
        while i < toks.len() {
            if matches!(&toks[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        variants.push((vname, fields));
    }
    variants
}

/// Advances past any `#[...]` attribute sequences at `toks[*i]`.
fn skip_attributes(toks: &[TokenTree], i: &mut usize) {
    while matches!(toks.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1; // '#'
        if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
        {
            *i += 1; // [...]
        }
    }
}

/// Advances past `pub` / `pub(...)` at `toks[*i]`, if present.
fn skip_visibility(toks: &[TokenTree], i: &mut usize) {
    if matches!(toks.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

/// Advances past a type, stopping after the first comma that is not nested
/// inside angle brackets (delimited groups are single token trees, so only
/// `<...>` needs explicit depth tracking).
fn skip_type_until_comma(toks: &[TokenTree], i: &mut usize) {
    let mut angle_depth: i32 = 0;
    while *i < toks.len() {
        match &toks[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                *i += 1;
                return;
            }
            _ => {}
        }
        *i += 1;
    }
}
