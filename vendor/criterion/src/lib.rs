//! Offline stand-in for `criterion`.
//!
//! The build environment has no network access, so the real `criterion`
//! cannot be fetched. This shim implements the API surface the workspace's
//! benches use — [`Criterion`] with the `sample_size` / `measurement_time`
//! / `warm_up_time` builders, [`Bencher::iter`] / [`Bencher::iter_batched`],
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros — and reports mean wall-clock time per iteration on stdout.
//! There is no statistical analysis, HTML report, or baseline comparison.
//!
//! Bench targets must set `harness = false` (as with real criterion), since
//! [`criterion_main!`] defines `fn main`.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Prevents the optimizer from eliding a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost. All variants behave identically
/// in this shim (setup is always run once per iteration, untimed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
    /// A fixed number of batches.
    NumBatches(u64),
    /// A fixed number of iterations per batch.
    NumIterations(u64),
}

/// Times closures and reports per-iteration means.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Caps the total time spent measuring one benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Caps the time spent warming up one benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs `f` repeatedly and prints the mean time per iteration.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            iterations: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let mean = if bencher.iterations > 0 {
            bencher.elapsed / bencher.iterations as u32
        } else {
            Duration::ZERO
        };
        println!(
            "{id:<50} time: {:>12} ({} iterations)",
            format_duration(mean),
            bencher.iterations
        );
        self
    }
}

/// Handed to the closure passed to [`Criterion::bench_function`].
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` for `sample_size` iterations (bounded by the configured
    /// measurement time).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run untimed until the warm-up budget is spent.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up_time {
            black_box(f());
        }
        let budget_start = Instant::now();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.elapsed += start.elapsed();
            self.iterations += 1;
            if budget_start.elapsed() > self.measurement_time {
                break;
            }
        }
    }

    /// Times `routine` over inputs produced by `setup`; setup time is not
    /// counted.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let budget_start = Instant::now();
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
            self.iterations += 1;
            if budget_start.elapsed() > self.measurement_time {
                break;
            }
        }
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", d.as_secs_f64() * 1e3)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", d.as_secs_f64() * 1e6)
    } else {
        format!("{nanos} ns")
    }
}

/// Bundles bench functions into a named group, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Defines `fn main` running the given groups, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; ignore them.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts_iterations() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::ZERO)
            .measurement_time(Duration::from_secs(1));
        let mut runs = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        assert!(runs >= 3);
    }

    #[test]
    fn iter_batched_consumes_setup_output() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::ZERO);
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
    }
}
