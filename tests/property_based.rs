//! Property-based integration tests: invariants that must hold on *random*
//! topologies, demand matrices and splitting ratios, not just on the
//! hand-picked examples.

use coyote::core::prelude::*;
use coyote::graph::{Graph, NodeId};
use coyote::lp::{LpProblem, Relation, Sense};
use coyote::ospf::{approximate_split, max_split_error, realized_fractions};
use coyote::traffic::{DemandMatrix, UncertaintySet};
use proptest::prelude::*;

/// Builds a random connected backbone-like graph from a proptest seed:
/// a ring over `n` nodes plus `extra` chords, capacities in [1, 10].
fn random_graph(n: usize, extra: &[(usize, usize)], caps: &[f64]) -> Graph {
    let mut g = Graph::with_nodes(n);
    let mut cap_iter = caps.iter().copied().cycle();
    for i in 0..n {
        let c = cap_iter.next().unwrap();
        g.add_bidirectional_edge(NodeId(i), NodeId((i + 1) % n), c, 1.0)
            .unwrap();
    }
    for &(a, b) in extra {
        let (a, b) = (a % n, b % n);
        if a != b && g.find_edge(NodeId(a), NodeId(b)).is_none() {
            let c = cap_iter.next().unwrap();
            g.add_bidirectional_edge(NodeId(a), NodeId(b), c, 1.0)
                .unwrap();
        }
    }
    g.set_inverse_capacity_weights(10.0);
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Augmented DAGs are always acyclic, contain every shortest-path edge,
    /// and let every node reach the destination.
    #[test]
    fn augmented_dags_are_valid_on_random_graphs(
        n in 4usize..10,
        extra in proptest::collection::vec((0usize..10, 0usize..10), 0..6),
        caps in proptest::collection::vec(1.0f64..10.0, 3..8),
    ) {
        let g = random_graph(n, &extra, &caps);
        let spf = build_all_dags(&g, DagMode::ShortestPath).unwrap();
        let aug = build_all_dags(&g, DagMode::Augmented).unwrap();
        for t in g.nodes() {
            for e in spf[t.index()].edges() {
                prop_assert!(aug[t.index()].contains(e));
            }
            for v in g.nodes() {
                if v != t {
                    prop_assert!(!aug[t.index()].out_edges(v).is_empty());
                }
            }
        }
    }

    /// Conservation: under any valid routing, the traffic arriving at a
    /// destination equals the total demand towards it, and link loads are
    /// non-negative.
    #[test]
    fn flow_conservation_holds_for_uniform_routings(
        n in 4usize..9,
        extra in proptest::collection::vec((0usize..9, 0usize..9), 0..5),
        caps in proptest::collection::vec(1.0f64..10.0, 3..8),
        demands in proptest::collection::vec(0.0f64..5.0, 6..20),
    ) {
        let g = random_graph(n, &extra, &caps);
        let routing = uniform_augmented_routing(&g).unwrap();
        routing.validate(&g).unwrap();

        let mut dm = DemandMatrix::zeros(n);
        let mut k = 0usize;
        for s in 0..n {
            for t in 0..n {
                if s != t && k < demands.len() {
                    dm.set(NodeId(s), NodeId(t), demands[k]);
                    k += 1;
                }
            }
        }
        for t in dm.active_destinations() {
            let flow = routing.destination_node_flow(&g, &dm, t);
            let arriving = flow[t.index()];
            prop_assert!((arriving - dm.total_to(t)).abs() < 1e-6,
                "destination {t}: {arriving} arrived vs {} demanded", dm.total_to(t));
        }
        for load in routing.edge_loads(&g, &dm) {
            prop_assert!(load >= -1e-9);
        }
    }

    /// The LP solver agrees with a brute-force vertex enumeration on random
    /// 2-variable LPs (maximize c·x over box + one coupling constraint).
    #[test]
    fn lp_solver_matches_brute_force_on_2d_problems(
        c0 in -3.0f64..3.0,
        c1 in -3.0f64..3.0,
        ub0 in 0.5f64..4.0,
        ub1 in 0.5f64..4.0,
        budget in 1.0f64..6.0,
    ) {
        let mut lp = LpProblem::new(Sense::Maximize);
        let x = lp.add_var("x", 0.0, ub0, c0);
        let y = lp.add_var("y", 0.0, ub1, c1);
        lp.add_constraint("sum", &[(x, 1.0), (y, 1.0)], Relation::Le, budget);
        let sol = lp.solve().unwrap();

        // Brute force over the polytope's vertices.
        let mut best = f64::NEG_INFINITY;
        let candidates = [
            (0.0, 0.0),
            (ub0.min(budget), 0.0),
            (0.0, ub1.min(budget)),
            (ub0, (budget - ub0).clamp(0.0, ub1)),
            ((budget - ub1).clamp(0.0, ub0), ub1),
            (ub0, ub1),
        ];
        for (vx, vy) in candidates {
            if vx + vy <= budget + 1e-9 && vx <= ub0 + 1e-9 && vy <= ub1 + 1e-9 {
                best = best.max(c0 * vx + c1 * vy);
            }
        }
        prop_assert!((sol.objective - best).abs() < 1e-4,
            "LP {} vs brute force {best}", sol.objective);
    }

    /// ECMP-multiplicity approximation: realized fractions always form a
    /// distribution, respect the budget, and the error never exceeds the
    /// worst case of one entry resolution.
    #[test]
    fn split_approximation_invariants(
        fractions in proptest::collection::vec(0.0f64..1.0, 2..6),
        budget in 2usize..16,
    ) {
        prop_assume!(fractions.iter().any(|&f| f > 0.01));
        let m = approximate_split(&fractions, budget);
        let used: u32 = m.iter().sum();
        let positive = fractions.iter().filter(|&&f| f > 0.0).count() as u32;
        prop_assert!(used >= positive);
        prop_assert!(used <= budget.max(positive as usize) as u32);
        let realized = realized_fractions(&m);
        let total: f64 = realized.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        // Error bound: with T entries the realized fractions are multiples
        // of 1/T, so the max error is below 1 (and usually below 1/positive).
        prop_assert!(max_split_error(&fractions, &m) <= 1.0);
        // Zero-demand next hops never get entries.
        for (f, &mi) in fractions.iter().zip(&m) {
            if *f == 0.0 {
                prop_assert_eq!(mi, 0);
            }
        }
    }

    /// Worst-case demand matrices returned by the slave LP are always
    /// routable within the capacities (that is what normalizes the ratio).
    #[test]
    fn adversarial_matrices_are_routable(
        n in 4usize..7,
        extra in proptest::collection::vec((0usize..7, 0usize..7), 0..4),
        caps in proptest::collection::vec(1.0f64..5.0, 3..6),
    ) {
        let g = random_graph(n, &extra, &caps);
        let routing = ecmp_routing(&g).unwrap();
        let unc = UncertaintySet::oblivious(n);
        let wc = performance_ratio_exact(&g, &routing, &unc, RoutabilityScope::AllEdges, None)
            .unwrap();
        prop_assert!(wc.ratio >= 1.0 - 1e-6);
        let opt = optu(&g, &wc.demand).unwrap();
        prop_assert!(opt <= 1.0 + 1e-4, "witness demand has OPTU {opt} > 1");
    }
}
