//! End-to-end integration test: the full COYOTE pipeline on a real backbone
//! topology, from link weights to deployed (Fibbing-realized) router state.
//!
//! This mirrors what an operator would run: pick a topology, estimate a base
//! demand matrix, choose an uncertainty margin, let COYOTE optimize, realize
//! the configuration with lies, and check that the realized network performs
//! as promised.

use coyote::core::prelude::*;
use coyote::ospf::{compute_program, realized_routing, verify_program, VirtualLinkBudget};
use coyote::topology::zoo;
use coyote::traffic::{GravityModel, UncertaintySet};

#[test]
fn abilene_pipeline_from_weights_to_realized_routing() {
    // --- Operator input ---------------------------------------------------
    let mut graph = zoo::abilene().to_graph().expect("abilene loads");
    graph.set_inverse_capacity_weights(10.0);
    let base = GravityModel::default().generate(&graph);
    let uncertainty = UncertaintySet::from_margin(&base, 2.0);

    // --- COYOTE optimization ----------------------------------------------
    let result = coyote(&graph, &uncertainty, Some(&base), &CoyoteConfig::fast())
        .expect("optimization succeeds");
    result.routing.validate(&graph).expect("valid PD routing");

    // --- Shared evaluation family -------------------------------------------
    let dags = build_all_dags(&graph, DagMode::Augmented).unwrap();
    let evaluation = EvaluationSet::build(
        &graph,
        &dags,
        &uncertainty,
        Some(&base),
        &EvaluationOptions::default(),
    )
    .unwrap();

    let ecmp = ecmp_routing(&graph).unwrap();
    let ecmp_ratio = evaluation.performance_ratio(&graph, &ecmp);
    let coyote_ratio = evaluation.performance_ratio(&graph, &result.routing);

    // COYOTE contains ECMP's configuration in its search space, so on the
    // evaluation family it must not lose (allow a tiny numerical slack).
    assert!(
        coyote_ratio <= ecmp_ratio + 0.05,
        "COYOTE {coyote_ratio} worse than ECMP {ecmp_ratio}"
    );
    assert!(coyote_ratio >= 1.0 - 1e-9);

    // --- Fibbing deployment -------------------------------------------------
    let program = compute_program(&graph, &result.routing, VirtualLinkBudget::per_prefix(10))
        .expect("program computes");
    let report = verify_program(&graph, &result.routing, &program).expect("verification runs");
    assert!(
        report.dags_match,
        "realized DAGs differ: {:?}",
        report.mismatched_destinations
    );
    assert!(
        report.max_split_error < 0.15,
        "10-entry budget should approximate the splits well, error {}",
        report.max_split_error
    );

    let realized = realized_routing(&graph, &program).expect("realized routing");
    realized.validate(&graph).unwrap();
    let realized_ratio = evaluation.performance_ratio(&graph, &realized);
    // Quantization costs a little, but the realized configuration must stay
    // clearly ahead of ECMP whenever COYOTE itself is.
    assert!(
        realized_ratio <= ecmp_ratio + 0.1,
        "realized {realized_ratio} vs ECMP {ecmp_ratio}"
    );

    // --- Path stretch -------------------------------------------------------
    let stretch = average_stretch(&graph, &result.routing, &ecmp).expect("stretch defined");
    assert!(stretch >= 0.9, "stretch {stretch} suspiciously small");
    assert!(
        stretch <= 1.6,
        "stretch {stretch} far beyond the paper's ~1.1"
    );
}

#[test]
fn local_search_weights_plug_into_the_same_pipeline() {
    let graph = zoo::nsf().to_graph().expect("nsf loads");
    let base = GravityModel::default().generate(&graph);
    let uncertainty = UncertaintySet::from_margin(&base, 2.0);

    let cfg = LocalSearchConfig {
        outer_iterations: 2,
        moves_per_iteration: 3,
        ..Default::default()
    };
    let search = local_search_weights(&graph, &uncertainty, &cfg).expect("local search runs");
    assert_eq!(search.weights.len(), graph.edge_count());

    let tuned = coyote::core::local_search::apply_weights(&graph, &search.weights).unwrap();
    let result = coyote(&tuned, &uncertainty, Some(&base), &CoyoteConfig::fast()).unwrap();
    result.routing.validate(&tuned).unwrap();

    let dags = build_all_dags(&tuned, DagMode::Augmented).unwrap();
    let evaluation = EvaluationSet::build(
        &tuned,
        &dags,
        &uncertainty,
        Some(&base),
        &EvaluationOptions::default(),
    )
    .unwrap();
    let ecmp = ecmp_routing(&tuned).unwrap();
    assert!(
        evaluation.performance_ratio(&tuned, &result.routing)
            <= evaluation.performance_ratio(&tuned, &ecmp) + 0.05
    );
}

#[test]
fn every_zoo_topology_supports_the_basic_pipeline() {
    // A smoke test over the whole topology registry: DAG construction, ECMP,
    // and flow computation must work everywhere (the heavyweight
    // optimization is exercised on selected networks above).
    for topology in zoo::all() {
        let mut graph = topology.to_graph().expect("topology loads");
        graph.set_inverse_capacity_weights(10.0);
        let dags = build_all_dags(&graph, DagMode::Augmented)
            .unwrap_or_else(|e| panic!("{}: augmented DAGs failed: {e}", topology.name));
        assert_eq!(dags.len(), graph.node_count());

        let ecmp = ecmp_routing(&graph).unwrap();
        ecmp.validate(&graph).unwrap();

        let base = GravityModel::default().generate(&graph);
        let mlu = ecmp.max_link_utilization(&graph, &base);
        assert!(
            mlu.is_finite() && mlu >= 0.0,
            "{}: bad MLU {mlu}",
            topology.name
        );
    }
}
