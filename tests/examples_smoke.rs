//! Smoke tests that compile and execute each of the `examples/*.rs`
//! programs as an ordinary `#[test]`, so the examples cannot rot without
//! failing `cargo test`.
//!
//! Each example file is mounted as a module via `#[path]` (which is why the
//! examples declare `pub fn main`) and its entry point is invoked directly.
//! CI additionally executes the examples via `cargo run --example` to cover
//! the binary targets themselves.

#[path = "../examples/quickstart.rs"]
mod quickstart_example;

#[path = "../examples/prototype_emulation.rs"]
mod prototype_emulation_example;

// `main` is unused for these two — the tests call `run` directly to bypass
// CLI argument parsing.
#[allow(dead_code)]
#[path = "../examples/fibbing_deployment.rs"]
mod fibbing_deployment_example;

#[allow(dead_code)]
#[path = "../examples/uncertainty_sweep.rs"]
mod uncertainty_sweep_example;

#[test]
fn quickstart_example_runs() {
    quickstart_example::main().expect("quickstart example should succeed");
}

#[test]
fn prototype_emulation_example_runs() {
    prototype_emulation_example::main();
}

#[test]
fn fibbing_deployment_example_runs() {
    // Call `run` with the CLI defaults: the harness's own arguments
    // (filters, -q) would otherwise leak into the example's arg parsing.
    fibbing_deployment_example::run("Abilene", 5)
        .expect("fibbing_deployment example should succeed");
}

#[test]
fn uncertainty_sweep_example_runs() {
    uncertainty_sweep_example::run("Abilene", 3.0)
        .expect("uncertainty_sweep example should succeed");
}
