//! Integration tests that pin the paper's headline claims, across crates.
//!
//! Each test corresponds to a specific statement in the paper; if one of
//! these fails after a refactor, the reproduction no longer reproduces.

use coyote::core::example_fig1;
use coyote::core::prelude::*;
use coyote::sim::scenario::{run_prototype, PrototypeScheme};
use coyote::traffic::DemandMatrix;

/// Section II: "for any choice of link weights, equal splitting of traffic
/// between shortest paths would result in link utilization that is 3/2
/// higher than optimal for some possible traffic scenario" — and the unit
/// weight choice is even worse (ratio 2), while Fig. 1c guarantees 4/3.
#[test]
fn running_example_ordering_ecmp_fig1c_golden() {
    let (graph, nodes) = example_fig1::topology();
    let unc = example_fig1::uncertainty(&nodes);

    let exact = |routing: &PdRouting| {
        performance_ratio_exact(&graph, routing, &unc, RoutabilityScope::AllEdges, None)
            .unwrap()
            .ratio
    };

    let ecmp = exact(&ecmp_routing(&graph).unwrap());
    let fig1c = exact(&example_fig1::fig1c_routing(&graph, &nodes));
    let golden = exact(&example_fig1::golden_routing(&graph, &nodes));

    assert!(
        ecmp >= 1.5 - 1e-6,
        "ECMP ratio {ecmp} below the paper's 3/2 bound"
    );
    assert!((fig1c - 4.0 / 3.0).abs() < 1e-3, "Fig. 1c ratio {fig1c}");
    assert!(
        (golden - example_fig1::OPTIMAL_WORST_UTILIZATION).abs() < 1e-3,
        "golden ratio {golden}"
    );
    assert!(golden < fig1c && fig1c < ecmp);
}

/// Section V-B: "Since the final DAGs contain the original shortest-path
/// DAGs, traditional ECMP routing is a point in the solution space over
/// which COYOTE optimizes" — so COYOTE can never do worse on the matrices it
/// optimizes over.
#[test]
fn coyote_never_loses_to_ecmp_on_its_working_set() {
    let (graph, nodes) = example_fig1::topology();
    let unc = example_fig1::uncertainty(&nodes);
    let result = coyote(&graph, &unc, None, &CoyoteConfig::fast()).unwrap();

    // ECMP's augmented-DAG representation: uniform splits restricted to the
    // shortest-path edges — by construction a feasible point.
    let dags = build_all_dags(&graph, DagMode::Augmented).unwrap();
    let evaluation =
        EvaluationSet::build(&graph, &dags, &unc, None, &EvaluationOptions::default()).unwrap();
    let ecmp = ecmp_routing(&graph).unwrap();
    assert!(
        evaluation.performance_ratio(&graph, &result.routing)
            <= evaluation.performance_ratio(&graph, &ecmp) + 1e-6
    );
    let _ = nodes;
}

/// Theorem 4: the optimal destination-based oblivious routing can be Ω(|V|)
/// from the demands-aware optimum.
#[test]
fn theorem4_instance_scales_linearly() {
    for n in [4usize, 8] {
        let mut graph = coyote::graph::Graph::new();
        let xs: Vec<_> = (0..n)
            .map(|i| graph.add_node(format!("x{i}")).unwrap())
            .collect();
        let t = graph.add_node("t").unwrap();
        for i in 0..n - 1 {
            graph
                .add_bidirectional_edge(xs[i], xs[i + 1], 1e6, 1.0)
                .unwrap();
        }
        for &x in &xs {
            graph.add_edge(x, t, 1.0, 1.0).unwrap();
        }
        let ecmp = ecmp_routing(&graph).unwrap();
        let mut worst = 0.0_f64;
        for &x in &xs {
            let dm = DemandMatrix::from_pairs(graph.node_count(), &[(x, t, n as f64)]);
            let opt = optu(&graph, &dm).unwrap();
            worst = worst.max(ecmp.max_link_utilization(&graph, &dm) / opt);
        }
        assert!(
            (worst - n as f64).abs() < 1e-6,
            "n = {n}: ratio {worst} should equal n"
        );
    }
}

/// Section VII: each traditional TE configuration drops 25–50 % of traffic
/// in some phase of the prototype experiment; COYOTE delivers everything.
#[test]
fn prototype_story_holds() {
    let coyote_result = run_prototype(PrototypeScheme::Coyote);
    assert!(coyote_result.worst_drop_rate() < 1e-9);
    for scheme in [
        PrototypeScheme::Te1,
        PrototypeScheme::Te2,
        PrototypeScheme::Te3,
    ] {
        let r = run_prototype(scheme);
        let worst = r.worst_drop_rate();
        assert!(
            (0.25..=0.5 + 1e-9).contains(&worst),
            "{}: worst drop {worst} outside the paper's 25-50% band",
            r.scheme
        );
    }
}

/// Section VI ("Approximating the optimal traffic splitting"): more virtual
/// next hops only help, and even few entries already beat ECMP on the
/// running example's worst case.
#[test]
fn virtual_next_hop_budgets_are_monotone_on_fig1() {
    use coyote::ospf::{compute_program, realized_routing, VirtualLinkBudget};

    let (graph, nodes) = example_fig1::topology();
    let unc = example_fig1::uncertainty(&nodes);
    let target = example_fig1::golden_routing(&graph, &nodes);

    let exact = |routing: &PdRouting| {
        performance_ratio_exact(&graph, routing, &unc, RoutabilityScope::AllEdges, None)
            .unwrap()
            .ratio
    };
    let ecmp_ratio = exact(&ecmp_routing(&graph).unwrap());

    let mut last = f64::INFINITY;
    for budget in [3usize, 5, 10] {
        let program =
            compute_program(&graph, &target, VirtualLinkBudget::per_prefix(budget)).unwrap();
        let realized = realized_routing(&graph, &program).unwrap();
        let ratio = exact(&realized);
        assert!(
            ratio <= last + 1e-6,
            "budget {budget}: ratio {ratio} worse than smaller budget {last}"
        );
        assert!(
            ratio < ecmp_ratio,
            "budget {budget} should already beat ECMP"
        );
        last = ratio;
    }
    // With 10 entries the realized ratio is within a few percent of the
    // analytic optimum.
    assert!(last <= example_fig1::OPTIMAL_WORST_UTILIZATION * 1.05);
}
