//! # coyote-core
//!
//! The core of the COYOTE reproduction ("Lying Your Way to Better Traffic
//! Engineering", CoNEXT 2016): destination-based, demands-oblivious traffic
//! engineering that is realizable over unmodified OSPF/ECMP routers.
//!
//! The pipeline mirrors Fig. 5 of the paper:
//!
//! 1. **DAG construction** ([`dag_builder`], [`local_search`]) — shortest-path
//!    DAGs from OSPF weights (inverse-capacity or local-search heuristics),
//!    augmented with every remaining link oriented towards the destination.
//! 2. **In-DAG traffic splitting** ([`oblivious`]) — splitting ratios
//!    optimized against the worst demand matrix inside the operator's
//!    uncertainty bounds, via a log-domain first-order method plus
//!    constraint generation with the exact slave LP ([`worst_case`]).
//! 3. **Evaluation** ([`perf`], [`opt_mcf`]) — performance ratios against the
//!    demands-aware optimum, ECMP baselines ([`ecmp`]), and path stretch.
//!
//! The OSPF/Fibbing translation (fake nodes and virtual links) lives in the
//! `coyote-ospf` crate; the flow-level prototype emulation in `coyote-sim`.
//!
//! ## Quick start
//!
//! ```
//! use coyote_core::prelude::*;
//! use coyote_traffic::{DemandMatrix, GravityModel, UncertaintySet};
//!
//! // The paper's running example: Fig. 1a.
//! let (graph, nodes) = coyote_core::example_fig1::topology();
//! let uncertainty = coyote_core::example_fig1::uncertainty(&nodes);
//!
//! // COYOTE: augmented DAGs + optimized splitting ratios.
//! let result = coyote(&graph, &uncertainty, None, &CoyoteConfig::fast()).unwrap();
//! result.routing.validate(&graph).unwrap();
//!
//! // ECMP baseline for comparison.
//! let ecmp = ecmp_routing(&graph).unwrap();
//! let dm = DemandMatrix::from_pairs(4, &[(nodes.s1, nodes.t, 2.0)]);
//! assert!(result.routing.max_link_utilization(&graph, &dm) <= 2.0);
//! assert!(ecmp.max_link_utilization(&graph, &dm) <= 2.0);
//! let _ = GravityModel::default();
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod certificate;
pub mod dag_builder;
pub mod ecmp;
pub mod error;
pub mod example_fig1;
pub mod incremental;
pub mod local_search;
pub mod oblivious;
pub mod opt_mcf;
pub mod perf;
pub mod routing;
pub mod worst_case;

pub use certificate::{certify_edge, certify_routing, EdgeCertificate, ObliviousCertificate};
pub use dag_builder::{build_all_dags, build_dag, DagMode};
pub use ecmp::{ecmp_routing, ecmp_routing_inverse_capacity, uniform_augmented_routing};
pub use error::CoreError;
pub use incremental::{
    demand_dirty_destinations, separable_routing, solve_destination, DestinationSolve,
};
pub use local_search::{local_search_weights, LocalSearchConfig, LocalSearchResult};
pub use oblivious::{
    coyote, optimize_splitting, optimize_splitting_with_working_set, CoyoteConfig, CoyoteResult,
};
pub use opt_mcf::{
    optimal_routing_within_dags, optu, optu_within_dags, split_routable_within_dags, RoutableSplit,
};
pub use perf::{average_stretch, EvaluationOptions, EvaluationSet};
pub use routing::PdRouting;
pub use worst_case::{performance_ratio_exact, FractionTable, RoutabilityScope, WorstCase};

/// Convenient glob import for downstream users and examples.
pub mod prelude {
    pub use crate::dag_builder::{build_all_dags, DagMode};
    pub use crate::ecmp::{ecmp_routing, ecmp_routing_inverse_capacity, uniform_augmented_routing};
    pub use crate::error::CoreError;
    pub use crate::local_search::{local_search_weights, LocalSearchConfig};
    pub use crate::oblivious::{
        coyote, optimize_splitting, optimize_splitting_with_working_set, CoyoteConfig, CoyoteResult,
    };
    pub use crate::opt_mcf::{
        optimal_routing_within_dags, optu, optu_within_dags, split_routable_within_dags,
        RoutableSplit,
    };
    pub use crate::perf::{average_stretch, EvaluationOptions, EvaluationSet};
    pub use crate::routing::PdRouting;
    pub use crate::worst_case::{performance_ratio_exact, RoutabilityScope};
}
