//! Per-destination (PD) routing configurations.
//!
//! Section III of the paper: a routing configuration `φ` specifies, for each
//! destination `t` and edge `e = (u, v)`, the fraction `φ_t(e)` of the flow
//! to `t` entering `u` that is forwarded on `e`. Destination-based routing
//! requires the edges with `φ_t(e) > 0` to form a DAG rooted at `t`.
//!
//! [`PdRouting`] stores one [`Dag`] plus splitting ratios per destination
//! and implements the flow algebra the rest of the system needs:
//!
//! * `f_st(v)` — the fraction of the `s → t` demand that reaches `v`
//!   (`source_fractions`);
//! * aggregated per-destination node flow `F_t(v)` and per-edge loads for a
//!   demand matrix (`edge_loads`);
//! * the maximum link utilization `MxLU(φ, D)` (`max_link_utilization`);
//! * expected path lengths in hops (for the stretch experiment).

use coyote_graph::{Dag, EdgeId, Graph, NodeId};
use coyote_traffic::DemandMatrix;
use serde::{Deserialize, Serialize};

/// Numerical tolerance for "splitting ratios sum to one" checks.
pub const SPLIT_TOLERANCE: f64 = 1e-6;

/// A destination-based routing configuration: one DAG and one set of
/// splitting ratios per destination node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PdRouting {
    /// `dags[t]` is the DAG used for traffic destined to node `t`.
    dags: Vec<Dag>,
    /// `phi[t][e]` is the splitting ratio of edge `e` for destination `t`
    /// (zero for edges outside the DAG).
    phi: Vec<Vec<f64>>,
}

impl PdRouting {
    /// Builds a routing from per-destination DAGs with *uniform* splits:
    /// every node divides traffic equally among its DAG out-edges. This is
    /// the natural starting point of COYOTE's optimization and is exactly
    /// ECMP when the DAGs are the shortest-path DAGs.
    pub fn uniform(graph: &Graph, dags: Vec<Dag>) -> Self {
        let mut phi = Vec::with_capacity(dags.len());
        for dag in &dags {
            let mut ratios = vec![0.0; graph.edge_count()];
            for v in graph.nodes() {
                let out = dag.out_edges(v);
                if !out.is_empty() {
                    let share = 1.0 / out.len() as f64;
                    for &e in out {
                        ratios[e.index()] = share;
                    }
                }
            }
            phi.push(ratios);
        }
        Self { dags, phi }
    }

    /// Builds a routing with explicit ratios. Ratios are normalized per
    /// (destination, node): entries on edges outside the DAG are dropped and
    /// each node's outgoing ratios are rescaled to sum to one (nodes whose
    /// ratios are all zero fall back to uniform splitting).
    pub fn from_ratios(graph: &Graph, dags: Vec<Dag>, raw: Vec<Vec<f64>>) -> Self {
        assert_eq!(dags.len(), raw.len(), "one ratio vector per destination");
        let mut phi = Vec::with_capacity(dags.len());
        for (dag, ratios) in dags.iter().zip(raw) {
            let mut cleaned = vec![0.0; graph.edge_count()];
            for v in graph.nodes() {
                let out = dag.out_edges(v);
                if out.is_empty() {
                    continue;
                }
                let mut sum = 0.0;
                for &e in out {
                    let r = ratios.get(e.index()).copied().unwrap_or(0.0).max(0.0);
                    cleaned[e.index()] = r;
                    sum += r;
                }
                if sum > SPLIT_TOLERANCE {
                    for &e in out {
                        cleaned[e.index()] /= sum;
                    }
                } else {
                    let share = 1.0 / out.len() as f64;
                    for &e in out {
                        cleaned[e.index()] = share;
                    }
                }
            }
            phi.push(cleaned);
        }
        Self { dags, phi }
    }

    /// Number of destinations (== number of graph nodes).
    pub fn destination_count(&self) -> usize {
        self.dags.len()
    }

    /// The DAG used for destination `t`.
    pub fn dag(&self, t: NodeId) -> &Dag {
        &self.dags[t.index()]
    }

    /// All DAGs, indexed by destination.
    pub fn dags(&self) -> &[Dag] {
        &self.dags
    }

    /// Splitting ratio of `edge` for destination `t`.
    #[inline]
    pub fn ratio(&self, t: NodeId, edge: EdgeId) -> f64 {
        self.phi[t.index()][edge.index()]
    }

    /// All ratios for destination `t`, indexed by edge.
    pub fn ratios(&self, t: NodeId) -> &[f64] {
        &self.phi[t.index()]
    }

    /// Overwrites the ratios of destination `t` (same normalization rules as
    /// [`PdRouting::from_ratios`]).
    pub fn set_ratios(&mut self, graph: &Graph, t: NodeId, raw: &[f64]) {
        let dag = &self.dags[t.index()];
        let cleaned = &mut self.phi[t.index()];
        for r in cleaned.iter_mut() {
            *r = 0.0;
        }
        for v in graph.nodes() {
            let out = dag.out_edges(v);
            if out.is_empty() {
                continue;
            }
            let mut sum = 0.0;
            for &e in out {
                let r = raw.get(e.index()).copied().unwrap_or(0.0).max(0.0);
                cleaned[e.index()] = r;
                sum += r;
            }
            if sum > SPLIT_TOLERANCE {
                for &e in out {
                    cleaned[e.index()] /= sum;
                }
            } else {
                let share = 1.0 / out.len() as f64;
                for &e in out {
                    cleaned[e.index()] = share;
                }
            }
        }
    }

    /// Checks the PD-routing invariants: ratios are non-negative, zero
    /// outside the DAG, and sum to one over the out-edges of every node that
    /// participates in the DAG.
    pub fn validate(&self, graph: &Graph) -> Result<(), String> {
        for t in graph.nodes() {
            let dag = &self.dags[t.index()];
            let phi = &self.phi[t.index()];
            for e in graph.edges() {
                let r = phi[e.index()];
                if r < -SPLIT_TOLERANCE {
                    return Err(format!("negative ratio on edge {e} for destination {t}"));
                }
                if !dag.contains(e) && r.abs() > SPLIT_TOLERANCE {
                    return Err(format!(
                        "positive ratio on edge {e} outside the DAG of destination {t}"
                    ));
                }
            }
            for v in graph.nodes() {
                let out = dag.out_edges(v);
                if out.is_empty() {
                    continue;
                }
                let sum: f64 = out.iter().map(|&e| phi[e.index()]).sum();
                if (sum - 1.0).abs() > SPLIT_TOLERANCE {
                    return Err(format!(
                        "ratios at node {v} for destination {t} sum to {sum}, expected 1"
                    ));
                }
            }
        }
        Ok(())
    }

    /// `f_st(v)` for a fixed pair: the fraction of the `s → t` demand that
    /// enters each node `v`. `f_st(s) = 1`; other nodes accumulate
    /// `Σ_{e=(u,v)} f_st(u) · φ_t(e)` (Section III).
    pub fn source_fractions(&self, graph: &Graph, s: NodeId, t: NodeId) -> Vec<f64> {
        let dag = &self.dags[t.index()];
        let phi = &self.phi[t.index()];
        let mut frac = vec![0.0; graph.node_count()];
        frac[s.index()] = 1.0;
        if s == t {
            return frac;
        }
        // Sources-first topological order guarantees predecessors are final
        // before a node is read.
        for &v in dag.topo_to_destination().iter() {
            if v == s {
                continue;
            }
            let mut acc = 0.0;
            for &e in dag.in_edges(v) {
                let u = graph.edge(e).src;
                acc += frac[u.index()] * phi[e.index()];
            }
            if acc > 0.0 {
                frac[v.index()] += acc;
            }
        }
        frac
    }

    /// Aggregated node flow towards `t`: `F_t(v) = Σ_s d_st · f_st(v)`,
    /// computed in one pass over the DAG.
    pub fn destination_node_flow(&self, graph: &Graph, dm: &DemandMatrix, t: NodeId) -> Vec<f64> {
        let dag = &self.dags[t.index()];
        let phi = &self.phi[t.index()];
        let mut flow = vec![0.0; graph.node_count()];
        for s in graph.nodes() {
            if s != t {
                flow[s.index()] = dm.get(s, t);
            }
        }
        for &v in dag.topo_to_destination().iter() {
            let mut acc = 0.0;
            for &e in dag.in_edges(v) {
                let u = graph.edge(e).src;
                acc += flow[u.index()] * phi[e.index()];
            }
            flow[v.index()] += acc;
        }
        flow
    }

    /// Per-edge loads induced by routing `dm` with this configuration.
    pub fn edge_loads(&self, graph: &Graph, dm: &DemandMatrix) -> Vec<f64> {
        let mut loads = vec![0.0; graph.edge_count()];
        for t in dm.active_destinations() {
            let flow = self.destination_node_flow(graph, dm, t);
            let dag = &self.dags[t.index()];
            let phi = &self.phi[t.index()];
            for e in dag.edges() {
                let u = graph.edge(e).src;
                loads[e.index()] += flow[u.index()] * phi[e.index()];
            }
        }
        loads
    }

    /// Maximum link utilization `MxLU(φ, D) = max_e load(e) / c_e`.
    pub fn max_link_utilization(&self, graph: &Graph, dm: &DemandMatrix) -> f64 {
        self.edge_loads(graph, dm)
            .iter()
            .zip(graph.edges())
            .map(|(&load, e)| load / graph.capacity(e))
            .fold(0.0, f64::max)
    }

    /// Expected number of hops from `s` to `t` under this routing, or `None`
    /// if `s` sends no traffic towards `t` in the DAG.
    pub fn expected_hops(&self, graph: &Graph, s: NodeId, t: NodeId) -> Option<f64> {
        if s == t {
            return Some(0.0);
        }
        let dag = &self.dags[t.index()];
        let phi = &self.phi[t.index()];
        let hops = coyote_graph::path::expected_hops(graph, dag, |e| phi[e.index()]);
        hops[s.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coyote_graph::spf::shortest_path_dag;

    /// Fig. 1 topology with the Fig. 1b shortest-path DAG for t.
    fn fig1() -> (Graph, NodeId, NodeId, NodeId, NodeId) {
        let mut g = Graph::new();
        let s1 = g.add_node("s1").unwrap();
        let s2 = g.add_node("s2").unwrap();
        let v = g.add_node("v").unwrap();
        let t = g.add_node("t").unwrap();
        g.add_bidirectional_edge(s1, s2, 1.0, 1.0).unwrap();
        g.add_bidirectional_edge(s1, v, 1.0, 1.0).unwrap();
        g.add_bidirectional_edge(s2, v, 1.0, 1.0).unwrap();
        g.add_bidirectional_edge(s2, t, 1.0, 1.0).unwrap();
        g.add_bidirectional_edge(v, t, 1.0, 1.0).unwrap();
        (g, s1, s2, v, t)
    }

    fn all_spf_dags(g: &Graph) -> Vec<Dag> {
        g.nodes()
            .map(|t| Dag::from_shortest_paths(g, &shortest_path_dag(g, t)).unwrap())
            .collect()
    }

    #[test]
    fn uniform_routing_is_valid_and_matches_ecmp_splits() {
        let (g, s1, _s2, _v, t) = fig1();
        let routing = PdRouting::uniform(&g, all_spf_dags(&g));
        routing.validate(&g).unwrap();
        // s1 has two equal-cost next hops towards t.
        let dag = routing.dag(t);
        for &e in dag.out_edges(s1) {
            assert!((routing.ratio(t, e) - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn ecmp_loads_with_unit_weights_on_fig1() {
        // With unit OSPF weights the shortest-path DAG towards t is
        // {s1->s2, s1->v, s2->t, v->t}. For demands (2, 0) ECMP at s1 sends
        // one unit via s2 and one via v, so every link on the DAG carries
        // exactly one unit. (The paper's 3/2 figure for Fig. 1b assumes
        // weights under which s2 also splits; that configuration is covered
        // by the oblivious-ratio tests in `example_fig1`.)
        let (g, s1, s2, v, t) = fig1();
        let routing = PdRouting::uniform(&g, all_spf_dags(&g));
        let mut dm = DemandMatrix::zeros(g.node_count());
        dm.set(s1, t, 2.0);
        let loads = routing.edge_loads(&g, &dm);
        let s2t = g.find_edge(s2, t).unwrap();
        let vt = g.find_edge(v, t).unwrap();
        let s1s2 = g.find_edge(s1, s2).unwrap();
        assert!((loads[s1s2.index()] - 1.0).abs() < 1e-12);
        assert!((loads[s2t.index()] - 1.0).abs() < 1e-12);
        assert!((loads[vt.index()] - 1.0).abs() < 1e-12);
        assert!((routing.max_link_utilization(&g, &dm) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn source_fractions_sum_correctly_along_the_dag() {
        let (g, s1, s2, v, t) = fig1();
        let routing = PdRouting::uniform(&g, all_spf_dags(&g));
        let f = routing.source_fractions(&g, s1, t);
        assert_eq!(f[s1.index()], 1.0);
        assert!((f[s2.index()] - 0.5).abs() < 1e-12);
        assert!((f[v.index()] - 0.5).abs() < 1e-12);
        assert!((f[t.index()] - 1.0).abs() < 1e-12);
        // Self-pair is trivially 1 at the source.
        let f_self = routing.source_fractions(&g, t, t);
        assert_eq!(f_self[t.index()], 1.0);
        assert_eq!(f_self[s2.index()], 0.0);
    }

    #[test]
    fn from_ratios_normalizes_and_rejects_off_dag_entries() {
        let (g, s1, s2, v, t) = fig1();
        let dags = all_spf_dags(&g);
        let dag_t = &dags[t.index()];
        let s1s2 = g.find_edge(s1, s2).unwrap();
        let s1v = g.find_edge(s1, v).unwrap();
        let s2v = g.find_edge(s2, v).unwrap(); // NOT in the shortest-path DAG
        let mut raw = vec![vec![0.0; g.edge_count()]; g.node_count()];
        raw[t.index()][s1s2.index()] = 2.0;
        raw[t.index()][s1v.index()] = 6.0;
        raw[t.index()][s2v.index()] = 5.0; // must be ignored
        assert!(!dag_t.contains(s2v));
        let routing = PdRouting::from_ratios(&g, dags, raw);
        routing.validate(&g).unwrap();
        assert!((routing.ratio(t, s1s2) - 0.25).abs() < 1e-12);
        assert!((routing.ratio(t, s1v) - 0.75).abs() < 1e-12);
        assert_eq!(routing.ratio(t, s2v), 0.0);
    }

    #[test]
    fn set_ratios_falls_back_to_uniform_for_all_zero_nodes() {
        let (g, s1, _s2, _v, t) = fig1();
        let mut routing = PdRouting::uniform(&g, all_spf_dags(&g));
        let raw = vec![0.0; g.edge_count()];
        routing.set_ratios(&g, t, &raw);
        routing.validate(&g).unwrap();
        let out = routing.dag(t).out_edges(s1).to_vec();
        for e in out {
            assert!((routing.ratio(t, e) - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn skewed_ratios_shift_load_as_in_fig1c() {
        // Fig. 1c: s1 splits 2/3 towards s2 and 1/3 towards v (via the DAG of
        // Fig 1b), s2 and v forward everything to t. For demands (2, 0) the
        // load on (s2,t) is 4/3 and on (v,t) is 2/3.
        let (g, s1, s2, v, t) = fig1();
        let dags = all_spf_dags(&g);
        let s1s2 = g.find_edge(s1, s2).unwrap();
        let s1v = g.find_edge(s1, v).unwrap();
        let mut raw = vec![vec![0.0; g.edge_count()]; g.node_count()];
        raw[t.index()][s1s2.index()] = 2.0 / 3.0;
        raw[t.index()][s1v.index()] = 1.0 / 3.0;
        let routing = PdRouting::from_ratios(&g, dags, raw);
        let mut dm = DemandMatrix::zeros(g.node_count());
        dm.set(s1, t, 2.0);
        let loads = routing.edge_loads(&g, &dm);
        let s2t = g.find_edge(s2, t).unwrap();
        let vt = g.find_edge(v, t).unwrap();
        assert!((loads[s2t.index()] - 4.0 / 3.0).abs() < 1e-9);
        assert!((loads[vt.index()] - 2.0 / 3.0).abs() < 1e-9);
        assert!((routing.max_link_utilization(&g, &dm) - 4.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn expected_hops_under_ecmp() {
        let (g, s1, s2, _v, t) = fig1();
        let routing = PdRouting::uniform(&g, all_spf_dags(&g));
        assert_eq!(routing.expected_hops(&g, t, t), Some(0.0));
        assert!((routing.expected_hops(&g, s2, t).unwrap() - 1.0).abs() < 1e-12);
        assert!((routing.expected_hops(&g, s1, t).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn validate_catches_corrupted_ratios() {
        let (g, _s1, _s2, _v, t) = fig1();
        let mut routing = PdRouting::uniform(&g, all_spf_dags(&g));
        // Corrupt: put mass on an edge outside the DAG of t.
        let s2v = g.find_edge(NodeId(1), NodeId(2)).unwrap();
        assert!(!routing.dag(t).contains(s2v));
        routing.phi[t.index()][s2v.index()] = 0.3;
        assert!(routing.validate(&g).is_err());
    }

    #[test]
    fn multi_destination_loads_superimpose() {
        let (g, s1, s2, v, t) = fig1();
        let routing = PdRouting::uniform(&g, all_spf_dags(&g));
        let mut dm = DemandMatrix::zeros(g.node_count());
        dm.set(s1, t, 1.0);
        dm.set(s1, v, 1.0);
        let loads_both = routing.edge_loads(&g, &dm);
        let mut dm_a = DemandMatrix::zeros(g.node_count());
        dm_a.set(s1, t, 1.0);
        let mut dm_b = DemandMatrix::zeros(g.node_count());
        dm_b.set(s1, v, 1.0);
        let la = routing.edge_loads(&g, &dm_a);
        let lb = routing.edge_loads(&g, &dm_b);
        for e in g.edges() {
            assert!(
                (loads_both[e.index()] - la[e.index()] - lb[e.index()]).abs() < 1e-12,
                "loads are not additive on edge {e}"
            );
        }
        let _ = s2;
    }
}
