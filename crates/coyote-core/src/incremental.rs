//! The destination-separable re-optimization layer behind `coyote-serve`.
//!
//! The joint demands-aware optimum ([`crate::opt_mcf`]) couples all
//! destinations through shared capacity constraints, so a change to one
//! demand column would force a full re-solve — and worse, the re-solved
//! routing for *untouched* destinations could legitimately change. A
//! long-running controller that promises "applying the emitted delta is
//! bit-identical to a cold recompile" therefore needs a policy whose
//! solution for destination `t` is a pure function of `t`'s own inputs.
//!
//! This module provides exactly that: per destination `t`, minimize the
//! maximum link utilization of `t`'s *own* demand column routed inside
//! `t`'s (augmented) DAG:
//!
//! ```text
//! minimize α_t
//! s.t.  ∀ v ≠ t:  Σ_{e ∈ out_dag(v)} g(e) − Σ_{e ∈ in_dag(v)} g(e) = d_vt
//!       ∀ e ∈ dag(t):  g(e) ≤ α_t · c_e
//!       g ≥ 0
//! ```
//!
//! The solution depends only on `(graph, dag_t, demand column t)` —
//! *separability* — so an incremental engine can re-solve just the dirty
//! destinations and copy every other solution over unchanged, and a cold
//! recompile provably reproduces the same routing bit for bit. Warm starts
//! go through [`PhaseOneCache`] (phase-one replay), the protocol `coyote-lp`
//! guarantees to be bit-identical to a cold solve — unlike
//! [`coyote_lp::WarmBasis`] restores, which may land on a different optimal
//! vertex and are therefore never used here.
//!
//! Like [`crate::opt_mcf::split_routable_within_dags`], demand from sources
//! with no DAG out-edge (failures can partition a topology) is masked out
//! and reported rather than turned into an `Infeasible` error.

use crate::error::CoreError;
use crate::routing::PdRouting;
use coyote_graph::{Dag, Graph, NodeId, EdgeId};
use coyote_lp::{LpProblem, PhaseOneCache, Relation, Sense, VarId};
use coyote_traffic::DemandMatrix;

/// The per-destination optimum: flows for one destination's demand column.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DestinationSolve {
    /// Flow towards the destination on each graph edge (dense over the
    /// graph's edge ids; zero outside the DAG).
    pub flows: Vec<f64>,
    /// The optimal `α_t`: the max utilization this column alone induces.
    pub max_utilization: f64,
    /// Demand volume masked out because its source has no DAG out-edge.
    pub unroutable_volume: f64,
    /// Number of sources whose demand towards `t` was masked out.
    pub unroutable_sources: usize,
}

/// Solves the single-destination min-max-utilization LP for `t` within its
/// DAG. `cache` carries the phase-one replay between solves of the same
/// destination; the result is bit-identical with a fresh or a primed cache.
pub fn solve_destination(
    graph: &Graph,
    dag: &Dag,
    dm: &DemandMatrix,
    t: NodeId,
    cache: &mut PhaseOneCache,
) -> Result<DestinationSolve, CoreError> {
    let _span = coyote_obs::span("core.incremental.solve");
    coyote_obs::counter("core.incremental.solves", 1);
    if dm.node_count() != graph.node_count() {
        return Err(CoreError::DimensionMismatch(format!(
            "demand matrix has {} nodes, graph has {}",
            dm.node_count(),
            graph.node_count()
        )));
    }
    if dag.destination() != t {
        return Err(CoreError::DimensionMismatch(format!(
            "DAG is rooted at {} but destination {} was requested",
            dag.destination().index(),
            t.index()
        )));
    }

    let mut solve = DestinationSolve {
        flows: vec![0.0; graph.edge_count()],
        ..DestinationSolve::default()
    };

    // Mask demand whose source cannot enter the DAG (mirrors
    // split_routable_within_dags, but for a single column).
    let mut column = vec![0.0; graph.node_count()];
    let mut active = false;
    for s in graph.nodes() {
        if s == t {
            continue;
        }
        let d = dm.get(s, t);
        if d <= 0.0 {
            continue;
        }
        if dag.out_edges(s).is_empty() {
            solve.unroutable_volume += d;
            solve.unroutable_sources += 1;
        } else {
            column[s.index()] = d;
            active = true;
        }
    }
    let dag_edges: Vec<EdgeId> = dag.edges();
    if !active || dag_edges.is_empty() {
        return Ok(solve);
    }

    let mut lp = LpProblem::new(Sense::Minimize);
    let alpha = lp.add_nonneg_var("alpha", 1.0);
    let mut flow_vars: Vec<Option<VarId>> = vec![None; graph.edge_count()];
    for &e in &dag_edges {
        flow_vars[e.index()] = Some(lp.add_nonneg_var(format!("g_{}", e.index()), 0.0));
    }

    // Flow conservation at every non-destination node touched by the DAG.
    for v in graph.nodes() {
        if v == t {
            continue;
        }
        let mut terms: Vec<(VarId, f64)> = Vec::new();
        for &e in dag.out_edges(v) {
            if let Some(var) = flow_vars[e.index()] {
                terms.push((var, 1.0));
            }
        }
        for &e in dag.in_edges(v) {
            if let Some(var) = flow_vars[e.index()] {
                terms.push((var, -1.0));
            }
        }
        if terms.is_empty() {
            continue;
        }
        lp.add_constraint(
            format!("cons_{}", v.index()),
            &terms,
            Relation::Eq,
            column[v.index()],
        );
    }

    // Capacity: flow on each DAG edge at most alpha * capacity.
    for &e in &dag_edges {
        let var = flow_vars[e.index()].expect("DAG edge has a flow variable");
        lp.add_constraint(
            format!("cap_{}", e.index()),
            &[(var, 1.0), (alpha, -graph.capacity(e))],
            Relation::Le,
            0.0,
        );
    }

    let sol = lp.solve_cached(cache).map_err(|e| match e {
        coyote_lp::LpError::Infeasible { .. } => CoreError::UnroutableDemand {
            detail: format!(
                "destination {}: flow conservation cannot be satisfied inside its DAG",
                t.index()
            ),
        },
        other => CoreError::Lp(other),
    })?;

    for &e in &dag_edges {
        if let Some(var) = flow_vars[e.index()] {
            solve.flows[e.index()] = sol.value(var).max(0.0);
        }
    }
    solve.max_utilization = sol.value(alpha).max(0.0);
    Ok(solve)
}

/// Destinations whose demand column differs between `old` and `new`
/// (bit-exact comparison), in ascending node order — the dirty set of a
/// demand-matrix update.
pub fn demand_dirty_destinations(old: &DemandMatrix, new: &DemandMatrix) -> Vec<NodeId> {
    let n = old.node_count().min(new.node_count());
    let mut dirty: Vec<NodeId> = Vec::new();
    for ti in 0..n.max(old.node_count()).max(new.node_count()) {
        let t = NodeId(ti);
        let changed = (0..old.node_count().max(new.node_count())).any(|si| {
            let s = NodeId(si);
            let before = if si < old.node_count() && ti < old.node_count() {
                old.get(s, t)
            } else {
                0.0
            };
            let after = if si < new.node_count() && ti < new.node_count() {
                new.get(s, t)
            } else {
                0.0
            };
            before.to_bits() != after.to_bits()
        });
        if changed {
            dirty.push(t);
        }
    }
    dirty
}

/// Solves every destination independently and assembles the separable
/// routing — the *cold* protocol the incremental engine must reproduce.
/// `caches` must hold one [`PhaseOneCache`] per node (results are
/// bit-identical whether the caches are fresh or primed).
pub fn separable_routing(
    graph: &Graph,
    dags: &[Dag],
    dm: &DemandMatrix,
    caches: &mut [PhaseOneCache],
) -> Result<(PdRouting, Vec<DestinationSolve>), CoreError> {
    if dags.len() != graph.node_count() || caches.len() != graph.node_count() {
        return Err(CoreError::DimensionMismatch(format!(
            "{} DAGs / {} caches for {} nodes",
            dags.len(),
            caches.len(),
            graph.node_count()
        )));
    }
    let mut solves = Vec::with_capacity(graph.node_count());
    for t in graph.nodes() {
        solves.push(solve_destination(
            graph,
            &dags[t.index()],
            dm,
            t,
            &mut caches[t.index()],
        )?);
    }
    let raw: Vec<Vec<f64>> = solves.iter().map(|s| s.flows.clone()).collect();
    Ok((PdRouting::from_ratios(graph, dags.to_vec(), raw), solves))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag_builder::{build_all_dags, DagMode};

    fn fig1() -> (Graph, NodeId, NodeId, NodeId, NodeId) {
        let mut g = Graph::new();
        let s1 = g.add_node("s1").unwrap();
        let s2 = g.add_node("s2").unwrap();
        let v = g.add_node("v").unwrap();
        let t = g.add_node("t").unwrap();
        g.add_bidirectional_edge(s1, s2, 1.0, 1.0).unwrap();
        g.add_bidirectional_edge(s1, v, 1.0, 1.0).unwrap();
        g.add_bidirectional_edge(s2, v, 1.0, 1.0).unwrap();
        g.add_bidirectional_edge(s2, t, 1.0, 1.0).unwrap();
        g.add_bidirectional_edge(v, t, 1.0, 1.0).unwrap();
        (g, s1, s2, v, t)
    }

    #[test]
    fn single_destination_solve_matches_the_joint_optimum_for_one_column() {
        // With only one active destination the separable LP *is* the joint
        // MCF, so the objectives must agree.
        let (g, s1, _, _, t) = fig1();
        let dags = build_all_dags(&g, DagMode::Augmented).unwrap();
        let mut dm = DemandMatrix::zeros(4);
        dm.set(s1, t, 2.0);
        let mut cache = PhaseOneCache::new();
        let solve = solve_destination(&g, &dags[t.index()], &dm, t, &mut cache).unwrap();
        let joint = crate::opt_mcf::optu_within_dags(&g, &dags, &dm).unwrap();
        assert!((solve.max_utilization - joint).abs() < 1e-6);
        // Conservation: everything s1 sends arrives.
        let outflow: f64 = g.out_edges(s1).iter().map(|&e| solve.flows[e.index()]).sum();
        let inflow: f64 = g.in_edges(s1).iter().map(|&e| solve.flows[e.index()]).sum();
        assert!((outflow - inflow - 2.0).abs() < 1e-6);
    }

    #[test]
    fn warm_cache_is_bit_identical_to_cold() {
        let (g, s1, s2, _, t) = fig1();
        let dags = build_all_dags(&g, DagMode::Augmented).unwrap();
        let mut dm = DemandMatrix::zeros(4);
        dm.set(s1, t, 1.0);
        dm.set(s2, t, 0.5);
        let mut warm = PhaseOneCache::new();
        // Prime the cache with a different column, then re-solve.
        let _ = solve_destination(&g, &dags[t.index()], &dm.scaled(3.0), t, &mut warm).unwrap();
        let warm_solve = solve_destination(&g, &dags[t.index()], &dm, t, &mut warm).unwrap();
        let cold_solve =
            solve_destination(&g, &dags[t.index()], &dm, t, &mut PhaseOneCache::new()).unwrap();
        assert_eq!(warm_solve, cold_solve, "phase-one replay must not drift");
    }

    #[test]
    fn solutions_are_separable_across_columns() {
        // Changing another destination's column must not change t's solve.
        let (g, s1, s2, v, t) = fig1();
        let dags = build_all_dags(&g, DagMode::Augmented).unwrap();
        let mut dm = DemandMatrix::zeros(4);
        dm.set(s1, t, 1.0);
        dm.set(s2, t, 0.5);
        let mut other = dm.clone();
        other.set(s1, v, 7.0);
        let a = solve_destination(&g, &dags[t.index()], &dm, t, &mut PhaseOneCache::new()).unwrap();
        let b =
            solve_destination(&g, &dags[t.index()], &other, t, &mut PhaseOneCache::new()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn unroutable_sources_are_masked_not_fatal() {
        let (g, s1, s2, v, t) = fig1();
        let dags = build_all_dags(&g, DagMode::Augmented).unwrap();
        // Hand the solver a DAG with no out-edges for s1 by failing both of
        // s1's links: rebuild on a pruned graph, then ask for s1's demand.
        let dead: Vec<_> = g
            .out_edges(s1)
            .iter()
            .chain(g.in_edges(s1))
            .copied()
            .collect();
        let pruned = g.without_edges(&dead);
        let pruned_dags = build_all_dags(&pruned, DagMode::Augmented).unwrap();
        let mut dm = DemandMatrix::zeros(4);
        dm.set(s1, t, 3.0);
        dm.set(s2, t, 1.0);
        let solve =
            solve_destination(&pruned, &pruned_dags[t.index()], &dm, t, &mut PhaseOneCache::new())
                .unwrap();
        assert_eq!(solve.unroutable_sources, 1);
        assert!((solve.unroutable_volume - 3.0).abs() < 1e-12);
        assert!(solve.max_utilization > 0.0, "s2's demand still routes");
        let _ = (dags, v);
    }

    #[test]
    fn demand_dirty_set_is_exactly_the_changed_columns() {
        let (g, s1, s2, v, t) = fig1();
        let mut old = DemandMatrix::zeros(g.node_count());
        old.set(s1, t, 1.0);
        old.set(s2, v, 2.0);
        let mut new = old.clone();
        assert!(demand_dirty_destinations(&old, &new).is_empty());
        new.set(s1, t, 1.5);
        new.set(s1, s2, 0.25);
        assert_eq!(demand_dirty_destinations(&old, &new), vec![s2, t]);
    }

    #[test]
    fn separable_routing_round_trips_through_pd_routing() {
        let (g, s1, s2, _, t) = fig1();
        let dags = build_all_dags(&g, DagMode::Augmented).unwrap();
        let mut dm = DemandMatrix::zeros(4);
        dm.set(s1, t, 1.0);
        dm.set(s2, t, 1.0);
        let mut caches: Vec<PhaseOneCache> =
            (0..g.node_count()).map(|_| PhaseOneCache::new()).collect();
        let (routing, solves) = separable_routing(&g, &dags, &dm, &mut caches).unwrap();
        routing.validate(&g).unwrap();
        assert_eq!(solves.len(), 4);
        let util = routing.max_link_utilization(&g, &dm);
        // The realized routing can be no better than the per-column optima.
        let worst_alpha = solves
            .iter()
            .map(|s| s.max_utilization)
            .fold(0.0f64, f64::max);
        assert!(util + 1e-6 >= worst_alpha);
    }
}
