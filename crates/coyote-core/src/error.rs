//! Error type for the COYOTE core pipeline.

use coyote_graph::GraphError;
use coyote_lp::LpError;
use std::fmt;

/// Errors surfaced by the COYOTE core algorithms.
#[derive(Debug, Clone)]
pub enum CoreError {
    /// An underlying graph/DAG operation failed.
    Graph(GraphError),
    /// An underlying linear program failed (infeasible, unbounded, …).
    Lp(LpError),
    /// A routing configuration violated the PD-routing invariants.
    InvalidRouting(String),
    /// A demand matrix cannot be routed at all (e.g. a destination is
    /// unreachable inside the provided DAGs).
    UnroutableDemand {
        /// Human-readable description of the offending demand.
        detail: String,
    },
    /// Mismatched dimensions between inputs (graphs, matrices, DAG sets).
    DimensionMismatch(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Graph(e) => write!(f, "graph error: {e}"),
            CoreError::Lp(e) => write!(f, "LP error: {e}"),
            CoreError::InvalidRouting(msg) => write!(f, "invalid PD routing: {msg}"),
            CoreError::UnroutableDemand { detail } => {
                write!(f, "demand matrix cannot be routed: {detail}")
            }
            CoreError::DimensionMismatch(msg) => write!(f, "dimension mismatch: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<GraphError> for CoreError {
    fn from(e: GraphError) -> Self {
        CoreError::Graph(e)
    }
}

impl From<LpError> for CoreError {
    fn from(e: LpError) -> Self {
        CoreError::Lp(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CoreError = GraphError::SelfLoop { node: 3 }.into();
        assert!(e.to_string().contains("graph error"));
        let e: CoreError = LpError::Unbounded.into();
        assert!(e.to_string().contains("LP error"));
        let e = CoreError::UnroutableDemand {
            detail: "s1->t".into(),
        };
        assert!(e.to_string().contains("s1->t"));
        let e = CoreError::InvalidRouting("bad".into());
        assert!(e.to_string().contains("bad"));
        let e = CoreError::DimensionMismatch("n".into());
        assert!(e.to_string().contains("mismatch"));
    }
}
