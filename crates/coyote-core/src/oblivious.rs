//! COYOTE's in-DAG traffic-splitting optimization (Section V-C, Appendix C).
//!
//! Given the per-destination DAGs, COYOTE chooses the splitting ratios
//! `φ_t(e)` that minimize the worst-case link utilization over the
//! operator's uncertainty set, normalized by the demands-aware optimum. The
//! paper casts this as an iterative mixed linear–geometric program solved
//! with an interior-point solver; this reproduction keeps the same outer
//! structure but solves the inner problem with a first-order method:
//!
//! 1. **Log-domain parametrization.** Splitting ratios are expressed as a
//!    softmax of free parameters per (destination, node), which enforces the
//!    "ratios sum to one" constraint exactly — the constraint the paper has
//!    to approximate with monomial condensation — while keeping every load a
//!    smooth function of the parameters (products of ratios along paths, as
//!    in the paper's GP view).
//! 2. **Smoothed worst case.** The maximum utilization over (edge, demand
//!    matrix) pairs is smoothed with log-sum-exp and minimized with Adam
//!    (`coyote-gp`); gradients are computed analytically with an adjoint
//!    sweep over each DAG.
//! 3. **Constraint generation (the dualization step's practical twin).** The
//!    finite working set of demand matrices is grown by solving the exact
//!    slave LP of Appendix C for the current bottleneck edges; the witness
//!    matrices are added and the splitting ratios re-optimized, exactly like
//!    the paper's iterative approach alternates between the master and the
//!    dualized adversary.
//!
//! The result can only improve on ECMP over the working set because uniform
//! splitting over the augmented DAGs (which contain the shortest-path DAGs)
//! is a feasible starting point (Section V-B).

use crate::dag_builder::{build_all_dags, DagMode};
use crate::error::CoreError;
use crate::perf::{EvaluationOptions, EvaluationSet};
use crate::routing::PdRouting;
use crate::worst_case::{bottleneck_candidates, performance_ratio_exact, RoutabilityScope};
use coyote_gp::logspace::{smooth_max_and_weights_into, softmax_into};
use coyote_gp::solver::{minimize_adam, AdamOptions};
use coyote_graph::{Dag, EdgeId, Graph, NodeId};
use coyote_traffic::{DemandMatrix, UncertaintySet};
use std::cell::RefCell;

/// Configuration of the COYOTE splitting optimizer.
#[derive(Debug, Clone)]
pub struct CoyoteConfig {
    /// Outer constraint-generation rounds (adversarial matrices added).
    pub cg_rounds: usize,
    /// How many bottleneck edges to probe with the exact slave LP per round.
    pub cg_candidate_edges: usize,
    /// Adam iterations per inner optimization.
    pub adam_iterations: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Smoothing temperature of the max (relative to the current maximum).
    pub smoothing: f64,
    /// Options for the initial finite working set of demand matrices.
    pub evaluation: EvaluationOptions,
    /// Stop constraint generation once the exact adversary cannot raise the
    /// working-set ratio by more than this factor.
    pub cg_tolerance: f64,
    /// Routability scope for the adversary's certifying flow.
    pub scope: RoutabilityScope,
}

impl Default for CoyoteConfig {
    fn default() -> Self {
        Self {
            cg_rounds: 3,
            cg_candidate_edges: 3,
            adam_iterations: 1_500,
            learning_rate: 0.08,
            smoothing: 0.02,
            evaluation: EvaluationOptions::default(),
            cg_tolerance: 1.02,
            scope: RoutabilityScope::WithinDags,
        }
    }
}

impl CoyoteConfig {
    /// A cheaper configuration for tests and quick sweeps.
    pub fn fast() -> Self {
        Self {
            cg_rounds: 2,
            cg_candidate_edges: 2,
            adam_iterations: 600,
            evaluation: EvaluationOptions {
                corners: 6,
                samples: 3,
                spikes: 4,
                seed: 0xC0707E,
            },
            ..Self::default()
        }
    }
}

/// Outcome of a COYOTE optimization run.
#[derive(Debug, Clone)]
pub struct CoyoteResult {
    /// The optimized routing.
    pub routing: PdRouting,
    /// Performance ratio over the final working set of demand matrices.
    pub working_set_ratio: f64,
    /// Number of demand matrices in the final working set.
    pub working_set_size: usize,
    /// Constraint-generation rounds actually performed.
    pub rounds: usize,
}

/// Mapping between the flat optimization vector and (destination, edge)
/// splitting parameters. Only nodes with at least two DAG out-edges get
/// parameters; single-out-edge nodes always forward everything.
struct ParamMap {
    /// `index[t][e]` = position in the flat vector, or `usize::MAX`.
    index: Vec<Vec<usize>>,
    len: usize,
}

impl ParamMap {
    fn new(graph: &Graph, dags: &[Dag]) -> Self {
        let mut index = vec![vec![usize::MAX; graph.edge_count()]; dags.len()];
        let mut len = 0usize;
        for (t, dag) in dags.iter().enumerate() {
            for v in graph.nodes() {
                let out = dag.out_edges(v);
                if out.len() >= 2 {
                    for &e in out {
                        index[t][e.index()] = len;
                        len += 1;
                    }
                }
            }
        }
        Self { index, len }
    }

    #[inline]
    fn get(&self, t: usize, e: EdgeId) -> Option<usize> {
        let i = self.index[t][e.index()];
        if i == usize::MAX {
            None
        } else {
            Some(i)
        }
    }
}

/// Converts flat parameters to splitting ratios for every destination.
fn ratios_from_params(graph: &Graph, dags: &[Dag], map: &ParamMap, theta: &[f64]) -> Vec<Vec<f64>> {
    let mut phi = Vec::new();
    ratios_from_params_into(
        graph,
        dags,
        map,
        theta,
        &mut phi,
        &mut Vec::new(),
        &mut Vec::new(),
    );
    phi
}

/// [`ratios_from_params`] writing into reusable buffers: `phi` is resized
/// and zeroed in place, `logits`/`probs` are per-node scratch. The inner
/// optimizer evaluates this thousands of times per cell; reusing the
/// per-destination vectors removes an `O(destinations × edges)` allocation
/// storm per gradient step without changing a single computed bit.
fn ratios_from_params_into(
    graph: &Graph,
    dags: &[Dag],
    map: &ParamMap,
    theta: &[f64],
    phi: &mut Vec<Vec<f64>>,
    logits: &mut Vec<f64>,
    probs: &mut Vec<f64>,
) {
    let ne = graph.edge_count();
    phi.resize_with(dags.len(), Vec::new);
    for (t, dag) in dags.iter().enumerate() {
        let phi_t = &mut phi[t];
        phi_t.clear();
        phi_t.resize(ne, 0.0);
        for v in graph.nodes() {
            let out = dag.out_edges(v);
            match out.len() {
                0 => {}
                1 => phi_t[out[0].index()] = 1.0,
                _ => {
                    logits.clear();
                    logits.extend(
                        out.iter().map(|&e| {
                            theta[map.get(t, e).expect("multi-out edges are parametrized")]
                        }),
                    );
                    softmax_into(logits, probs);
                    for (&e, &p) in out.iter().zip(probs.iter()) {
                        phi_t[e.index()] = p;
                    }
                }
            }
        }
    }
}

/// Reusable buffers for [`SplittingObjective::eval_impl`]. The objective is
/// evaluated thousands of times per Adam run over buffers whose shapes never
/// change, so everything is allocated once and rewritten in place; all
/// buffers are fully overwritten (or zeroed) before use, keeping results
/// bit-identical to the allocate-fresh version.
#[derive(Default)]
struct EvalScratch {
    phi: Vec<Vec<f64>>,
    logits: Vec<f64>,
    probs: Vec<f64>,
    flows: Vec<Vec<Vec<f64>>>,
    values: Vec<f64>,
    loads: Vec<f64>,
    weights: Vec<f64>,
    dphi: Vec<Vec<f64>>,
    lambda: Vec<f64>,
}

/// The differentiable objective: smoothed maximum over (matrix, edge) of
/// `load / (capacity · OPTU(D))`.
struct SplittingObjective<'a> {
    graph: &'a Graph,
    dags: &'a [Dag],
    map: &'a ParamMap,
    /// (demand matrix, OPTU normalizer) pairs.
    working_set: Vec<(DemandMatrix, f64)>,
    smoothing: f64,
    scratch: RefCell<EvalScratch>,
}

impl<'a> SplittingObjective<'a> {
    fn new(
        graph: &'a Graph,
        dags: &'a [Dag],
        map: &'a ParamMap,
        working_set: Vec<(DemandMatrix, f64)>,
        smoothing: f64,
    ) -> Self {
        Self {
            graph,
            dags,
            map,
            working_set,
            smoothing,
            scratch: RefCell::new(EvalScratch::default()),
        }
    }

    /// Evaluates the smoothed objective and accumulates the gradient.
    fn eval_impl(&self, theta: &[f64], grad: &mut [f64]) -> f64 {
        let graph = self.graph;
        let ne = graph.edge_count();
        let scratch = &mut *self.scratch.borrow_mut();
        let EvalScratch {
            phi,
            logits,
            probs,
            flows,
            values,
            loads,
            weights,
            dphi,
            lambda,
        } = scratch;
        ratios_from_params_into(graph, self.dags, self.map, theta, phi, logits, probs);

        // Forward pass: per (matrix, destination) node flows and per-matrix
        // edge loads. Inactive destinations keep stale buffers; they are
        // never read (every consumer loops over `active_destinations`).
        flows.resize_with(self.working_set.len(), Vec::new);
        for ((dm, _), per_dest) in self.working_set.iter().zip(flows.iter_mut()) {
            per_dest.resize_with(self.dags.len(), Vec::new);
            for t in dm.active_destinations() {
                destination_flow_into(
                    graph,
                    &self.dags[t.index()],
                    &phi[t.index()],
                    dm,
                    t,
                    &mut per_dest[t.index()],
                );
            }
        }
        values.clear();
        values.reserve(self.working_set.len() * ne);
        for ((dm, r), per_dest) in self.working_set.iter().zip(flows.iter()) {
            loads.clear();
            loads.resize(ne, 0.0);
            for t in dm.active_destinations() {
                let dag = &self.dags[t.index()];
                let flow = &per_dest[t.index()];
                for e in dag.edges() {
                    let u = graph.edge(e).src;
                    loads[e.index()] += flow[u.index()] * phi[t.index()][e.index()];
                }
            }
            for e in graph.edges() {
                values.push(loads[e.index()] / (graph.capacity(e) * r));
            }
        }

        let max_val = values.iter().copied().fold(0.0_f64, f64::max);
        let tau = (self.smoothing * max_val).max(1e-6);
        let objective = smooth_max_and_weights_into(values, tau, weights);

        // Backward pass (adjoint) per (matrix, destination).
        // dJ/dφ_t(e) accumulated here, then chained through the softmax.
        dphi.resize_with(self.dags.len(), Vec::new);
        for row in dphi.iter_mut() {
            row.clear();
            row.resize(ne, 0.0);
        }
        for (k, ((dm, r), per_dest)) in self.working_set.iter().zip(flows.iter()).enumerate() {
            // Per-edge weight of this matrix in the smoothed max.
            let w_of = |e: EdgeId| weights[k * ne + e.index()] / (graph.capacity(e) * r);
            for t in dm.active_destinations() {
                let dag = &self.dags[t.index()];
                let flow = &per_dest[t.index()];
                let phi_t = &phi[t.index()];
                // Adjoint λ(v) = Σ_{e=(v,x)} φ(e) (w_e + λ(x)), destination
                // first so successors are ready.
                lambda.clear();
                lambda.resize(graph.node_count(), 0.0);
                for &v in dag.topo_from_destination() {
                    if v == dag.destination() {
                        continue;
                    }
                    let mut acc = 0.0;
                    for &e in dag.out_edges(v) {
                        let x = graph.edge(e).dst;
                        acc += phi_t[e.index()] * (w_of(e) + lambda[x.index()]);
                    }
                    lambda[v.index()] = acc;
                }
                for e in dag.edges() {
                    let (u, x) = graph.endpoints(e);
                    dphi[t.index()][e.index()] += flow[u.index()] * (w_of(e) + lambda[x.index()]);
                }
            }
        }

        // Chain rule through the per-node softmax.
        for (t, dag) in self.dags.iter().enumerate() {
            for v in graph.nodes() {
                let out = dag.out_edges(v);
                if out.len() < 2 {
                    continue;
                }
                let dot: f64 = out
                    .iter()
                    .map(|&e| dphi[t][e.index()] * phi[t][e.index()])
                    .sum();
                for &e in out {
                    let idx = self.map.get(t, e).expect("parametrized edge");
                    grad[idx] += phi[t][e.index()] * (dphi[t][e.index()] - dot);
                }
            }
        }

        objective
    }
}

/// Per-destination aggregated node flow for explicit ratios (mirrors
/// [`PdRouting::destination_node_flow`] but avoids constructing a routing
/// object inside the optimizer's hot loop). Writes into a reusable buffer,
/// zeroed in place first.
fn destination_flow_into(
    graph: &Graph,
    dag: &Dag,
    phi: &[f64],
    dm: &DemandMatrix,
    t: NodeId,
    flow: &mut Vec<f64>,
) {
    flow.clear();
    flow.resize(graph.node_count(), 0.0);
    for s in graph.nodes() {
        if s != t {
            flow[s.index()] = dm.get(s, t);
        }
    }
    for &v in dag.topo_to_destination().iter() {
        let mut acc = 0.0;
        for &e in dag.in_edges(v) {
            let u = graph.edge(e).src;
            acc += flow[u.index()] * phi[e.index()];
        }
        flow[v.index()] += acc;
    }
}

/// Optimizes the splitting ratios within the given DAGs for the uncertainty
/// set. `base` is the base demand matrix the margins were derived from (it
/// seeds the working set); pass `None` in the fully oblivious setting.
pub fn optimize_splitting(
    graph: &Graph,
    dags: Vec<Dag>,
    uncertainty: &UncertaintySet,
    base: Option<&DemandMatrix>,
    config: &CoyoteConfig,
) -> Result<CoyoteResult, CoreError> {
    if dags.len() != graph.node_count() {
        return Err(CoreError::DimensionMismatch(format!(
            "{} DAGs for {} nodes",
            dags.len(),
            graph.node_count()
        )));
    }
    let working = EvaluationSet::build(graph, &dags, uncertainty, base, &config.evaluation)?;
    optimize_splitting_with_working_set(graph, dags, uncertainty, base, config, working)
}

/// Same as [`optimize_splitting`] but starting from a caller-supplied
/// working set of demand matrices (with their precomputed optima). The
/// experiment harness reuses one evaluation family across the COYOTE
/// variants to avoid recomputing the `OPTU` LPs.
pub fn optimize_splitting_with_working_set(
    graph: &Graph,
    dags: Vec<Dag>,
    uncertainty: &UncertaintySet,
    base: Option<&DemandMatrix>,
    config: &CoyoteConfig,
    initial_working_set: EvaluationSet,
) -> Result<CoyoteResult, CoreError> {
    let _span = coyote_obs::span("core.optimize_splitting");
    if dags.len() != graph.node_count() {
        return Err(CoreError::DimensionMismatch(format!(
            "{} DAGs for {} nodes",
            dags.len(),
            graph.node_count()
        )));
    }

    // Working set of demand matrices with their LP optima.
    let mut working = initial_working_set;
    if working.is_empty() {
        working = EvaluationSet::build(graph, &dags, uncertainty, base, &config.evaluation)?;
    }

    let map = ParamMap::new(graph, &dags);
    let mut theta = vec![0.0; map.len];
    let mut rounds = 0usize;

    for round in 0..config.cg_rounds.max(1) {
        rounds = round + 1;
        // ---- Inner optimization over the current working set. ----
        if map.len > 0 {
            let objective = SplittingObjective::new(
                graph,
                &dags,
                &map,
                working.entries().map(|(dm, r)| (dm.clone(), r)).collect(),
                config.smoothing,
            );
            let obj = (map.len, move |x: &[f64], grad: &mut [f64]| -> f64 {
                objective.eval_impl(x, grad)
            });
            let opts = AdamOptions {
                learning_rate: config.learning_rate,
                max_iters: config.adam_iterations,
                patience: 150,
                ..AdamOptions::default()
            };
            let res = minimize_adam(&obj, &theta, &opts);
            theta = res.x;
        }

        // Current routing and its ratio over the working set.
        let routing = routing_from_theta(graph, &dags, &map, &theta);
        let current = working.performance_ratio(graph, &routing);

        if round + 1 == config.cg_rounds.max(1) {
            break;
        }

        // ---- Constraint generation: ask the exact adversary. ----
        let reference = uncertainty
            .upper_envelope()
            .or_else(|| base.cloned())
            .unwrap_or_else(|| {
                working
                    .entries()
                    .next()
                    .map(|(dm, _)| dm.clone())
                    .unwrap_or_else(|| DemandMatrix::zeros(graph.node_count()))
            });
        let candidates =
            bottleneck_candidates(graph, &routing, &reference, config.cg_candidate_edges);
        let wc = performance_ratio_exact(
            graph,
            &routing,
            uncertainty,
            config.scope,
            Some(&candidates),
        )?;
        if wc.ratio <= current * config.cg_tolerance {
            break;
        }
        working.try_add(graph, &dags, wc.demand)?;
    }

    let routing = routing_from_theta(graph, &dags, &map, &theta);
    let ratio = working.performance_ratio(graph, &routing);
    coyote_obs::counter("core.cg.optimizations", 1);
    coyote_obs::counter("core.cg.rounds", rounds as u64);
    coyote_obs::observe("core.cg.rounds_per_optimization", rounds as u64);
    Ok(CoyoteResult {
        routing,
        working_set_ratio: ratio,
        working_set_size: working.len(),
        rounds,
    })
}

fn routing_from_theta(graph: &Graph, dags: &[Dag], map: &ParamMap, theta: &[f64]) -> PdRouting {
    let phi = ratios_from_params(graph, dags, map, theta);
    PdRouting::from_ratios(graph, dags.to_vec(), phi)
}

/// End-to-end COYOTE: build the augmented DAGs from the graph's current OSPF
/// weights (Section V-B) and optimize the splitting ratios for the given
/// uncertainty set (Section V-C).
pub fn coyote(
    graph: &Graph,
    uncertainty: &UncertaintySet,
    base: Option<&DemandMatrix>,
    config: &CoyoteConfig,
) -> Result<CoyoteResult, CoreError> {
    let dags = build_all_dags(graph, DagMode::Augmented)?;
    optimize_splitting(graph, dags, uncertainty, base, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ecmp::ecmp_routing;
    use crate::worst_case::performance_ratio_exact;

    fn fig1() -> (Graph, NodeId, NodeId, NodeId, NodeId) {
        let mut g = Graph::new();
        let s1 = g.add_node("s1").unwrap();
        let s2 = g.add_node("s2").unwrap();
        let v = g.add_node("v").unwrap();
        let t = g.add_node("t").unwrap();
        g.add_bidirectional_edge(s1, s2, 1.0, 1.0).unwrap();
        g.add_bidirectional_edge(s1, v, 1.0, 1.0).unwrap();
        g.add_bidirectional_edge(s2, v, 1.0, 1.0).unwrap();
        g.add_bidirectional_edge(s2, t, 1.0, 1.0).unwrap();
        g.add_bidirectional_edge(v, t, 1.0, 1.0).unwrap();
        (g, s1, s2, v, t)
    }

    fn fig1_uncertainty(s1: NodeId, s2: NodeId, t: NodeId) -> UncertaintySet {
        let mut upper = coyote_traffic::DemandMatrix::zeros(4);
        upper.set(s1, t, 2.0);
        upper.set(s2, t, 2.0);
        UncertaintySet::from_bounds(coyote_traffic::DemandMatrix::zeros(4), upper)
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let (g, s1, s2, _v, t) = fig1();
        let dags = build_all_dags(&g, DagMode::Augmented).unwrap();
        let map = ParamMap::new(&g, &dags);
        let mut dm = DemandMatrix::zeros(4);
        dm.set(s1, t, 1.5);
        dm.set(s2, t, 0.5);
        let objective = SplittingObjective::new(&g, &dags, &map, vec![(dm, 1.0)], 0.05);
        let theta: Vec<f64> = (0..map.len).map(|i| 0.1 * (i as f64) - 0.3).collect();
        let mut grad = vec![0.0; map.len];
        let f0 = objective.eval_impl(&theta, &mut grad);
        assert!(f0.is_finite());
        let h = 1e-5;
        for i in 0..map.len {
            let mut tp = theta.clone();
            tp[i] += h;
            let mut tm = theta.clone();
            tm[i] -= h;
            let mut scratch = vec![0.0; map.len];
            let fp = objective.eval_impl(&tp, &mut scratch);
            let mut scratch = vec![0.0; map.len];
            let fm = objective.eval_impl(&tm, &mut scratch);
            let fd = (fp - fm) / (2.0 * h);
            assert!(
                (grad[i] - fd).abs() < 1e-4,
                "param {i}: analytic {} vs fd {fd}",
                grad[i]
            );
        }
    }

    #[test]
    fn coyote_beats_ecmp_on_the_running_example() {
        // The paper: traditional ECMP cannot do better than 3/2 on Fig. 1,
        // while COYOTE achieves 4/3 (and its optimization even reaches the
        // golden-ratio optimum ≈ 1.236 within the Fig. 1c DAG).
        let (g, s1, s2, _v, t) = fig1();
        let unc = fig1_uncertainty(s1, s2, t);
        let result = coyote(&g, &unc, None, &CoyoteConfig::fast()).unwrap();
        result.routing.validate(&g).unwrap();

        let coyote_exact =
            performance_ratio_exact(&g, &result.routing, &unc, RoutabilityScope::AllEdges, None)
                .unwrap();
        let ecmp = ecmp_routing(&g).unwrap();
        let ecmp_exact =
            performance_ratio_exact(&g, &ecmp, &unc, RoutabilityScope::AllEdges, None).unwrap();

        assert!(
            coyote_exact.ratio < ecmp_exact.ratio - 0.2,
            "COYOTE {} should clearly beat ECMP {}",
            coyote_exact.ratio,
            ecmp_exact.ratio
        );
        // The golden-ratio optimum for this instance is √5 − 1 ≈ 1.236; allow
        // some slack for the first-order solver.
        assert!(
            coyote_exact.ratio < 1.40,
            "COYOTE ratio {} too far from the analytic optimum 1.236",
            coyote_exact.ratio
        );
    }

    #[test]
    fn optimizer_improves_over_uniform_starting_point() {
        let (g, s1, s2, _v, t) = fig1();
        let unc = fig1_uncertainty(s1, s2, t);
        let dags = build_all_dags(&g, DagMode::Augmented).unwrap();
        let uniform = PdRouting::uniform(&g, dags.clone());
        let working =
            EvaluationSet::build(&g, &dags, &unc, None, &EvaluationOptions::default()).unwrap();
        let uniform_ratio = working.performance_ratio(&g, &uniform);
        let result = optimize_splitting(&g, dags, &unc, None, &CoyoteConfig::fast()).unwrap();
        assert!(
            result.working_set_ratio <= uniform_ratio + 1e-6,
            "optimized {} vs uniform {}",
            result.working_set_ratio,
            uniform_ratio
        );
    }

    #[test]
    fn partial_knowledge_beats_full_obliviousness_on_its_own_box() {
        // Optimizing for the (tight) box around the base matrix should do at
        // least as well on that box as optimizing for "anything goes".
        let (g, s1, s2, _v, t) = fig1();
        let base = DemandMatrix::from_pairs(4, &[(s1, t, 1.0), (s2, t, 1.0)]);
        let margin_box = UncertaintySet::from_margin(&base, 1.5);
        let oblivious = UncertaintySet::oblivious(4);

        let cfg = CoyoteConfig::fast();
        let partial = coyote(&g, &margin_box, Some(&base), &cfg).unwrap();
        let obl = coyote(&g, &oblivious, Some(&base), &cfg).unwrap();

        let dags = build_all_dags(&g, DagMode::Augmented).unwrap();
        let eval = EvaluationSet::build(
            &g,
            &dags,
            &margin_box,
            Some(&base),
            &EvaluationOptions::default(),
        )
        .unwrap();
        let partial_ratio = eval.performance_ratio(&g, &partial.routing);
        let obl_ratio = eval.performance_ratio(&g, &obl.routing);
        assert!(
            partial_ratio <= obl_ratio + 0.1,
            "partial {partial_ratio} should not lose to oblivious {obl_ratio} on the box"
        );
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let (g, ..) = fig1();
        let dags = build_all_dags(&g, DagMode::Augmented).unwrap();
        let unc = UncertaintySet::oblivious(4);
        let err = optimize_splitting(&g, dags[..2].to_vec(), &unc, None, &CoyoteConfig::fast());
        assert!(matches!(err, Err(CoreError::DimensionMismatch(_))));
    }

    #[test]
    fn result_metadata_is_populated() {
        let (g, s1, s2, _v, t) = fig1();
        let unc = fig1_uncertainty(s1, s2, t);
        let result = coyote(&g, &unc, None, &CoyoteConfig::fast()).unwrap();
        assert!(result.rounds >= 1);
        assert!(result.working_set_size >= 1);
        assert!(result.working_set_ratio.is_finite());
    }
}
