//! The local-search DAG-generation heuristic (Appendix A, Algorithm 1).
//!
//! COYOTE's second weight heuristic adapts the oblivious-ECMP weight search
//! of Altin et al. \[12\] and the Fortz–Thorup local search \[6\]:
//!
//! 1. start from inverse-capacity weights;
//! 2. compute the shortest-path DAGs and the worst-case demand matrix for
//!    ECMP on those DAGs; add it to a set `D` of critical matrices;
//! 3. greedily change single link weights while that reduces the worst ECMP
//!    link utilization over `D` (our adaptation optimizes the *maximum*
//!    utilization rather than Fortz–Thorup's Φ-cost, exactly as the paper's
//!    Appendix A points out);
//! 4. stop when the utilization target is met or the iteration budget runs
//!    out.
//!
//! The heuristic returns the final link weights; COYOTE then builds its
//! augmented DAGs from them.

use crate::ecmp::ecmp_routing;
use crate::error::CoreError;
use crate::perf::EvaluationSet;
use crate::worst_case::{bottleneck_candidates, performance_ratio_exact, RoutabilityScope};
use coyote_graph::{EdgeId, Graph};
use coyote_traffic::{DemandMatrix, UncertaintySet};

/// Configuration of the local search.
#[derive(Debug, Clone)]
pub struct LocalSearchConfig {
    /// Outer iterations (worst-case matrix generations).
    pub outer_iterations: usize,
    /// Candidate single-weight moves evaluated per outer iteration.
    pub moves_per_iteration: usize,
    /// Multiplicative weight increments tried for a congested link.
    pub weight_steps: Vec<f64>,
    /// Stop when the worst ECMP utilization over the critical matrices falls
    /// below this bound (the `B` of Algorithm 1), expressed as a performance
    /// ratio.
    pub target_ratio: f64,
    /// How many bottleneck edges the adversarial step probes.
    pub adversary_candidates: usize,
}

impl Default for LocalSearchConfig {
    fn default() -> Self {
        Self {
            outer_iterations: 4,
            moves_per_iteration: 6,
            weight_steps: vec![1.3, 2.0, 4.0],
            target_ratio: 1.05,
            adversary_candidates: 3,
        }
    }
}

/// Result of the local search.
#[derive(Debug, Clone)]
pub struct LocalSearchResult {
    /// The final link weights, indexed by edge.
    pub weights: Vec<f64>,
    /// Worst ECMP performance ratio over the critical-matrix set at the end.
    pub final_ratio: f64,
    /// The critical demand matrices that were generated.
    pub critical_matrices: Vec<DemandMatrix>,
    /// Outer iterations performed.
    pub iterations: usize,
}

/// Runs the local-search weight heuristic. The input graph's weights are the
/// starting point (callers typically set inverse-capacity weights first);
/// the graph itself is not modified.
pub fn local_search_weights(
    graph: &Graph,
    uncertainty: &UncertaintySet,
    config: &LocalSearchConfig,
) -> Result<LocalSearchResult, CoreError> {
    let mut g = graph.clone();
    g.set_inverse_capacity_weights(10.0);

    let mut critical: Vec<DemandMatrix> = Vec::new();
    let mut final_ratio = f64::INFINITY;
    let mut iterations = 0usize;

    for _ in 0..config.outer_iterations {
        iterations += 1;
        // Step 1-2: ECMP DAGs for the current weights + their worst case.
        let ecmp = ecmp_routing(&g)?;
        let reference = uncertainty
            .upper_envelope()
            .unwrap_or_else(|| DemandMatrix::zeros(g.node_count()));
        let candidates = if reference.is_zero() {
            None
        } else {
            Some(bottleneck_candidates(
                &g,
                &ecmp,
                &reference,
                config.adversary_candidates,
            ))
        };
        let wc = performance_ratio_exact(
            &g,
            &ecmp,
            uncertainty,
            RoutabilityScope::AllEdges,
            candidates.as_deref(),
        )?;
        if !wc.demand.is_zero() {
            critical.push(wc.demand.clone());
        }

        // Evaluate the current weights over all critical matrices.
        let ratio = ratio_over(&g, &critical)?;
        final_ratio = ratio;
        if ratio <= config.target_ratio {
            break;
        }

        // Step 3: greedy single-weight moves. The most utilised edge for the
        // newest critical matrix is the natural candidate (Fortz–Thorup try
        // to push traffic away from the most congested link).
        let mut best_ratio = ratio;
        let mut best_move: Option<(EdgeId, f64)> = None;
        let loads = ecmp.edge_loads(&g, &wc.demand);
        let mut hot: Vec<(EdgeId, f64)> = g
            .edges()
            .map(|e| (e, loads[e.index()] / g.capacity(e)))
            .collect();
        hot.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));

        for &(edge, _) in hot.iter().take(config.moves_per_iteration) {
            for &step in &config.weight_steps {
                let mut trial = g.clone();
                let new_weight = trial.weight(edge) * step;
                trial.set_symmetric_weight(edge, new_weight);
                let trial_ratio = ratio_over(&trial, &critical)?;
                if trial_ratio < best_ratio - 1e-9 {
                    best_ratio = trial_ratio;
                    best_move = Some((edge, new_weight));
                }
            }
        }

        match best_move {
            Some((edge, w)) => {
                g.set_symmetric_weight(edge, w);
                final_ratio = best_ratio;
            }
            None => break, // local optimum
        }
    }

    Ok(LocalSearchResult {
        weights: g.edges().map(|e| g.weight(e)).collect(),
        final_ratio,
        critical_matrices: critical,
        iterations,
    })
}

/// Worst ECMP performance ratio (normalized by the DAG-restricted optimum)
/// over a finite set of matrices for the weights configured on `g`.
fn ratio_over(g: &Graph, matrices: &[DemandMatrix]) -> Result<f64, CoreError> {
    if matrices.is_empty() {
        return Ok(0.0);
    }
    let ecmp = ecmp_routing(g)?;
    let dags = crate::dag_builder::build_all_dags(g, crate::dag_builder::DagMode::Augmented)?;
    let mut set = EvaluationSet::empty();
    for dm in matrices {
        set.try_add(g, &dags, dm.clone())?;
    }
    if set.is_empty() {
        return Ok(0.0);
    }
    Ok(set.performance_ratio(g, &ecmp))
}

/// Applies a weight vector (as returned by [`local_search_weights`]) to a
/// copy of the graph.
pub fn apply_weights(graph: &Graph, weights: &[f64]) -> Result<Graph, CoreError> {
    if weights.len() != graph.edge_count() {
        return Err(CoreError::DimensionMismatch(format!(
            "{} weights for {} edges",
            weights.len(),
            graph.edge_count()
        )));
    }
    let mut g = graph.clone();
    for e in graph.edges() {
        g.set_weight(e, weights[e.index()]);
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use coyote_graph::NodeId;

    /// A 5-node network where inverse-capacity weights lead ECMP into a
    /// bottleneck that a single weight change fixes.
    fn skewed() -> Graph {
        let mut g = Graph::new();
        let a = g.add_node("a").unwrap();
        let b = g.add_node("b").unwrap();
        let c = g.add_node("c").unwrap();
        let d = g.add_node("d").unwrap();
        let t = g.add_node("t").unwrap();
        g.add_bidirectional_edge(a, b, 10.0, 1.0).unwrap();
        g.add_bidirectional_edge(b, t, 1.0, 1.0).unwrap();
        g.add_bidirectional_edge(a, c, 10.0, 1.0).unwrap();
        g.add_bidirectional_edge(c, d, 10.0, 1.0).unwrap();
        g.add_bidirectional_edge(d, t, 10.0, 1.0).unwrap();
        g
    }

    #[test]
    fn local_search_returns_weights_for_every_edge() {
        let g = skewed();
        let base = DemandMatrix::from_pairs(5, &[(NodeId(0), NodeId(4), 1.0)]);
        let unc = UncertaintySet::from_margin(&base, 2.0);
        let result = local_search_weights(
            &g,
            &unc,
            &LocalSearchConfig {
                outer_iterations: 2,
                moves_per_iteration: 3,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(result.weights.len(), g.edge_count());
        assert!(result.iterations >= 1);
        assert!(!result.critical_matrices.is_empty());
        assert!(result.final_ratio.is_finite());
    }

    #[test]
    fn local_search_does_not_worsen_the_starting_point() {
        let g = skewed();
        let base = DemandMatrix::from_pairs(5, &[(NodeId(0), NodeId(4), 1.5)]);
        let unc = UncertaintySet::from_margin(&base, 2.0);
        let cfg = LocalSearchConfig {
            outer_iterations: 3,
            ..Default::default()
        };
        let result = local_search_weights(&g, &unc, &cfg).unwrap();

        // Evaluate ECMP with the starting (inverse-capacity) weights and with
        // the searched weights on the final critical set.
        let mut start = g.clone();
        start.set_inverse_capacity_weights(10.0);
        let start_ratio = ratio_over(&start, &result.critical_matrices).unwrap();
        let tuned = apply_weights(&g, &result.weights).unwrap();
        let tuned_ratio = ratio_over(&tuned, &result.critical_matrices).unwrap();
        assert!(
            tuned_ratio <= start_ratio + 1e-6,
            "tuned {tuned_ratio} vs start {start_ratio}"
        );
    }

    #[test]
    fn apply_weights_validates_length() {
        let g = skewed();
        assert!(apply_weights(&g, &[1.0]).is_err());
        let w: Vec<f64> = g.edges().map(|_| 2.0).collect();
        let g2 = apply_weights(&g, &w).unwrap();
        assert!(g2.edges().all(|e| (g2.weight(e) - 2.0).abs() < 1e-12));
    }
}
