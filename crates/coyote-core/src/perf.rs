//! Performance-ratio evaluation and path-stretch measurements.
//!
//! The paper's figures report, for every TE scheme, *how far the worst-case
//! link utilization is from the demands-aware optimum within the same DAGs*
//! over the operator's uncertainty set (Section VI-B), plus the average path
//! stretch relative to OSPF/ECMP (Fig. 11).
//!
//! Evaluating the exact maximum over a box-shaped uncertainty set requires
//! one slave LP per edge ([`crate::worst_case`]), which is exact but
//! expensive when sweeping 14 topologies × 9 margins × 4 schemes. The
//! [`EvaluationSet`] used by the experiment harness therefore evaluates all
//! schemes on the *same* finite family of demand matrices drawn from the
//! uncertainty set — its corner points (every pair at its lower or upper
//! bound), the envelopes, the base matrix, interior samples, and any
//! adversarial witness matrices produced by the optimizers — and normalizes
//! by the LP optimum of each matrix. This lower-bounds the true ratio
//! identically for every scheme, so the comparisons the paper draws are
//! preserved; the exact per-edge LP evaluation remains available for
//! validation and is used in the unit tests.

use crate::error::CoreError;
use crate::opt_mcf::{optu_within_dags_cached, McfWarmCache};
use crate::routing::PdRouting;
use coyote_graph::{Dag, Graph, NodeId};
use coyote_traffic::{DemandMatrix, UncertaintySet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A finite family of demand matrices with precomputed normalization
/// denominators (`OPTU` within a fixed DAG set).
#[derive(Debug, Clone)]
pub struct EvaluationSet {
    /// The matrices to evaluate on.
    matrices: Vec<DemandMatrix>,
    /// `OPTU(D)` within the DAGs, per matrix (strictly positive).
    optima: Vec<f64>,
    /// Basis carried between the normalization LPs: every matrix of the
    /// family is solved over the same graph and DAG set, so each `OPTU`
    /// warm-starts from the previous optimum. Only objectives are consumed
    /// here, which is exactly the warm-start-invariant quantity.
    warm: McfWarmCache,
}

/// Controls how many matrices an [`EvaluationSet`] contains.
#[derive(Debug, Clone)]
pub struct EvaluationOptions {
    /// Number of random corner matrices (each pair independently at its
    /// lower or upper bound).
    pub corners: usize,
    /// Number of uniform interior samples.
    pub samples: usize,
    /// Per-destination "spike" matrices: for each of up to this many
    /// destinations, a matrix with every demand towards that destination at
    /// its upper bound and everything else at its lower bound.
    pub spikes: usize,
    /// RNG seed for corners and samples.
    pub seed: u64,
}

impl Default for EvaluationOptions {
    fn default() -> Self {
        Self {
            corners: 12,
            samples: 6,
            spikes: 8,
            seed: 0xC0707E,
        }
    }
}

impl EvaluationSet {
    /// An empty family; populate it with [`EvaluationSet::try_add`].
    pub fn empty() -> Self {
        Self {
            matrices: Vec::new(),
            optima: Vec::new(),
            warm: McfWarmCache::new(),
        }
    }

    /// Builds the evaluation family for an uncertainty set. `base` (the
    /// matrix the margin was derived from) is included when provided. For
    /// the fully oblivious set, corners fall back to `fallback_upper` per
    /// entry.
    pub fn build(
        graph: &Graph,
        dags: &[Dag],
        uncertainty: &UncertaintySet,
        base: Option<&DemandMatrix>,
        options: &EvaluationOptions,
    ) -> Result<Self, CoreError> {
        let n = graph.node_count();
        let mut rng = StdRng::seed_from_u64(options.seed);
        let mut matrices: Vec<DemandMatrix> = Vec::new();

        if let Some(b) = base {
            matrices.push(b.clone());
        }
        if let Some(up) = uncertainty.upper_envelope() {
            matrices.push(up);
        }
        if let Some(lo) = uncertainty.lower_envelope() {
            if !lo.is_zero() {
                matrices.push(lo);
            }
        }

        let fallback_upper = base.map(|b| b.max_entry()).unwrap_or(1.0).max(1e-6);
        let pairs = uncertainty.active_pairs();

        // Corner matrices.
        for _ in 0..options.corners {
            let mut dm = DemandMatrix::zeros(n);
            for &(s, t) in &pairs {
                let lo = uncertainty.lower(s, t);
                let hi = match uncertainty.upper(s, t) {
                    u if u.is_finite() => u,
                    _ => fallback_upper,
                };
                let v = if rng.gen::<bool>() { hi } else { lo };
                if v > 0.0 {
                    dm.set(s, t, v);
                }
            }
            if !dm.is_zero() {
                matrices.push(dm);
            }
        }

        // Per-destination spikes.
        let mut dests: Vec<NodeId> = pairs.iter().map(|&(_, t)| t).collect();
        dests.sort();
        dests.dedup();
        for &t in dests.iter().take(options.spikes) {
            let mut dm = DemandMatrix::zeros(n);
            for &(s, tt) in &pairs {
                let hi = match uncertainty.upper(s, tt) {
                    u if u.is_finite() => u,
                    _ => fallback_upper,
                };
                let v = if tt == t {
                    hi
                } else {
                    uncertainty.lower(s, tt)
                };
                if v > 0.0 {
                    dm.set(s, tt, v);
                }
            }
            if !dm.is_zero() {
                matrices.push(dm);
            }
        }

        // Interior samples.
        for dm in uncertainty.sample(options.samples, fallback_upper, options.seed ^ 0x5A5A) {
            if !dm.is_zero() {
                matrices.push(dm);
            }
        }

        let mut set = Self::empty();
        for dm in matrices {
            set.try_add(graph, dags, dm)?;
        }
        if set.matrices.is_empty() {
            return Err(CoreError::InvalidRouting(
                "evaluation set is empty (all candidate matrices were zero or unroutable)".into(),
            ));
        }
        Ok(set)
    }

    /// Adds a matrix (e.g. an adversarial witness from constraint
    /// generation) with its normalization; silently skips zero matrices.
    pub fn try_add(
        &mut self,
        graph: &Graph,
        dags: &[Dag],
        dm: DemandMatrix,
    ) -> Result<(), CoreError> {
        if dm.is_zero() {
            return Ok(());
        }
        let opt = optu_within_dags_cached(graph, dags, &dm, &mut self.warm)?;
        if opt <= 1e-12 {
            return Ok(());
        }
        self.matrices.push(dm);
        self.optima.push(opt);
        Ok(())
    }

    /// Number of matrices in the family.
    pub fn len(&self) -> usize {
        self.matrices.len()
    }

    /// True if the family is empty.
    pub fn is_empty(&self) -> bool {
        self.matrices.is_empty()
    }

    /// The matrices and their optima.
    pub fn entries(&self) -> impl Iterator<Item = (&DemandMatrix, f64)> + '_ {
        self.matrices.iter().zip(self.optima.iter().copied())
    }

    /// Performance ratio of a routing over this family:
    /// `max_D MxLU(φ, D) / OPTU(D)`.
    pub fn performance_ratio(&self, graph: &Graph, routing: &PdRouting) -> f64 {
        self.entries()
            .map(|(dm, opt)| routing.max_link_utilization(graph, dm) / opt)
            .fold(0.0, f64::max)
    }

    /// The matrix of the family on which `routing` performs worst.
    pub fn worst_matrix(&self, graph: &Graph, routing: &PdRouting) -> Option<&DemandMatrix> {
        self.entries()
            .map(|(dm, opt)| (dm, routing.max_link_utilization(graph, dm) / opt))
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(dm, _)| dm)
    }
}

/// Average path stretch of `routing` relative to `reference` (typically
/// plain ECMP): the mean over all ordered pairs (weighted equally, as in
/// Fig. 11) of the ratio of expected hop counts. Pairs that are undefined
/// under either routing are skipped.
pub fn average_stretch(graph: &Graph, routing: &PdRouting, reference: &PdRouting) -> Option<f64> {
    let mut sum = 0.0;
    let mut count = 0usize;
    for s in graph.nodes() {
        for t in graph.nodes() {
            if s == t {
                continue;
            }
            let (Some(a), Some(b)) = (
                routing.expected_hops(graph, s, t),
                reference.expected_hops(graph, s, t),
            ) else {
                continue;
            };
            if b <= 0.0 {
                continue;
            }
            sum += a / b;
            count += 1;
        }
    }
    if count == 0 {
        None
    } else {
        Some(sum / count as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag_builder::{build_all_dags, DagMode};
    use crate::ecmp::{ecmp_routing, uniform_augmented_routing};
    use crate::opt_mcf::optu_within_dags;
    use coyote_graph::NodeId;

    fn fig1() -> (Graph, NodeId, NodeId, NodeId, NodeId) {
        let mut g = Graph::new();
        let s1 = g.add_node("s1").unwrap();
        let s2 = g.add_node("s2").unwrap();
        let v = g.add_node("v").unwrap();
        let t = g.add_node("t").unwrap();
        g.add_bidirectional_edge(s1, s2, 1.0, 1.0).unwrap();
        g.add_bidirectional_edge(s1, v, 1.0, 1.0).unwrap();
        g.add_bidirectional_edge(s2, v, 1.0, 1.0).unwrap();
        g.add_bidirectional_edge(s2, t, 1.0, 1.0).unwrap();
        g.add_bidirectional_edge(v, t, 1.0, 1.0).unwrap();
        (g, s1, s2, v, t)
    }

    fn base_dm(s1: NodeId, s2: NodeId, t: NodeId) -> DemandMatrix {
        DemandMatrix::from_pairs(4, &[(s1, t, 1.0), (s2, t, 1.0)])
    }

    #[test]
    fn evaluation_set_contains_base_and_envelopes() {
        let (g, s1, s2, _v, t) = fig1();
        let dags = build_all_dags(&g, DagMode::Augmented).unwrap();
        let base = base_dm(s1, s2, t);
        let unc = UncertaintySet::from_margin(&base, 2.0);
        let set = EvaluationSet::build(
            &g,
            &dags,
            &unc,
            Some(&base),
            &EvaluationOptions {
                corners: 4,
                samples: 2,
                spikes: 2,
                seed: 1,
            },
        )
        .unwrap();
        assert!(set.len() >= 3);
        for (_, opt) in set.entries() {
            assert!(opt > 0.0);
        }
    }

    #[test]
    fn performance_ratio_is_at_least_one_for_any_routing() {
        let (g, s1, s2, _v, t) = fig1();
        let dags = build_all_dags(&g, DagMode::Augmented).unwrap();
        let base = base_dm(s1, s2, t);
        let unc = UncertaintySet::from_margin(&base, 2.0);
        let set = EvaluationSet::build(&g, &dags, &unc, Some(&base), &EvaluationOptions::default())
            .unwrap();
        let ecmp = ecmp_routing(&g).unwrap();
        let aug = uniform_augmented_routing(&g).unwrap();
        assert!(set.performance_ratio(&g, &ecmp) >= 1.0 - 1e-9);
        assert!(set.performance_ratio(&g, &aug) >= 1.0 - 1e-9);
    }

    #[test]
    fn ecmp_is_no_better_than_the_dag_optimum_on_the_worst_matrix() {
        let (g, s1, s2, _v, t) = fig1();
        let dags = build_all_dags(&g, DagMode::Augmented).unwrap();
        let base = base_dm(s1, s2, t);
        let unc = UncertaintySet::from_margin(&base, 3.0);
        let set = EvaluationSet::build(&g, &dags, &unc, Some(&base), &EvaluationOptions::default())
            .unwrap();
        let ecmp = ecmp_routing(&g).unwrap();
        let worst = set.worst_matrix(&g, &ecmp).unwrap();
        let opt = optu_within_dags(&g, &dags, worst).unwrap();
        assert!(ecmp.max_link_utilization(&g, worst) >= opt - 1e-9);
    }

    #[test]
    fn adding_an_adversarial_matrix_can_only_raise_the_ratio() {
        let (g, s1, s2, _v, t) = fig1();
        let dags = build_all_dags(&g, DagMode::Augmented).unwrap();
        let base = base_dm(s1, s2, t);
        let unc = UncertaintySet::from_margin(&base, 2.0);
        let mut set =
            EvaluationSet::build(&g, &dags, &unc, Some(&base), &EvaluationOptions::default())
                .unwrap();
        let ecmp = ecmp_routing(&g).unwrap();
        let before = set.performance_ratio(&g, &ecmp);
        // The single-source matrix that hammers s2's only shortest path.
        let adversarial = DemandMatrix::from_pairs(4, &[(s2, t, 2.0)]);
        set.try_add(&g, &dags, adversarial).unwrap();
        let after = set.performance_ratio(&g, &ecmp);
        assert!(after >= before - 1e-12);
    }

    #[test]
    fn zero_matrices_are_skipped_silently() {
        let (g, s1, s2, _v, t) = fig1();
        let dags = build_all_dags(&g, DagMode::Augmented).unwrap();
        let base = base_dm(s1, s2, t);
        let unc = UncertaintySet::from_margin(&base, 2.0);
        let mut set =
            EvaluationSet::build(&g, &dags, &unc, Some(&base), &EvaluationOptions::default())
                .unwrap();
        let len = set.len();
        set.try_add(&g, &dags, DemandMatrix::zeros(4)).unwrap();
        assert_eq!(set.len(), len);
    }

    #[test]
    fn stretch_of_a_routing_against_itself_is_one() {
        let (g, ..) = fig1();
        let ecmp = ecmp_routing(&g).unwrap();
        let s = average_stretch(&g, &ecmp, &ecmp).unwrap();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn augmented_uniform_routing_has_bounded_stretch() {
        // Uniform splitting over the augmented DAG takes some longer detours
        // but on the 4-node example stays well under 2x.
        let (g, ..) = fig1();
        let ecmp = ecmp_routing(&g).unwrap();
        let aug = uniform_augmented_routing(&g).unwrap();
        let s = average_stretch(&g, &aug, &ecmp).unwrap();
        assert!(s >= 1.0 - 1e-9);
        assert!(s < 2.0, "stretch {s} unexpectedly large");
    }
}
