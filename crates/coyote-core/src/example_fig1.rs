//! The paper's running example (Fig. 1 and Appendices B).
//!
//! A tiny network with two users `s1`, `s2`, a relay `v` and a target `t`,
//! all links of unit capacity, and each user sending between 0 and 2 units.
//! The paper proves:
//!
//! * traditional TE with ECMP cannot guarantee better than a 3/2 oblivious
//!   performance ratio on this network (Section II);
//! * the Fig. 1c COYOTE configuration guarantees 4/3;
//! * the *optimal* splitting ratios within the Fig. 1c DAG are
//!   `φ(s1,s2) = φ(s2,t) = (√5 − 1)/2` (the inverse golden ratio), giving a
//!   worst-case utilization of `√5 − 1 ≈ 1.236` for the extreme demands
//!   (Appendix B).
//!
//! This module exposes the example as reusable constructors so tests,
//! examples and benches can all reproduce those numbers.

use crate::dag_builder::{build_all_dags, DagMode};
use crate::routing::PdRouting;
use coyote_graph::{Graph, NodeId};
use coyote_traffic::{DemandMatrix, UncertaintySet};

/// The inverse golden ratio `(√5 − 1) / 2`, the optimal splitting ratio of
/// Appendix B.
pub const INVERSE_GOLDEN_RATIO: f64 = 0.618_033_988_749_894_9;

/// The optimal worst-case utilization of the running example, `√5 − 1`.
pub const OPTIMAL_WORST_UTILIZATION: f64 = 1.236_067_977_499_789_8;

/// Handles to the named nodes of the running example.
#[derive(Debug, Clone, Copy)]
pub struct Fig1 {
    /// First user.
    pub s1: NodeId,
    /// Second user.
    pub s2: NodeId,
    /// Relay node.
    pub v: NodeId,
    /// Traffic target.
    pub t: NodeId,
}

/// Builds the Fig. 1a topology (unit capacities, unit weights).
pub fn topology() -> (Graph, Fig1) {
    let mut g = Graph::new();
    let s1 = g.add_node("s1").unwrap();
    let s2 = g.add_node("s2").unwrap();
    let v = g.add_node("v").unwrap();
    let t = g.add_node("t").unwrap();
    g.add_bidirectional_edge(s1, s2, 1.0, 1.0).unwrap();
    g.add_bidirectional_edge(s1, v, 1.0, 1.0).unwrap();
    g.add_bidirectional_edge(s2, v, 1.0, 1.0).unwrap();
    g.add_bidirectional_edge(s2, t, 1.0, 1.0).unwrap();
    g.add_bidirectional_edge(v, t, 1.0, 1.0).unwrap();
    (g, Fig1 { s1, s2, v, t })
}

/// The uncertainty set of the example: each user sends between 0 and 2
/// units to `t`, nothing else flows.
pub fn uncertainty(nodes: &Fig1) -> UncertaintySet {
    let mut upper = DemandMatrix::zeros(4);
    upper.set(nodes.s1, nodes.t, 2.0);
    upper.set(nodes.s2, nodes.t, 2.0);
    UncertaintySet::from_bounds(DemandMatrix::zeros(4), upper)
}

/// The two extreme demand matrices `D1 = (2, 0)` and `D2 = (0, 2)` that
/// drive the analysis (the non-dominated vertices of the demand polytope,
/// Appendix B).
pub fn extreme_demands(nodes: &Fig1) -> (DemandMatrix, DemandMatrix) {
    let d1 = DemandMatrix::from_pairs(4, &[(nodes.s1, nodes.t, 2.0)]);
    let d2 = DemandMatrix::from_pairs(4, &[(nodes.s2, nodes.t, 2.0)]);
    (d1, d2)
}

/// The Fig. 1c routing: within the augmented DAG towards `t`, `s1` splits
/// 1/2 – 1/2 and `s2` sends 2/3 directly to `t` and 1/3 via `v`.
pub fn fig1c_routing(graph: &Graph, nodes: &Fig1) -> PdRouting {
    routing_with_splits(graph, nodes, 0.5, 2.0 / 3.0)
}

/// The Appendix-B optimal routing: both `φ(s1, s2)` and `φ(s2, t)` equal the
/// inverse golden ratio.
pub fn golden_routing(graph: &Graph, nodes: &Fig1) -> PdRouting {
    routing_with_splits(graph, nodes, INVERSE_GOLDEN_RATIO, INVERSE_GOLDEN_RATIO)
}

/// A routing over the augmented DAGs where, towards `t`, `s1` sends
/// `phi_s1_s2` of its traffic via `s2` (rest via `v`) and `s2` sends
/// `phi_s2_t` directly to `t` (rest via `v`). All other destinations use
/// uniform splits.
pub fn routing_with_splits(
    graph: &Graph,
    nodes: &Fig1,
    phi_s1_s2: f64,
    phi_s2_t: f64,
) -> PdRouting {
    let dags = build_all_dags(graph, DagMode::Augmented).expect("fig1 DAGs are valid");
    let mut routing = PdRouting::uniform(graph, dags);
    let mut raw = vec![0.0; graph.edge_count()];
    let s1s2 = graph.find_edge(nodes.s1, nodes.s2).unwrap();
    let s1v = graph.find_edge(nodes.s1, nodes.v).unwrap();
    let s2t = graph.find_edge(nodes.s2, nodes.t).unwrap();
    let s2v = graph.find_edge(nodes.s2, nodes.v).unwrap();
    let vt = graph.find_edge(nodes.v, nodes.t).unwrap();
    raw[s1s2.index()] = phi_s1_s2;
    raw[s1v.index()] = 1.0 - phi_s1_s2;
    raw[s2t.index()] = phi_s2_t;
    raw[s2v.index()] = 1.0 - phi_s2_t;
    raw[vt.index()] = 1.0;
    routing.set_ratios(graph, nodes.t, &raw);
    routing
}

/// Worst-case utilization of a Fig. 1 routing over the two extreme demands
/// (both have `OPTU = 1`, so this equals the performance ratio over them).
pub fn worst_utilization_over_extremes(graph: &Graph, nodes: &Fig1, routing: &PdRouting) -> f64 {
    let (d1, d2) = extreme_demands(nodes);
    routing
        .max_link_utilization(graph, &d1)
        .max(routing.max_link_utilization(graph, &d2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worst_case::{performance_ratio_exact, RoutabilityScope};

    #[test]
    fn fig1c_guarantees_four_thirds_over_the_extremes() {
        let (g, nodes) = topology();
        let routing = fig1c_routing(&g, &nodes);
        let worst = worst_utilization_over_extremes(&g, &nodes, &routing);
        assert!((worst - 4.0 / 3.0).abs() < 1e-9, "worst = {worst}");
    }

    #[test]
    fn golden_ratio_splits_achieve_the_appendix_b_optimum() {
        let (g, nodes) = topology();
        let routing = golden_routing(&g, &nodes);
        let worst = worst_utilization_over_extremes(&g, &nodes, &routing);
        assert!(
            (worst - OPTIMAL_WORST_UTILIZATION).abs() < 1e-6,
            "worst = {worst}, expected {OPTIMAL_WORST_UTILIZATION}"
        );
        // And the exact LP adversary over the whole uncertainty set agrees.
        let unc = uncertainty(&nodes);
        let wc =
            performance_ratio_exact(&g, &routing, &unc, RoutabilityScope::AllEdges, None).unwrap();
        assert!(
            (wc.ratio - OPTIMAL_WORST_UTILIZATION).abs() < 1e-4,
            "LP ratio = {}",
            wc.ratio
        );
    }

    #[test]
    fn golden_split_beats_fig1c_and_any_nearby_split() {
        let (g, nodes) = topology();
        let golden = worst_utilization_over_extremes(&g, &nodes, &golden_routing(&g, &nodes));
        let fig1c = worst_utilization_over_extremes(&g, &nodes, &fig1c_routing(&g, &nodes));
        assert!(golden < fig1c);
        // Local optimality probe: perturbing the golden split only hurts.
        for delta in [-0.05, 0.05] {
            let r = routing_with_splits(
                &g,
                &nodes,
                INVERSE_GOLDEN_RATIO + delta,
                INVERSE_GOLDEN_RATIO + delta,
            );
            let w = worst_utilization_over_extremes(&g, &nodes, &r);
            assert!(
                w >= golden - 1e-9,
                "perturbed {w} beat the optimum {golden}"
            );
        }
    }

    #[test]
    fn extreme_demands_have_unit_optimum() {
        let (g, nodes) = topology();
        let (d1, d2) = extreme_demands(&nodes);
        assert!((crate::opt_mcf::optu(&g, &d1).unwrap() - 1.0).abs() < 1e-6);
        assert!((crate::opt_mcf::optu(&g, &d2).unwrap() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn constants_satisfy_the_golden_ratio_equation() {
        // 1 - x - x^2 = 0 at the inverse golden ratio.
        let x = INVERSE_GOLDEN_RATIO;
        assert!((1.0 - x - x * x).abs() < 1e-12);
        assert!((OPTIMAL_WORST_UTILIZATION - 2.0 * x).abs() < 1e-12);
    }
}
