//! COYOTE's DAG construction (Section V-B).
//!
//! Step I builds the shortest-path DAG rooted at every destination for the
//! current OSPF weights (either the *reverse capacities* heuristic or the
//! local-search heuristic of Appendix A, see [`crate::local_search`]).
//!
//! Step II *augments* each DAG: every physical link that is not part of the
//! shortest-path DAG for destination `t` is added, oriented towards the
//! endpoint that is closer to `t` (ties broken by node index, orienting the
//! link from the lower-indexed towards the higher-indexed node, which is the
//! orientation the paper's Fig. 1c uses for the tied `s2—v` link). Because
//! distances never increase along any added edge, and tied edges always go
//! from lower to higher index, the augmented edge set remains acyclic.
//!
//! Since the augmented DAG contains the shortest-path DAG, plain ECMP is a
//! point in COYOTE's search space, so COYOTE can never do worse than ECMP on
//! the demand set it optimizes for (Section V-B).

use coyote_graph::spf::{shortest_path_dag, ShortestPathDag};
use coyote_graph::{Dag, EdgeId, Graph, GraphError, NodeId};

/// Which DAG-construction variant to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DagMode {
    /// Step I only: the plain shortest-path (ECMP) DAGs.
    ShortestPath,
    /// Steps I + II: shortest-path DAGs augmented with every remaining link
    /// oriented towards the destination (COYOTE's default).
    Augmented,
}

/// Builds the per-destination DAG for destination `t` in the requested mode.
pub fn build_dag(graph: &Graph, t: NodeId, mode: DagMode) -> Result<Dag, GraphError> {
    let spf = shortest_path_dag(graph, t);
    match mode {
        DagMode::ShortestPath => Dag::from_shortest_paths(graph, &spf),
        DagMode::Augmented => augment(graph, &spf),
    }
}

/// Builds the per-destination DAGs for *all* destinations.
pub fn build_all_dags(graph: &Graph, mode: DagMode) -> Result<Vec<Dag>, GraphError> {
    graph.nodes().map(|t| build_dag(graph, t, mode)).collect()
}

/// Step II: augment a shortest-path DAG with the remaining links.
pub fn augment(graph: &Graph, spf: &ShortestPathDag) -> Result<Dag, GraphError> {
    let t = spf.destination;
    let dist = &spf.dist_to_dest;
    let mut edges: Vec<EdgeId> = spf.edges();
    let in_spf: std::collections::HashSet<EdgeId> = edges.iter().copied().collect();

    for e in graph.edges() {
        if in_spf.contains(&e) {
            continue;
        }
        let (u, v) = graph.endpoints(e);
        let (du, dv) = (dist[u.index()], dist[v.index()]);
        if !du.is_finite() || !dv.is_finite() {
            // One endpoint cannot reach the destination at all; adding the
            // edge could not help and might create dead ends.
            continue;
        }
        if u == t {
            // Never route traffic *out of* the destination.
            continue;
        }
        let keep = if dv < du {
            true // points towards the closer endpoint
        } else if dv > du {
            false // the reverse direction will be added instead
        } else {
            // Tie: orient from the lower-indexed to the higher-indexed node
            // (matches the paper's Fig. 1c orientation of the s2—v link).
            u.index() < v.index()
        };
        if keep {
            edges.push(e);
        }
    }
    Dag::new(graph, t, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1() -> (Graph, NodeId, NodeId, NodeId, NodeId) {
        let mut g = Graph::new();
        let s1 = g.add_node("s1").unwrap();
        let s2 = g.add_node("s2").unwrap();
        let v = g.add_node("v").unwrap();
        let t = g.add_node("t").unwrap();
        g.add_bidirectional_edge(s1, s2, 1.0, 1.0).unwrap();
        g.add_bidirectional_edge(s1, v, 1.0, 1.0).unwrap();
        g.add_bidirectional_edge(s2, v, 1.0, 1.0).unwrap();
        g.add_bidirectional_edge(s2, t, 1.0, 1.0).unwrap();
        g.add_bidirectional_edge(v, t, 1.0, 1.0).unwrap();
        (g, s1, s2, v, t)
    }

    #[test]
    fn augmented_dag_contains_the_shortest_path_dag() {
        let (g, _, _, _, t) = fig1();
        let spf_dag = build_dag(&g, t, DagMode::ShortestPath).unwrap();
        let aug = build_dag(&g, t, DagMode::Augmented).unwrap();
        for e in spf_dag.edges() {
            assert!(aug.contains(e), "augmented DAG lost shortest-path edge {e}");
        }
        assert!(aug.edge_count() > spf_dag.edge_count());
    }

    #[test]
    fn fig1_augmentation_adds_the_s2_v_link_as_in_the_paper() {
        let (g, _s1, s2, v, t) = fig1();
        let aug = build_dag(&g, t, DagMode::Augmented).unwrap();
        let s2v = g.find_edge(s2, v).unwrap();
        let vs2 = g.find_edge(v, s2).unwrap();
        // Tie on distance (both are 1 hop from t): the paper's Fig. 1c uses
        // the s2 -> v orientation.
        assert!(aug.contains(s2v));
        assert!(!aug.contains(vs2));
    }

    #[test]
    fn augmentation_never_routes_out_of_the_destination() {
        let (g, _, _, _, t) = fig1();
        let aug = build_dag(&g, t, DagMode::Augmented).unwrap();
        assert!(aug.out_edges(t).is_empty());
    }

    #[test]
    fn augmented_dags_are_acyclic_for_every_zoo_style_graph() {
        // A denser random-ish graph exercises the tie-breaking rule.
        let mut g = Graph::with_nodes(8);
        let caps = [1.0, 2.0, 5.0, 1.0, 3.0, 2.0, 1.0, 4.0, 2.0, 1.0, 2.0, 3.0];
        let pairs = [
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 5),
            (5, 6),
            (6, 7),
            (7, 0),
            (0, 4),
            (1, 5),
            (2, 6),
            (3, 7),
        ];
        for (i, &(a, b)) in pairs.iter().enumerate() {
            g.add_bidirectional_edge(NodeId(a), NodeId(b), caps[i], 1.0)
                .unwrap();
        }
        // Dag::new would error on a cycle, so success here is the assertion.
        let dags = build_all_dags(&g, DagMode::Augmented).unwrap();
        assert_eq!(dags.len(), 8);
        for dag in &dags {
            // Every non-destination node must participate and reach t.
            for v in g.nodes() {
                if v != dag.destination() {
                    assert!(!dag.out_edges(v).is_empty());
                }
            }
        }
    }

    #[test]
    fn augmented_dag_uses_every_physical_link_in_some_direction() {
        let (g, _, _, _, t) = fig1();
        let aug = build_dag(&g, t, DagMode::Augmented).unwrap();
        for e in g.edges() {
            let (u, _v) = g.endpoints(e);
            if u == t {
                continue;
            }
            let rev = g.reverse_edge(e).unwrap();
            assert!(
                aug.contains(e) || aug.contains(rev),
                "link {e} unused in both directions"
            );
        }
    }

    #[test]
    fn shortest_path_mode_matches_spf() {
        let (g, s1, _, _, t) = fig1();
        let dag = build_dag(&g, t, DagMode::ShortestPath).unwrap();
        assert_eq!(dag.edge_count(), 4);
        assert_eq!(dag.out_edges(s1).len(), 2);
    }

    #[test]
    fn weighted_graph_augmentation_respects_distances() {
        // Make (s2,t) expensive so s2's shortest path goes via v; the
        // augmented DAG must then orient the direct (s2,t) link towards t
        // anyway (it points at the destination, distance 0 < distance of s2).
        let (mut g, _s1, s2, v, t) = fig1();
        let s2t = g.find_edge(s2, t).unwrap();
        g.set_symmetric_weight(s2t, 10.0);
        let aug = build_dag(&g, t, DagMode::Augmented).unwrap();
        assert!(aug.contains(s2t));
        let spf_dag = build_dag(&g, t, DagMode::ShortestPath).unwrap();
        assert!(!spf_dag.contains(s2t));
        let _ = v;
    }
}
