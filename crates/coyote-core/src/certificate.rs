//! Dual certificates of oblivious performance (Theorem 5, Appendix C).
//!
//! The paper's dualization of the slave LP yields a *certificate*: a routing
//! `φ` has oblivious ratio at most `r` if there exist non-negative edge
//! weights `π_e(h)` such that
//!
//! * **R1** — `Σ_h π_e(h)·c_h ≤ r` for every edge `e`, and
//! * **R2** — for every edge `e = (u,v)`, every pair `s → t` and every path
//!   `a_1 … a_l` from `s` to `t` inside the DAG of `t`:
//!   `f_st(u)·φ_t(u,v) ≤ c_e · Σ_k π_e(a_k)`.
//!
//! Requirement R2 over all (exponentially many) paths is equivalent to a
//! shortest-path condition: with `p_e(s, t)` the length of the shortest
//! `s → t` path under the weights `π_e(·)`, it suffices that
//! `f_st(u)·φ_t(u,v)/c_e ≤ p_e(s, t)`.
//!
//! This module computes, for a fixed routing and a single edge, the smallest
//! certified bound `r_e = Σ_h π_e(h)·c_h` by linear programming, and
//! verifies certificates. The maximum of `r_e` over the edges is a
//! *certified upper bound* on the oblivious ratio — the dual counterpart of
//! the primal witness matrices produced by [`crate::worst_case`]; by LP
//! duality the two coincide, which the tests check on the running example.

use crate::error::CoreError;
use crate::routing::PdRouting;
use crate::worst_case::FractionTable;
use coyote_graph::{EdgeId, Graph, NodeId};
use coyote_lp::{LpProblem, Relation, Sense, VarId};

/// A dual certificate for one edge: weights `π_e(h)` over all edges `h`.
#[derive(Debug, Clone)]
pub struct EdgeCertificate {
    /// The edge whose utilization this certificate bounds.
    pub edge: EdgeId,
    /// The weights `π_e(h)`, indexed by edge id.
    pub weights: Vec<f64>,
    /// The certified bound `Σ_h π_e(h) · c_h` (requirement R1's left side).
    pub bound: f64,
}

/// A full certificate: one [`EdgeCertificate`] per edge that can carry
/// traffic, plus the overall certified oblivious ratio.
#[derive(Debug, Clone)]
pub struct ObliviousCertificate {
    /// Per-edge certificates.
    pub edges: Vec<EdgeCertificate>,
    /// The certified oblivious performance ratio (max of the edge bounds).
    pub ratio: f64,
}

/// Computes the best (smallest-bound) certificate for a single edge of the
/// given routing, over the *unconstrained* demand set (the oblivious case of
/// Theorem 5). Returns `None` if the edge never carries traffic.
pub fn certify_edge(
    graph: &Graph,
    routing: &PdRouting,
    fractions: &FractionTable,
    edge: EdgeId,
) -> Result<Option<EdgeCertificate>, CoreError> {
    let n = graph.node_count();
    let (u_e, _) = graph.endpoints(edge);
    let cap_e = graph.capacity(edge);

    // Load coefficients per pair: l_st = f_st(u_e) · φ_t(e) / c_e.
    let mut loads: Vec<(NodeId, NodeId, f64)> = Vec::new();
    for t in graph.nodes() {
        let phi = routing.ratio(t, edge);
        if phi <= 0.0 {
            continue;
        }
        for s in graph.nodes() {
            if s == t {
                continue;
            }
            let l = fractions.fraction(s, t, u_e) * phi / cap_e;
            if l > 1e-12 {
                loads.push((s, t, l));
            }
        }
    }
    if loads.is_empty() {
        return Ok(None);
    }

    // LP over π_e(h) >= 0 and shortest-path potentials p_e(i, j) for the
    // pairs we need. Minimizing Σ_h π_e(h)·c_h subject to
    //   p_e(s, t) >= l_st                     (R2, shortest-path form)
    //   p_e(j, t) <= p_e(k, t) + π_e(a)        for every DAG edge a=(j,k)
    //   p_e(t, t) == 0
    // where the triangle inequalities define p as a lower bound on the true
    // shortest path, which is exactly what R2 needs.
    let mut lp = LpProblem::new(Sense::Minimize);
    let pi: Vec<VarId> = graph
        .edges()
        .map(|h| lp.add_nonneg_var(format!("pi_{}", h.index()), graph.capacity(h)))
        .collect();

    // Potentials per (node, destination) actually referenced.
    let mut dests: Vec<NodeId> = loads.iter().map(|&(_, t, _)| t).collect();
    dests.sort();
    dests.dedup();
    let mut potential = vec![vec![None; n]; n];
    for &t in &dests {
        for v in graph.nodes() {
            let var = lp.add_nonneg_var(format!("p_{}_{}", v.index(), t.index()), 0.0);
            potential[v.index()][t.index()] = Some(var);
        }
    }

    // p(t, t) == 0.
    for &t in &dests {
        let var = potential[t.index()][t.index()].expect("created above");
        lp.add_constraint(
            format!("root_{}", t.index()),
            &[(var, 1.0)],
            Relation::Eq,
            0.0,
        );
    }

    // Triangle inequalities over *all* edges: the adversary certifying that
    // its demand matrix is routable may use any path, so the potentials must
    // lower-bound the π-shortest path in the full graph:
    // p(j, t) - p(k, t) - π(a) <= 0 for every edge a = (j, k).
    for &t in &dests {
        for a in graph.edges() {
            let (j, k) = graph.endpoints(a);
            let pj = potential[j.index()][t.index()].expect("created");
            let pk = potential[k.index()][t.index()].expect("created");
            lp.add_constraint(
                format!("tri_{}_{}", a.index(), t.index()),
                &[(pj, 1.0), (pk, -1.0), (pi[a.index()], -1.0)],
                Relation::Le,
                0.0,
            );
        }
    }

    // R2: p(s, t) >= l_st.
    for &(s, t, l) in &loads {
        let ps = potential[s.index()][t.index()].expect("created");
        lp.add_constraint(
            format!("cover_{}_{}", s.index(), t.index()),
            &[(ps, 1.0)],
            Relation::Ge,
            l,
        );
    }

    let sol = lp.solve().map_err(CoreError::Lp)?;
    let weights: Vec<f64> = pi.iter().map(|&v| sol.value(v).max(0.0)).collect();
    let bound: f64 = weights
        .iter()
        .zip(graph.edges())
        .map(|(&w, h)| w * graph.capacity(h))
        .sum();
    Ok(Some(EdgeCertificate {
        edge,
        weights,
        bound,
    }))
}

/// Computes a certificate for every traffic-carrying edge and the certified
/// oblivious ratio of the routing.
pub fn certify_routing(
    graph: &Graph,
    routing: &PdRouting,
) -> Result<ObliviousCertificate, CoreError> {
    let fractions = FractionTable::new(graph, routing);
    let mut edges = Vec::new();
    let mut ratio = 0.0_f64;
    for e in graph.edges() {
        if let Some(cert) = certify_edge(graph, routing, &fractions, e)? {
            ratio = ratio.max(cert.bound);
            edges.push(cert);
        }
    }
    if edges.is_empty() {
        return Err(CoreError::InvalidRouting(
            "routing carries no traffic on any edge".into(),
        ));
    }
    Ok(ObliviousCertificate { edges, ratio })
}

/// Verifies requirement R1/R2 of Theorem 5 for a given certificate and
/// returns the certified bound it actually proves for its edge (the maximum
/// of the R1 left-hand side and the smallest scaling that makes R2 hold).
/// Used in tests and by operators who want to double-check a configuration
/// produced elsewhere.
pub fn verify_certificate(
    graph: &Graph,
    routing: &PdRouting,
    fractions: &FractionTable,
    certificate: &EdgeCertificate,
) -> f64 {
    let (u_e, _) = graph.endpoints(certificate.edge);
    let cap_e = graph.capacity(certificate.edge);

    // R1 value.
    let r1: f64 = certificate
        .weights
        .iter()
        .zip(graph.edges())
        .map(|(&w, h)| w * graph.capacity(h))
        .sum();

    // R2: for every pair, the load coefficient must be covered by the
    // π-shortest-path distance in the full graph; compute the worst
    // violation factor.
    let mut needed = 0.0_f64;
    for t in graph.nodes() {
        let phi = routing.ratio(t, certificate.edge);
        if phi <= 0.0 {
            continue;
        }
        // π-shortest distances to t over all edges (Bellman-Ford style
        // relaxation; the graphs are small and π is non-negative).
        let nn = graph.node_count();
        let mut dist = vec![f64::INFINITY; nn];
        dist[t.index()] = 0.0;
        for _ in 0..nn {
            let mut changed = false;
            for a in graph.edges() {
                let (j, k) = graph.endpoints(a);
                let through = certificate.weights[a.index()] + dist[k.index()];
                if through + 1e-15 < dist[j.index()] {
                    dist[j.index()] = through;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        for s in graph.nodes() {
            if s == t {
                continue;
            }
            let l = fractions.fraction(s, t, u_e) * phi / cap_e;
            if l <= 1e-12 {
                continue;
            }
            if dist[s.index()] <= 0.0 {
                return f64::INFINITY;
            }
            needed = needed.max(l / dist[s.index()]);
        }
    }
    // If R2 needs the weights scaled up by `needed`, the certified bound is
    // r1 * needed (scaling π scales both sides linearly).
    r1 * needed.max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ecmp::ecmp_routing;
    use crate::example_fig1;
    use crate::worst_case::{performance_ratio_exact, RoutabilityScope};
    use coyote_traffic::UncertaintySet;

    #[test]
    fn certificate_matches_the_primal_worst_case_on_fig1_ecmp() {
        let (graph, nodes) = example_fig1::topology();
        let routing = ecmp_routing(&graph).unwrap();
        let cert = certify_routing(&graph, &routing).unwrap();

        // Primal adversary restricted to the same (unconstrained) demand set.
        let unc = UncertaintySet::oblivious(graph.node_count());
        let primal =
            performance_ratio_exact(&graph, &routing, &unc, RoutabilityScope::AllEdges, None)
                .unwrap();
        // Weak duality: the certificate bounds the primal from above; strong
        // duality (both are LPs) makes them equal up to solver tolerance.
        assert!(cert.ratio >= primal.ratio - 1e-4);
        assert!(
            (cert.ratio - primal.ratio).abs() < 0.05,
            "dual {} vs primal {}",
            cert.ratio,
            primal.ratio
        );
        let _ = nodes;
    }

    #[test]
    fn golden_routing_certificate_matches_its_exact_oblivious_ratio() {
        let (graph, nodes) = example_fig1::topology();
        let routing = example_fig1::golden_routing(&graph, &nodes);
        let cert = certify_routing(&graph, &routing).unwrap();
        // The certificate bounds the oblivious ratio over *all* demand
        // matrices (every source-destination pair), which is larger than the
        // two-user analytic value 1.236 but must agree with the primal
        // adversary computed over the same unconstrained set.
        let unc = UncertaintySet::oblivious(graph.node_count());
        let primal =
            performance_ratio_exact(&graph, &routing, &unc, RoutabilityScope::AllEdges, None)
                .unwrap();
        assert!(cert.ratio >= primal.ratio - 1e-4);
        assert!(
            (cert.ratio - primal.ratio).abs() < 0.1,
            "dual {} vs primal {}",
            cert.ratio,
            primal.ratio
        );
        assert!(cert.ratio >= example_fig1::OPTIMAL_WORST_UTILIZATION - 1e-3);
    }

    #[test]
    fn verify_certificate_confirms_lp_output() {
        let (graph, _nodes) = example_fig1::topology();
        let routing = ecmp_routing(&graph).unwrap();
        let fractions = FractionTable::new(&graph, &routing);
        for e in graph.edges() {
            if let Some(cert) = certify_edge(&graph, &routing, &fractions, e).unwrap() {
                let verified = verify_certificate(&graph, &routing, &fractions, &cert);
                // The verified bound never beats the LP's own bound by more
                // than numerical slack, and is never wildly worse.
                assert!(verified >= cert.bound - 1e-6);
                assert!(verified <= cert.bound * 1.01 + 1e-6);
            }
        }
    }

    #[test]
    fn edges_without_traffic_have_no_certificate() {
        let (graph, nodes) = example_fig1::topology();
        let routing = ecmp_routing(&graph).unwrap();
        let fractions = FractionTable::new(&graph, &routing);
        let ts2 = graph.find_edge(nodes.t, nodes.s2).unwrap();
        // No destination routes through t -> s2 under ECMP towards t... but
        // other destinations (s1, s2, v) do use edges out of t, so pick the
        // reverse of a leaf edge that genuinely carries nothing: none exists
        // in this small graph for all destinations, so instead check that
        // every returned certificate has a positive bound.
        if let Some(cert) = certify_edge(&graph, &routing, &fractions, ts2).unwrap() {
            assert!(cert.bound > 0.0);
        }
    }
}
