//! Traditional TE with ECMP: the baseline COYOTE is compared against.
//!
//! OSPF computes shortest paths for the configured link weights; ECMP splits
//! traffic *equally* among the next hops that lie on shortest paths
//! (Section II). In this reproduction an ECMP configuration is simply a
//! [`PdRouting`] whose DAGs are the shortest-path DAGs and whose splitting
//! ratios are uniform — which is exactly what [`PdRouting::uniform`]
//! produces.

use crate::dag_builder::{build_all_dags, DagMode};
use crate::routing::PdRouting;
use coyote_graph::{Graph, GraphError};

/// Builds the ECMP routing induced by the link weights currently configured
/// on `graph`.
pub fn ecmp_routing(graph: &Graph) -> Result<PdRouting, GraphError> {
    let dags = build_all_dags(graph, DagMode::ShortestPath)?;
    Ok(PdRouting::uniform(graph, dags))
}

/// Builds the ECMP routing for the *reverse capacities* weight heuristic
/// (Cisco's default: weight ∝ 1 / capacity), leaving the input graph
/// untouched.
pub fn ecmp_routing_inverse_capacity(graph: &Graph) -> Result<PdRouting, GraphError> {
    let mut g = graph.clone();
    g.set_inverse_capacity_weights(10.0);
    ecmp_routing(&g)
}

/// Uniform splitting over the *augmented* DAGs. This is COYOTE's starting
/// point before the splitting ratios are optimized, and the ablation
/// baseline that isolates the value of DAG augmentation alone.
pub fn uniform_augmented_routing(graph: &Graph) -> Result<PdRouting, GraphError> {
    let dags = build_all_dags(graph, DagMode::Augmented)?;
    Ok(PdRouting::uniform(graph, dags))
}

#[cfg(test)]
mod tests {
    use super::*;
    use coyote_graph::NodeId;
    use coyote_traffic::DemandMatrix;

    fn square() -> Graph {
        // A 4-node square with one heavy diagonal-ish capacity difference.
        let mut g = Graph::new();
        let a = g.add_node("a").unwrap();
        let b = g.add_node("b").unwrap();
        let c = g.add_node("c").unwrap();
        let d = g.add_node("d").unwrap();
        g.add_bidirectional_edge(a, b, 10.0, 1.0).unwrap();
        g.add_bidirectional_edge(b, d, 10.0, 1.0).unwrap();
        g.add_bidirectional_edge(a, c, 1.0, 1.0).unwrap();
        g.add_bidirectional_edge(c, d, 1.0, 1.0).unwrap();
        g
    }

    #[test]
    fn ecmp_splits_equally_on_equal_cost_paths() {
        let g = square();
        let routing = ecmp_routing(&g).unwrap();
        routing.validate(&g).unwrap();
        let d = NodeId(3);
        let a = NodeId(0);
        // With unit weights both 2-hop paths a-b-d and a-c-d are shortest.
        let out = routing.dag(d).out_edges(a);
        assert_eq!(out.len(), 2);
        for &e in out {
            assert!((routing.ratio(d, e) - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn inverse_capacity_weights_steer_away_from_thin_links() {
        let g = square();
        let routing = ecmp_routing_inverse_capacity(&g).unwrap();
        let d = NodeId(3);
        let a = NodeId(0);
        // The a-b-d path (capacity 10) is now strictly shorter than a-c-d.
        let out = routing.dag(d).out_edges(a);
        assert_eq!(out.len(), 1);
        assert_eq!(g.edge(out[0]).dst, NodeId(1));
        // Original graph weights must be untouched.
        assert!((g.weight(g.find_edge(a, NodeId(1)).unwrap()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_augmented_routing_uses_more_links_than_ecmp() {
        let g = square();
        let ecmp = ecmp_routing(&g).unwrap();
        let aug = uniform_augmented_routing(&g).unwrap();
        let d = NodeId(3);
        assert!(aug.dag(d).edge_count() >= ecmp.dag(d).edge_count());
        aug.validate(&g).unwrap();
    }

    #[test]
    fn ecmp_utilization_on_a_simple_demand() {
        let g = square();
        let routing = ecmp_routing(&g).unwrap();
        let mut dm = DemandMatrix::zeros(4);
        dm.set(NodeId(0), NodeId(3), 2.0);
        // Equal split over the two 2-hop paths: 1 unit each; thin path c-d
        // (capacity 1) is fully utilised.
        let mlu = routing.max_link_utilization(&g, &dm);
        assert!((mlu - 1.0).abs() < 1e-9);
    }
}
