//! Adversarial ("worst-case") demand matrices for a fixed routing.
//!
//! This is the reproduction of the paper's *slave LP* (Appendix C): given a
//! routing `φ` and an edge `e`, find the demand matrix that maximizes the
//! utilization of `e` among all matrices that (a) can be routed within the
//! link capacities — i.e. `OPTU(D) ≤ 1`, which by the scaling-invariance
//! argument of Section IV-A is exactly what makes the edge utilization equal
//! to the performance ratio contributed by `e` — and (b) optionally lie in a
//! scaled uncertainty box `λ·d^min ≤ d ≤ λ·d^max` (constraint (8) of the
//! paper).
//!
//! Taking the maximum over all edges yields the exact performance ratio of
//! the routing over the demand set (the *oblivious performance ratio* when
//! the set is unconstrained), together with a witness matrix. The witness
//! matrices drive COYOTE's constraint-generation loop
//! ([`crate::oblivious`]) and the local-search DAG heuristic
//! ([`crate::local_search`]).

use crate::error::CoreError;
use crate::routing::PdRouting;
use coyote_graph::{Dag, EdgeId, Graph, NodeId};
use coyote_lp::{LpProblem, PhaseOneCache, Relation, Sense, VarId};
use coyote_traffic::{DemandMatrix, UncertaintySet};

/// Which edges the *adversary's certifying flow* may use when proving that
/// its demand matrix is routable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutabilityScope {
    /// The adversary may route over any edge (`OPTU(D) ≤ 1` in the
    /// unrestricted sense) — the convention of the paper's oblivious ratio.
    AllEdges,
    /// The adversary must route inside the same per-destination DAGs as the
    /// routing under evaluation — the "demands-aware optimum within the same
    /// DAGs" normalization used by the evaluation section.
    WithinDags,
}

/// Precomputed `f_st(v)` table for a routing: `fractions[t][s][v]` is the
/// fraction of the `s → t` demand entering `v`.
#[derive(Debug, Clone)]
pub struct FractionTable {
    fractions: Vec<Vec<Vec<f64>>>,
}

impl FractionTable {
    /// Builds the table for every ordered pair (O(|V|² · |E|)).
    pub fn new(graph: &Graph, routing: &PdRouting) -> Self {
        let n = graph.node_count();
        let mut fractions = vec![vec![Vec::new(); n]; n];
        for t in graph.nodes() {
            for s in graph.nodes() {
                if s == t {
                    continue;
                }
                fractions[t.index()][s.index()] = routing.source_fractions(graph, s, t);
            }
        }
        Self { fractions }
    }

    /// `f_st(v)`.
    #[inline]
    pub fn fraction(&self, s: NodeId, t: NodeId, v: NodeId) -> f64 {
        if s == t {
            return 0.0;
        }
        self.fractions[t.index()][s.index()]
            .get(v.index())
            .copied()
            .unwrap_or(0.0)
    }
}

/// Result of a worst-case search.
#[derive(Debug, Clone)]
pub struct WorstCase {
    /// The adversarial demand matrix (already scaled so that it is routable
    /// within the capacities, i.e. `OPTU(D) ≤ 1`).
    pub demand: DemandMatrix,
    /// The performance ratio it certifies (utilization of the worst edge
    /// divided by the — by construction ≤ 1 — optimal utilization).
    pub ratio: f64,
    /// The edge whose utilization attains the ratio.
    pub edge: EdgeId,
}

/// The slave LP with its constraint system built once per
/// (routing, uncertainty, scope): only the objective changes from edge to
/// edge, so successive [`SlaveLp::solve_edge`] calls replay the cached
/// phase-one basis ([`PhaseOneCache`]) and skip straight to phase two —
/// with results bit-identical to building and solving from scratch.
pub struct SlaveLp<'a> {
    graph: &'a Graph,
    routing: &'a PdRouting,
    fractions: &'a FractionTable,
    lp: LpProblem,
    d_var: Vec<Vec<Option<VarId>>>,
    pairs: Vec<(NodeId, NodeId)>,
    cache: PhaseOneCache,
}

impl<'a> SlaveLp<'a> {
    /// Builds the constraint system (certifying-flow conservation,
    /// capacities, scaled box bounds) with an all-zero objective.
    pub fn new(
        graph: &'a Graph,
        routing: &'a PdRouting,
        fractions: &'a FractionTable,
        uncertainty: &UncertaintySet,
        scope: RoutabilityScope,
    ) -> Result<Self, CoreError> {
        let n = graph.node_count();
        if uncertainty.node_count() != n {
            return Err(CoreError::DimensionMismatch(format!(
                "uncertainty set has {} nodes, graph has {n}",
                uncertainty.node_count()
            )));
        }
        let pairs = uncertainty.active_pairs();

        let mut lp = LpProblem::new(Sense::Maximize);

        // Demand variables (objective filled in per edge).
        let mut d_var: Vec<Vec<Option<VarId>>> = vec![vec![None; n]; n];
        for &(s, t) in &pairs {
            let v = lp.add_nonneg_var(format!("d_{}_{}", s.index(), t.index()), 0.0);
            d_var[s.index()][t.index()] = Some(v);
        }

        // Scaling variable for box uncertainty: demands must lie in λ·[lo, hi].
        let lambda = if uncertainty.is_oblivious() {
            None
        } else {
            Some(lp.add_nonneg_var("lambda", 0.0))
        };

        // Certifying flow variables g_t(e) for every destination that can
        // receive traffic.
        let mut destinations: Vec<NodeId> = pairs.iter().map(|&(_, t)| t).collect();
        destinations.sort();
        destinations.dedup();
        let mut flow_var: Vec<Vec<Option<VarId>>> = vec![vec![None; graph.edge_count()]; n];
        for &t in &destinations {
            let allowed: Vec<EdgeId> = match scope {
                RoutabilityScope::AllEdges => graph.edges().collect(),
                RoutabilityScope::WithinDags => routing.dag(t).edges(),
            };
            for e in allowed {
                let v = lp.add_nonneg_var(format!("g_{}_{}", t.index(), e.index()), 0.0);
                flow_var[t.index()][e.index()] = Some(v);
            }
        }

        // Flow conservation for the certifying flow: out - in = d_vt.
        for &t in &destinations {
            for v in graph.nodes() {
                if v == t {
                    continue;
                }
                let mut terms: Vec<(VarId, f64)> = Vec::new();
                for &e in graph.out_edges(v) {
                    if let Some(var) = flow_var[t.index()][e.index()] {
                        terms.push((var, 1.0));
                    }
                }
                for &e in graph.in_edges(v) {
                    if let Some(var) = flow_var[t.index()][e.index()] {
                        terms.push((var, -1.0));
                    }
                }
                let d = d_var[v.index()][t.index()];
                match (terms.is_empty(), d) {
                    (true, None) => continue,
                    (true, Some(dv)) => {
                        // No way to route anything out of v towards t: pin the
                        // demand to zero.
                        lp.add_constraint(
                            format!("pin_{}_{}", v.index(), t.index()),
                            &[(dv, 1.0)],
                            Relation::Eq,
                            0.0,
                        );
                    }
                    (false, None) => {
                        lp.add_constraint(
                            format!("cons_{}_{}", t.index(), v.index()),
                            &terms,
                            Relation::Eq,
                            0.0,
                        );
                    }
                    (false, Some(dv)) => {
                        terms.push((dv, -1.0));
                        lp.add_constraint(
                            format!("cons_{}_{}", t.index(), v.index()),
                            &terms,
                            Relation::Eq,
                            0.0,
                        );
                    }
                }
            }
        }

        // Capacity constraints on the certifying flow: OPTU(D) <= 1.
        for e in graph.edges() {
            let mut terms: Vec<(VarId, f64)> = Vec::new();
            for &t in &destinations {
                if let Some(var) = flow_var[t.index()][e.index()] {
                    terms.push((var, 1.0));
                }
            }
            if terms.is_empty() {
                continue;
            }
            lp.add_constraint(
                format!("cap_{}", e.index()),
                &terms,
                Relation::Le,
                graph.capacity(e),
            );
        }

        // Box constraints (scaled by λ).
        if let Some(lambda) = lambda {
            for &(s, t) in &pairs {
                let Some(dv) = d_var[s.index()][t.index()] else {
                    continue;
                };
                let lo = uncertainty.lower(s, t);
                let hi = uncertainty.upper(s, t);
                // d <= λ·hi
                if hi.is_finite() {
                    lp.add_constraint(
                        format!("ub_{}_{}", s.index(), t.index()),
                        &[(dv, 1.0), (lambda, -hi)],
                        Relation::Le,
                        0.0,
                    );
                }
                // d >= λ·lo
                if lo > 0.0 {
                    lp.add_constraint(
                        format!("lb_{}_{}", s.index(), t.index()),
                        &[(dv, 1.0), (lambda, -lo)],
                        Relation::Ge,
                        0.0,
                    );
                }
            }
        }

        Ok(Self {
            graph,
            routing,
            fractions,
            lp,
            d_var,
            pairs,
            cache: PhaseOneCache::new(),
        })
    }

    /// Finds the demand matrix maximizing the utilization of `edge`, or
    /// `None` when the edge can never carry traffic under this routing (all
    /// of its splitting ratios are zero).
    pub fn solve_edge(&mut self, edge: EdgeId) -> Result<Option<(DemandMatrix, f64)>, CoreError> {
        coyote_obs::counter("core.worst_case.lp_solves", 1);
        let (u_e, _v_e) = self.graph.endpoints(edge);
        let cap_e = self.graph.capacity(edge);

        // Objective coefficient of each pair: f_st(u_e) · φ_t(e) / c_e.
        let mut any_positive = false;
        for &(s, t) in &self.pairs {
            let dv = self.d_var[s.index()][t.index()].expect("pair variable exists");
            let phi = self.routing.ratio(t, edge);
            let c = if phi <= 0.0 {
                0.0
            } else {
                self.fractions.fraction(s, t, u_e) * phi / cap_e
            };
            if c > 0.0 {
                any_positive = true;
            }
            self.lp.set_objective(dv, c);
        }
        if !any_positive {
            return Ok(None);
        }

        // The constraint system never changes between edges, so the cached
        // phase-one basis is replayed; results are bit-identical to a cold
        // solve of the same problem.
        let sol = self
            .lp
            .solve_cached(&mut self.cache)
            .map_err(CoreError::Lp)?;

        let mut dm = DemandMatrix::zeros(self.graph.node_count());
        for (s, row) in self.d_var.iter().enumerate() {
            for (t, entry) in row.iter().enumerate() {
                if let Some(var) = *entry {
                    let v = sol.value(var);
                    if v > 1e-9 {
                        dm.set(NodeId(s), NodeId(t), v);
                    }
                }
            }
        }
        Ok(Some((dm, sol.objective.max(0.0))))
    }
}

/// Finds the demand matrix maximizing the utilization of `edge` under the
/// fixed `routing`, over all matrices in `uncertainty` (scaled) that can be
/// routed within the capacities by a flow restricted to `scope`.
///
/// Returns `None` when the edge can never carry traffic under this routing
/// (all its splitting ratios are zero). One-shot wrapper around [`SlaveLp`];
/// loops should build a [`SlaveLp`] once and call
/// [`SlaveLp::solve_edge`] per edge to benefit from warm starts.
pub fn worst_case_for_edge(
    graph: &Graph,
    routing: &PdRouting,
    fractions: &FractionTable,
    edge: EdgeId,
    uncertainty: &UncertaintySet,
    scope: RoutabilityScope,
) -> Result<Option<(DemandMatrix, f64)>, CoreError> {
    SlaveLp::new(graph, routing, fractions, uncertainty, scope)?.solve_edge(edge)
}

/// Exact performance ratio of `routing` over `uncertainty`: the maximum over
/// all edges of the per-edge worst case. Also returns the witness demand
/// matrix and edge. `candidate_edges` restricts the search (e.g. to the few
/// most-utilized edges during constraint generation); `None` checks every
/// edge.
pub fn performance_ratio_exact(
    graph: &Graph,
    routing: &PdRouting,
    uncertainty: &UncertaintySet,
    scope: RoutabilityScope,
    candidate_edges: Option<&[EdgeId]>,
) -> Result<WorstCase, CoreError> {
    let _span = coyote_obs::span("core.worst_case");
    coyote_obs::counter("core.worst_case.scans", 1);
    let fractions = FractionTable::new(graph, routing);
    let all_edges: Vec<EdgeId> = graph.edges().collect();
    let edges = candidate_edges.unwrap_or(&all_edges);
    // One constraint system for the whole edge scan: every solve after the
    // first replays the cached phase-one basis.
    let mut slave = SlaveLp::new(graph, routing, &fractions, uncertainty, scope)?;
    let mut best: Option<WorstCase> = None;
    for &e in edges {
        if let Some((dm, ratio)) = slave.solve_edge(e)? {
            if best.as_ref().is_none_or(|b| ratio > b.ratio) {
                best = Some(WorstCase {
                    demand: dm,
                    ratio,
                    edge: e,
                });
            }
        }
    }
    best.ok_or_else(|| CoreError::InvalidRouting("routing carries no traffic on any edge".into()))
}

/// The edges most likely to be the bottleneck for `routing`: edges sorted by
/// their utilization under the envelope (or the provided reference) demand
/// matrix, highest first. Used to prioritize slave-LP calls during
/// constraint generation.
pub fn bottleneck_candidates(
    graph: &Graph,
    routing: &PdRouting,
    reference: &DemandMatrix,
    count: usize,
) -> Vec<EdgeId> {
    let loads = routing.edge_loads(graph, reference);
    let mut utils: Vec<(EdgeId, f64)> = graph
        .edges()
        .map(|e| (e, loads[e.index()] / graph.capacity(e)))
        .collect();
    utils.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    utils.into_iter().take(count).map(|(e, _)| e).collect()
}

/// The DAG set used by a routing, needed by callers that mix evaluation and
/// optimization helpers.
pub fn dags_of(routing: &PdRouting) -> &[Dag] {
    routing.dags()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag_builder::{build_all_dags, DagMode};
    use crate::ecmp::ecmp_routing;
    use crate::routing::PdRouting;

    fn fig1() -> (Graph, NodeId, NodeId, NodeId, NodeId) {
        let mut g = Graph::new();
        let s1 = g.add_node("s1").unwrap();
        let s2 = g.add_node("s2").unwrap();
        let v = g.add_node("v").unwrap();
        let t = g.add_node("t").unwrap();
        g.add_bidirectional_edge(s1, s2, 1.0, 1.0).unwrap();
        g.add_bidirectional_edge(s1, v, 1.0, 1.0).unwrap();
        g.add_bidirectional_edge(s2, v, 1.0, 1.0).unwrap();
        g.add_bidirectional_edge(s2, t, 1.0, 1.0).unwrap();
        g.add_bidirectional_edge(v, t, 1.0, 1.0).unwrap();
        (g, s1, s2, v, t)
    }

    /// Restricts the uncertainty set to the two users of the running example
    /// (everything else pinned to zero), each able to send up to 2 units.
    fn fig1_uncertainty(s1: NodeId, s2: NodeId, t: NodeId) -> UncertaintySet {
        let mut lower = DemandMatrix::zeros(4);
        let mut upper = DemandMatrix::zeros(4);
        let _ = &mut lower;
        upper.set(s1, t, 2.0);
        upper.set(s2, t, 2.0);
        UncertaintySet::from_bounds(lower, upper)
    }

    #[test]
    fn ecmp_on_fig1_has_oblivious_ratio_two_with_unit_weights() {
        // With unit weights s2 has a single shortest path; the demand
        // (0, 2) then loads (s2,t) at 2 while the optimum is 1.
        let (g, s1, s2, _v, t) = fig1();
        let routing = ecmp_routing(&g).unwrap();
        let unc = fig1_uncertainty(s1, s2, t);
        let wc =
            performance_ratio_exact(&g, &routing, &unc, RoutabilityScope::AllEdges, None).unwrap();
        assert!((wc.ratio - 2.0).abs() < 1e-5, "ratio = {}", wc.ratio);
        // The witness demand should be dominated by the s2 -> t flow.
        assert!(wc.demand.get(s2, t) > wc.demand.get(s1, t));
    }

    #[test]
    fn fig1c_routing_has_ratio_four_thirds() {
        // The paper's Fig. 1c configuration: within the augmented DAG,
        // s1 splits 1/2 - 1/2, s2 sends 2/3 to t and 1/3 to v.
        let (g, s1, s2, v, t) = fig1();
        let dags = build_all_dags(&g, DagMode::Augmented).unwrap();
        let mut raw = vec![vec![0.0; g.edge_count()]; g.node_count()];
        let s1s2 = g.find_edge(s1, s2).unwrap();
        let s1v = g.find_edge(s1, v).unwrap();
        let s2t = g.find_edge(s2, t).unwrap();
        let s2v = g.find_edge(s2, v).unwrap();
        let vt = g.find_edge(v, t).unwrap();
        raw[t.index()][s1s2.index()] = 0.5;
        raw[t.index()][s1v.index()] = 0.5;
        raw[t.index()][s2t.index()] = 2.0 / 3.0;
        raw[t.index()][s2v.index()] = 1.0 / 3.0;
        raw[t.index()][vt.index()] = 1.0;
        let routing = PdRouting::from_ratios(&g, dags, raw);
        routing.validate(&g).unwrap();
        let unc = fig1_uncertainty(s1, s2, t);
        let wc =
            performance_ratio_exact(&g, &routing, &unc, RoutabilityScope::AllEdges, None).unwrap();
        assert!(
            (wc.ratio - 4.0 / 3.0).abs() < 1e-4,
            "ratio = {} (expected 4/3)",
            wc.ratio
        );
    }

    #[test]
    fn worst_case_respects_box_bounds() {
        // Pin both demands to exactly 1 (margin 1 around the base matrix):
        // ECMP with unit weights then has ratio equal to its utilization on
        // that single matrix divided by the optimum.
        let (g, s1, s2, _v, t) = fig1();
        let routing = ecmp_routing(&g).unwrap();
        let mut base = DemandMatrix::zeros(4);
        base.set(s1, t, 1.0);
        base.set(s2, t, 1.0);
        let unc = UncertaintySet::from_margin(&base, 1.0);
        let wc =
            performance_ratio_exact(&g, &routing, &unc, RoutabilityScope::AllEdges, None).unwrap();
        // ECMP: s1 splits, s2 direct => (s2,t) carries 1 + 0.5 = 1.5; the
        // optimum routes everything at utilization 1 => ratio 1.5. The
        // witness demand must stay proportional to (1, 1).
        assert!((wc.ratio - 1.5).abs() < 1e-4, "ratio = {}", wc.ratio);
        let d1 = wc.demand.get(s1, t);
        let d2 = wc.demand.get(s2, t);
        assert!(d1 > 0.0 && d2 > 0.0);
        assert!((d1 - d2).abs() < 1e-6, "box with margin 1 forces d1 == d2");
    }

    #[test]
    fn edges_that_never_carry_traffic_are_skipped() {
        let (g, s1, s2, _v, t) = fig1();
        let routing = ecmp_routing(&g).unwrap();
        let fractions = FractionTable::new(&g, &routing);
        let unc = fig1_uncertainty(s1, s2, t);
        // The t -> s2 direction never carries traffic destined to t.
        let ts2 = g.find_edge(t, s2).unwrap();
        let res = worst_case_for_edge(
            &g,
            &routing,
            &fractions,
            ts2,
            &unc,
            RoutabilityScope::AllEdges,
        )
        .unwrap();
        assert!(res.is_none());
    }

    #[test]
    fn fraction_table_matches_direct_computation() {
        let (g, s1, _s2, _v, t) = fig1();
        let routing = ecmp_routing(&g).unwrap();
        let table = FractionTable::new(&g, &routing);
        let direct = routing.source_fractions(&g, s1, t);
        for v in g.nodes() {
            assert!((table.fraction(s1, t, v) - direct[v.index()]).abs() < 1e-12);
        }
        assert_eq!(table.fraction(t, t, s1), 0.0);
    }

    #[test]
    fn bottleneck_candidates_rank_by_utilization() {
        let (g, s1, s2, _v, t) = fig1();
        let routing = ecmp_routing(&g).unwrap();
        let mut dm = DemandMatrix::zeros(4);
        dm.set(s1, t, 1.0);
        dm.set(s2, t, 1.0);
        let cands = bottleneck_candidates(&g, &routing, &dm, 2);
        assert_eq!(cands.len(), 2);
        // (s2,t) carries 1.5, the most of any edge.
        assert_eq!(cands[0], g.find_edge(s2, t).unwrap());
    }

    #[test]
    fn within_dag_scope_increases_the_ratio_denominator_effect() {
        // When the adversary's certifying flow is restricted to the SPF DAGs
        // (no (s2,v) path), demands from s2 cannot be counter-routed any
        // better than ECMP does, so the ratio can only go down or stay equal.
        let (g, s1, s2, _v, t) = fig1();
        let routing = ecmp_routing(&g).unwrap();
        let unc = fig1_uncertainty(s1, s2, t);
        let all =
            performance_ratio_exact(&g, &routing, &unc, RoutabilityScope::AllEdges, None).unwrap();
        let within =
            performance_ratio_exact(&g, &routing, &unc, RoutabilityScope::WithinDags, None)
                .unwrap();
        assert!(within.ratio <= all.ratio + 1e-6);
    }

    #[test]
    fn candidate_edge_restriction_is_respected() {
        let (g, s1, s2, _v, t) = fig1();
        let routing = ecmp_routing(&g).unwrap();
        let unc = fig1_uncertainty(s1, s2, t);
        let s2t = g.find_edge(s2, t).unwrap();
        let wc =
            performance_ratio_exact(&g, &routing, &unc, RoutabilityScope::AllEdges, Some(&[s2t]))
                .unwrap();
        assert_eq!(wc.edge, s2t);
    }
}
