//! The demands-aware optimum `OPTU(D)` as a linear program.
//!
//! Section III: `OPTU(D)` is the smallest maximum link utilization any
//! per-destination routing can achieve for the demand matrix `D`. Because a
//! per-destination routing is equivalent to one aggregated flow per
//! destination, the optimum is a multicommodity-flow LP with one commodity
//! per destination:
//!
//! ```text
//! minimize α
//! s.t.  ∀ t, ∀ v ≠ t:  Σ_{e ∈ out(v)} g_t(e) − Σ_{e ∈ in(v)} g_t(e) = d_vt
//!       ∀ e:           Σ_t g_t(e) ≤ α · c_e
//!       g ≥ 0
//! ```
//!
//! Two variants are provided: the unrestricted optimum (any edge usable) and
//! the optimum *within a given set of per-destination DAGs*, which is the
//! normalizing denominator used throughout the paper's evaluation ("the
//! demands-aware optimum within the same DAGs", Section VI-B) and also
//! yields the **Base** baseline — the optimal static routing for the base
//! demand matrix, later evaluated on other matrices.

use crate::error::CoreError;
use crate::routing::PdRouting;
use coyote_graph::{Dag, EdgeId, Graph, NodeId};
use coyote_lp::{LpProblem, Relation, Sense, VarId, WarmBasis};
use coyote_traffic::DemandMatrix;

/// Result of a demands-aware optimization.
#[derive(Debug, Clone)]
pub struct McfSolution {
    /// The optimal maximum link utilization.
    pub max_utilization: f64,
    /// Flow towards each active destination on each edge:
    /// `flows[k][e]` for the k-th active destination.
    pub flows: Vec<Vec<f64>>,
    /// The active destinations, in the same order as `flows`.
    pub destinations: Vec<NodeId>,
}

/// Edge set abstraction: either every graph edge (unrestricted) or only the
/// edges of a per-destination DAG.
enum EdgeScope<'a> {
    All,
    Dags(&'a [Dag]),
}

impl EdgeScope<'_> {
    fn edges_for(&self, graph: &Graph, t: NodeId) -> Vec<EdgeId> {
        match self {
            EdgeScope::All => graph.edges().collect(),
            EdgeScope::Dags(dags) => dags[t.index()].edges(),
        }
    }
}

/// Carries the optimal basis from one `OPTU` solve to the next, so a
/// sequence of solves over the **same graph/DAG structure** with different
/// demand matrices re-enters the simplex from the previous optimum instead
/// of running phase one from scratch. A structure change (different
/// destinations or usable edge sets) silently invalidates the cache; the
/// solver additionally falls back to a cold solve whenever the restored
/// basis is not primal-feasible. Only the optimal *objective* is warm-start
/// invariant; callers that consume the optimal flows should solve cold.
#[derive(Debug, Clone, Default)]
pub struct McfWarmCache {
    inner: Option<(u64, WarmBasis)>,
}

impl McfWarmCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }
}

/// FNV-1a fingerprint of the LP *structure* (active destinations and their
/// usable edges) — demands and capacities may differ between warm solves.
fn structure_fingerprint(destinations: &[NodeId], edges: &[Vec<EdgeId>]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    mix(destinations.len() as u64);
    for (&t, per_dest) in destinations.iter().zip(edges) {
        mix(t.index() as u64);
        mix(per_dest.len() as u64);
        for &e in per_dest {
            mix(e.index() as u64);
        }
    }
    h
}

fn solve_mcf(
    graph: &Graph,
    dm: &DemandMatrix,
    scope: EdgeScope<'_>,
    warm: Option<&mut McfWarmCache>,
) -> Result<McfSolution, CoreError> {
    let _span = coyote_obs::span("core.opt_mcf");
    coyote_obs::counter("core.opt_mcf.solves", 1);
    if dm.node_count() != graph.node_count() {
        return Err(CoreError::DimensionMismatch(format!(
            "demand matrix has {} nodes, graph has {}",
            dm.node_count(),
            graph.node_count()
        )));
    }
    let destinations = dm.active_destinations();
    if destinations.is_empty() {
        return Ok(McfSolution {
            max_utilization: 0.0,
            flows: Vec::new(),
            destinations,
        });
    }

    let mut lp = LpProblem::new(Sense::Minimize);
    let alpha = lp.add_nonneg_var("alpha", 1.0);

    // g[k][edge] -> VarId (only edges usable for that destination).
    let mut flow_vars: Vec<Vec<Option<VarId>>> = Vec::with_capacity(destinations.len());
    let mut usable_edges: Vec<Vec<EdgeId>> = Vec::with_capacity(destinations.len());
    for (k, &t) in destinations.iter().enumerate() {
        let mut per_edge = vec![None; graph.edge_count()];
        let edges = scope.edges_for(graph, t);
        for &e in &edges {
            let v = lp.add_nonneg_var(format!("g_{k}_{}", e.index()), 0.0);
            per_edge[e.index()] = Some(v);
        }
        usable_edges.push(edges);
        flow_vars.push(per_edge);
    }

    // Flow conservation: out - in = demand, for every non-destination node.
    for (k, &t) in destinations.iter().enumerate() {
        for v in graph.nodes() {
            if v == t {
                continue;
            }
            let mut terms: Vec<(VarId, f64)> = Vec::new();
            for &e in graph.out_edges(v) {
                if let Some(var) = flow_vars[k][e.index()] {
                    terms.push((var, 1.0));
                }
            }
            for &e in graph.in_edges(v) {
                if let Some(var) = flow_vars[k][e.index()] {
                    terms.push((var, -1.0));
                }
            }
            let demand = dm.get(v, t);
            if terms.is_empty() {
                if demand > 0.0 {
                    return Err(CoreError::UnroutableDemand {
                        detail: format!(
                            "node {} has demand {demand} towards {} but no usable edges",
                            graph.node_name(v),
                            graph.node_name(t)
                        ),
                    });
                }
                continue;
            }
            lp.add_constraint(
                format!("cons_{k}_{}", v.index()),
                &terms,
                Relation::Eq,
                demand,
            );
        }
    }

    // Capacity: total flow on an edge is at most alpha * capacity.
    for e in graph.edges() {
        let mut terms: Vec<(VarId, f64)> = Vec::new();
        for vars in flow_vars.iter().take(destinations.len()) {
            if let Some(var) = vars[e.index()] {
                terms.push((var, 1.0));
            }
        }
        if terms.is_empty() {
            continue;
        }
        terms.push((alpha, -graph.capacity(e)));
        lp.add_constraint(format!("cap_{}", e.index()), &terms, Relation::Le, 0.0);
    }

    let map_err = |e: coyote_lp::LpError| match e {
        coyote_lp::LpError::Infeasible { .. } => CoreError::UnroutableDemand {
            detail: "flow conservation cannot be satisfied inside the allowed edge set".into(),
        },
        other => CoreError::Lp(other),
    };
    let sol = match warm {
        Some(cache) => {
            let fp = structure_fingerprint(&destinations, &usable_edges);
            let prev = cache
                .inner
                .as_ref()
                .filter(|(cached_fp, _)| *cached_fp == fp)
                .map(|(_, basis)| basis);
            let (sol, next) = lp.solve_warm(prev).map_err(map_err)?;
            cache.inner = Some((fp, next));
            sol
        }
        None => lp.solve().map_err(map_err)?,
    };

    let flows = flow_vars
        .iter()
        .map(|per_edge| {
            per_edge
                .iter()
                .map(|v| v.map(|var| sol.value(var).max(0.0)).unwrap_or(0.0))
                .collect()
        })
        .collect();

    Ok(McfSolution {
        max_utilization: sol.value(alpha).max(0.0),
        flows,
        destinations,
    })
}

/// `OPTU(D)`: the optimal max link utilization over *all* per-destination
/// routings (any edge usable).
pub fn optu(graph: &Graph, dm: &DemandMatrix) -> Result<f64, CoreError> {
    Ok(solve_mcf(graph, dm, EdgeScope::All, None)?.max_utilization)
}

/// The demands-aware optimum restricted to the given per-destination DAGs
/// (the normalization used by the paper's figures and Table I).
pub fn optu_within_dags(graph: &Graph, dags: &[Dag], dm: &DemandMatrix) -> Result<f64, CoreError> {
    if dags.len() != graph.node_count() {
        return Err(CoreError::DimensionMismatch(format!(
            "{} DAGs for {} nodes",
            dags.len(),
            graph.node_count()
        )));
    }
    Ok(solve_mcf(graph, dm, EdgeScope::Dags(dags), None)?.max_utilization)
}

/// [`optu_within_dags`] with basis reuse across calls: `cache` carries the
/// previous optimal basis into the next solve, which pays off when many
/// demand matrices are evaluated over the same graph and DAG set (e.g.
/// [`crate::perf::EvaluationSet`]). Returns the same optimal utilization as
/// the cold variant (same dual tolerance); the internal optimal vertex may
/// differ on degenerate instances, which is invisible here because only the
/// objective is returned.
pub fn optu_within_dags_cached(
    graph: &Graph,
    dags: &[Dag],
    dm: &DemandMatrix,
    cache: &mut McfWarmCache,
) -> Result<f64, CoreError> {
    if dags.len() != graph.node_count() {
        return Err(CoreError::DimensionMismatch(format!(
            "{} DAGs for {} nodes",
            dags.len(),
            graph.node_count()
        )));
    }
    Ok(solve_mcf(graph, dm, EdgeScope::Dags(dags), Some(cache))?.max_utilization)
}

/// The **Base** baseline of the evaluation: the optimal demands-aware
/// routing (within the given DAGs) for the base demand matrix, returned as a
/// [`PdRouting`] so it can be re-evaluated on every other matrix in the
/// uncertainty set. Splitting ratios are recovered from the optimal flows;
/// nodes that carry no flow in the optimum fall back to uniform splitting.
pub fn optimal_routing_within_dags(
    graph: &Graph,
    dags: &[Dag],
    dm: &DemandMatrix,
) -> Result<(PdRouting, f64), CoreError> {
    if dags.len() != graph.node_count() {
        return Err(CoreError::DimensionMismatch(format!(
            "{} DAGs for {} nodes",
            dags.len(),
            graph.node_count()
        )));
    }
    // Solved cold on purpose: this consumer reads the optimal *flows* (not
    // just the objective), and only cold solves are vertex-deterministic.
    let sol = solve_mcf(graph, dm, EdgeScope::Dags(dags), None)?;
    let mut raw = vec![vec![0.0; graph.edge_count()]; graph.node_count()];
    for (k, &t) in sol.destinations.iter().enumerate() {
        for e in graph.edges() {
            raw[t.index()][e.index()] = sol.flows[k][e.index()];
        }
    }
    let routing = PdRouting::from_ratios(graph, dags.to_vec(), raw);
    Ok((routing, sol.max_utilization))
}

/// Outcome of [`split_routable_within_dags`]: the demand matrix restricted
/// to the pairs the DAGs can actually carry, plus the volume that had to be
/// masked out.
#[derive(Debug, Clone)]
pub struct RoutableSplit {
    /// The routable part of the demand matrix (unroutable entries zeroed).
    pub routable: DemandMatrix,
    /// Total demand volume that no DAG path can carry.
    pub unroutable_volume: f64,
    /// Number of (source, destination) pairs that were masked out.
    pub unroutable_pairs: usize,
}

/// Splits a demand matrix into the part the given per-destination DAGs can
/// route and the part they cannot (e.g. because a failure partitioned the
/// topology). A pair `(s, t)` is routable iff `s` has an out-edge in `t`'s
/// DAG — by the DAG invariant (every node with an out-edge reaches the
/// destination) that guarantees a complete path. Feeding `routable` to
/// [`optimal_routing_within_dags`] then cannot trip the
/// [`CoreError::UnroutableDemand`] guard, which is how the failure engine
/// keeps post-failure LPs from aborting a whole grid.
pub fn split_routable_within_dags(
    graph: &Graph,
    dags: &[Dag],
    dm: &DemandMatrix,
) -> Result<RoutableSplit, CoreError> {
    if dags.len() != graph.node_count() || dm.node_count() != graph.node_count() {
        return Err(CoreError::DimensionMismatch(format!(
            "{} DAGs / {}-node demand matrix for a {}-node graph",
            dags.len(),
            dm.node_count(),
            graph.node_count()
        )));
    }
    let mut routable = dm.clone();
    let mut unroutable_volume = 0.0;
    let mut unroutable_pairs = 0usize;
    for (s, t, volume) in dm.pairs() {
        if s == t {
            continue;
        }
        if dags[t.index()].out_edges(s).is_empty() {
            routable.set(s, t, 0.0);
            unroutable_volume += volume;
            unroutable_pairs += 1;
        }
    }
    Ok(RoutableSplit {
        routable,
        unroutable_volume,
        unroutable_pairs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag_builder::{build_all_dags, DagMode};

    fn fig1() -> (Graph, NodeId, NodeId, NodeId, NodeId) {
        let mut g = Graph::new();
        let s1 = g.add_node("s1").unwrap();
        let s2 = g.add_node("s2").unwrap();
        let v = g.add_node("v").unwrap();
        let t = g.add_node("t").unwrap();
        g.add_bidirectional_edge(s1, s2, 1.0, 1.0).unwrap();
        g.add_bidirectional_edge(s1, v, 1.0, 1.0).unwrap();
        g.add_bidirectional_edge(s2, v, 1.0, 1.0).unwrap();
        g.add_bidirectional_edge(s2, t, 1.0, 1.0).unwrap();
        g.add_bidirectional_edge(v, t, 1.0, 1.0).unwrap();
        (g, s1, s2, v, t)
    }

    #[test]
    fn optu_of_the_fig1_worst_case_demand_is_one() {
        // The paper: demands (2, 0) "can send all traffic without exceeding
        // any link capacity" by splitting between (s1 s2 t) and (s1 v t).
        let (g, s1, _s2, _v, t) = fig1();
        let mut dm = DemandMatrix::zeros(4);
        dm.set(s1, t, 2.0);
        let u = optu(&g, &dm).unwrap();
        assert!((u - 1.0).abs() < 1e-6, "OPTU = {u}");
    }

    #[test]
    fn optu_scales_linearly_with_demands() {
        let (g, s1, _s2, _v, t) = fig1();
        let mut dm = DemandMatrix::zeros(4);
        dm.set(s1, t, 1.0);
        let u1 = optu(&g, &dm).unwrap();
        let u2 = optu(&g, &dm.scaled(3.0)).unwrap();
        assert!((u2 - 3.0 * u1).abs() < 1e-6);
    }

    #[test]
    fn optu_within_spf_dags_can_be_worse_than_unrestricted() {
        // With unit weights the SPF DAG towards t does not use (s2,v); a
        // demand from s2 alone then has only the direct path, utilization 2,
        // while the unrestricted optimum splits and achieves 1.
        let (g, _s1, s2, _v, t) = fig1();
        let mut dm = DemandMatrix::zeros(4);
        dm.set(s2, t, 2.0);
        let spf = build_all_dags(&g, DagMode::ShortestPath).unwrap();
        let within = optu_within_dags(&g, &spf, &dm).unwrap();
        let free = optu(&g, &dm).unwrap();
        assert!((within - 2.0).abs() < 1e-6, "within = {within}");
        assert!((free - 1.0).abs() < 1e-6, "free = {free}");
    }

    #[test]
    fn optu_within_augmented_dags_matches_unrestricted_on_fig1() {
        // The augmented DAG restores the (s2,v) path diversity, so for the
        // single-source demands of the running example it is as good as the
        // unrestricted optimum.
        let (g, s1, s2, _v, t) = fig1();
        let aug = build_all_dags(&g, DagMode::Augmented).unwrap();
        for (src, amount) in [(s1, 2.0), (s2, 2.0)] {
            let mut dm = DemandMatrix::zeros(4);
            dm.set(src, t, amount);
            let within = optu_within_dags(&g, &aug, &dm).unwrap();
            let free = optu(&g, &dm).unwrap();
            assert!(
                (within - free).abs() < 1e-6,
                "within = {within}, free = {free}"
            );
        }
    }

    #[test]
    fn zero_demand_has_zero_utilization() {
        let (g, ..) = fig1();
        let dm = DemandMatrix::zeros(4);
        assert_eq!(optu(&g, &dm).unwrap(), 0.0);
    }

    #[test]
    fn unroutable_demands_are_reported() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1), 1.0, 1.0).unwrap();
        // Node 2 is isolated; demand from it cannot be routed.
        let mut dm = DemandMatrix::zeros(3);
        dm.set(NodeId(2), NodeId(1), 1.0);
        assert!(matches!(
            optu(&g, &dm),
            Err(CoreError::UnroutableDemand { .. })
        ));
    }

    #[test]
    fn base_routing_is_optimal_for_its_own_matrix() {
        let (g, s1, s2, _v, t) = fig1();
        let aug = build_all_dags(&g, DagMode::Augmented).unwrap();
        let mut dm = DemandMatrix::zeros(4);
        dm.set(s1, t, 1.0);
        dm.set(s2, t, 1.0);
        let (routing, opt) = optimal_routing_within_dags(&g, &aug, &dm).unwrap();
        routing.validate(&g).unwrap();
        let achieved = routing.max_link_utilization(&g, &dm);
        assert!(
            achieved <= opt + 1e-6,
            "achieved {achieved} vs optimum {opt}"
        );
        let lp_value = optu_within_dags(&g, &aug, &dm).unwrap();
        assert!((opt - lp_value).abs() < 1e-9);
    }

    #[test]
    fn split_routable_masks_partitioned_pairs() {
        // Two components: 0-1 and 2-3 (bidirectional pairs).
        let mut g = Graph::with_nodes(4);
        g.add_bidirectional_edge(NodeId(0), NodeId(1), 1.0, 1.0)
            .unwrap();
        g.add_bidirectional_edge(NodeId(2), NodeId(3), 1.0, 1.0)
            .unwrap();
        let dags = build_all_dags(&g, DagMode::Augmented).unwrap();
        let mut dm = DemandMatrix::zeros(4);
        dm.set(NodeId(0), NodeId(1), 0.5); // routable
        dm.set(NodeId(0), NodeId(3), 2.0); // crosses the cut: unroutable
        dm.set(NodeId(2), NodeId(1), 1.5); // crosses the cut: unroutable
        let split = split_routable_within_dags(&g, &dags, &dm).unwrap();
        assert_eq!(split.unroutable_pairs, 2);
        assert!((split.unroutable_volume - 3.5).abs() < 1e-12);
        assert!((split.routable.total() - 0.5).abs() < 1e-12);
        // The masked matrix solves cleanly where the raw one aborts.
        assert!(optu_within_dags(&g, &dags, &dm).is_err());
        let u = optu_within_dags(&g, &dags, &split.routable).unwrap();
        assert!((u - 0.5).abs() < 1e-6, "u = {u}");
    }

    #[test]
    fn split_routable_is_a_noop_on_connected_graphs() {
        let (g, s1, s2, _v, t) = fig1();
        let dags = build_all_dags(&g, DagMode::Augmented).unwrap();
        let mut dm = DemandMatrix::zeros(4);
        dm.set(s1, t, 1.0);
        dm.set(s2, t, 2.0);
        let split = split_routable_within_dags(&g, &dags, &dm).unwrap();
        assert_eq!(split.unroutable_pairs, 0);
        assert_eq!(split.unroutable_volume, 0.0);
        assert!((split.routable.total() - dm.total()).abs() < 1e-12);
    }

    #[test]
    fn dimension_mismatches_are_rejected() {
        let (g, ..) = fig1();
        let dm = DemandMatrix::zeros(3);
        assert!(matches!(
            optu(&g, &dm),
            Err(CoreError::DimensionMismatch(_))
        ));
        let dags = build_all_dags(&g, DagMode::Augmented).unwrap();
        let dm4 = DemandMatrix::zeros(4);
        assert!(matches!(
            optu_within_dags(&g, &dags[..2], &dm4),
            Err(CoreError::DimensionMismatch(_))
        ));
    }
}
