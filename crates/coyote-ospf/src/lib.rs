//! # coyote-ospf
//!
//! The OSPF/ECMP + Fibbing substrate of the COYOTE reproduction: everything
//! needed to turn the optimized splitting ratios of `coyote-core` into state
//! that unmodified, standard routers would actually compute.
//!
//! * [`lsa`] / [`lsdb`] — link-state advertisements (real and fake) and the
//!   link-state database the routers flood.
//! * [`spf`] — per-router SPF over the LSDB, honoring injected lies, and the
//!   resulting [`fib::Fib`].
//! * [`wecmp`] — approximation of unequal splits by replicated ECMP entries
//!   (Nemeth et al. \[18\]), under an operator-set virtual-link budget.
//! * [`fibbing`] — the controller that computes which lies to inject for a
//!   target [`coyote_core::PdRouting`] (Fibbing \[8\], \[9\]).
//! * [`delta`] — per-prefix LSA deltas for the long-running controller:
//!   applying a delta to the old LSDB is bit-identical to a cold recompile.
//! * [`verify`] — checks that the realized forwarding state matches the
//!   target (DAG equality, splitting-ratio error).
//!
//! ```
//! use coyote_core::example_fig1;
//! use coyote_ospf::{compute_program, realized_routing, VirtualLinkBudget};
//!
//! let (graph, nodes) = example_fig1::topology();
//! let target = example_fig1::fig1c_routing(&graph, &nodes);
//! let program = compute_program(&graph, &target, VirtualLinkBudget::per_prefix(3)).unwrap();
//! let realized = realized_routing(&graph, &program).unwrap();
//! realized.validate(&graph).unwrap();
//! assert!(program.stats.fake_nodes > 0);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod compress;
pub mod delta;
pub mod error;
pub mod fib;
pub mod fibbing;
pub mod lsa;
pub mod lsdb;
pub mod spf;
pub mod verify;
pub mod wecmp;

pub use compress::{
    compress_program, compute_program_with, CompressionLevel, CompressionStats, DEFAULT_EPSILON,
};
pub use delta::{LsaDelta, PrefixUpdate};
pub use error::OspfError;
pub use fib::{Fib, FibEntry};
pub use fibbing::{
    compile_destination, compute_program, program_fib, realized_routing, DestinationLies,
    FibbingProgram, FibbingStats, VirtualLinkBudget,
};
pub use lsa::{FakeNodeId, FakeNodeLsa, PrefixAdvertisement, RouterLink, RouterLsa};
pub use lsdb::{Lsdb, PruneStats};
pub use spf::{compute_fib, distances_to};
pub use verify::{
    compare_routings, fake_nodes_per_destination, verify_program, VerificationReport,
};
pub use wecmp::{approximate_split, max_split_error, quantize_split, realized_fractions};
