//! Error type of the OSPF/Fibbing substrate.

use std::fmt;

/// Errors surfaced while computing FIBs or Fibbing configurations.
#[derive(Debug, Clone, PartialEq)]
pub enum OspfError {
    /// The forwarding state derived from the LSDB contains a loop for some
    /// destination (the injected lies were inconsistent).
    ForwardingLoop {
        /// Destination whose forwarding graph loops.
        destination: usize,
        /// Details from the DAG validation.
        detail: String,
    },
    /// A FIB entry points at a node that is not a physical neighbor.
    InvalidNextHop {
        /// The router holding the entry.
        router: usize,
        /// The claimed next hop.
        neighbor: usize,
    },
    /// Mismatched dimensions between the FIB/LSDB and the graph.
    DimensionMismatch(String),
    /// The target routing asks a router to split towards a node that is not
    /// reachable through any physical adjacency.
    UnrealizableSplit {
        /// The router in question.
        router: usize,
        /// The destination prefix.
        destination: usize,
    },
}

impl fmt::Display for OspfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OspfError::ForwardingLoop {
                destination,
                detail,
            } => {
                write!(
                    f,
                    "forwarding loop towards destination {destination}: {detail}"
                )
            }
            OspfError::InvalidNextHop { router, neighbor } => {
                write!(
                    f,
                    "router {router} lists non-neighbor {neighbor} as next hop"
                )
            }
            OspfError::DimensionMismatch(msg) => write!(f, "dimension mismatch: {msg}"),
            OspfError::UnrealizableSplit {
                router,
                destination,
            } => write!(
                f,
                "router {router} cannot realize the requested split towards {destination}"
            ),
        }
    }
}

impl std::error::Error for OspfError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = OspfError::ForwardingLoop {
            destination: 3,
            detail: "cycle".into(),
        };
        assert!(e.to_string().contains("3"));
        assert!(OspfError::InvalidNextHop {
            router: 1,
            neighbor: 2
        }
        .to_string()
        .contains("non-neighbor"));
        assert!(OspfError::DimensionMismatch("x".into())
            .to_string()
            .contains("mismatch"));
        assert!(OspfError::UnrealizableSplit {
            router: 0,
            destination: 1
        }
        .to_string()
        .contains("realize"));
    }
}
