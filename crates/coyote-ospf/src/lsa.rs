//! Link-state advertisements, real and fake.
//!
//! Fibbing \[8\], \[9\] realizes arbitrary per-destination forwarding DAGs by
//! injecting *fake nodes and links* into the OSPF link-state database: a
//! router is made to believe that an extra ("virtual") neighbor offers a
//! cheap path towards a destination prefix, and the virtual adjacency is
//! mapped onto a real next hop via its forwarding address. Nemeth et al.
//! \[18\] use the same trick to approximate unequal traffic splits: a next hop
//! announced through `k` virtual adjacencies receives `k` ECMP shares.
//!
//! This module defines the advertisement records the [`crate::lsdb::Lsdb`]
//! stores. The real topology is carried by [`RouterLsa`]s (one per router,
//! mirroring the physical adjacencies); the lies are [`FakeNodeLsa`]s.

use coyote_graph::NodeId;
use serde::{Deserialize, Serialize};

/// Identifier of a fake (virtual) node injected by the Fibbing controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FakeNodeId(pub usize);

/// One adjacency inside a [`RouterLsa`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouterLink {
    /// The neighboring router.
    pub neighbor: NodeId,
    /// OSPF metric of the adjacency.
    pub weight: f64,
}

/// The real link-state advertisement of one router: its physical
/// adjacencies and metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouterLsa {
    /// The advertising router.
    pub router: NodeId,
    /// Its adjacencies.
    pub links: Vec<RouterLink>,
}

/// A Fibbing lie: a fake node attached to one router, advertising one
/// destination prefix, whose traffic is ultimately forwarded to a real next
/// hop (the *forwarding address*).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FakeNodeLsa {
    /// Identifier of the fake node.
    pub id: FakeNodeId,
    /// The (real) router that sees the fake adjacency and will be deceived.
    pub attachment: NodeId,
    /// The destination node whose prefix the fake node advertises.
    pub destination: NodeId,
    /// Metric of the virtual adjacency `attachment -> fake node`.
    pub cost_to_fake: f64,
    /// Metric the fake node advertises towards the destination prefix.
    pub cost_fake_to_destination: f64,
    /// The real neighbor of `attachment` that packets sent "towards the fake
    /// node" are actually handed to.
    pub forwarding_address: NodeId,
}

impl FakeNodeLsa {
    /// Total advertised cost of reaching the destination through this lie.
    pub fn total_cost(&self) -> f64 {
        self.cost_to_fake + self.cost_fake_to_destination
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_cost_adds_both_segments() {
        let lie = FakeNodeLsa {
            id: FakeNodeId(0),
            attachment: NodeId(1),
            destination: NodeId(3),
            cost_to_fake: 0.5,
            cost_fake_to_destination: 0.25,
            forwarding_address: NodeId(2),
        };
        assert!((lie.total_cost() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn lsa_records_are_comparable_and_serializable_types() {
        let a = RouterLsa {
            router: NodeId(0),
            links: vec![RouterLink {
                neighbor: NodeId(1),
                weight: 2.0,
            }],
        };
        assert_eq!(a, a.clone());
        assert_eq!(FakeNodeId(3), FakeNodeId(3));
        assert!(FakeNodeId(2) < FakeNodeId(4));
    }
}
