//! Link-state advertisements, real and fake.
//!
//! Fibbing \[8\], \[9\] realizes arbitrary per-destination forwarding DAGs by
//! injecting *fake nodes and links* into the OSPF link-state database: a
//! router is made to believe that an extra ("virtual") neighbor offers a
//! cheap path towards a destination prefix, and the virtual adjacency is
//! mapped onto a real next hop via its forwarding address. Nemeth et al.
//! \[18\] use the same trick to approximate unequal traffic splits: a next hop
//! announced through `k` virtual adjacencies receives `k` ECMP shares.
//!
//! A fake node may advertise *several* destination prefixes at once (one
//! [`PrefixAdvertisement`] each): the program-compression pass of
//! [`crate::compress`] merges lies that share an (attachment, forwarding
//! address) pair across destinations into one shared fake node, which is how
//! real Fibbing deployments keep the forged-LSA count proportional to the
//! topology rather than to topology × prefixes.
//!
//! This module defines the advertisement records the [`crate::lsdb::Lsdb`]
//! stores. The real topology is carried by [`RouterLsa`]s (one per router,
//! mirroring the physical adjacencies); the lies are [`FakeNodeLsa`]s.

use coyote_graph::NodeId;
use serde::{Deserialize, Serialize};

/// Identifier of a fake (virtual) node injected by the Fibbing controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FakeNodeId(pub usize);

/// One adjacency inside a [`RouterLsa`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouterLink {
    /// The neighboring router.
    pub neighbor: NodeId,
    /// OSPF metric of the adjacency.
    pub weight: f64,
}

/// The real link-state advertisement of one router: its physical
/// adjacencies and metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouterLsa {
    /// The advertising router.
    pub router: NodeId,
    /// Its adjacencies.
    pub links: Vec<RouterLink>,
}

/// One destination prefix a fake node advertises.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrefixAdvertisement {
    /// The destination node whose prefix is advertised.
    pub destination: NodeId,
    /// Metric the fake node advertises towards this destination prefix.
    pub cost_fake_to_destination: f64,
}

/// A Fibbing lie: a fake node attached to one router, advertising one or
/// more destination prefixes, whose traffic is ultimately forwarded to a
/// real next hop (the *forwarding address*).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FakeNodeLsa {
    /// Identifier of the fake node.
    pub id: FakeNodeId,
    /// The (real) router that sees the fake adjacency and will be deceived.
    pub attachment: NodeId,
    /// Metric of the virtual adjacency `attachment -> fake node`.
    pub cost_to_fake: f64,
    /// The real neighbor of `attachment` that packets sent "towards the fake
    /// node" are actually handed to.
    pub forwarding_address: NodeId,
    /// The destination prefixes this fake node advertises (at least one).
    pub prefixes: Vec<PrefixAdvertisement>,
}

impl FakeNodeLsa {
    /// A fake node advertising a single destination prefix — the shape the
    /// uncompressed Fibbing compiler emits (one lie per virtual next-hop
    /// replica per prefix).
    pub fn single(
        attachment: NodeId,
        destination: NodeId,
        cost_to_fake: f64,
        cost_fake_to_destination: f64,
        forwarding_address: NodeId,
    ) -> Self {
        Self {
            id: FakeNodeId(0),
            attachment,
            cost_to_fake,
            forwarding_address,
            prefixes: vec![PrefixAdvertisement {
                destination,
                cost_fake_to_destination,
            }],
        }
    }

    /// True if this fake node advertises `destination`.
    pub fn advertises(&self, destination: NodeId) -> bool {
        self.prefixes.iter().any(|p| p.destination == destination)
    }

    /// Total advertised cost of reaching `destination` through this lie, or
    /// `None` if the fake node does not advertise that prefix.
    pub fn total_cost_to(&self, destination: NodeId) -> Option<f64> {
        self.prefixes
            .iter()
            .find(|p| p.destination == destination)
            .map(|p| self.cost_to_fake + p.cost_fake_to_destination)
    }

    /// Number of prefixes this fake node advertises.
    pub fn prefix_count(&self) -> usize {
        self.prefixes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_cost_adds_both_segments_per_prefix() {
        let lie = FakeNodeLsa::single(NodeId(1), NodeId(3), 0.5, 0.25, NodeId(2));
        assert!(lie.advertises(NodeId(3)));
        assert!(!lie.advertises(NodeId(1)));
        assert!((lie.total_cost_to(NodeId(3)).unwrap() - 0.75).abs() < 1e-12);
        assert_eq!(lie.total_cost_to(NodeId(0)), None);
        assert_eq!(lie.prefix_count(), 1);
    }

    #[test]
    fn shared_fakes_carry_independent_per_prefix_costs() {
        let mut lie = FakeNodeLsa::single(NodeId(1), NodeId(3), 0.5, 0.25, NodeId(2));
        lie.prefixes.push(PrefixAdvertisement {
            destination: NodeId(0),
            cost_fake_to_destination: 1.5,
        });
        assert_eq!(lie.prefix_count(), 2);
        assert!((lie.total_cost_to(NodeId(3)).unwrap() - 0.75).abs() < 1e-12);
        assert!((lie.total_cost_to(NodeId(0)).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn lsa_records_are_comparable_and_serializable_types() {
        let a = RouterLsa {
            router: NodeId(0),
            links: vec![RouterLink {
                neighbor: NodeId(1),
                weight: 2.0,
            }],
        };
        assert_eq!(a, a.clone());
        assert_eq!(FakeNodeId(3), FakeNodeId(3));
        assert!(FakeNodeId(2) < FakeNodeId(4));
    }
}
