//! LSA deltas: the incremental currency of the `coyote-serve` daemon.
//!
//! A long-running Fibbing controller does not re-flood the whole lied-to
//! LSDB on every demand drift or link event; it emits a *delta* — per
//! destination prefix, the replacement lie list (empty = retract all lies
//! for that prefix) and, for topology events, the replacement router LSAs.
//!
//! [`LsaDelta::apply`] reconstructs the successor LSDB from the old one by
//! re-assembling fakes in destination order, exactly like a cold
//! [`crate::fibbing::compute_program`] run does: untouched prefixes keep
//! their old lies, updated prefixes take the replacement list, and
//! [`Lsdb::inject`] renumbers everything densely. Because the per-prefix
//! compile is separable ([`crate::fibbing::compile_destination`]), applying
//! the delta is **bit-identical** to cold-recompiling the new scenario —
//! the differential guarantee `coyote-serve` tests at every step.
//!
//! Deltas are defined over *uncompressed* programs (one prefix per fake).
//! Compressed programs share fakes across destinations, so a per-prefix
//! replacement is no longer well-defined; [`LsaDelta::apply`] rejects such
//! LSDBs instead of silently duplicating shared fakes.

use crate::error::OspfError;
use crate::lsa::{FakeNodeLsa, RouterLsa};
use crate::lsdb::Lsdb;
use coyote_graph::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Replacement lie list for one destination prefix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrefixUpdate {
    /// The destination prefix whose lies are replaced.
    pub destination: NodeId,
    /// The new lies for this prefix, in injection order (`FakeNodeId`s are
    /// placeholders; [`Lsdb::inject`] assigns the dense ids on apply).
    pub lies: Vec<FakeNodeLsa>,
    /// How many lies the old program carried for this prefix (the number
    /// being retracted by this update).
    pub retracted: usize,
}

/// An incremental update to a lied-to LSDB: replacement router LSAs (for
/// link/node events; `None` when the topology is unchanged) plus per-prefix
/// replacement lie lists for every re-optimized destination.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LsaDelta {
    /// Replacement topology advertisements, present only when a link or
    /// node event changed the physical adjacencies.
    pub router_lsas: Option<Vec<RouterLsa>>,
    /// Per-prefix replacement lie lists, sorted by destination index.
    pub updates: Vec<PrefixUpdate>,
}

impl LsaDelta {
    /// True if the delta changes nothing (no topology change, no prefix
    /// updates).
    pub fn is_empty(&self) -> bool {
        self.router_lsas.is_none() && self.updates.is_empty()
    }

    /// Number of destination prefixes this delta re-advertises.
    pub fn touched_prefixes(&self) -> usize {
        self.updates.len()
    }

    /// Total lies injected by this delta.
    pub fn fakes_added(&self) -> usize {
        self.updates.iter().map(|u| u.lies.len()).sum()
    }

    /// Total lies retracted by this delta.
    pub fn fakes_retracted(&self) -> usize {
        self.updates.iter().map(|u| u.retracted).sum()
    }

    /// Applies the delta to `old`, producing the successor LSDB.
    ///
    /// Fakes are re-assembled in destination order over `node_count`
    /// prefixes: updated prefixes take their replacement list, untouched
    /// prefixes carry their old lies over, and ids are re-assigned densely
    /// — the exact assembly order of a cold compile, which is what makes
    /// the result bit-identical to one.
    pub fn apply(&self, old: &Lsdb, node_count: usize) -> Result<Lsdb, OspfError> {
        if let Some(shared) = old.fakes().iter().find(|f| f.prefix_count() > 1) {
            return Err(OspfError::DimensionMismatch(format!(
                "LSA deltas are defined over uncompressed programs, but fake \
                 node {} advertises {} prefixes (compressed LSDB)",
                shared.id.0,
                shared.prefix_count()
            )));
        }
        let updates: BTreeMap<usize, &PrefixUpdate> = self
            .updates
            .iter()
            .map(|u| (u.destination.index(), u))
            .collect();
        let mut next = Lsdb::with_router_lsas(match &self.router_lsas {
            Some(replacement) => replacement.clone(),
            None => old.router_lsas().to_vec(),
        });
        for t in 0..node_count {
            match updates.get(&t) {
                Some(update) => {
                    for lie in &update.lies {
                        next.inject(lie.clone());
                    }
                }
                None => {
                    for lie in old.fakes_for(NodeId(t)) {
                        next.inject(lie.clone());
                    }
                }
            }
        }
        Ok(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fibbing::{compile_destination, compute_program, VirtualLinkBudget};
    use coyote_core::example_fig1;
    use coyote_graph::Graph;

    fn program_under_test() -> (Graph, crate::fibbing::FibbingProgram) {
        let (g, nodes) = example_fig1::topology();
        let target = example_fig1::golden_routing(&g, &nodes);
        let program = compute_program(&g, &target, VirtualLinkBudget::per_prefix(5)).unwrap();
        (g, program)
    }

    #[test]
    fn empty_delta_reproduces_the_old_lsdb_bit_identically() {
        let (g, program) = program_under_test();
        let delta = LsaDelta::default();
        assert!(delta.is_empty());
        let next = delta.apply(&program.lsdb, g.node_count()).unwrap();
        assert_eq!(next, program.lsdb);
    }

    #[test]
    fn replacing_every_prefix_matches_a_cold_compile() {
        let (g, nodes) = example_fig1::topology();
        let budget = VirtualLinkBudget::per_prefix(5);
        let old_target = example_fig1::golden_routing(&g, &nodes);
        let old = compute_program(&g, &old_target, budget).unwrap();
        let new_target = example_fig1::fig1c_routing(&g, &nodes);
        let base = Lsdb::from_graph(&g);
        let updates = g
            .nodes()
            .map(|t| PrefixUpdate {
                destination: t,
                lies: compile_destination(&g, &base, &new_target, t, budget)
                    .unwrap()
                    .lies,
                retracted: old.lsdb.fakes_for(t).count(),
            })
            .filter(|u| !u.lies.is_empty() || u.retracted > 0)
            .collect();
        let delta = LsaDelta {
            router_lsas: None,
            updates,
        };
        let next = delta.apply(&old.lsdb, g.node_count()).unwrap();
        let cold = compute_program(&g, &new_target, budget).unwrap();
        assert_eq!(next, cold.lsdb);
        assert_eq!(delta.fakes_retracted(), old.stats.fake_nodes);
        assert_eq!(delta.fakes_added(), cold.stats.fake_nodes);
    }

    #[test]
    fn partial_update_keeps_untouched_prefixes_and_renumbers_densely() {
        let (g, program) = program_under_test();
        // Retract every lie for the destination with the most fakes.
        let t = g
            .nodes()
            .max_by_key(|&t| program.lsdb.fakes_for(t).count())
            .unwrap();
        let retracted = program.lsdb.fakes_for(t).count();
        assert!(retracted > 0, "test needs a destination with lies");
        let delta = LsaDelta {
            router_lsas: None,
            updates: vec![PrefixUpdate {
                destination: t,
                lies: Vec::new(),
                retracted,
            }],
        };
        let next = delta.apply(&program.lsdb, g.node_count()).unwrap();
        assert_eq!(next.fake_count(), program.lsdb.fake_count() - retracted);
        assert_eq!(next.fakes_for(t).count(), 0);
        for (i, fake) in next.fakes().iter().enumerate() {
            assert_eq!(fake.id.0, i, "ids must stay dense after apply");
        }
        // Untouched prefixes keep their lies (id-independent comparison).
        for other in g.nodes().filter(|&o| o != t) {
            let strip = |f: &FakeNodeLsa| {
                let mut f = f.clone();
                f.id = crate::lsa::FakeNodeId(0);
                f
            };
            let before: Vec<_> = program.lsdb.fakes_for(other).map(&strip).collect();
            let after: Vec<_> = next.fakes_for(other).map(&strip).collect();
            assert_eq!(before, after);
        }
    }

    #[test]
    fn compressed_lsdbs_are_rejected() {
        let (g, program) = program_under_test();
        // Force a shared (multi-prefix) fake to exercise the guard.
        let mut lsdb = program.lsdb.clone();
        let mut lie = lsdb.fakes()[0].clone();
        lie.prefixes.push(crate::lsa::PrefixAdvertisement {
            destination: NodeId(0),
            cost_fake_to_destination: 1.0,
        });
        lsdb.clear_fakes();
        lsdb.inject(lie);
        assert!(LsaDelta::default().apply(&lsdb, g.node_count()).is_err());
    }
}
