//! The Fibbing controller: turning a COYOTE routing into OSPF lies.
//!
//! Section V-D of the paper: "COYOTE leverages the techniques in \[9\]
//! (Fibbing) and in \[18\] (virtual next hops) to carefully craft lies so as
//! to generate the desired per-destination forwarding DAGs and approximate
//! the optimal traffic splitting ratios with ECMP."
//!
//! Given a target [`PdRouting`] the controller decides, per destination
//! prefix and per router:
//!
//! 1. what the desired next-hop set and splitting fractions are;
//! 2. whether plain OSPF/ECMP already produces exactly that behaviour (in
//!    which case *no lie is needed* — keeping the number of fake nodes small
//!    is an explicit goal of the paper's Section VI);
//! 3. otherwise, how many virtual next-hop entries to install per neighbor
//!    (bounded by the operator's budget, Fig. 10 evaluates 3/5/10) and which
//!    fake-node advertisements realize them.
//!
//! The resulting [`FibbingProgram`] carries the lied-to LSDB; running the
//! ordinary SPF of [`crate::spf`] over it yields the FIB that the *real*
//! routers would compute, which [`realized_routing`] converts back into a
//! [`PdRouting`] for evaluation.

use crate::compress::CompressionStats;
use crate::error::OspfError;
use crate::fib::Fib;
use crate::lsa::FakeNodeLsa;
use crate::lsdb::Lsdb;
use crate::spf::{compute_fib, distances_to};
use crate::wecmp::approximate_split;
use coyote_core::PdRouting;
use coyote_graph::{Graph, NodeId};
use serde::{Deserialize, Serialize};

/// Operator budget for splitting-ratio approximation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VirtualLinkBudget {
    /// Maximum number of ECMP FIB entries a router may hold towards one
    /// destination prefix (real next hops plus virtual replicas). The paper
    /// evaluates 3, 5 and 10 (Fig. 10).
    pub max_entries_per_prefix: usize,
}

impl VirtualLinkBudget {
    /// A budget of `n` entries per (router, prefix).
    pub fn per_prefix(n: usize) -> Self {
        Self {
            max_entries_per_prefix: n.max(1),
        }
    }

    /// A budget large enough to be effectively unconstrained (used to
    /// approximate the "ideal" curve of Fig. 10).
    pub fn unlimited() -> Self {
        Self {
            max_entries_per_prefix: 64,
        }
    }
}

/// Statistics about a computed Fibbing program.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FibbingStats {
    /// Total fake nodes injected.
    pub fake_nodes: usize,
    /// Total destination-prefix advertisements carried by the fakes. Equal
    /// to `fake_nodes` for uncompressed programs (one prefix per fake);
    /// larger once compression shares fakes across destinations.
    pub prefix_advertisements: usize,
    /// Number of (router, prefix) pairs that needed at least one lie.
    pub lied_router_prefix_pairs: usize,
    /// Number of (router, prefix) pairs whose desired behaviour was already
    /// plain ECMP (no lie).
    pub native_router_prefix_pairs: usize,
    /// Largest number of FIB entries any router holds for any prefix.
    pub max_entries_per_router_prefix: u32,
}

/// A complete Fibbing configuration: the lied-to LSDB plus bookkeeping.
#[derive(Debug, Clone)]
pub struct FibbingProgram {
    /// The LSDB containing the real topology and the injected lies.
    pub lsdb: Lsdb,
    /// Statistics (fake-node counts etc.).
    pub stats: FibbingStats,
    /// What compression did to this program (all-zero when uncompressed).
    pub compression: CompressionStats,
}

/// The lies realizing one destination prefix of a target routing, plus the
/// per-destination slice of the compile statistics. Produced by
/// [`compile_destination`]; [`compute_program`] is exactly the concatenation
/// of these over all destinations in node order, which is what makes the
/// incremental recompile of `coyote-serve` bit-identical to a cold compile.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DestinationLies {
    /// The lies for this prefix, in injection order. `FakeNodeId`s are
    /// placeholders (`0`); [`Lsdb::inject`] assigns the dense ids.
    pub lies: Vec<FakeNodeLsa>,
    /// (router, prefix) pairs of this destination that needed a lie.
    pub lied_pairs: usize,
    /// (router, prefix) pairs already realized by plain ECMP.
    pub native_pairs: usize,
    /// Largest number of FIB entries any router holds towards this prefix.
    pub max_entries: u32,
}

/// Computes the lies realizing `target`'s DAG and splitting ratios for the
/// single destination `t`.
///
/// Only the *router* LSAs of `base` are consulted (real SPF distances; lies
/// never alter them), so the same `base` LSDB can be reused across
/// destinations and the result for `t` depends only on the physical
/// topology, `target.dag(t)` and `target`'s ratios towards `t` — the
/// separability that the incremental re-optimization layer relies on.
pub fn compile_destination(
    graph: &Graph,
    base: &Lsdb,
    target: &PdRouting,
    t: NodeId,
    budget: VirtualLinkBudget,
) -> Result<DestinationLies, OspfError> {
    if target.destination_count() != graph.node_count() {
        return Err(OspfError::DimensionMismatch(format!(
            "routing covers {} destinations, graph has {} nodes",
            target.destination_count(),
            graph.node_count()
        )));
    }
    let mut out_lies = DestinationLies::default();
    let dist = distances_to(base, graph.node_count(), t);
    let dag = target.dag(t);
    for u in graph.nodes() {
        if u == t {
            continue;
        }
        let out = dag.out_edges(u);
        if out.is_empty() {
            continue;
        }
        // Desired fractions over the DAG out-edges of u.
        let fractions: Vec<f64> = out.iter().map(|&e| target.ratio(t, e)).collect();
        let multiplicities = approximate_split(&fractions, budget.max_entries_per_prefix);

        // What would plain OSPF/ECMP do at u for this prefix?
        let real_dist = dist[u.index()];
        let native: Vec<NodeId> = graph
            .out_edges(u)
            .iter()
            .filter(|&&e| {
                let v = graph.edge(e).dst;
                dist[v.index()].is_finite()
                    && (graph.weight(e).max(1e-9) + dist[v.index()] - real_dist).abs()
                        < 1e-9 * (1.0 + real_dist.abs())
            })
            .map(|&e| graph.edge(e).dst)
            .collect();

        // Desired next hops with their multiplicities.
        let desired: Vec<(NodeId, u32)> = out
            .iter()
            .zip(&multiplicities)
            .filter(|(_, &m)| m > 0)
            .map(|(&e, &m)| (graph.edge(e).dst, m))
            .collect();
        if desired.is_empty() {
            return Err(OspfError::UnrealizableSplit {
                router: u.index(),
                destination: t.index(),
            });
        }

        // Native ECMP matches iff the desired set is exactly the native
        // set, each with multiplicity one.
        let mut desired_sorted: Vec<(usize, u32)> =
            desired.iter().map(|&(n, m)| (n.index(), m)).collect();
        desired_sorted.sort();
        let mut native_sorted: Vec<(usize, u32)> =
            native.iter().map(|n| (n.index(), 1)).collect();
        native_sorted.sort();
        if desired_sorted == native_sorted {
            out_lies.native_pairs += 1;
            continue;
        }

        // Otherwise: lie. All fake routes share a total cost strictly
        // below the real distance so the router uses them exclusively;
        // the per-neighbor multiplicity realizes the split.
        out_lies.lied_pairs += 1;
        let total_cost = if real_dist.is_finite() {
            real_dist * 0.5
        } else {
            1.0
        };
        for &(neighbor, mult) in &desired {
            for _ in 0..mult {
                out_lies.lies.push(FakeNodeLsa::single(
                    u,
                    t,
                    total_cost / 2.0,
                    total_cost / 2.0,
                    neighbor,
                ));
            }
        }
        let entries: u32 = desired.iter().map(|&(_, m)| m).sum();
        out_lies.max_entries = out_lies.max_entries.max(entries);
    }
    Ok(out_lies)
}

/// Computes the lies realizing `target` under the given budget.
pub fn compute_program(
    graph: &Graph,
    target: &PdRouting,
    budget: VirtualLinkBudget,
) -> Result<FibbingProgram, OspfError> {
    let _span = coyote_obs::span("ospf.compile");
    if target.destination_count() != graph.node_count() {
        return Err(OspfError::DimensionMismatch(format!(
            "routing covers {} destinations, graph has {} nodes",
            target.destination_count(),
            graph.node_count()
        )));
    }
    let mut lsdb = Lsdb::from_graph(graph);
    let mut stats = FibbingStats::default();

    for t in graph.nodes() {
        let per_dest = compile_destination(graph, &lsdb, target, t, budget)?;
        coyote_obs::observe(
            "ospf.fake_nodes_per_destination",
            per_dest.lies.len() as u64,
        );
        for lie in per_dest.lies {
            lsdb.inject(lie);
            stats.fake_nodes += 1;
        }
        stats.lied_router_prefix_pairs += per_dest.lied_pairs;
        stats.native_router_prefix_pairs += per_dest.native_pairs;
        stats.max_entries_per_router_prefix = stats
            .max_entries_per_router_prefix
            .max(per_dest.max_entries);
    }

    // One prefix advertisement per (single-prefix) fake node here; the
    // compression pass recomputes both when fakes become shared.
    stats.prefix_advertisements = stats.fake_nodes;

    if coyote_obs::enabled() {
        coyote_obs::counter("ospf.compile_runs", 1);
        coyote_obs::counter("ospf.fake_nodes", stats.fake_nodes as u64);
        // One forged fake-node LSA realizes each fake node in this
        // implementation, so the LSA count mirrors the fake-node count.
        coyote_obs::counter("ospf.forged_lsas", stats.fake_nodes as u64);
        coyote_obs::counter(
            "ospf.lied_router_prefix_pairs",
            stats.lied_router_prefix_pairs as u64,
        );
    }

    Ok(FibbingProgram {
        lsdb,
        stats,
        compression: CompressionStats::default(),
    })
}

/// Runs the routers' SPF over the program's LSDB and returns the FIB.
pub fn program_fib(graph: &Graph, program: &FibbingProgram) -> Fib {
    compute_fib(&program.lsdb, graph.node_count())
}

/// The routing the real routers would realize under this program.
pub fn realized_routing(graph: &Graph, program: &FibbingProgram) -> Result<PdRouting, OspfError> {
    program_fib(graph, program).to_routing(graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use coyote_core::example_fig1;
    use coyote_core::{ecmp_routing, uniform_augmented_routing};

    #[test]
    fn plain_ecmp_needs_no_lies() {
        let (g, _) = example_fig1::topology();
        let target = ecmp_routing(&g).unwrap();
        let program = compute_program(&g, &target, VirtualLinkBudget::per_prefix(5)).unwrap();
        assert_eq!(program.stats.fake_nodes, 0);
        assert_eq!(program.stats.lied_router_prefix_pairs, 0);
        assert!(program.stats.native_router_prefix_pairs > 0);
        let realized = realized_routing(&g, &program).unwrap();
        for t in g.nodes() {
            for e in g.edges() {
                assert!((realized.ratio(t, e) - target.ratio(t, e)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn fig1c_splits_are_realized_with_a_handful_of_lies() {
        let (g, nodes) = example_fig1::topology();
        let target = example_fig1::fig1c_routing(&g, &nodes);
        let program = compute_program(&g, &target, VirtualLinkBudget::per_prefix(3)).unwrap();
        assert!(program.stats.fake_nodes > 0);
        let realized = realized_routing(&g, &program).unwrap();
        realized.validate(&g).unwrap();
        // The 2/3 - 1/3 split at s2 towards t is realized exactly with 3
        // entries.
        let s2t = g.find_edge(nodes.s2, nodes.t).unwrap();
        let s2v = g.find_edge(nodes.s2, nodes.v).unwrap();
        assert!((realized.ratio(nodes.t, s2t) - 2.0 / 3.0).abs() < 1e-9);
        assert!((realized.ratio(nodes.t, s2v) - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn golden_split_approximation_improves_with_the_budget() {
        let (g, nodes) = example_fig1::topology();
        let target = example_fig1::golden_routing(&g, &nodes);
        let mut last_err = f64::INFINITY;
        for budget in [3usize, 5, 10, 32] {
            let program =
                compute_program(&g, &target, VirtualLinkBudget::per_prefix(budget)).unwrap();
            let realized = realized_routing(&g, &program).unwrap();
            let s1s2 = g.find_edge(nodes.s1, nodes.s2).unwrap();
            let err = (realized.ratio(nodes.t, s1s2) - example_fig1::INVERSE_GOLDEN_RATIO).abs();
            assert!(
                err <= last_err + 1e-9,
                "budget {budget}: error {err} > {last_err}"
            );
            last_err = err;
        }
        assert!(last_err < 0.02);
    }

    #[test]
    fn augmented_uniform_routing_is_realizable() {
        let (g, _) = example_fig1::topology();
        let target = uniform_augmented_routing(&g).unwrap();
        let program = compute_program(&g, &target, VirtualLinkBudget::per_prefix(5)).unwrap();
        let realized = realized_routing(&g, &program).unwrap();
        realized.validate(&g).unwrap();
        // Every DAG edge with positive target ratio keeps a positive
        // realized ratio.
        for t in g.nodes() {
            for e in g.edges() {
                if target.ratio(t, e) > 0.0 {
                    assert!(
                        realized.ratio(t, e) > 0.0,
                        "edge {e} lost its share for destination {t}"
                    );
                }
            }
        }
    }

    #[test]
    fn budget_caps_the_fib_entries() {
        let (g, nodes) = example_fig1::topology();
        let target = example_fig1::golden_routing(&g, &nodes);
        let program = compute_program(&g, &target, VirtualLinkBudget::per_prefix(3)).unwrap();
        let fib = program_fib(&g, &program);
        for u in g.nodes() {
            for t in g.nodes() {
                assert!(
                    fib.entry(u, t).total_entries() <= 3,
                    "router {u} exceeds the 3-entry budget towards {t}"
                );
            }
        }
        assert!(program.stats.max_entries_per_router_prefix <= 3);
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let (g, _) = example_fig1::topology();
        let mut small = Graph::new();
        small.add_node("x").unwrap();
        small.add_node("y").unwrap();
        small
            .add_bidirectional_edge(NodeId(0), NodeId(1), 1.0, 1.0)
            .unwrap();
        let target = ecmp_routing(&small).unwrap();
        assert!(matches!(
            compute_program(&g, &target, VirtualLinkBudget::per_prefix(3)),
            Err(OspfError::DimensionMismatch(_))
        ));
    }
}
