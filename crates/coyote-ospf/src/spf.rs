//! Per-router SPF over the (possibly lied-to) LSDB.
//!
//! Every OSPF router runs Dijkstra over the link-state database and installs
//! the equal-cost next hops towards each destination prefix. Fake-node
//! advertisements participate exactly like real routes: if a lie attached at
//! router `u` advertises the destination at a total cost lower than `u`'s
//! real shortest-path distance, `u` prefers the lie (and forwards to the
//! lie's forwarding address); equal-cost lies and real routes are combined
//! by ECMP, with one FIB entry each — which is how virtual next hops realize
//! unequal splits.

use crate::fib::Fib;
use crate::lsdb::Lsdb;
use coyote_graph::NodeId;

/// Relative tolerance when comparing route costs.
const COST_EPSILON: f64 = 1e-9;

/// Shortest distances towards `destination` computed from the *real* router
/// LSAs of the LSDB (fake nodes do not alter the real distance field — in
/// Fibbing the lies are crafted per-destination and only influence the
/// routers they are attached to).
pub fn distances_to(lsdb: &Lsdb, node_count: usize, destination: NodeId) -> Vec<f64> {
    coyote_obs::counter("ospf.spf.runs", 1);
    // Build reverse adjacency: for Dijkstra towards the destination we relax
    // incoming links, i.e. we need, for every router v, the list of (u, w)
    // such that u advertises a link u -> v with weight w.
    let mut incoming: Vec<Vec<(usize, f64)>> = vec![Vec::new(); node_count];
    for lsa in lsdb.router_lsas() {
        for link in &lsa.links {
            incoming[link.neighbor.index()]
                .push((lsa.router.index(), link.weight.max(COST_EPSILON)));
        }
    }

    let mut dist = vec![f64::INFINITY; node_count];
    let mut done = vec![false; node_count];
    dist[destination.index()] = 0.0;
    for _ in 0..node_count {
        // O(n^2) Dijkstra: the LSDBs in play are small and this keeps the
        // routine allocation-free in the inner loop.
        let mut best = usize::MAX;
        let mut best_d = f64::INFINITY;
        for (i, (&d, &f)) in dist.iter().zip(done.iter()).enumerate() {
            if !f && d < best_d {
                best_d = d;
                best = i;
            }
        }
        if best == usize::MAX {
            break;
        }
        done[best] = true;
        for &(u, w) in &incoming[best] {
            if dist[best] + w < dist[u] - COST_EPSILON {
                dist[u] = dist[best] + w;
            }
        }
    }
    dist
}

/// Computes the full FIB: for every destination prefix and every router, the
/// ECMP next-hop multiset after taking the injected lies into account.
pub fn compute_fib(lsdb: &Lsdb, node_count: usize) -> Fib {
    let _span = coyote_obs::span("ospf.spf");
    let mut fib = Fib::new(node_count);
    for t_idx in 0..node_count {
        let t = NodeId(t_idx);
        let dist = distances_to(lsdb, node_count, t);
        for lsa in lsdb.router_lsas() {
            let u = lsa.router;
            if u == t || !dist[u.index()].is_finite() {
                continue;
            }
            let real_dist = dist[u.index()];

            // Cheapest lie attached at u advertising this destination, if
            // any (shared fakes carry per-prefix costs).
            let best_fake = lsdb
                .fakes_at(u, t)
                .filter_map(|f| f.total_cost_to(t))
                .fold(f64::INFINITY, f64::min);

            let best = real_dist.min(best_fake);
            let tol = COST_EPSILON * (1.0 + best.abs());
            let entry = fib.entry_mut(u, t);

            if (real_dist - best).abs() <= tol {
                // Real ECMP next hops participate.
                for link in &lsa.links {
                    let v = link.neighbor;
                    if !dist[v.index()].is_finite() {
                        continue;
                    }
                    let through = link.weight.max(COST_EPSILON) + dist[v.index()];
                    if (through - real_dist).abs() <= COST_EPSILON * (1.0 + real_dist.abs()) {
                        entry.add(v, 1);
                    }
                }
            }
            // Lies at the best cost add one entry each towards their
            // forwarding address.
            for f in lsdb.fakes_at(u, t) {
                let Some(cost) = f.total_cost_to(t) else {
                    continue;
                };
                if (cost - best).abs() <= tol {
                    entry.add(f.forwarding_address, 1);
                }
            }
        }
    }
    fib
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lsa::FakeNodeLsa;
    use coyote_graph::Graph;

    fn fig1() -> (Graph, NodeId, NodeId, NodeId, NodeId) {
        let mut g = Graph::new();
        let s1 = g.add_node("s1").unwrap();
        let s2 = g.add_node("s2").unwrap();
        let v = g.add_node("v").unwrap();
        let t = g.add_node("t").unwrap();
        g.add_bidirectional_edge(s1, s2, 1.0, 1.0).unwrap();
        g.add_bidirectional_edge(s1, v, 1.0, 1.0).unwrap();
        g.add_bidirectional_edge(s2, v, 1.0, 1.0).unwrap();
        g.add_bidirectional_edge(s2, t, 1.0, 1.0).unwrap();
        g.add_bidirectional_edge(v, t, 1.0, 1.0).unwrap();
        (g, s1, s2, v, t)
    }

    #[test]
    fn distances_match_the_graph_spf() {
        let (g, s1, s2, v, t) = fig1();
        let lsdb = Lsdb::from_graph(&g);
        let dist = distances_to(&lsdb, 4, t);
        assert_eq!(dist[t.index()], 0.0);
        assert!((dist[s2.index()] - 1.0).abs() < 1e-9);
        assert!((dist[v.index()] - 1.0).abs() < 1e-9);
        assert!((dist[s1.index()] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn honest_lsdb_reproduces_plain_ecmp() {
        let (g, s1, s2, v, t) = fig1();
        let lsdb = Lsdb::from_graph(&g);
        let fib = compute_fib(&lsdb, 4);
        // s1 splits equally between s2 and v; s2 and v go straight to t.
        let e = fib.entry(s1, t);
        assert_eq!(e.total_entries(), 2);
        assert!((e.fraction_to(s2) - 0.5).abs() < 1e-12);
        assert!((e.fraction_to(v) - 0.5).abs() < 1e-12);
        assert_eq!(fib.entry(s2, t).total_entries(), 1);
        assert!((fib.entry(s2, t).fraction_to(t) - 1.0).abs() < 1e-12);
        // The routing derived from the honest FIB is exactly ECMP.
        let routing = fib.to_routing(&g).unwrap();
        let ecmp = coyote_core::ecmp_routing(&g).unwrap();
        for dest in g.nodes() {
            for e in g.edges() {
                assert!(
                    (routing.ratio(dest, e) - ecmp.ratio(dest, e)).abs() < 1e-9,
                    "mismatch for destination {dest} edge {e}"
                );
            }
        }
    }

    #[test]
    fn a_cheaper_lie_overrides_the_real_route() {
        // Deceive s2 into sending t-traffic via v (instead of its direct
        // link) by advertising a fake node at total cost 0.5 < 1.
        let (g, _s1, s2, v, t) = fig1();
        let mut lsdb = Lsdb::from_graph(&g);
        lsdb.inject(FakeNodeLsa::single(s2, t, 0.25, 0.25, v));
        let fib = compute_fib(&lsdb, 4);
        let e = fib.entry(s2, t);
        assert_eq!(e.total_entries(), 1);
        assert!((e.fraction_to(v) - 1.0).abs() < 1e-12);
        assert_eq!(e.fraction_to(t), 0.0);
    }

    #[test]
    fn replicated_lies_realize_unequal_splits() {
        // Fig. 1d: two virtual entries towards s2 and the real path via v
        // give s1 a 2/3 - 1/3 split. We realize it with lies only: three
        // fake entries, two resolving to s2 and one to v, all cheaper than
        // the real distance.
        let (g, s1, s2, v, t) = fig1();
        let mut lsdb = Lsdb::from_graph(&g);
        let lie = |fwd: NodeId| FakeNodeLsa::single(s1, t, 0.5, 0.5, fwd);
        lsdb.inject(lie(s2));
        lsdb.inject(lie(s2));
        lsdb.inject(lie(v));
        let fib = compute_fib(&lsdb, 4);
        let e = fib.entry(s1, t);
        assert_eq!(e.total_entries(), 3);
        assert!((e.fraction_to(s2) - 2.0 / 3.0).abs() < 1e-12);
        assert!((e.fraction_to(v) - 1.0 / 3.0).abs() < 1e-12);
        // Other routers are unaffected.
        assert_eq!(fib.entry(s2, t).total_entries(), 1);
    }

    #[test]
    fn lies_for_one_prefix_do_not_leak_to_others() {
        let (g, s1, s2, v, t) = fig1();
        let mut lsdb = Lsdb::from_graph(&g);
        lsdb.inject(FakeNodeLsa::single(s1, t, 0.5, 0.5, s2));
        let fib = compute_fib(&lsdb, 4);
        // Routing towards v (a different prefix) is untouched ECMP.
        let e = fib.entry(s1, v);
        assert_eq!(e.total_entries(), 1);
        assert!((e.fraction_to(v) - 1.0).abs() < 1e-12);
        let _ = s2;
    }

    #[test]
    fn equal_cost_lie_combines_with_real_routes() {
        // A lie at exactly the real distance adds a parallel entry instead
        // of replacing the real ones.
        let (g, _s1, s2, v, t) = fig1();
        let mut lsdb = Lsdb::from_graph(&g);
        lsdb.inject(FakeNodeLsa::single(s2, t, 0.5, 0.5, v));
        let fib = compute_fib(&lsdb, 4);
        let e = fib.entry(s2, t);
        assert_eq!(e.total_entries(), 2);
        assert!((e.fraction_to(t) - 0.5).abs() < 1e-12);
        assert!((e.fraction_to(v) - 0.5).abs() < 1e-12);
    }
}
