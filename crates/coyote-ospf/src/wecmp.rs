//! Approximating unequal splits with ECMP multiplicities (Nemeth et al. \[18\]).
//!
//! ECMP divides traffic *equally* among next-hop FIB entries. To realize an
//! unequal split `(p_1, …, p_k)` a next hop can be installed several times
//! (through virtual adjacencies): with multiplicities `(m_1, …, m_k)` the
//! realized split is `m_i / Σ m_j`. The number of extra entries is bounded
//! by the operator (the paper evaluates 3, 5 and 10 virtual links per router
//! interface, Fig. 10), so the multiplicities must approximate the desired
//! fractions under a budget.

/// Approximates the desired `fractions` (non-negative, at least one
/// positive) by integer multiplicities whose total is at most
/// `max_total_entries` (and at least the number of strictly positive
/// fractions — every used next hop needs one real FIB entry).
///
/// Zero fractions get multiplicity zero. Every admissible total is
/// allocated with the largest-remainder method and the total with the
/// smallest maximum error is returned (the smallest such total on ties, so
/// the FIB never grows without an accuracy payoff). The search is trivially
/// cheap: budgets are small integers.
pub fn approximate_split(fractions: &[f64], max_total_entries: usize) -> Vec<u32> {
    let positive: Vec<usize> = fractions
        .iter()
        .enumerate()
        .filter(|(_, &f)| f > 0.0)
        .map(|(i, _)| i)
        .collect();
    let mut result = vec![0u32; fractions.len()];
    if positive.is_empty() {
        return result;
    }
    let total: f64 = positive.iter().map(|&i| fractions[i]).sum();
    let shares: Vec<f64> = positive.iter().map(|&i| fractions[i] / total).collect();
    let budget = max_total_entries.max(positive.len());

    let mut best: Option<(f64, Vec<u32>)> = None;
    for entries in positive.len()..=budget {
        let assigned = largest_remainder(&shares, entries as u32);
        let err = shares
            .iter()
            .zip(&assigned)
            .map(|(&s, &m)| (s - m as f64 / entries as f64).abs())
            .fold(0.0, f64::max);
        if best.as_ref().is_none_or(|(e, _)| err < *e - 1e-12) {
            best = Some((err, assigned));
        }
    }
    let (_, assigned) = best.expect("at least one admissible total");
    for (slot, &i) in positive.iter().enumerate() {
        result[i] = assigned[slot];
    }
    result
}

/// Quantizes the desired `fractions` to the *smallest* multiplicity
/// vocabulary whose realized split stays within `epsilon` of the desired
/// one: the budget search of [`approximate_split`] run for minimality
/// instead of accuracy.
///
/// Totals are searched in increasing order (from the number of positive
/// fractions up to `max_total_entries`) and the first total whose
/// largest-remainder apportionment has maximum error `<= epsilon` wins —
/// the compression pass's ratio-quantization leg. When no admissible total
/// meets the tolerance the result falls back to [`approximate_split`]
/// (minimal error under the budget), so the quantized program is never
/// *worse* than the budgeted one.
pub fn quantize_split(fractions: &[f64], epsilon: f64, max_total_entries: usize) -> Vec<u32> {
    let positive: Vec<usize> = fractions
        .iter()
        .enumerate()
        .filter(|(_, &f)| f > 0.0)
        .map(|(i, _)| i)
        .collect();
    if positive.is_empty() {
        return vec![0u32; fractions.len()];
    }
    let total: f64 = positive.iter().map(|&i| fractions[i]).sum();
    let shares: Vec<f64> = positive.iter().map(|&i| fractions[i] / total).collect();
    let budget = max_total_entries.max(positive.len());

    for entries in positive.len()..=budget {
        let assigned = largest_remainder(&shares, entries as u32);
        let err = shares
            .iter()
            .zip(&assigned)
            .map(|(&s, &m)| (s - m as f64 / entries as f64).abs())
            .fold(0.0, f64::max);
        if err <= epsilon {
            let mut result = vec![0u32; fractions.len()];
            for (slot, &i) in positive.iter().enumerate() {
                result[i] = assigned[slot];
            }
            return result;
        }
    }
    approximate_split(fractions, budget)
}

/// Largest-remainder apportionment of `entries` FIB slots over normalized
/// `shares`, with a minimum of one slot per share.
fn largest_remainder(shares: &[f64], entries: u32) -> Vec<u32> {
    let ideal: Vec<f64> = shares.iter().map(|&s| s * entries as f64).collect();
    let mut assigned: Vec<u32> = ideal.iter().map(|&x| (x.floor() as u32).max(1)).collect();
    let mut used: u32 = assigned.iter().sum();

    // The minimum-one rule can overshoot: reclaim from the largest
    // over-allocations first.
    while used > entries {
        let victim = assigned
            .iter()
            .enumerate()
            .filter(|(_, &m)| m > 1)
            .max_by(|a, b| {
                let over_a = *a.1 as f64 - ideal[a.0];
                let over_b = *b.1 as f64 - ideal[b.0];
                over_a
                    .partial_cmp(&over_b)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(i, _)| i)
            .expect("entries >= number of shares");
        assigned[victim] -= 1;
        used -= 1;
    }

    // Hand out the remaining slots by largest remainder (ties to the lowest
    // index for determinism).
    while used < entries {
        let winner = (0..shares.len())
            .max_by(|&a, &b| {
                let ra = ideal[a] - assigned[a] as f64;
                let rb = ideal[b] - assigned[b] as f64;
                ra.partial_cmp(&rb)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(b.cmp(&a))
            })
            .expect("non-empty");
        assigned[winner] += 1;
        used += 1;
    }
    assigned
}

/// The split realized by a multiplicity vector.
pub fn realized_fractions(multiplicities: &[u32]) -> Vec<f64> {
    let total: u32 = multiplicities.iter().sum();
    if total == 0 {
        return vec![0.0; multiplicities.len()];
    }
    multiplicities
        .iter()
        .map(|&m| m as f64 / total as f64)
        .collect()
}

/// Maximum absolute error between the desired fractions (normalized) and the
/// split realized by the multiplicities.
pub fn max_split_error(fractions: &[f64], multiplicities: &[u32]) -> f64 {
    let total: f64 = fractions.iter().filter(|&&f| f > 0.0).sum();
    if total <= 0.0 {
        return 0.0;
    }
    let realized = realized_fractions(multiplicities);
    fractions
        .iter()
        .zip(&realized)
        .map(|(&f, &r)| ((f / total).max(0.0) - r).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_fractions_are_reproduced_when_the_budget_allows() {
        // 2/3 - 1/3 with 3 entries: multiplicities (2, 1).
        let m = approximate_split(&[2.0 / 3.0, 1.0 / 3.0], 3);
        assert_eq!(m, vec![2, 1]);
        assert!(max_split_error(&[2.0 / 3.0, 1.0 / 3.0], &m) < 1e-12);
    }

    #[test]
    fn every_used_next_hop_gets_at_least_one_entry() {
        let m = approximate_split(&[0.98, 0.01, 0.01], 3);
        assert!(m.iter().all(|&x| x >= 1));
        assert_eq!(m.iter().sum::<u32>(), 3);
        // Zero fractions stay at zero.
        let m = approximate_split(&[0.5, 0.0, 0.5], 4);
        assert_eq!(m[1], 0);
    }

    #[test]
    fn larger_budgets_never_increase_the_error() {
        let fractions = [0.618, 0.382];
        let mut last = f64::INFINITY;
        for budget in [2usize, 3, 5, 10, 50] {
            let m = approximate_split(&fractions, budget);
            let err = max_split_error(&fractions, &m);
            assert!(
                err <= last + 1e-9,
                "error went up at budget {budget}: {err} > {last}"
            );
            last = err;
        }
        // With 50 entries the golden split is almost exact.
        assert!(last < 0.02);
    }

    #[test]
    fn budget_below_the_number_of_next_hops_is_raised() {
        let m = approximate_split(&[0.25, 0.25, 0.25, 0.25], 2);
        assert_eq!(m.iter().sum::<u32>(), 4);
        assert_eq!(m, vec![1, 1, 1, 1]);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(approximate_split(&[], 5), Vec::<u32>::new());
        assert_eq!(approximate_split(&[0.0, 0.0], 5), vec![0, 0]);
        assert_eq!(realized_fractions(&[0, 0]), vec![0.0, 0.0]);
        assert_eq!(max_split_error(&[0.0], &[0]), 0.0);
    }

    #[test]
    fn quantize_finds_the_smallest_total_within_tolerance() {
        // 0.6/0.4 is exact at 5 entries but within 0.1 already at 2.
        assert_eq!(quantize_split(&[0.6, 0.4], 0.1, 64), vec![1, 1]);
        assert_eq!(quantize_split(&[0.6, 0.4], 0.0, 64), vec![3, 2]);
        // Equal splits need exactly one entry per next hop at any epsilon.
        assert_eq!(quantize_split(&[0.5, 0.5], 0.0, 64), vec![1, 1]);
        // Zero fractions stay at zero.
        assert_eq!(quantize_split(&[0.7, 0.0, 0.3], 0.05, 64), vec![2, 0, 1]);
        assert_eq!(quantize_split(&[0.0, 0.0], 0.05, 8), vec![0, 0]);
        assert_eq!(quantize_split(&[], 0.05, 8), Vec::<u32>::new());
    }

    #[test]
    fn quantize_never_exceeds_the_tolerance_when_the_budget_allows() {
        let fractions = [0.618, 0.382];
        for eps in [0.2, 0.1, 0.05, 0.02, 0.01] {
            let m = quantize_split(&fractions, eps, 256);
            assert!(
                max_split_error(&fractions, &m) <= eps + 1e-12,
                "eps {eps}: multiplicities {m:?}"
            );
        }
        // Tighter tolerances never shrink the vocabulary.
        let coarse: u32 = quantize_split(&fractions, 0.1, 256).iter().sum();
        let fine: u32 = quantize_split(&fractions, 0.01, 256).iter().sum();
        assert!(coarse <= fine);
    }

    #[test]
    fn quantize_falls_back_to_the_budgeted_approximation() {
        // epsilon 0 is unreachable for the golden ratio under a budget of 7:
        // the fallback must equal approximate_split's minimal-error answer.
        let fractions = [0.618, 0.382];
        assert_eq!(
            quantize_split(&fractions, 0.0, 7),
            approximate_split(&fractions, 7)
        );
    }

    #[test]
    fn realized_fractions_sum_to_one() {
        let m = approximate_split(&[0.7, 0.2, 0.1], 10);
        let r = realized_fractions(&m);
        assert!((r.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // The heaviest next hop keeps the most entries.
        assert!(m[0] > m[1] && m[1] >= m[2]);
    }

    #[test]
    fn uniform_fractions_do_not_waste_budget() {
        // An equal split is exact with one entry per next hop; a larger
        // budget must not inflate the FIB for zero accuracy gain.
        let fractions = [1.0 / 3.0; 3];
        let m = approximate_split(&fractions, 10);
        assert_eq!(m, vec![1, 1, 1]);
        assert_eq!(max_split_error(&fractions, &m), 0.0);
    }
}
