//! Forwarding Information Base: what each router actually installs.
//!
//! After SPF runs over the (possibly lied-to) LSDB, every router holds, per
//! destination prefix, a multiset of next hops: real neighbors, each
//! possibly repeated because several (real or virtual) equal-cost paths
//! resolve to it. ECMP hashes flows uniformly over the entries, so the
//! realized split towards a neighbor is its multiplicity divided by the
//! total number of entries.

use crate::error::OspfError;
use coyote_core::PdRouting;
use coyote_graph::{Dag, EdgeId, Graph, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One router's next-hop multiset towards one destination.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FibEntry {
    /// Next-hop neighbor and its ECMP multiplicity.
    pub next_hops: BTreeMap<usize, u32>,
}

impl FibEntry {
    /// Adds `count` entries towards `neighbor`.
    pub fn add(&mut self, neighbor: NodeId, count: u32) {
        if count == 0 {
            return;
        }
        *self.next_hops.entry(neighbor.index()).or_insert(0) += count;
    }

    /// Total number of ECMP entries.
    pub fn total_entries(&self) -> u32 {
        self.next_hops.values().sum()
    }

    /// The realized split fraction towards `neighbor`.
    pub fn fraction_to(&self, neighbor: NodeId) -> f64 {
        let total = self.total_entries();
        if total == 0 {
            return 0.0;
        }
        *self.next_hops.get(&neighbor.index()).unwrap_or(&0) as f64 / total as f64
    }

    /// Iterates over `(neighbor, multiplicity)` pairs in neighbor order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, u32)> + '_ {
        self.next_hops.iter().map(|(&n, &m)| (NodeId(n), m))
    }
}

/// The forwarding state of the whole network: per destination prefix, per
/// router, a [`FibEntry`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fib {
    node_count: usize,
    /// `entries[destination][router]`.
    entries: Vec<Vec<FibEntry>>,
}

impl Fib {
    /// An empty FIB over `node_count` routers.
    pub fn new(node_count: usize) -> Self {
        Self {
            node_count,
            entries: vec![vec![FibEntry::default(); node_count]; node_count],
        }
    }

    /// Number of routers.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// The entry of `router` towards `destination`.
    pub fn entry(&self, router: NodeId, destination: NodeId) -> &FibEntry {
        &self.entries[destination.index()][router.index()]
    }

    /// Mutable access (used by the SPF computation).
    pub fn entry_mut(&mut self, router: NodeId, destination: NodeId) -> &mut FibEntry {
        &mut self.entries[destination.index()][router.index()]
    }

    /// Total number of FIB entries across the network for one destination —
    /// the FIB-size cost of the configuration (Section VI discusses keeping
    /// this small).
    pub fn total_entries_for(&self, destination: NodeId) -> u32 {
        self.entries[destination.index()]
            .iter()
            .map(FibEntry::total_entries)
            .sum()
    }

    /// Converts the FIB into a [`PdRouting`] so the core evaluation machinery
    /// (worst-case ratios, stretch, …) can be applied to the *realized*
    /// configuration. Fails if the forwarding state contains a loop for some
    /// destination.
    pub fn to_routing(&self, graph: &Graph) -> Result<PdRouting, OspfError> {
        if graph.node_count() != self.node_count {
            return Err(OspfError::DimensionMismatch(format!(
                "FIB has {} routers, graph has {}",
                self.node_count,
                graph.node_count()
            )));
        }
        let mut dags = Vec::with_capacity(self.node_count);
        let mut ratios = Vec::with_capacity(self.node_count);
        for t in graph.nodes() {
            let mut edges: Vec<EdgeId> = Vec::new();
            let mut raw = vec![0.0; graph.edge_count()];
            for u in graph.nodes() {
                if u == t {
                    continue;
                }
                let entry = self.entry(u, t);
                let total = entry.total_entries();
                if total == 0 {
                    continue;
                }
                for (neighbor, mult) in entry.iter() {
                    let e =
                        graph
                            .find_edge(u, neighbor)
                            .ok_or_else(|| OspfError::InvalidNextHop {
                                router: u.index(),
                                neighbor: neighbor.index(),
                            })?;
                    edges.push(e);
                    raw[e.index()] = mult as f64 / total as f64;
                }
            }
            let dag = Dag::new(graph, t, &edges).map_err(|e| OspfError::ForwardingLoop {
                destination: t.index(),
                detail: e.to_string(),
            })?;
            dags.push(dag);
            ratios.push(raw);
        }
        Ok(PdRouting::from_ratios(graph, dags, ratios))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line() -> Graph {
        let mut g = Graph::new();
        let a = g.add_node("a").unwrap();
        let b = g.add_node("b").unwrap();
        let c = g.add_node("c").unwrap();
        g.add_bidirectional_edge(a, b, 1.0, 1.0).unwrap();
        g.add_bidirectional_edge(b, c, 1.0, 1.0).unwrap();
        g
    }

    #[test]
    fn entry_fractions_follow_multiplicities() {
        let mut e = FibEntry::default();
        e.add(NodeId(1), 2);
        e.add(NodeId(2), 1);
        e.add(NodeId(1), 1);
        e.add(NodeId(3), 0);
        assert_eq!(e.total_entries(), 4);
        assert!((e.fraction_to(NodeId(1)) - 0.75).abs() < 1e-12);
        assert!((e.fraction_to(NodeId(2)) - 0.25).abs() < 1e-12);
        assert_eq!(e.fraction_to(NodeId(9)), 0.0);
        assert_eq!(e.iter().count(), 2);
    }

    #[test]
    fn fib_converts_to_a_valid_routing() {
        let g = line();
        let mut fib = Fib::new(3);
        // Towards c: a -> b, b -> c.
        fib.entry_mut(NodeId(0), NodeId(2)).add(NodeId(1), 1);
        fib.entry_mut(NodeId(1), NodeId(2)).add(NodeId(2), 1);
        // Towards b: a -> b, c -> b.
        fib.entry_mut(NodeId(0), NodeId(1)).add(NodeId(1), 1);
        fib.entry_mut(NodeId(2), NodeId(1)).add(NodeId(1), 1);
        // Towards a: b -> a, c -> b.
        fib.entry_mut(NodeId(1), NodeId(0)).add(NodeId(0), 1);
        fib.entry_mut(NodeId(2), NodeId(0)).add(NodeId(1), 1);
        let routing = fib.to_routing(&g).unwrap();
        routing.validate(&g).unwrap();
        assert_eq!(fib.total_entries_for(NodeId(2)), 2);
    }

    #[test]
    fn forwarding_loops_are_rejected() {
        let g = line();
        let mut fib = Fib::new(3);
        // Towards c: a -> b but b -> a (loop, and never reaches c).
        fib.entry_mut(NodeId(0), NodeId(2)).add(NodeId(1), 1);
        fib.entry_mut(NodeId(1), NodeId(2)).add(NodeId(0), 1);
        assert!(matches!(
            fib.to_routing(&g),
            Err(OspfError::ForwardingLoop { .. })
        ));
    }

    #[test]
    fn next_hops_must_be_physical_neighbors() {
        let g = line();
        let mut fib = Fib::new(3);
        // a claims c as a next hop but has no a-c link.
        fib.entry_mut(NodeId(0), NodeId(2)).add(NodeId(2), 1);
        assert!(matches!(
            fib.to_routing(&g),
            Err(OspfError::InvalidNextHop { .. })
        ));
    }

    #[test]
    fn dimension_mismatch_is_detected() {
        let g = line();
        let fib = Fib::new(5);
        assert!(matches!(
            fib.to_routing(&g),
            Err(OspfError::DimensionMismatch(_))
        ));
    }
}
