//! The OSPF link-state database, including injected lies.

use crate::lsa::{FakeNodeId, FakeNodeLsa, RouterLink, RouterLsa};
use coyote_graph::{Graph, NodeId};
use serde::{Deserialize, Serialize};

/// The link-state database every router's SPF computation reads: the real
/// topology (one [`RouterLsa`] per router) plus the fake-node advertisements
/// injected by the Fibbing controller.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Lsdb {
    router_lsas: Vec<RouterLsa>,
    fakes: Vec<FakeNodeLsa>,
}

impl Lsdb {
    /// Builds the LSDB describing the physical topology of `graph` (no lies).
    pub fn from_graph(graph: &Graph) -> Self {
        let router_lsas = graph
            .nodes()
            .map(|r| RouterLsa {
                router: r,
                links: graph
                    .out_edges(r)
                    .iter()
                    .map(|&e| RouterLink {
                        neighbor: graph.edge(e).dst,
                        weight: graph.weight(e),
                    })
                    .collect(),
            })
            .collect();
        Self {
            router_lsas,
            fakes: Vec::new(),
        }
    }

    /// The real router advertisements.
    pub fn router_lsas(&self) -> &[RouterLsa] {
        &self.router_lsas
    }

    /// Injects a lie and returns its id.
    pub fn inject(&mut self, mut lie: FakeNodeLsa) -> FakeNodeId {
        let id = FakeNodeId(self.fakes.len());
        lie.id = id;
        self.fakes.push(lie);
        id
    }

    /// All injected lies.
    pub fn fakes(&self) -> &[FakeNodeLsa] {
        &self.fakes
    }

    /// Number of injected fake nodes.
    pub fn fake_count(&self) -> usize {
        self.fakes.len()
    }

    /// Lies relevant to one destination prefix.
    pub fn fakes_for(&self, destination: NodeId) -> impl Iterator<Item = &FakeNodeLsa> + '_ {
        self.fakes.iter().filter(move |f| f.destination == destination)
    }

    /// Lies attached at one router for one destination prefix.
    pub fn fakes_at(
        &self,
        router: NodeId,
        destination: NodeId,
    ) -> impl Iterator<Item = &FakeNodeLsa> + '_ {
        self.fakes
            .iter()
            .filter(move |f| f.destination == destination && f.attachment == router)
    }

    /// Removes every lie (e.g. before recomputing a new configuration).
    pub fn clear_fakes(&mut self) {
        self.fakes.clear();
    }

    /// Number of fake nodes attached per router for one destination — the
    /// quantity the paper bounds when discussing FIB blow-up (Section VI,
    /// "Approximating the optimal traffic splitting").
    pub fn fakes_per_router(&self, destination: NodeId, node_count: usize) -> Vec<usize> {
        let mut counts = vec![0usize; node_count];
        for f in self.fakes_for(destination) {
            counts[f.attachment.index()] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        let mut g = Graph::new();
        let a = g.add_node("a").unwrap();
        let b = g.add_node("b").unwrap();
        let c = g.add_node("c").unwrap();
        g.add_bidirectional_edge(a, b, 1.0, 1.0).unwrap();
        g.add_bidirectional_edge(b, c, 1.0, 2.0).unwrap();
        g.add_bidirectional_edge(a, c, 1.0, 3.0).unwrap();
        g
    }

    #[test]
    fn lsdb_mirrors_the_physical_adjacencies() {
        let g = triangle();
        let lsdb = Lsdb::from_graph(&g);
        assert_eq!(lsdb.router_lsas().len(), 3);
        let lsa_a = &lsdb.router_lsas()[0];
        assert_eq!(lsa_a.router, NodeId(0));
        assert_eq!(lsa_a.links.len(), 2);
        assert_eq!(lsdb.fake_count(), 0);
    }

    #[test]
    fn injection_assigns_sequential_ids_and_filters_work() {
        let g = triangle();
        let mut lsdb = Lsdb::from_graph(&g);
        let lie = |att: usize, dest: usize, fwd: usize| FakeNodeLsa {
            id: FakeNodeId(999),
            attachment: NodeId(att),
            destination: NodeId(dest),
            cost_to_fake: 0.1,
            cost_fake_to_destination: 0.1,
            forwarding_address: NodeId(fwd),
        };
        let id0 = lsdb.inject(lie(0, 2, 1));
        let id1 = lsdb.inject(lie(0, 2, 1));
        let id2 = lsdb.inject(lie(1, 2, 2));
        let id3 = lsdb.inject(lie(0, 1, 1));
        assert_eq!((id0, id1, id2, id3), (FakeNodeId(0), FakeNodeId(1), FakeNodeId(2), FakeNodeId(3)));
        assert_eq!(lsdb.fakes_for(NodeId(2)).count(), 3);
        assert_eq!(lsdb.fakes_at(NodeId(0), NodeId(2)).count(), 2);
        assert_eq!(lsdb.fakes_per_router(NodeId(2), 3), vec![2, 1, 0]);
        lsdb.clear_fakes();
        assert_eq!(lsdb.fake_count(), 0);
    }
}
