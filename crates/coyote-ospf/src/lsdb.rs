//! The OSPF link-state database, including injected lies.

use crate::lsa::{FakeNodeId, FakeNodeLsa, RouterLink, RouterLsa};
use coyote_graph::{Graph, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashSet};

/// What [`Lsdb::pruned`] removed while simulating OSPF's reaction to a
/// failure: dead router advertisements, withdrawn adjacencies, and lies the
/// Fibbing controller must retract because the failure invalidated them.
/// `dropped_fakes` is the *reconvergence fake-LSA delta* reported by the
/// failure engine. With compressed (multi-prefix) fakes a failure may also
/// strip individual prefix advertisements off a surviving shared fake;
/// `dropped_advertisements` counts those withdrawals (for single-prefix
/// programs it equals `dropped_fakes`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PruneStats {
    /// Router LSAs withdrawn because the router itself failed.
    pub dead_routers: usize,
    /// Directed adjacencies removed from surviving router LSAs.
    pub dropped_links: usize,
    /// Fake-node LSAs retracted entirely because the failure invalidated
    /// them (structurally, or because every prefix they advertised had to be
    /// withdrawn).
    pub dropped_fakes: usize,
    /// Fake-node LSAs that survive the failure (possibly with fewer
    /// prefixes).
    pub retained_fakes: usize,
    /// Individual prefix advertisements withdrawn, across dropped and
    /// surviving fakes.
    pub dropped_advertisements: usize,
}

/// The link-state database every router's SPF computation reads: the real
/// topology (one [`RouterLsa`] per router) plus the fake-node advertisements
/// injected by the Fibbing controller.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Lsdb {
    router_lsas: Vec<RouterLsa>,
    fakes: Vec<FakeNodeLsa>,
}

impl Lsdb {
    /// Builds an LSDB from an explicit router-LSA set with no lies — the
    /// starting point of [`crate::delta::LsaDelta::apply`], which replaces
    /// the topology advertisements wholesale on link/node events and then
    /// re-injects the surviving and updated lies in destination order.
    pub fn with_router_lsas(router_lsas: Vec<RouterLsa>) -> Self {
        Self {
            router_lsas,
            fakes: Vec::new(),
        }
    }

    /// Builds the LSDB describing the physical topology of `graph` (no lies).
    pub fn from_graph(graph: &Graph) -> Self {
        let router_lsas = graph
            .nodes()
            .map(|r| RouterLsa {
                router: r,
                links: graph
                    .out_edges(r)
                    .iter()
                    .map(|&e| RouterLink {
                        neighbor: graph.edge(e).dst,
                        weight: graph.weight(e),
                    })
                    .collect(),
            })
            .collect();
        Self {
            router_lsas,
            fakes: Vec::new(),
        }
    }

    /// The real router advertisements.
    pub fn router_lsas(&self) -> &[RouterLsa] {
        &self.router_lsas
    }

    /// Injects a lie and returns its id.
    pub fn inject(&mut self, mut lie: FakeNodeLsa) -> FakeNodeId {
        let id = FakeNodeId(self.fakes.len());
        lie.id = id;
        self.fakes.push(lie);
        id
    }

    /// All injected lies.
    pub fn fakes(&self) -> &[FakeNodeLsa] {
        &self.fakes
    }

    /// Number of injected fake nodes (fake-node LSAs; a shared fake counts
    /// once however many prefixes it advertises).
    pub fn fake_count(&self) -> usize {
        self.fakes.len()
    }

    /// Total number of prefix advertisements across all fake nodes. Equal to
    /// [`fake_count`](Self::fake_count) for uncompressed (single-prefix)
    /// programs; larger once cross-destination merging shares fakes.
    pub fn prefix_advertisement_count(&self) -> usize {
        self.fakes.iter().map(|f| f.prefix_count()).sum()
    }

    /// Lies relevant to one destination prefix (fakes advertising it).
    pub fn fakes_for(&self, destination: NodeId) -> impl Iterator<Item = &FakeNodeLsa> + '_ {
        self.fakes.iter().filter(move |f| f.advertises(destination))
    }

    /// Lies attached at one router advertising one destination prefix.
    pub fn fakes_at(
        &self,
        router: NodeId,
        destination: NodeId,
    ) -> impl Iterator<Item = &FakeNodeLsa> + '_ {
        self.fakes
            .iter()
            .filter(move |f| f.attachment == router && f.advertises(destination))
    }

    /// Removes every lie (e.g. before recomputing a new configuration).
    pub fn clear_fakes(&mut self) {
        self.fakes.clear();
    }

    /// Retracts every advertisement for one destination prefix, drops fakes
    /// left with no prefixes, and renumbers the survivors densely. Returns
    /// how many prefix advertisements were withdrawn (for single-prefix
    /// programs: how many lies).
    ///
    /// This is the Fibbing controller's emergency fallback after a failure:
    /// lies that were loop-free on the pre-failure topology can form a
    /// forwarding loop once real shortest paths reconverge around the
    /// failed element. Withdrawing the whole prefix's lies returns that
    /// destination to plain (provably loop-free) OSPF forwarding — without
    /// disturbing the other prefixes a shared fake still advertises.
    pub fn retract_fakes_for(&mut self, destination: NodeId) -> usize {
        let mut withdrawn = 0usize;
        self.fakes.retain_mut(|f| {
            let before = f.prefixes.len();
            f.prefixes.retain(|p| p.destination != destination);
            withdrawn += before - f.prefixes.len();
            !f.prefixes.is_empty()
        });
        for (i, fake) in self.fakes.iter_mut().enumerate() {
            fake.id = FakeNodeId(i);
        }
        withdrawn
    }

    /// Simulates OSPF's reaction to a failure: returns a copy of this LSDB
    /// with the `dead_nodes` and `dead_links` (unordered endpoint pairs)
    /// withdrawn, plus [`PruneStats`] describing what was removed.
    ///
    /// Real state first: router LSAs of dead routers disappear entirely
    /// (their neighbors stop hearing them), and surviving LSAs lose every
    /// adjacency towards a dead neighbor or across a dead link. Then the
    /// lies: a fake-node LSA is retracted whole when the failure invalidates
    /// it structurally — its attachment or forwarding address died, or the
    /// physical link `attachment -> forwarding_address` it relies on died.
    /// Otherwise its advertisements are filtered per prefix: an
    /// advertisement is withdrawn when its destination died or when the
    /// forwarding address can no longer reach that destination over the
    /// surviving *real* topology (forwarding into a dead end would blackhole
    /// traffic, so the controller withdraws the advertisement — other
    /// prefixes on a shared fake survive untouched). A fake left with no
    /// advertisements is retracted. Retained lies keep their metrics;
    /// re-running SPF on the pruned LSDB yields the obliviously reconverged
    /// routing.
    pub fn pruned(
        &self,
        dead_nodes: &[NodeId],
        dead_links: &[(NodeId, NodeId)],
    ) -> (Lsdb, PruneStats) {
        let dead: HashSet<NodeId> = dead_nodes.iter().copied().collect();
        let dead_pairs: HashSet<(NodeId, NodeId)> = dead_links
            .iter()
            .flat_map(|&(a, b)| [(a, b), (b, a)])
            .collect();
        let mut stats = PruneStats::default();

        let mut router_lsas = Vec::with_capacity(self.router_lsas.len());
        for lsa in &self.router_lsas {
            if dead.contains(&lsa.router) {
                stats.dead_routers += 1;
                continue;
            }
            let links: Vec<RouterLink> = lsa
                .links
                .iter()
                .filter(|l| {
                    let gone = dead.contains(&l.neighbor)
                        || dead_pairs.contains(&(lsa.router, l.neighbor));
                    if gone {
                        stats.dropped_links += 1;
                    }
                    !gone
                })
                .cloned()
                .collect();
            router_lsas.push(RouterLsa {
                router: lsa.router,
                links,
            });
        }

        let mut pruned = Lsdb {
            router_lsas,
            fakes: Vec::new(),
        };
        // Reachability of each destination over the surviving real topology,
        // computed lazily (one SPF per distinct destination among the lies).
        // The node-id space is the *original* one — a previous prune may
        // already have withdrawn LSAs, so `router_lsas.len()` undercounts.
        let node_count = self.node_id_space();
        let mut dist_cache: BTreeMap<NodeId, Vec<f64>> = BTreeMap::new();
        for fake in &self.fakes {
            let structurally_dead = dead.contains(&fake.attachment)
                || dead.contains(&fake.forwarding_address)
                || dead_pairs.contains(&(fake.attachment, fake.forwarding_address));
            if structurally_dead {
                stats.dropped_fakes += 1;
                stats.dropped_advertisements += fake.prefix_count();
                continue;
            }
            // Per-prefix filtering: dead destinations and blackholed
            // forwarding addresses lose their advertisement; the fake node
            // itself survives as long as any prefix remains.
            let mut survivor = fake.clone();
            survivor.prefixes.retain(|p| {
                let gone = dead.contains(&p.destination) || {
                    let dist = dist_cache.entry(p.destination).or_insert_with(|| {
                        crate::spf::distances_to(&pruned, node_count, p.destination)
                    });
                    !dist[fake.forwarding_address.index()].is_finite()
                };
                if gone {
                    stats.dropped_advertisements += 1;
                }
                !gone
            });
            if survivor.prefixes.is_empty() {
                stats.dropped_fakes += 1;
            } else {
                stats.retained_fakes += 1;
                pruned.fakes.push(survivor);
            }
        }
        // Re-number the surviving lies so ids stay dense and deterministic.
        for (i, fake) in pruned.fakes.iter_mut().enumerate() {
            fake.id = FakeNodeId(i);
        }
        (pruned, stats)
    }

    /// Upper bound of the node-id space referenced anywhere in this LSDB
    /// (1 + the largest node index among router LSAs, adjacencies, and
    /// lies). Robust to withdrawn router LSAs, unlike `router_lsas.len()`.
    fn node_id_space(&self) -> usize {
        let mut max = 0usize;
        for lsa in &self.router_lsas {
            max = max.max(lsa.router.index() + 1);
            for l in &lsa.links {
                max = max.max(l.neighbor.index() + 1);
            }
        }
        for f in &self.fakes {
            max = max
                .max(f.attachment.index() + 1)
                .max(f.forwarding_address.index() + 1);
            for p in &f.prefixes {
                max = max.max(p.destination.index() + 1);
            }
        }
        max
    }

    /// Number of fake nodes attached per router for one destination — the
    /// quantity the paper bounds when discussing FIB blow-up (Section VI,
    /// "Approximating the optimal traffic splitting").
    pub fn fakes_per_router(&self, destination: NodeId, node_count: usize) -> Vec<usize> {
        let mut counts = vec![0usize; node_count];
        for f in self.fakes_for(destination) {
            counts[f.attachment.index()] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lsa::PrefixAdvertisement;

    fn triangle() -> Graph {
        let mut g = Graph::new();
        let a = g.add_node("a").unwrap();
        let b = g.add_node("b").unwrap();
        let c = g.add_node("c").unwrap();
        g.add_bidirectional_edge(a, b, 1.0, 1.0).unwrap();
        g.add_bidirectional_edge(b, c, 1.0, 2.0).unwrap();
        g.add_bidirectional_edge(a, c, 1.0, 3.0).unwrap();
        g
    }

    fn lie(att: usize, dest: usize, fwd: usize) -> FakeNodeLsa {
        FakeNodeLsa::single(NodeId(att), NodeId(dest), 0.1, 0.1, NodeId(fwd))
    }

    #[test]
    fn lsdb_mirrors_the_physical_adjacencies() {
        let g = triangle();
        let lsdb = Lsdb::from_graph(&g);
        assert_eq!(lsdb.router_lsas().len(), 3);
        let lsa_a = &lsdb.router_lsas()[0];
        assert_eq!(lsa_a.router, NodeId(0));
        assert_eq!(lsa_a.links.len(), 2);
        assert_eq!(lsdb.fake_count(), 0);
        assert_eq!(lsdb.prefix_advertisement_count(), 0);
    }

    #[test]
    fn pruning_a_node_withdraws_its_lsa_and_its_neighbors_adjacencies() {
        let g = triangle();
        let lsdb = Lsdb::from_graph(&g);
        let (pruned, stats) = lsdb.pruned(&[NodeId(1)], &[]);
        assert_eq!(stats.dead_routers, 1);
        assert_eq!(stats.dropped_links, 2); // a->b and c->b withdrawn
        assert_eq!(pruned.router_lsas().len(), 2);
        for lsa in pruned.router_lsas() {
            assert!(lsa.links.iter().all(|l| l.neighbor != NodeId(1)));
        }
    }

    #[test]
    fn pruning_a_link_withdraws_both_orientations() {
        let g = triangle();
        let lsdb = Lsdb::from_graph(&g);
        let (pruned, stats) = lsdb.pruned(&[], &[(NodeId(0), NodeId(1))]);
        assert_eq!(stats.dead_routers, 0);
        assert_eq!(stats.dropped_links, 2);
        assert_eq!(pruned.router_lsas().len(), 3);
        assert!(pruned.router_lsas()[0]
            .links
            .iter()
            .all(|l| l.neighbor != NodeId(1)));
        assert!(pruned.router_lsas()[1]
            .links
            .iter()
            .all(|l| l.neighbor != NodeId(0)));
    }

    #[test]
    fn pruning_retracts_invalidated_lies_and_renumbers_survivors() {
        let g = triangle();
        let mut lsdb = Lsdb::from_graph(&g);
        // Four lies towards c: via the a->b link, via b directly, attached
        // at b, and a->c directly.
        lsdb.inject(lie(0, 2, 1)); // relies on link a-b: retracted
        lsdb.inject(lie(1, 2, 2)); // attachment b's fwd link b-c survives
        lsdb.inject(lie(0, 2, 2)); // direct a->c survives
        lsdb.inject(lie(2, 1, 1)); // destination b still reachable
        let (pruned, stats) = lsdb.pruned(&[], &[(NodeId(0), NodeId(1))]);
        assert_eq!(stats.dropped_fakes, 1);
        assert_eq!(stats.retained_fakes, 3);
        assert_eq!(stats.dropped_advertisements, 1);
        assert_eq!(pruned.fake_count(), 3);
        // Survivors are renumbered densely.
        for (i, f) in pruned.fakes().iter().enumerate() {
            assert_eq!(f.id, FakeNodeId(i));
        }
    }

    #[test]
    fn retracting_a_prefix_withdraws_its_lies_and_renumbers_the_rest() {
        let g = triangle();
        let mut lsdb = Lsdb::from_graph(&g);
        lsdb.inject(lie(0, 2, 1));
        lsdb.inject(lie(1, 2, 2));
        lsdb.inject(lie(2, 1, 1));
        assert_eq!(lsdb.retract_fakes_for(NodeId(2)), 2);
        assert_eq!(lsdb.fake_count(), 1);
        assert!(lsdb.fakes()[0].advertises(NodeId(1)));
        assert_eq!(lsdb.fakes()[0].id, FakeNodeId(0));
        assert_eq!(lsdb.retract_fakes_for(NodeId(2)), 0);
    }

    #[test]
    fn retracting_a_prefix_keeps_shared_fakes_for_other_prefixes() {
        let g = triangle();
        let mut lsdb = Lsdb::from_graph(&g);
        // A shared fake at a, forwarding via b, advertising both b and c.
        let mut shared = lie(0, 2, 1);
        shared.prefixes.push(PrefixAdvertisement {
            destination: NodeId(1),
            cost_fake_to_destination: 0.2,
        });
        lsdb.inject(shared);
        lsdb.inject(lie(0, 2, 2));
        assert_eq!(lsdb.prefix_advertisement_count(), 3);

        // Retracting c withdraws two advertisements but only one whole fake;
        // the shared fake survives, still advertising b.
        assert_eq!(lsdb.retract_fakes_for(NodeId(2)), 2);
        assert_eq!(lsdb.fake_count(), 1);
        assert_eq!(lsdb.prefix_advertisement_count(), 1);
        assert!(lsdb.fakes()[0].advertises(NodeId(1)));
        assert!(!lsdb.fakes()[0].advertises(NodeId(2)));
        assert_eq!(lsdb.fakes()[0].id, FakeNodeId(0));
    }

    #[test]
    fn pruning_strips_single_prefixes_off_shared_fakes() {
        let g = triangle();
        let mut lsdb = Lsdb::from_graph(&g);
        // Shared fake at a forwarding via c, advertising both c and b.
        let mut shared = lie(0, 2, 2);
        shared.prefixes.push(PrefixAdvertisement {
            destination: NodeId(1),
            cost_fake_to_destination: 0.2,
        });
        lsdb.inject(shared);
        // Killing router b invalidates the b-prefix advertisement, but the
        // fake (attached at a, forwarding to c) survives for c.
        let (pruned, stats) = lsdb.pruned(&[NodeId(1)], &[]);
        assert_eq!(stats.dropped_fakes, 0);
        assert_eq!(stats.retained_fakes, 1);
        assert_eq!(stats.dropped_advertisements, 1);
        assert_eq!(pruned.fake_count(), 1);
        assert!(pruned.fakes()[0].advertises(NodeId(2)));
        assert!(!pruned.fakes()[0].advertises(NodeId(1)));
    }

    #[test]
    fn pruning_retracts_lies_whose_forwarding_address_is_blackholed() {
        // Path graph a - b - c with a lie at a forwarding via b towards c.
        let mut g = Graph::new();
        let a = g.add_node("a").unwrap();
        let b = g.add_node("b").unwrap();
        let c = g.add_node("c").unwrap();
        g.add_bidirectional_edge(a, b, 1.0, 1.0).unwrap();
        g.add_bidirectional_edge(b, c, 1.0, 1.0).unwrap();
        let mut lsdb = Lsdb::from_graph(&g);
        lsdb.inject(FakeNodeLsa::single(a, c, 0.1, 0.1, b));
        // Killing the b-c link leaves the a-b link (and the lie's structure)
        // intact, but b can no longer reach c: the lie must be retracted.
        let (pruned, stats) = lsdb.pruned(&[], &[(b, c)]);
        assert_eq!(stats.dropped_fakes, 1);
        assert_eq!(stats.dropped_advertisements, 1);
        assert_eq!(pruned.fake_count(), 0);
    }

    #[test]
    fn injection_assigns_sequential_ids_and_filters_work() {
        let g = triangle();
        let mut lsdb = Lsdb::from_graph(&g);
        let id0 = lsdb.inject(lie(0, 2, 1));
        let id1 = lsdb.inject(lie(0, 2, 1));
        let id2 = lsdb.inject(lie(1, 2, 2));
        let id3 = lsdb.inject(lie(0, 1, 1));
        assert_eq!(
            (id0, id1, id2, id3),
            (FakeNodeId(0), FakeNodeId(1), FakeNodeId(2), FakeNodeId(3))
        );
        assert_eq!(lsdb.fakes_for(NodeId(2)).count(), 3);
        assert_eq!(lsdb.fakes_at(NodeId(0), NodeId(2)).count(), 2);
        assert_eq!(lsdb.fakes_per_router(NodeId(2), 3), vec![2, 1, 0]);
        assert_eq!(lsdb.prefix_advertisement_count(), 4);
        lsdb.clear_fakes();
        assert_eq!(lsdb.fake_count(), 0);
    }
}
