//! Program compression: fewer forged LSAs for the same routing.
//!
//! The uncompressed Fibbing compiler of [`crate::fibbing`] emits one
//! single-prefix fake node per virtual next-hop replica per destination
//! prefix, which makes the forged-LSA count proportional to
//! topology × prefixes (Section V-D of the paper raises exactly this
//! deployability concern; Fig. 10 bounds it with per-prefix budgets).
//! This module shrinks a compiled program with three cooperating passes,
//! applied per (router, prefix) lie group and then globally:
//!
//! 1. **Splitting-ratio quantization** (`Lossy` only): re-approximate the
//!    *target* split fractions with the smallest multiplicity vocabulary
//!    whose error stays within `epsilon` ([`quantize_split`]), instead of
//!    the accuracy-greedy [`crate::wecmp::approximate_split`]. Quantizing
//!    against the target (not the realized split) makes the pass
//!    deterministic and idempotent.
//! 2. **No-op lie elimination**: a lie group whose multiplicities are all
//!    one and whose next-hop set equals what plain SPF already computes is
//!    an exact no-op — ECMP splits equally over the same set either way —
//!    and is dropped.
//! 3. **Cross-destination fake-node merging**: surviving replicas are
//!    re-keyed by (attachment, forwarding address); replica `r` of the pair
//!    advertises every prefix that still needs more than `r` copies, so the
//!    fake-node count becomes Σ max-multiplicity per pair instead of
//!    Σ Σ multiplicity per pair per prefix.
//!
//! Equivalence argument: pass 3 preserves, per prefix, the exact multiset
//! of (attachment, forwarding address, total cost) advertisements, so the
//! per-prefix SPF outcome — and hence the FIB — is unchanged. Pass 2 only
//! removes groups whose realized behaviour is identical with or without
//! the lie. Pass 1 is the only lossy step and its per-group error against
//! the target is `<= max(epsilon, uncompressed error)`: when no smaller
//! vocabulary meets `epsilon`, [`quantize_split`] falls back to the
//! original budgeted approximation.

use crate::error::OspfError;
use crate::fibbing::{FibbingProgram, FibbingStats, VirtualLinkBudget};
use crate::lsa::{FakeNodeId, FakeNodeLsa, PrefixAdvertisement};
use crate::lsdb::Lsdb;
use crate::spf::distances_to;
use crate::wecmp::quantize_split;
use coyote_graph::{Graph, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Default split-error tolerance of the lossy compression level: well under
/// the conformance tolerance (0.05) so quantization noise cannot flip a
/// verdict on its own.
pub const DEFAULT_EPSILON: f64 = 0.02;

/// How aggressively to compress a compiled Fibbing program.
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CompressionLevel {
    /// No compression: the program is exactly what the compiler emitted.
    #[default]
    Off,
    /// Merging and exact no-op elimination only — the realized FIB is
    /// bit-identical to the uncompressed program's.
    Lossless,
    /// Additionally quantize splitting ratios to the smallest multiplicity
    /// vocabulary within `epsilon` of the target fractions.
    Lossy {
        /// Maximum tolerated per-(router, prefix) split error.
        epsilon: f64,
    },
}

impl CompressionLevel {
    /// The default lossy level ([`DEFAULT_EPSILON`]).
    pub fn lossy() -> Self {
        Self::Lossy {
            epsilon: DEFAULT_EPSILON,
        }
    }

    /// True for [`CompressionLevel::Off`].
    pub fn is_off(&self) -> bool {
        matches!(self, Self::Off)
    }

    /// The quantization tolerance: zero unless lossy.
    pub fn epsilon(&self) -> f64 {
        match self {
            Self::Lossy { epsilon } => epsilon.max(0.0),
            _ => 0.0,
        }
    }

    /// A short human-readable label (`off`, `lossless`, `lossy(0.02)`).
    pub fn label(&self) -> String {
        match self {
            Self::Off => "off".to_string(),
            Self::Lossless => "lossless".to_string(),
            Self::Lossy { epsilon } => format!("lossy({epsilon})"),
        }
    }
}

/// What compression did to a program.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompressionStats {
    /// Fake nodes before compression.
    pub fake_nodes_before: usize,
    /// Fake nodes after compression.
    pub fake_nodes_after: usize,
    /// Prefix advertisements carried by the compressed fakes.
    pub advertisements: usize,
    /// Fake-node LSAs saved by cross-destination merging (advertisements
    /// minus fake nodes: each shared prefix rides an existing LSA).
    pub merged_fake_nodes: usize,
    /// Virtual FIB entries removed by ratio quantization.
    pub quantized_entries: usize,
    /// (router, prefix) lie groups dropped as exact no-ops.
    pub eliminated_groups: usize,
}

/// One (destination, router) lie group decompiled from the LSDB.
struct LieGroup {
    /// Forwarding address -> replica multiplicity.
    hops: BTreeMap<usize, u32>,
    /// Common total advertised cost of the group's lies.
    cost: f64,
}

/// Compresses a compiled `program` for `graph`/`target` at `level`.
///
/// The program must have been compiled for exactly this graph and target
/// routing (quantization re-reads the target fractions). `Off` returns a
/// clone; `Lossless` preserves the realized FIB bit-for-bit; `Lossy`
/// bounds the per-(router, prefix) split error against the target by
/// `max(epsilon, uncompressed error)`. Compression is idempotent: the
/// rebuilt LSDB is in canonical form and a second pass reproduces it.
pub fn compress_program(
    graph: &Graph,
    target: &coyote_core::PdRouting,
    program: &FibbingProgram,
    level: CompressionLevel,
) -> Result<FibbingProgram, OspfError> {
    if target.destination_count() != graph.node_count() {
        return Err(OspfError::DimensionMismatch(format!(
            "routing covers {} destinations, graph has {} nodes",
            target.destination_count(),
            graph.node_count()
        )));
    }
    if level.is_off() {
        return Ok(program.clone());
    }
    let _span = coyote_obs::span("ospf.compress");
    let fake_nodes_before = program.lsdb.fake_count();

    // Decompile the lies into (destination, router) groups. Advertisements
    // costlier than the group's best never install FIB entries (SPF keeps
    // only best-cost routes) and are dropped here.
    let mut raw: BTreeMap<(usize, usize), Vec<(usize, f64)>> = BTreeMap::new();
    for fake in program.lsdb.fakes() {
        for p in &fake.prefixes {
            raw.entry((p.destination.index(), fake.attachment.index()))
                .or_default()
                .push((
                    fake.forwarding_address.index(),
                    fake.cost_to_fake + p.cost_fake_to_destination,
                ));
        }
    }
    let mut groups: BTreeMap<(usize, usize), LieGroup> = BTreeMap::new();
    for (key, adverts) in raw {
        let cost = adverts.iter().map(|&(_, c)| c).fold(f64::INFINITY, f64::min);
        let tol = 1e-9 * (1.0 + cost.abs());
        let mut hops = BTreeMap::new();
        for (n, c) in adverts {
            if (c - cost).abs() <= tol {
                *hops.entry(n).or_insert(0u32) += 1;
            }
        }
        groups.insert(key, LieGroup { hops, cost });
    }

    // Quantize and eliminate, destination by destination so the honest SPF
    // distance field is computed once per prefix.
    let mut quantized_entries = 0usize;
    let mut eliminated_groups = 0usize;
    let epsilon = level.epsilon();
    let destinations: Vec<usize> = {
        let mut ts: Vec<usize> = groups.keys().map(|&(t, _)| t).collect();
        ts.dedup();
        ts
    };
    for t_idx in destinations {
        let t = NodeId(t_idx);
        // `distances_to` only reads the real router LSAs, so the program's
        // LSDB doubles as the honest one.
        let dist = distances_to(&program.lsdb, graph.node_count(), t);
        let dag = target.dag(t);
        let group_keys: Vec<(usize, usize)> = groups
            .range((t_idx, 0)..(t_idx + 1, 0))
            .map(|(&k, _)| k)
            .collect();
        for key in group_keys {
            let u = NodeId(key.1);

            // Target fractions over u's DAG out-edges, keyed by next hop.
            let mut desired: BTreeMap<usize, f64> = BTreeMap::new();
            for &e in dag.out_edges(u) {
                let r = target.ratio(t, e);
                if r > 0.0 {
                    *desired.entry(graph.edge(e).dst.index()).or_insert(0.0) += r;
                }
            }

            if matches!(level, CompressionLevel::Lossy { .. }) {
                let group = groups.get_mut(&key).expect("group key just collected");
                // Quantize only when the lie's next-hop set matches the
                // target's (always true for compiler output); otherwise the
                // fractions cannot be aligned and the group is kept as-is.
                if group.hops.keys().eq(desired.keys()) && !group.hops.is_empty() {
                    let fractions: Vec<f64> = desired.values().copied().collect();
                    let current_total: u32 = group.hops.values().sum();
                    let quantized =
                        quantize_split(&fractions, epsilon, current_total as usize);
                    let new_total: u32 = quantized.iter().sum();
                    quantized_entries += current_total.saturating_sub(new_total) as usize;
                    for (slot, m) in group.hops.values_mut().zip(&quantized) {
                        *slot = *m;
                    }
                }
            }

            // Exact no-op check: all multiplicities one and the lie's hop
            // set equals plain SPF's ECMP set — the realized split is the
            // same equal split either way.
            let group = &groups[&key];
            if group.hops.values().all(|&m| m == 1) {
                let real_dist = dist[u.index()];
                let native: BTreeMap<usize, u32> = graph
                    .out_edges(u)
                    .iter()
                    .filter(|&&e| {
                        let v = graph.edge(e).dst;
                        dist[v.index()].is_finite()
                            && (graph.weight(e).max(1e-9) + dist[v.index()] - real_dist).abs()
                                < 1e-9 * (1.0 + real_dist.abs())
                    })
                    .map(|&e| (graph.edge(e).dst.index(), 1))
                    .collect();
                if native == group.hops {
                    groups.remove(&key);
                    eliminated_groups += 1;
                }
            }
        }
    }

    // Merge: re-key by (attachment, forwarding address) and rebuild the
    // LSDB in canonical order. Replica `r` of a pair advertises every
    // prefix whose multiplicity towards that pair exceeds `r`, so per
    // prefix the multiset of (attachment, forwarding, cost) lies — and
    // hence the SPF outcome — is exactly the group's.
    // (prefix, multiplicity, advertised cost) triples per (attachment,
    // forwarding) pair.
    type PairLies = Vec<(usize, u32, f64)>;
    let mut by_pair: BTreeMap<(usize, usize), PairLies> = BTreeMap::new();
    for (&(t, u), group) in &groups {
        for (&n, &m) in &group.hops {
            if m > 0 {
                by_pair.entry((u, n)).or_default().push((t, m, group.cost));
            }
        }
    }
    let mut lsdb = Lsdb::from_graph(graph);
    let mut max_entries = 0u32;
    for (&(u, n), prefixes) in &by_pair {
        let replicas = prefixes.iter().map(|&(_, m, _)| m).max().unwrap_or(0);
        for r in 0..replicas {
            lsdb.inject(FakeNodeLsa {
                id: FakeNodeId(0), // assigned by inject()
                attachment: NodeId(u),
                cost_to_fake: 0.0,
                forwarding_address: NodeId(n),
                prefixes: prefixes
                    .iter()
                    .filter(|&&(_, m, _)| m > r)
                    .map(|&(t, _, cost)| PrefixAdvertisement {
                        destination: NodeId(t),
                        cost_fake_to_destination: cost,
                    })
                    .collect(),
            });
        }
    }
    for group in groups.values() {
        max_entries = max_entries.max(group.hops.values().sum());
    }

    let fake_nodes_after = lsdb.fake_count();
    let advertisements = lsdb.prefix_advertisement_count();
    let compression = CompressionStats {
        fake_nodes_before,
        fake_nodes_after,
        advertisements,
        merged_fake_nodes: advertisements.saturating_sub(fake_nodes_after),
        quantized_entries,
        eliminated_groups,
    };
    if coyote_obs::enabled() {
        coyote_obs::counter("ospf.compress.merged", compression.merged_fake_nodes as u64);
        coyote_obs::counter("ospf.compress.quantized", quantized_entries as u64);
        coyote_obs::counter("ospf.compress.eliminated", eliminated_groups as u64);
    }
    let stats = FibbingStats {
        fake_nodes: fake_nodes_after,
        prefix_advertisements: advertisements,
        lied_router_prefix_pairs: groups.len(),
        native_router_prefix_pairs: program.stats.native_router_prefix_pairs + eliminated_groups,
        max_entries_per_router_prefix: max_entries,
    };
    Ok(FibbingProgram {
        lsdb,
        stats,
        compression,
    })
}

/// [`crate::fibbing::compute_program`] followed by [`compress_program`] at
/// the requested level ([`CompressionLevel::Off`] is the plain compiler).
pub fn compute_program_with(
    graph: &Graph,
    target: &coyote_core::PdRouting,
    budget: VirtualLinkBudget,
    level: CompressionLevel,
) -> Result<FibbingProgram, OspfError> {
    let program = crate::fibbing::compute_program(graph, target, budget)?;
    if level.is_off() {
        return Ok(program);
    }
    compress_program(graph, target, &program, level)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fibbing::{compute_program, program_fib, realized_routing};
    use crate::verify::compare_routings;
    use coyote_core::example_fig1;
    use coyote_core::{ecmp_routing, uniform_augmented_routing};

    #[test]
    fn off_is_the_plain_compiler() {
        let (g, nodes) = example_fig1::topology();
        let target = example_fig1::golden_routing(&g, &nodes);
        let budget = VirtualLinkBudget::per_prefix(5);
        let plain = compute_program(&g, &target, budget).unwrap();
        let off = compute_program_with(&g, &target, budget, CompressionLevel::Off).unwrap();
        assert_eq!(plain.lsdb.fakes(), off.lsdb.fakes());
        assert_eq!(plain.stats, off.stats);
        assert_eq!(off.compression, CompressionStats::default());
    }

    #[test]
    fn lossless_compression_preserves_the_fib_exactly() {
        let (g, _) = example_fig1::topology();
        let target = uniform_augmented_routing(&g).unwrap();
        let plain = compute_program(&g, &target, VirtualLinkBudget::per_prefix(5)).unwrap();
        let lossless =
            compress_program(&g, &target, &plain, CompressionLevel::Lossless).unwrap();
        let fib_plain = program_fib(&g, &plain);
        let fib_lossless = program_fib(&g, &lossless);
        for u in g.nodes() {
            for t in g.nodes() {
                assert_eq!(
                    fib_plain.entry(u, t),
                    fib_lossless.entry(u, t),
                    "FIB diverged at router {u} prefix {t}"
                );
            }
        }
        // Merging never increases the LSA count, and the bookkeeping
        // identity holds: every advertisement beyond one per fake node is
        // a merged (saved) LSA.
        assert!(lossless.stats.fake_nodes <= plain.stats.fake_nodes);
        assert_eq!(
            lossless.compression.merged_fake_nodes,
            lossless.compression.advertisements - lossless.compression.fake_nodes_after
        );
        assert_eq!(lossless.compression.fake_nodes_before, plain.stats.fake_nodes);
    }

    #[test]
    fn lossy_compression_stays_within_epsilon_of_the_target() {
        let (g, nodes) = example_fig1::topology();
        let target = example_fig1::golden_routing(&g, &nodes);
        let plain = compute_program(&g, &target, VirtualLinkBudget::unlimited()).unwrap();
        let plain_err = compare_routings(&g, &target, &realized_routing(&g, &plain).unwrap());
        for eps in [0.1, 0.05, 0.02] {
            let lossy = compress_program(
                &g,
                &target,
                &plain,
                CompressionLevel::Lossy { epsilon: eps },
            )
            .unwrap();
            let realized = realized_routing(&g, &lossy).unwrap();
            let report = compare_routings(&g, &target, &realized);
            assert!(report.dags_match, "eps {eps}: DAG support changed");
            assert!(
                report.max_split_error <= plain_err.max_split_error.max(eps) + 1e-9,
                "eps {eps}: split error {} beyond bound",
                report.max_split_error
            );
            assert!(lossy.stats.fake_nodes <= plain.stats.fake_nodes);
        }
    }

    #[test]
    fn noop_lies_are_eliminated() {
        // A lie that reproduces plain ECMP exactly (the honest next hops,
        // multiplicity one each) is an exact no-op and must be dropped.
        let (g, nodes) = example_fig1::topology();
        let target = ecmp_routing(&g).unwrap();
        let mut program = compute_program(&g, &target, VirtualLinkBudget::per_prefix(5)).unwrap();
        assert_eq!(program.stats.fake_nodes, 0);
        // s1's honest ECMP towards t splits over s2 and v (cost 2 both ways).
        program
            .lsdb
            .inject(FakeNodeLsa::single(nodes.s1, nodes.t, 0.5, 0.5, nodes.s2));
        program
            .lsdb
            .inject(FakeNodeLsa::single(nodes.s1, nodes.t, 0.5, 0.5, nodes.v));
        program.stats.fake_nodes = 2;
        let compressed =
            compress_program(&g, &target, &program, CompressionLevel::Lossless).unwrap();
        assert_eq!(compressed.compression.eliminated_groups, 1);
        assert_eq!(compressed.stats.fake_nodes, 0);
        let realized = realized_routing(&g, &compressed).unwrap();
        let report = compare_routings(&g, &target, &realized);
        assert!(report.dags_match && report.max_split_error < 1e-9);
    }

    #[test]
    fn compression_is_idempotent() {
        let (g, _) = example_fig1::topology();
        let target = uniform_augmented_routing(&g).unwrap();
        let plain = compute_program(&g, &target, VirtualLinkBudget::unlimited()).unwrap();
        for level in [CompressionLevel::Lossless, CompressionLevel::lossy()] {
            let once = compress_program(&g, &target, &plain, level).unwrap();
            let twice = compress_program(&g, &target, &once, level).unwrap();
            assert_eq!(once.lsdb.fakes(), twice.lsdb.fakes(), "level {level:?}");
            assert_eq!(once.stats, twice.stats, "level {level:?}");
        }
    }

    #[test]
    fn quantization_shrinks_the_vocabulary() {
        // The golden split needs many replicas for an exact match but only
        // a couple within 10%.
        let (g, nodes) = example_fig1::topology();
        let target = example_fig1::golden_routing(&g, &nodes);
        let plain = compute_program(&g, &target, VirtualLinkBudget::unlimited()).unwrap();
        let lossy = compress_program(
            &g,
            &target,
            &plain,
            CompressionLevel::Lossy { epsilon: 0.1 },
        )
        .unwrap();
        assert!(
            lossy.compression.quantized_entries > 0,
            "expected quantization to reclaim entries: {:?}",
            lossy.compression
        );
        assert!(lossy.stats.fake_nodes < plain.stats.fake_nodes);
    }

    #[test]
    fn level_labels_and_defaults() {
        assert_eq!(CompressionLevel::Off.label(), "off");
        assert_eq!(CompressionLevel::Lossless.label(), "lossless");
        assert_eq!(CompressionLevel::lossy().label(), "lossy(0.02)");
        assert!(CompressionLevel::default().is_off());
        assert_eq!(CompressionLevel::Lossless.epsilon(), 0.0);
        assert_eq!(CompressionLevel::lossy().epsilon(), DEFAULT_EPSILON);
    }
}
