//! Verification that a Fibbing program realizes its target routing.
//!
//! Before deploying lies into a live IGP an operator wants to know (a) that
//! the forwarding DAGs the routers will compute are exactly the intended
//! ones (no loops, no lost edges) and (b) how far the ECMP-realized splits
//! are from the optimized ratios (bounded by the virtual-link budget). This
//! module compares the routing realized by [`crate::fibbing::FibbingProgram`]
//! against the target and produces a compact report.

use crate::error::OspfError;
use crate::fibbing::{realized_routing, FibbingProgram};
use coyote_core::PdRouting;
use coyote_graph::{Graph, NodeId};
use serde::{Deserialize, Serialize};

/// Outcome of verifying one Fibbing program against its target routing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VerificationReport {
    /// True if every edge that carries traffic in the target also carries
    /// traffic in the realized routing and vice versa (the DAGs match).
    pub dags_match: bool,
    /// Largest absolute difference between a realized and a target splitting
    /// ratio, over all (destination, edge) pairs.
    pub max_split_error: f64,
    /// Mean absolute splitting-ratio error over edges that carry traffic.
    pub mean_split_error: f64,
    /// Destinations whose realized DAG differs from the target.
    pub mismatched_destinations: Vec<usize>,
}

impl VerificationReport {
    /// True if the program realizes the target within `tolerance` on every
    /// splitting ratio and with matching DAGs.
    pub fn is_faithful(&self, tolerance: f64) -> bool {
        self.dags_match && self.max_split_error <= tolerance
    }
}

/// Compares the routing realized by `program` with `target`.
pub fn verify_program(
    graph: &Graph,
    target: &PdRouting,
    program: &FibbingProgram,
) -> Result<VerificationReport, OspfError> {
    let realized = realized_routing(graph, program)?;
    Ok(compare_routings(graph, target, &realized))
}

/// Compares two routings edge by edge (exposed separately so tests and the
/// experiment harness can verify routings from other sources, e.g. an
/// "ideal" configuration versus its budget-limited approximation).
pub fn compare_routings(
    graph: &Graph,
    target: &PdRouting,
    realized: &PdRouting,
) -> VerificationReport {
    let mut max_err = 0.0_f64;
    let mut err_sum = 0.0_f64;
    let mut err_count = 0usize;
    let mut mismatched: Vec<usize> = Vec::new();

    for t in graph.nodes() {
        let mut dag_ok = true;
        for e in graph.edges() {
            let a = target.ratio(t, e);
            let b = realized.ratio(t, e);
            if (a > 1e-9) != (b > 1e-9) {
                dag_ok = false;
            }
            if a > 1e-9 || b > 1e-9 {
                let d = (a - b).abs();
                max_err = max_err.max(d);
                err_sum += d;
                err_count += 1;
            }
        }
        if !dag_ok {
            mismatched.push(t.index());
        }
    }

    VerificationReport {
        dags_match: mismatched.is_empty(),
        max_split_error: max_err,
        mean_split_error: if err_count == 0 {
            0.0
        } else {
            err_sum / err_count as f64
        },
        mismatched_destinations: mismatched,
    }
}

/// Convenience: the number of fake nodes advertising each destination,
/// reported alongside verification in the experiment harness.
///
/// For uncompressed programs every fake advertises exactly one prefix, so
/// the per-destination counts sum to the fake-node total. Once compression
/// shares fakes across destinations a fake is counted towards *every*
/// prefix it advertises: the counts sum to
/// [`crate::fibbing::FibbingStats::prefix_advertisements`] (equivalently
/// `lsdb.prefix_advertisement_count()`), not to the LSA count.
pub fn fake_nodes_per_destination(graph: &Graph, program: &FibbingProgram) -> Vec<(NodeId, usize)> {
    graph
        .nodes()
        .map(|t| (t, program.lsdb.fakes_for(t).count()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fibbing::{compute_program, VirtualLinkBudget};
    use coyote_core::example_fig1;
    use coyote_core::{ecmp_routing, uniform_augmented_routing};

    #[test]
    fn honest_program_verifies_exactly() {
        let (g, _) = example_fig1::topology();
        let target = ecmp_routing(&g).unwrap();
        let program = compute_program(&g, &target, VirtualLinkBudget::per_prefix(3)).unwrap();
        let report = verify_program(&g, &target, &program).unwrap();
        assert!(report.dags_match);
        assert!(report.max_split_error < 1e-9);
        assert!(report.is_faithful(1e-6));
    }

    #[test]
    fn fig1c_program_is_faithful_with_three_entries() {
        let (g, nodes) = example_fig1::topology();
        let target = example_fig1::fig1c_routing(&g, &nodes);
        let program = compute_program(&g, &target, VirtualLinkBudget::per_prefix(3)).unwrap();
        let report = verify_program(&g, &target, &program).unwrap();
        assert!(
            report.dags_match,
            "mismatched: {:?}",
            report.mismatched_destinations
        );
        // 1/2 and 1/3–2/3 splits are exactly representable with <= 3 entries.
        assert!(
            report.max_split_error < 1e-9,
            "error {}",
            report.max_split_error
        );
    }

    #[test]
    fn golden_split_error_shrinks_with_budget() {
        let (g, nodes) = example_fig1::topology();
        let target = example_fig1::golden_routing(&g, &nodes);
        let mut previous = f64::INFINITY;
        for budget in [2usize, 3, 5, 10, 32] {
            let program =
                compute_program(&g, &target, VirtualLinkBudget::per_prefix(budget)).unwrap();
            let report = verify_program(&g, &target, &program).unwrap();
            assert!(report.dags_match);
            assert!(
                report.max_split_error <= previous + 1e-9,
                "budget {budget} error {} > {previous}",
                report.max_split_error
            );
            previous = report.max_split_error;
        }
        assert!(previous < 0.02);
    }

    #[test]
    fn compare_routings_detects_dag_mismatches() {
        let (g, _) = example_fig1::topology();
        let ecmp = ecmp_routing(&g).unwrap();
        let augmented = uniform_augmented_routing(&g).unwrap();
        let report = compare_routings(&g, &augmented, &ecmp);
        // The augmented routing uses edges ECMP never touches.
        assert!(!report.dags_match);
        assert!(!report.mismatched_destinations.is_empty());
        assert!(!report.is_faithful(1.0));
    }

    /// Diamond: s reaches t via a or b, all unit capacities/weights.
    fn diamond() -> (Graph, NodeId, NodeId, NodeId, NodeId) {
        let mut g = Graph::new();
        let s = g.add_node("s").unwrap();
        let a = g.add_node("a").unwrap();
        let b = g.add_node("b").unwrap();
        let t = g.add_node("t").unwrap();
        g.add_bidirectional_edge(s, a, 1.0, 1.0).unwrap();
        g.add_bidirectional_edge(s, b, 1.0, 1.0).unwrap();
        g.add_bidirectional_edge(a, t, 1.0, 1.0).unwrap();
        g.add_bidirectional_edge(b, t, 1.0, 1.0).unwrap();
        (g, s, a, b, t)
    }

    #[test]
    fn empty_routing_over_an_edgeless_graph_is_trivially_faithful() {
        let g = Graph::with_nodes(3);
        assert_eq!(g.edge_count(), 0);
        let dags: Vec<coyote_graph::Dag> = g
            .nodes()
            .map(|t| coyote_graph::Dag::new(&g, t, &[]).unwrap())
            .collect();
        let routing = PdRouting::uniform(&g, dags);
        let report = compare_routings(&g, &routing, &routing);
        assert!(report.dags_match);
        assert_eq!(report.max_split_error, 0.0);
        // No edge ever carries traffic: the mean must take the zero-count
        // branch, not divide by zero.
        assert_eq!(report.mean_split_error, 0.0);
        assert!(report.mismatched_destinations.is_empty());
        assert!(report.is_faithful(0.0));
    }

    #[test]
    fn zero_ratio_out_edges_count_as_absent_from_the_dag() {
        let (g, s, a, b, t) = diamond();
        let realized = ecmp_routing(&g).unwrap();
        // Target keeps the same DAG structure but zeroes the s->b branch:
        // a zero ratio means the edge carries nothing, so a realized 1/2
        // share on it is a DAG mismatch, not merely a split error.
        let mut target = realized.clone();
        let mut raw = vec![0.0; g.edge_count()];
        raw[g.find_edge(s, a).unwrap().index()] = 1.0;
        raw[g.find_edge(s, b).unwrap().index()] = 0.0;
        raw[g.find_edge(a, t).unwrap().index()] = 1.0;
        raw[g.find_edge(b, t).unwrap().index()] = 1.0;
        target.set_ratios(&g, t, &raw);

        let report = compare_routings(&g, &target, &realized);
        assert!(!report.dags_match);
        assert_eq!(report.mismatched_destinations, vec![t.index()]);
        assert!((report.max_split_error - 0.5).abs() < 1e-12);
        assert!(
            !report.is_faithful(1.0),
            "DAG mismatches can never be faithful"
        );
    }

    #[test]
    fn routings_over_disjoint_edge_sets_mismatch_in_both_directions() {
        let (g, s, a, b, t) = diamond();
        let base = ecmp_routing(&g).unwrap();
        // Rebuilds the base routing with t's DAG replaced by the given edge
        // set (ratios renormalize over the new DAG: a single out-edge gets
        // the whole share).
        let with_dag_for_t = |edges: &[coyote_graph::EdgeId]| {
            let dag_t = coyote_graph::Dag::new(&g, t, edges).unwrap();
            let mut dags = base.dags().to_vec();
            dags[t.index()] = dag_t;
            let ratios: Vec<Vec<f64>> = g.nodes().map(|d| base.ratios(d).to_vec()).collect();
            PdRouting::from_ratios(&g, dags, ratios)
        };
        // via_a routes all of t's traffic s->a->t; via_b routes s->b->t.
        let via_a = with_dag_for_t(&[
            g.find_edge(s, a).unwrap(),
            g.find_edge(a, t).unwrap(),
            g.find_edge(b, t).unwrap(),
        ]);
        let via_b = with_dag_for_t(&[
            g.find_edge(s, b).unwrap(),
            g.find_edge(b, t).unwrap(),
            g.find_edge(a, t).unwrap(),
        ]);

        let forward = compare_routings(&g, &via_a, &via_b);
        let backward = compare_routings(&g, &via_b, &via_a);
        for report in [&forward, &backward] {
            assert!(!report.dags_match);
            assert!(report.mismatched_destinations.contains(&t.index()));
            // The s->a / s->b edges disagree completely.
            assert!((report.max_split_error - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn is_faithful_exactly_at_the_tolerance_boundary() {
        let (g, s, a, b, t) = diamond();
        let realized = ecmp_routing(&g).unwrap();
        let mut target = realized.clone();
        let mut raw = vec![0.0; g.edge_count()];
        raw[g.find_edge(s, a).unwrap().index()] = 0.75;
        raw[g.find_edge(s, b).unwrap().index()] = 0.25;
        raw[g.find_edge(a, t).unwrap().index()] = 1.0;
        raw[g.find_edge(b, t).unwrap().index()] = 1.0;
        target.set_ratios(&g, t, &raw);

        let report = compare_routings(&g, &target, &realized);
        assert!(report.dags_match, "same DAG, only the splits differ");
        // 0.75 - 0.5 is exact in binary, so the boundary is sharp.
        assert_eq!(report.max_split_error, 0.25);
        assert!(report.is_faithful(0.25), "<= tolerance is faithful");
        assert!(!report.is_faithful(0.25 - 1e-12));
        assert!(report.is_faithful(0.3));
    }

    #[test]
    fn fake_node_accounting_lines_up_with_the_lsdb() {
        let (g, nodes) = example_fig1::topology();
        let target = example_fig1::golden_routing(&g, &nodes);
        let program = compute_program(&g, &target, VirtualLinkBudget::per_prefix(5)).unwrap();
        let per_dest = fake_nodes_per_destination(&g, &program);
        let total: usize = per_dest.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, program.lsdb.fake_count());
        assert_eq!(total, program.stats.fake_nodes);
        // Uncompressed: one prefix per fake, so all four totals coincide.
        assert_eq!(total, program.stats.prefix_advertisements);
        assert_eq!(total, program.lsdb.prefix_advertisement_count());
    }

    #[test]
    fn shared_fake_accounting_sums_to_advertisements() {
        // Once compression shares fakes across destinations the
        // per-destination counts sum to the advertisement total, while the
        // LSA count is strictly smaller — and both totals must match the
        // stats the compiler reports.
        let (g, _) = example_fig1::topology();
        let target = uniform_augmented_routing(&g).unwrap();
        let program = crate::compress::compute_program_with(
            &g,
            &target,
            VirtualLinkBudget::per_prefix(5),
            crate::compress::CompressionLevel::Lossless,
        )
        .unwrap();
        let per_dest = fake_nodes_per_destination(&g, &program);
        let total: usize = per_dest.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, program.lsdb.prefix_advertisement_count());
        assert_eq!(total, program.stats.prefix_advertisements);
        assert_eq!(program.lsdb.fake_count(), program.stats.fake_nodes);
        assert!(
            program.stats.fake_nodes <= program.stats.prefix_advertisements,
            "sharing can only reduce the LSA count below the advertisements"
        );
    }
}
