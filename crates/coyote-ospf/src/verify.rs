//! Verification that a Fibbing program realizes its target routing.
//!
//! Before deploying lies into a live IGP an operator wants to know (a) that
//! the forwarding DAGs the routers will compute are exactly the intended
//! ones (no loops, no lost edges) and (b) how far the ECMP-realized splits
//! are from the optimized ratios (bounded by the virtual-link budget). This
//! module compares the routing realized by [`crate::fibbing::FibbingProgram`]
//! against the target and produces a compact report.

use crate::error::OspfError;
use crate::fibbing::{realized_routing, FibbingProgram};
use coyote_core::PdRouting;
use coyote_graph::{Graph, NodeId};
use serde::{Deserialize, Serialize};

/// Outcome of verifying one Fibbing program against its target routing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VerificationReport {
    /// True if every edge that carries traffic in the target also carries
    /// traffic in the realized routing and vice versa (the DAGs match).
    pub dags_match: bool,
    /// Largest absolute difference between a realized and a target splitting
    /// ratio, over all (destination, edge) pairs.
    pub max_split_error: f64,
    /// Mean absolute splitting-ratio error over edges that carry traffic.
    pub mean_split_error: f64,
    /// Destinations whose realized DAG differs from the target.
    pub mismatched_destinations: Vec<usize>,
}

impl VerificationReport {
    /// True if the program realizes the target within `tolerance` on every
    /// splitting ratio and with matching DAGs.
    pub fn is_faithful(&self, tolerance: f64) -> bool {
        self.dags_match && self.max_split_error <= tolerance
    }
}

/// Compares the routing realized by `program` with `target`.
pub fn verify_program(
    graph: &Graph,
    target: &PdRouting,
    program: &FibbingProgram,
) -> Result<VerificationReport, OspfError> {
    let realized = realized_routing(graph, program)?;
    Ok(compare_routings(graph, target, &realized))
}

/// Compares two routings edge by edge (exposed separately so tests and the
/// experiment harness can verify routings from other sources, e.g. an
/// "ideal" configuration versus its budget-limited approximation).
pub fn compare_routings(
    graph: &Graph,
    target: &PdRouting,
    realized: &PdRouting,
) -> VerificationReport {
    let mut max_err = 0.0_f64;
    let mut err_sum = 0.0_f64;
    let mut err_count = 0usize;
    let mut mismatched: Vec<usize> = Vec::new();

    for t in graph.nodes() {
        let mut dag_ok = true;
        for e in graph.edges() {
            let a = target.ratio(t, e);
            let b = realized.ratio(t, e);
            if (a > 1e-9) != (b > 1e-9) {
                dag_ok = false;
            }
            if a > 1e-9 || b > 1e-9 {
                let d = (a - b).abs();
                max_err = max_err.max(d);
                err_sum += d;
                err_count += 1;
            }
        }
        if !dag_ok {
            mismatched.push(t.index());
        }
    }

    VerificationReport {
        dags_match: mismatched.is_empty(),
        max_split_error: max_err,
        mean_split_error: if err_count == 0 {
            0.0
        } else {
            err_sum / err_count as f64
        },
        mismatched_destinations: mismatched,
    }
}

/// Convenience: the number of fake nodes a program needs per destination,
/// reported alongside verification in the experiment harness.
pub fn fake_nodes_per_destination(graph: &Graph, program: &FibbingProgram) -> Vec<(NodeId, usize)> {
    graph
        .nodes()
        .map(|t| (t, program.lsdb.fakes_for(t).count()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fibbing::{compute_program, VirtualLinkBudget};
    use coyote_core::example_fig1;
    use coyote_core::{ecmp_routing, uniform_augmented_routing};

    #[test]
    fn honest_program_verifies_exactly() {
        let (g, _) = example_fig1::topology();
        let target = ecmp_routing(&g).unwrap();
        let program = compute_program(&g, &target, VirtualLinkBudget::per_prefix(3)).unwrap();
        let report = verify_program(&g, &target, &program).unwrap();
        assert!(report.dags_match);
        assert!(report.max_split_error < 1e-9);
        assert!(report.is_faithful(1e-6));
    }

    #[test]
    fn fig1c_program_is_faithful_with_three_entries() {
        let (g, nodes) = example_fig1::topology();
        let target = example_fig1::fig1c_routing(&g, &nodes);
        let program = compute_program(&g, &target, VirtualLinkBudget::per_prefix(3)).unwrap();
        let report = verify_program(&g, &target, &program).unwrap();
        assert!(report.dags_match, "mismatched: {:?}", report.mismatched_destinations);
        // 1/2 and 1/3–2/3 splits are exactly representable with <= 3 entries.
        assert!(report.max_split_error < 1e-9, "error {}", report.max_split_error);
    }

    #[test]
    fn golden_split_error_shrinks_with_budget() {
        let (g, nodes) = example_fig1::topology();
        let target = example_fig1::golden_routing(&g, &nodes);
        let mut previous = f64::INFINITY;
        for budget in [2usize, 3, 5, 10, 32] {
            let program =
                compute_program(&g, &target, VirtualLinkBudget::per_prefix(budget)).unwrap();
            let report = verify_program(&g, &target, &program).unwrap();
            assert!(report.dags_match);
            assert!(
                report.max_split_error <= previous + 1e-9,
                "budget {budget} error {} > {previous}",
                report.max_split_error
            );
            previous = report.max_split_error;
        }
        assert!(previous < 0.02);
    }

    #[test]
    fn compare_routings_detects_dag_mismatches() {
        let (g, _) = example_fig1::topology();
        let ecmp = ecmp_routing(&g).unwrap();
        let augmented = uniform_augmented_routing(&g).unwrap();
        let report = compare_routings(&g, &augmented, &ecmp);
        // The augmented routing uses edges ECMP never touches.
        assert!(!report.dags_match);
        assert!(!report.mismatched_destinations.is_empty());
        assert!(!report.is_faithful(1.0));
    }

    #[test]
    fn fake_node_accounting_lines_up_with_the_lsdb() {
        let (g, nodes) = example_fig1::topology();
        let target = example_fig1::golden_routing(&g, &nodes);
        let program = compute_program(&g, &target, VirtualLinkBudget::per_prefix(5)).unwrap();
        let per_dest = fake_nodes_per_destination(&g, &program);
        let total: usize = per_dest.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, program.lsdb.fake_count());
        assert_eq!(total, program.stats.fake_nodes);
    }
}
