//! Property-based tests for LSDB pruning (the failure engine's OSPF
//! reconvergence model): after withdrawing a failed link or router from a
//! lied-to LSDB, no reconverged forwarding entry may ever traverse the
//! failed element — neither through a real adjacency nor through a
//! surviving lie's forwarding address.

use coyote_core::{build_all_dags, DagMode, PdRouting};
use coyote_graph::{Graph, NodeId};
use coyote_ospf::{compute_fib, compute_program, Fib, VirtualLinkBudget};
use proptest::prelude::*;

/// A random connected backbone-like graph: a ring over `n` nodes plus
/// `extra` chords, capacities cycled from `caps`.
fn random_graph(n: usize, extra: &[(usize, usize)], caps: &[f64]) -> Graph {
    let mut g = Graph::with_nodes(n);
    let mut cap_iter = caps.iter().copied().cycle();
    for i in 0..n {
        let c = cap_iter.next().unwrap();
        g.add_bidirectional_edge(NodeId(i), NodeId((i + 1) % n), c, 1.0)
            .unwrap();
    }
    for &(a, b) in extra {
        let (a, b) = (a % n, b % n);
        if a != b && g.find_edge(NodeId(a), NodeId(b)).is_none() {
            let c = cap_iter.next().unwrap();
            g.add_bidirectional_edge(NodeId(a), NodeId(b), c, 1.0)
                .unwrap();
        }
    }
    g.set_inverse_capacity_weights(10.0);
    g
}

/// A random per-destination DAG routing whose splits force the Fibbing
/// controller to inject lies.
fn random_routing(g: &Graph, raw: &[f64]) -> PdRouting {
    let dags = build_all_dags(g, DagMode::Augmented).unwrap();
    let mut ratios = Vec::with_capacity(dags.len());
    let mut raw_iter = raw.iter().copied().cycle();
    for _ in 0..dags.len() {
        let per_edge: Vec<f64> = (0..g.edge_count())
            .map(|_| raw_iter.next().unwrap())
            .collect();
        ratios.push(per_edge);
    }
    PdRouting::from_ratios(g, dags, ratios)
}

/// Asserts that no FIB entry forwards across a dead adjacency or towards a
/// dead router.
fn assert_fib_avoids(
    fib: &Fib,
    n: usize,
    dead_nodes: &[NodeId],
    dead_links: &[(NodeId, NodeId)],
) -> Result<(), TestCaseError> {
    for t in 0..n {
        for u in 0..n {
            let entry = fib.entry(NodeId(u), NodeId(t));
            for (next_hop, _) in entry.iter() {
                prop_assert!(
                    !dead_nodes.contains(&next_hop),
                    "router {u} -> dead node {next_hop} towards {t}"
                );
                for &(a, b) in dead_links {
                    let uses_dead_link =
                        (NodeId(u) == a && next_hop == b) || (NodeId(u) == b && next_hop == a);
                    prop_assert!(
                        !uses_dead_link,
                        "router {u} forwards over dead link {a}-{b} towards {t}"
                    );
                }
            }
            // A dead router must have no forwarding state at all.
            if dead_nodes.contains(&NodeId(u)) {
                prop_assert_eq!(
                    entry.total_entries(),
                    0,
                    "dead router {} still has FIB entries",
                    u
                );
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Failing one bidirectional link: the pruned LSDB's SPF never routes
    /// across it, in either direction, for any destination.
    #[test]
    fn no_reconverged_path_traverses_a_failed_link(
        n in 4usize..8,
        extra in proptest::collection::vec((0usize..12, 0usize..12), 0..4),
        raw in proptest::collection::vec(0.0f64..4.0, 8..16),
        link_pick in 0usize..64,
    ) {
        let caps = [1.0, 2.0, 5.0];
        let g = random_graph(n, &extra, &caps);
        let target = random_routing(&g, &raw);
        let Ok(program) = compute_program(&g, &target, VirtualLinkBudget::per_prefix(8)) else {
            return Ok(()); // unrealizable split: not the property under test
        };

        // Pick a bidirectional link (the forward edges are the even ids).
        let link_count = g.edge_count() / 2;
        let e = coyote_graph::EdgeId(2 * (link_pick % link_count));
        let (a, b) = g.endpoints(e);
        let dead_links = [(a, b)];

        let (pruned, stats) = program.lsdb.pruned(&[], &dead_links);
        prop_assert_eq!(stats.dead_routers, 0);
        prop_assert_eq!(stats.dropped_links, 2);
        let fib = compute_fib(&pruned, n);
        assert_fib_avoids(&fib, n, &[], &dead_links)?;
    }

    /// Failing one router: the pruned LSDB's SPF never forwards to it and
    /// the router itself holds no forwarding state.
    #[test]
    fn no_reconverged_path_traverses_a_failed_node(
        n in 4usize..8,
        extra in proptest::collection::vec((0usize..12, 0usize..12), 0..4),
        raw in proptest::collection::vec(0.0f64..4.0, 8..16),
        node_pick in 0usize..64,
    ) {
        let caps = [1.0, 2.0, 5.0];
        let g = random_graph(n, &extra, &caps);
        let target = random_routing(&g, &raw);
        let Ok(program) = compute_program(&g, &target, VirtualLinkBudget::per_prefix(8)) else {
            return Ok(());
        };

        let dead = NodeId(node_pick % n);
        let dead_nodes = [dead];
        let (pruned, stats) = program.lsdb.pruned(&dead_nodes, &[]);
        prop_assert_eq!(stats.dead_routers, 1);
        let fib = compute_fib(&pruned, n);
        assert_fib_avoids(&fib, n, &dead_nodes, &[])?;
    }

    /// Pruning is idempotent: withdrawing the same failure twice changes
    /// nothing beyond the first withdrawal.
    #[test]
    fn pruning_is_idempotent(
        n in 4usize..8,
        extra in proptest::collection::vec((0usize..12, 0usize..12), 0..4),
        raw in proptest::collection::vec(0.0f64..4.0, 8..16),
        node_pick in 0usize..64,
    ) {
        let caps = [1.0, 2.0];
        let g = random_graph(n, &extra, &caps);
        let target = random_routing(&g, &raw);
        let Ok(program) = compute_program(&g, &target, VirtualLinkBudget::per_prefix(8)) else {
            return Ok(());
        };
        let dead = [NodeId(node_pick % n)];
        let (once, _) = program.lsdb.pruned(&dead, &[]);
        let (twice, stats2) = once.pruned(&dead, &[]);
        prop_assert_eq!(stats2.dead_routers, 0);
        prop_assert_eq!(stats2.dropped_links, 0);
        prop_assert_eq!(stats2.dropped_fakes, 0);
        prop_assert_eq!(once.fake_count(), twice.fake_count());
        prop_assert_eq!(once.router_lsas().len(), twice.router_lsas().len());
    }
}
