//! Property-based differential tests for the program-compression pass:
//! on random topologies and random target DAG routings, the compressed
//! program must route exactly like the uncompressed one (same per-
//! destination next-hop sets, splits within the quantization tolerance),
//! per-prefix retraction on shared fakes must never disturb other
//! prefixes, and compression must be idempotent.

use coyote_core::{build_all_dags, DagMode, PdRouting};
use coyote_graph::{Graph, NodeId};
use coyote_ospf::{
    compare_routings, compress_program, compute_fib, compute_program, program_fib,
    realized_routing, CompressionLevel, VirtualLinkBudget,
};
use proptest::prelude::*;

/// A random connected backbone-like graph: a ring over `n` nodes plus
/// `extra` chords, capacities cycled from `caps`.
fn random_graph(n: usize, extra: &[(usize, usize)], caps: &[f64]) -> Graph {
    let mut g = Graph::with_nodes(n);
    let mut cap_iter = caps.iter().copied().cycle();
    for i in 0..n {
        let c = cap_iter.next().unwrap();
        g.add_bidirectional_edge(NodeId(i), NodeId((i + 1) % n), c, 1.0)
            .unwrap();
    }
    for &(a, b) in extra {
        let (a, b) = (a % n, b % n);
        if a != b && g.find_edge(NodeId(a), NodeId(b)).is_none() {
            let c = cap_iter.next().unwrap();
            g.add_bidirectional_edge(NodeId(a), NodeId(b), c, 1.0)
                .unwrap();
        }
    }
    g.set_inverse_capacity_weights(10.0);
    g
}

/// A random per-destination DAG routing whose splits force the Fibbing
/// controller to inject lies.
fn random_routing(g: &Graph, raw: &[f64]) -> PdRouting {
    let dags = build_all_dags(g, DagMode::Augmented).unwrap();
    let mut ratios = Vec::with_capacity(dags.len());
    let mut raw_iter = raw.iter().copied().cycle();
    for _ in 0..dags.len() {
        let per_edge: Vec<f64> = (0..g.edge_count())
            .map(|_| raw_iter.next().unwrap())
            .collect();
        ratios.push(per_edge);
    }
    PdRouting::from_ratios(g, dags, ratios)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Differential equivalence: at every compression level, the compressed
    /// program's FIB has exactly the same per-(router, destination) next-hop
    /// *sets* as the uncompressed one, and its realized routing stays within
    /// `max(epsilon, uncompressed error)` of the target splits.
    #[test]
    fn compressed_programs_route_like_uncompressed_ones(
        n in 4usize..8,
        extra in proptest::collection::vec((0usize..12, 0usize..12), 0..4),
        raw in proptest::collection::vec(0.0f64..4.0, 8..16),
        eps in 0.0f64..0.1,
    ) {
        let caps = [1.0, 2.0, 5.0];
        let g = random_graph(n, &extra, &caps);
        let target = random_routing(&g, &raw);
        let Ok(plain) = compute_program(&g, &target, VirtualLinkBudget::per_prefix(8)) else {
            return Ok(()); // unrealizable split: not the property under test
        };
        let plain_fib = program_fib(&g, &plain);
        let plain_err = compare_routings(&g, &target, &realized_routing(&g, &plain).unwrap());

        for level in [CompressionLevel::Lossless, CompressionLevel::Lossy { epsilon: eps }] {
            let compressed = compress_program(&g, &target, &plain, level).unwrap();
            prop_assert!(compressed.stats.fake_nodes <= plain.stats.fake_nodes);

            // Same next-hop support everywhere.
            let fib = program_fib(&g, &compressed);
            for t in 0..n {
                for u in 0..n {
                    let a: Vec<NodeId> =
                        plain_fib.entry(NodeId(u), NodeId(t)).iter().map(|(v, _)| v).collect();
                    let b: Vec<NodeId> =
                        fib.entry(NodeId(u), NodeId(t)).iter().map(|(v, _)| v).collect();
                    prop_assert_eq!(
                        a, b,
                        "next-hop set changed at router {} towards {} ({:?})",
                        u, t, level
                    );
                }
            }

            // Splits stay within the compression bound against the target.
            let report =
                compare_routings(&g, &target, &realized_routing(&g, &compressed).unwrap());
            prop_assert!(report.dags_match, "{level:?}: DAG support changed");
            let bound = plain_err.max_split_error.max(level.epsilon()) + 1e-9;
            prop_assert!(
                report.max_split_error <= bound,
                "{:?}: split error {} beyond bound {}",
                level, report.max_split_error, bound
            );
            // Lossless really is lossless: the FIB multiplicities agree too.
            if level == CompressionLevel::Lossless {
                for t in 0..n {
                    for u in 0..n {
                        prop_assert_eq!(
                            plain_fib.entry(NodeId(u), NodeId(t)),
                            fib.entry(NodeId(u), NodeId(t))
                        );
                    }
                }
            }
        }
    }

    /// Per-prefix retraction on shared fakes: withdrawing one destination's
    /// advertisements from a compressed LSDB leaves every other prefix's
    /// FIB entries bit-identical, and no lie for the retracted prefix
    /// survives.
    #[test]
    fn retracting_one_prefix_never_disturbs_the_others(
        n in 4usize..8,
        extra in proptest::collection::vec((0usize..12, 0usize..12), 0..4),
        raw in proptest::collection::vec(0.0f64..4.0, 8..16),
        pick in 0usize..64,
        eps in 0.0f64..0.1,
    ) {
        let caps = [1.0, 2.0, 5.0];
        let g = random_graph(n, &extra, &caps);
        let target = random_routing(&g, &raw);
        let Ok(plain) = compute_program(&g, &target, VirtualLinkBudget::per_prefix(8)) else {
            return Ok(());
        };
        let compressed =
            compress_program(&g, &target, &plain, CompressionLevel::Lossy { epsilon: eps })
                .unwrap();
        let before = compute_fib(&compressed.lsdb, n);

        let d = NodeId(pick % n);
        let mut lsdb = compressed.lsdb.clone();
        let withdrawn = lsdb.retract_fakes_for(d);
        prop_assert_eq!(lsdb.fakes_for(d).count(), 0, "lies for {} survived", d);
        prop_assert!(
            withdrawn <= compressed.stats.prefix_advertisements,
            "withdrew more advertisements than the program carried"
        );

        let after = compute_fib(&lsdb, n);
        for t in 0..n {
            if t == d.index() {
                continue;
            }
            for u in 0..n {
                prop_assert_eq!(
                    before.entry(NodeId(u), NodeId(t)),
                    after.entry(NodeId(u), NodeId(t)),
                    "retracting {} changed router {}'s entry towards {}",
                    d, u, t
                );
            }
        }
    }

    /// Compressing twice is exactly compressing once: the canonical LSDB
    /// and the stats are reproduced bit-for-bit.
    #[test]
    fn compression_is_idempotent(
        n in 4usize..8,
        extra in proptest::collection::vec((0usize..12, 0usize..12), 0..4),
        raw in proptest::collection::vec(0.0f64..4.0, 8..16),
        eps in 0.0f64..0.1,
    ) {
        let caps = [1.0, 2.0];
        let g = random_graph(n, &extra, &caps);
        let target = random_routing(&g, &raw);
        let Ok(plain) = compute_program(&g, &target, VirtualLinkBudget::per_prefix(8)) else {
            return Ok(());
        };
        for level in [CompressionLevel::Lossless, CompressionLevel::Lossy { epsilon: eps }] {
            let once = compress_program(&g, &target, &plain, level).unwrap();
            let twice = compress_program(&g, &target, &once, level).unwrap();
            prop_assert_eq!(once.lsdb.fakes(), twice.lsdb.fakes(), "{:?}", level);
            prop_assert_eq!(once.stats.clone(), twice.stats.clone(), "{:?}", level);
            prop_assert_eq!(
                twice.compression.fake_nodes_before,
                twice.compression.fake_nodes_after,
                "a second pass must find nothing left to compress"
            );
        }
    }
}
