//! Compressed sparse row (CSR) matrices for the revised simplex.
//!
//! The LPs produced by the COYOTE pipeline are extremely sparse: a flow
//! conservation row touches only the edges incident to one node, a capacity
//! row only the per-destination copies of one edge. The dense tableau stores
//! (and eliminates over) millions of structural zeros; the revised simplex
//! ([`crate::revised`]) instead keeps the constraint matrix in CSR form and
//! works with `O(nnz)` per product.
//!
//! The same type doubles as a CSC store: the solver keeps the constraint
//! matrix *by columns* (each logical LP column stored as one CSR row), since
//! pricing and FTRAN both consume columns.

/// A sparse matrix in compressed sparse row format.
///
/// Rows are stored contiguously: row `i` occupies
/// `col_idx[row_ptr[i]..row_ptr[i+1]]` / `values[row_ptr[i]..row_ptr[i+1]]`,
/// with column indices strictly increasing inside a row.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// An empty `nrows x ncols` matrix (all zeros).
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        Self {
            nrows,
            ncols,
            row_ptr: vec![0; nrows + 1],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Builds the matrix from `(row, col, value)` triplets.
    ///
    /// Duplicate `(row, col)` entries are summed (coalesced); entries whose
    /// coalesced sum is exactly `0.0` are dropped, as are explicit zero
    /// triplets. Triplet order is irrelevant — the result is canonical.
    ///
    /// # Panics
    ///
    /// Panics if a triplet lies outside `nrows x ncols`.
    pub fn from_triplets(nrows: usize, ncols: usize, triplets: &[(usize, usize, f64)]) -> Self {
        for &(r, c, _) in triplets {
            assert!(
                r < nrows && c < ncols,
                "triplet ({r}, {c}) out of {nrows}x{ncols}"
            );
        }
        let mut sorted: Vec<(usize, usize, f64)> = triplets.to_vec();
        sorted.sort_by_key(|&(r, c, _)| (r, c));

        let mut row_ptr = vec![0usize; nrows + 1];
        let mut col_idx = Vec::with_capacity(sorted.len());
        let mut values = Vec::with_capacity(sorted.len());
        let mut i = 0;
        while i < sorted.len() {
            let (r, c, mut v) = sorted[i];
            i += 1;
            while i < sorted.len() && sorted[i].0 == r && sorted[i].1 == c {
                v += sorted[i].2;
                i += 1;
            }
            if v != 0.0 {
                col_idx.push(c);
                values.push(v);
                row_ptr[r + 1] += 1;
            }
        }
        for r in 0..nrows {
            row_ptr[r + 1] += row_ptr[r];
        }
        Self {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored (structurally nonzero) entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The column indices and values of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> (&[usize], &[f64]) {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// Iterates the `(col, value)` entries of row `i`.
    #[inline]
    pub fn iter_row(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let (cols, vals) = self.row(i);
        cols.iter().copied().zip(vals.iter().copied())
    }

    /// The transpose, built with a counting sort (`O(nnz + dims)`); entry
    /// order inside every transposed row is canonical.
    pub fn transpose(&self) -> CsrMatrix {
        let mut row_ptr = vec![0usize; self.ncols + 1];
        for &c in &self.col_idx {
            row_ptr[c + 1] += 1;
        }
        for c in 0..self.ncols {
            row_ptr[c + 1] += row_ptr[c];
        }
        let mut col_idx = vec![0usize; self.nnz()];
        let mut values = vec![0.0f64; self.nnz()];
        let mut next = row_ptr.clone();
        for r in 0..self.nrows {
            for (c, v) in self.iter_row(r) {
                let slot = next[c];
                next[c] += 1;
                col_idx[slot] = r;
                values[slot] = v;
            }
        }
        CsrMatrix {
            nrows: self.ncols,
            ncols: self.nrows,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Dense matrix-vector product `y = A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != ncols`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols, "dimension mismatch in mul_vec");
        let mut y = vec![0.0; self.nrows];
        for (r, out) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (c, v) in self.iter_row(r) {
                acc += v * x[c];
            }
            *out = acc;
        }
        y
    }

    /// Dense product with the transpose, `y = Aᵀ·x`, without materializing
    /// the transpose (scatter over the rows of `A`).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != nrows`.
    pub fn transpose_mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(
            x.len(),
            self.nrows,
            "dimension mismatch in transpose_mul_vec"
        );
        let mut y = vec![0.0; self.ncols];
        for (r, &xr) in x.iter().enumerate() {
            if xr == 0.0 {
                continue;
            }
            for (c, v) in self.iter_row(r) {
                y[c] += v * xr;
            }
        }
        y
    }

    /// Dense copy, for tests and debugging.
    pub fn to_dense(&self) -> Vec<Vec<f64>> {
        let mut out = vec![vec![0.0; self.ncols]; self.nrows];
        for (r, row) in out.iter_mut().enumerate() {
            for (c, v) in self.iter_row(r) {
                row[c] = v;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_triplets_builds_canonical_rows() {
        // Out-of-order triplets land sorted inside each row.
        let m =
            CsrMatrix::from_triplets(2, 3, &[(1, 2, 5.0), (0, 1, 2.0), (1, 0, -1.0), (0, 0, 1.0)]);
        assert_eq!(m.nrows(), 2);
        assert_eq!(m.ncols(), 3);
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.row(0), (&[0usize, 1][..], &[1.0, 2.0][..]));
        assert_eq!(m.row(1), (&[0usize, 2][..], &[-1.0, 5.0][..]));
    }

    #[test]
    fn duplicate_entries_are_coalesced() {
        // Duplicates sum; a pair that cancels to exactly zero is dropped.
        let m = CsrMatrix::from_triplets(
            2,
            2,
            &[
                (0, 0, 1.0),
                (0, 0, 2.5),
                (1, 1, 4.0),
                (1, 1, -4.0),
                (1, 0, 0.0),
            ],
        );
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.row(0), (&[0usize][..], &[3.5][..]));
        assert_eq!(m.row(1), (&[][..], &[][..]));
    }

    #[test]
    fn empty_rows_and_columns_are_representable() {
        let m = CsrMatrix::from_triplets(4, 4, &[(1, 2, 7.0)]);
        assert_eq!(m.row(0).0.len(), 0);
        assert_eq!(m.row(2).0.len(), 0);
        assert_eq!(m.row(3).0.len(), 0);
        let t = m.transpose();
        assert_eq!(t.row(0).0.len(), 0);
        assert_eq!(t.row(2), (&[1usize][..], &[7.0][..]));
        // An all-zero matrix round-trips too.
        let z = CsrMatrix::zeros(3, 5);
        assert_eq!(z.nnz(), 0);
        assert_eq!(z.mul_vec(&[1.0; 5]), vec![0.0; 3]);
        assert_eq!(z.transpose().nrows(), 5);
    }

    #[test]
    fn transpose_is_an_involution() {
        let m = CsrMatrix::from_triplets(3, 2, &[(0, 1, 1.0), (2, 0, -2.0), (1, 1, 3.0)]);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn transpose_product_matches_dense_reference() {
        // Pseudorandom-ish rectangular matrix; compare Aᵀx against the
        // naive dense computation entry by entry.
        let mut triplets = Vec::new();
        for k in 0..40u64 {
            let r = ((k * 7 + 3) % 6) as usize;
            let c = ((k * 13 + 5) % 9) as usize;
            let v = (k as f64 * 0.37) - 5.0;
            triplets.push((r, c, v));
        }
        let m = CsrMatrix::from_triplets(6, 9, &triplets);
        let x: Vec<f64> = (0..6).map(|i| i as f64 - 2.5).collect();
        let got = m.transpose_mul_vec(&x);

        let dense = m.to_dense();
        for c in 0..9 {
            let want: f64 = (0..6).map(|r| dense[r][c] * x[r]).sum();
            assert!(
                (got[c] - want).abs() < 1e-12,
                "col {c}: {} vs {want}",
                got[c]
            );
        }
        // And it agrees with materializing the transpose.
        assert_eq!(got, m.transpose().mul_vec(&x));
    }

    #[test]
    fn mul_vec_matches_dense_reference() {
        let m =
            CsrMatrix::from_triplets(3, 3, &[(0, 0, 2.0), (0, 2, -1.0), (1, 1, 4.0), (2, 0, 1.0)]);
        let y = m.mul_vec(&[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![2.0 * 1.0 - 1.0 * 3.0, 8.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn out_of_range_triplets_panic() {
        let _ = CsrMatrix::from_triplets(2, 2, &[(2, 0, 1.0)]);
    }
}
