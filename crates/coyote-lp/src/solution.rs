//! Solution and statistics types returned by the solver.

use crate::model::VarId;

/// Statistics about a solve.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SolveStats {
    /// Simplex pivots performed in phase one.
    pub phase1_pivots: usize,
    /// Simplex pivots performed in phase two.
    pub phase2_pivots: usize,
    /// Number of structural (user) variables after standard-form expansion.
    pub standard_vars: usize,
    /// Number of rows of the tableau.
    pub rows: usize,
    /// Optimize→reprice→re-run rounds across both phases (each phase runs
    /// at least one).
    pub refresh_rounds: usize,
    /// Times the pivot-size guard replaced a tiny ratio-test pivot with a
    /// decisively-sized one.
    pub pivot_guard_triggers: usize,
    /// Numerically-zero descent columns neutralized instead of being
    /// reported as unbounded rays.
    pub noise_clamps: usize,
    /// Elimination residues snapped to an exact zero during pivoting.
    pub snapped_entries: usize,
    /// Basis refactorizations performed (revised backend only; the dense
    /// backend reports zero).
    pub refactorizations: usize,
    /// Singular basis columns replaced during factorization repair
    /// (revised backend only).
    pub basis_repairs: usize,
    /// True when the solve re-entered from a warm basis and skipped
    /// phase one.
    pub warm_restore: bool,
    /// Phase-one pivots avoided by the warm start (the count the cached
    /// cold solve paid).
    pub warm_pivots_saved: usize,
}

/// An optimal solution of an [`crate::LpProblem`].
#[derive(Debug, Clone)]
pub struct LpSolution {
    /// Optimal objective value in the *original* optimization direction.
    pub objective: f64,
    /// Value of every variable, indexed by [`VarId`].
    pub values: Vec<f64>,
    /// Solve statistics.
    pub stats: SolveStats,
}

impl LpSolution {
    /// Value of a variable in the optimal solution.
    #[inline]
    pub fn value(&self, var: VarId) -> f64 {
        self.values[var.index()]
    }

    /// Evaluates a sparse linear expression at the optimal point.
    pub fn eval(&self, terms: &[(VarId, f64)]) -> f64 {
        terms.iter().map(|&(v, c)| c * self.value(v)).sum()
    }

    /// Total number of pivots across both phases.
    pub fn pivots(&self) -> usize {
        self.stats.phase1_pivots + self.stats.phase2_pivots
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_and_value_agree() {
        let sol = LpSolution {
            objective: 1.0,
            values: vec![2.0, 3.0],
            stats: SolveStats::default(),
        };
        assert_eq!(sol.value(VarId(0)), 2.0);
        assert_eq!(sol.eval(&[(VarId(0), 1.0), (VarId(1), 2.0)]), 8.0);
        assert_eq!(sol.pivots(), 0);
    }
}
