//! Basis factorization for the revised simplex: sparse LU with
//! product-form (eta) updates.
//!
//! The revised simplex never forms `B⁻¹` explicitly. It keeps a sparse LU
//! factorization `P·B = L·U` of the basis matrix (left-looking
//! Gilbert–Peierls elimination with partial pivoting) plus a short *eta
//! file*: after each pivot the new basis is `B' = B·E` where `E` is the
//! identity with one column replaced by the FTRAN'd entering column, so
//!
//! * FTRAN (`B·x = b`) solves through the LU then applies the etas forward;
//! * BTRAN (`Bᵀ·y = c`) applies the eta transposes in reverse then solves
//!   through the LU transpose.
//!
//! The eta file grows by one spike per pivot; once it exceeds
//! [`REFRESH_PIVOTS`] the solver refactorizes from scratch, which both
//! bounds the solve cost and resets accumulated floating-point drift (the
//! sparse analogue of the dense tableau's reprice-and-verify loop).

use crate::sparse::CsrMatrix;

/// Eta-file length that triggers a refactorization. Chosen near the dense
/// solver's stall window: long enough to amortize the factorization, short
/// enough that FTRAN/BTRAN stay `O(nnz(LU))`-ish and drift stays small.
pub(crate) const REFRESH_PIVOTS: usize = 64;

/// Relative pivot threshold below which an elimination column is declared
/// dependent on its predecessors (the basis is singular at that step).
const SINGULAR_TOL: f64 = 1e-9;

/// Sparse LU factors of a basis matrix, `P·B = L·U` with implicit unit
/// diagonal on `L`. Row permutation only; columns are eliminated in basis
/// order, so elimination step `j` corresponds to basis position `j`.
#[derive(Debug, Clone)]
pub(crate) struct LuFactors {
    n: usize,
    /// `perm[k]` = original row chosen as pivot at elimination step `k`.
    perm: Vec<usize>,
    /// Multipliers of step `k`: `(original_row, L[pinv[row], k])` for rows
    /// pivoted after step `k`.
    lower: Vec<Vec<(usize, f64)>>,
    /// Above-diagonal entries of column `j` of `U`: `(step, value)` with
    /// `step < j`.
    upper: Vec<Vec<(usize, f64)>>,
    /// Diagonal of `U`.
    diag: Vec<f64>,
}

/// Why a factorization attempt failed.
#[derive(Debug, Clone)]
pub(crate) struct Singular {
    /// Basis position whose column turned out dependent on its predecessors.
    pub position: usize,
    /// Rows still unpivoted when the failure was detected (candidates for a
    /// repair column).
    pub unpivoted_rows: Vec<usize>,
}

impl LuFactors {
    /// Identity factorization of an empty (0×0) basis.
    pub fn empty() -> Self {
        Self {
            n: 0,
            perm: Vec::new(),
            lower: Vec::new(),
            upper: Vec::new(),
            diag: Vec::new(),
        }
    }

    /// Factorizes the basis whose columns are `basis[j]` of the
    /// column-stored constraint matrix `cols` (each CSR row of `cols` is one
    /// LP column over `m` constraint rows).
    pub fn factorize(cols: &CsrMatrix, basis: &[usize]) -> Result<Self, Singular> {
        let n = basis.len();
        let m = cols.ncols();
        debug_assert_eq!(n, m, "basis must be square");
        let mut perm = Vec::with_capacity(n);
        let mut pinv = vec![usize::MAX; m];
        let mut lower: Vec<Vec<(usize, f64)>> = Vec::with_capacity(n);
        let mut upper: Vec<Vec<(usize, f64)>> = Vec::with_capacity(n);
        let mut diag = Vec::with_capacity(n);

        // Dense scratch over original rows, cleared via the touched list.
        let mut work = vec![0.0f64; m];
        let mut seen = vec![false; m];
        let mut touched: Vec<usize> = Vec::new();

        for (j, &col) in basis.iter().enumerate() {
            // Scatter column j of the basis.
            for (r, v) in cols.iter_row(col) {
                work[r] = v;
                if !seen[r] {
                    seen[r] = true;
                    touched.push(r);
                }
            }
            // Left-looking elimination: apply every earlier step whose pivot
            // row currently holds a nonzero. The `k` scan is O(j) index
            // checks; arithmetic stays proportional to the fill actually
            // produced.
            for k in 0..j {
                let p = perm[k];
                let xk = work[p];
                if xk == 0.0 {
                    continue;
                }
                for &(r, l) in &lower[k] {
                    if !seen[r] {
                        seen[r] = true;
                        touched.push(r);
                    }
                    work[r] -= l * xk;
                }
            }
            // Gather U column and pick the partial pivot among unpivoted
            // rows. Sorting the touched list keeps ties (and therefore the
            // whole factorization) deterministic regardless of fill order.
            touched.sort_unstable();
            let mut ucol = Vec::new();
            for k in 0..j {
                let v = work[perm[k]];
                if v != 0.0 {
                    ucol.push((k, v));
                }
            }
            let mut col_max = 0.0f64;
            let mut pivot_row = usize::MAX;
            let mut pivot_mag = 0.0f64;
            for &r in &touched {
                let mag = work[r].abs();
                col_max = col_max.max(mag);
                if pinv[r] == usize::MAX && mag > pivot_mag {
                    pivot_mag = mag;
                    pivot_row = r;
                }
            }
            if pivot_row == usize::MAX || pivot_mag <= SINGULAR_TOL * col_max.max(1e-30) {
                let unpivoted_rows: Vec<usize> =
                    (0..m).filter(|&r| pinv[r] == usize::MAX).collect();
                return Err(Singular {
                    position: j,
                    unpivoted_rows,
                });
            }
            let d = work[pivot_row];
            let mut lcol = Vec::new();
            for &r in &touched {
                if pinv[r] == usize::MAX && r != pivot_row && work[r] != 0.0 {
                    lcol.push((r, work[r] / d));
                }
            }
            perm.push(pivot_row);
            pinv[pivot_row] = j;
            diag.push(d);
            upper.push(ucol);
            lower.push(lcol);
            // Clear scratch.
            for &r in &touched {
                work[r] = 0.0;
                seen[r] = false;
            }
            touched.clear();
        }

        Ok(Self {
            n,
            perm,
            lower,
            upper,
            diag,
        })
    }

    /// Solves `B·x = b`. `b` is indexed by original constraint row; the
    /// result is indexed by basis position.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut work = b.to_vec();
        // Forward: y = L⁻¹·P·b, with y[k] left at work[perm[k]].
        for k in 0..self.n {
            let t = work[self.perm[k]];
            if t == 0.0 {
                continue;
            }
            for &(r, l) in &self.lower[k] {
                work[r] -= l * t;
            }
        }
        // Backward: U·x = y, by columns.
        let mut x = vec![0.0; self.n];
        for j in (0..self.n).rev() {
            let xj = work[self.perm[j]] / self.diag[j];
            x[j] = xj;
            if xj == 0.0 {
                continue;
            }
            for &(k, u) in &self.upper[j] {
                work[self.perm[k]] -= u * xj;
            }
        }
        x
    }

    /// Solves `Bᵀ·y = c`. `c` is indexed by basis position; the result is
    /// indexed by original constraint row.
    pub fn solve_transpose(&self, c: &[f64]) -> Vec<f64> {
        // Uᵀ·w = c (forward over positions).
        let mut w = vec![0.0; self.n];
        for j in 0..self.n {
            let mut t = c[j];
            for &(k, u) in &self.upper[j] {
                t -= u * w[k];
            }
            w[j] = t / self.diag[j];
        }
        // Lᵀ·v = w (backward); v[k] is stored directly at its original row
        // slot y[perm[k]], so y = Pᵀ·v falls out of the loop. A multiplier
        // row `r` was pivoted at step pinv[r] > k, so its v value is already
        // final and sits at y[r].
        let mut y = vec![0.0; self.n];
        for k in (0..self.n).rev() {
            let mut t = w[k];
            for &(r, l) in &self.lower[k] {
                t -= l * y[r];
            }
            y[self.perm[k]] = t;
        }
        y
    }
}

/// One product-form update: the basis column at `pos` was replaced by a
/// column whose FTRAN image was `w` (so `B' = B·E` with `E` the identity
/// carrying `w` in column `pos`).
#[derive(Debug, Clone)]
struct Eta {
    pos: usize,
    pivot: f64,
    /// `(position, w[position])` for the nonzero off-pivot entries.
    spike: Vec<(usize, f64)>,
}

/// LU factors plus the eta file accumulated since the last refactorization.
#[derive(Debug, Clone)]
pub(crate) struct Factorization {
    lu: LuFactors,
    etas: Vec<Eta>,
}

impl Factorization {
    /// Wraps freshly computed LU factors (empty eta file).
    pub fn new(lu: LuFactors) -> Self {
        Self {
            lu,
            etas: Vec::new(),
        }
    }

    /// Number of pivots applied since the last refactorization.
    #[cfg(test)]
    pub fn updates(&self) -> usize {
        self.etas.len()
    }

    /// True when the eta file is long enough that the caller should
    /// refactorize.
    #[inline]
    pub fn needs_refresh(&self) -> bool {
        self.etas.len() >= REFRESH_PIVOTS
    }

    /// FTRAN: solves `B·x = b` through the factors and the eta file. `b` is
    /// indexed by original row, the result by basis position.
    pub fn ftran(&self, b: &[f64]) -> Vec<f64> {
        let mut x = self.lu.solve(b);
        for eta in &self.etas {
            let xp = x[eta.pos] / eta.pivot;
            if xp != 0.0 {
                for &(i, w) in &eta.spike {
                    x[i] -= w * xp;
                }
            }
            x[eta.pos] = xp;
        }
        x
    }

    /// BTRAN: solves `Bᵀ·y = c`. `c` is indexed by basis position, the
    /// result by original row.
    pub fn btran(&self, c: &[f64]) -> Vec<f64> {
        let mut c = c.to_vec();
        for eta in self.etas.iter().rev() {
            let mut t = c[eta.pos];
            for &(i, w) in &eta.spike {
                t -= w * c[i];
            }
            c[eta.pos] = t / eta.pivot;
        }
        self.lu.solve_transpose(&c)
    }

    /// Records a pivot: the entering column's FTRAN image `w` replaces the
    /// basis column at position `pos`.
    pub fn update(&mut self, w: &[f64], pos: usize) {
        let spike: Vec<(usize, f64)> = w
            .iter()
            .enumerate()
            .filter(|&(i, &v)| i != pos && v != 0.0)
            .map(|(i, &v)| (i, v))
            .collect();
        self.etas.push(Eta {
            pos,
            pivot: w[pos],
            spike,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a column store (one CSR row per LP column) from dense columns.
    fn col_store(cols: &[Vec<f64>]) -> CsrMatrix {
        let m = cols.first().map(|c| c.len()).unwrap_or(0);
        let mut triplets = Vec::new();
        for (j, col) in cols.iter().enumerate() {
            for (r, &v) in col.iter().enumerate() {
                if v != 0.0 {
                    triplets.push((j, r, v));
                }
            }
        }
        CsrMatrix::from_triplets(cols.len(), m, &triplets)
    }

    fn dense_mul(cols: &[Vec<f64>], basis: &[usize], x: &[f64]) -> Vec<f64> {
        let m = cols[0].len();
        let mut y = vec![0.0; m];
        for (j, &c) in basis.iter().enumerate() {
            for r in 0..m {
                y[r] += cols[c][r] * x[j];
            }
        }
        y
    }

    #[test]
    fn lu_solves_a_permuted_system() {
        // Columns chosen so that partial pivoting must permute rows.
        let cols = vec![
            vec![0.0, 2.0, 0.0],
            vec![1.0, 1.0, 0.0],
            vec![3.0, 0.0, 1.0],
        ];
        let store = col_store(&cols);
        let basis = [0usize, 1, 2];
        let lu = LuFactors::factorize(&store, &basis).unwrap();
        let b = vec![5.0, 7.0, -1.0];
        let x = lu.solve(&b);
        let back = dense_mul(&cols, &basis, &x);
        for r in 0..3 {
            assert!(
                (back[r] - b[r]).abs() < 1e-10,
                "row {r}: {} vs {}",
                back[r],
                b[r]
            );
        }
        // Transpose solve: Bᵀ y = c  ⇔  yᵀ B = cᵀ.
        let c = vec![1.0, -2.0, 0.5];
        let y = lu.solve_transpose(&c);
        for (j, &col) in basis.iter().enumerate() {
            let dot: f64 = (0..3).map(|r| y[r] * cols[col][r]).sum();
            assert!((dot - c[j]).abs() < 1e-10, "col {j}: {dot} vs {}", c[j]);
        }
    }

    #[test]
    fn singular_basis_is_reported_with_uncovered_rows() {
        // Third column = sum of the first two: dependent at position 2, and
        // row 2 is never pivoted.
        let cols = vec![
            vec![1.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![1.0, 1.0, 0.0],
        ];
        let store = col_store(&cols);
        let err = LuFactors::factorize(&store, &[0, 1, 2]).unwrap_err();
        assert_eq!(err.position, 2);
        assert_eq!(err.unpivoted_rows, vec![2]);
    }

    #[test]
    fn eta_updates_track_a_changing_basis() {
        // Start from the identity basis and pivot in two new columns; the
        // factorization must keep solving the *current* basis exactly.
        let cols = vec![
            vec![1.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 1.0],
            vec![1.0, 2.0, 0.0],
            vec![0.0, 1.0, 3.0],
        ];
        let store = col_store(&cols);
        let mut basis = vec![0usize, 1, 2];
        let lu = LuFactors::factorize(&store, &basis).unwrap();
        let mut fact = Factorization::new(lu);

        for &(enter, pos) in &[(3usize, 1usize), (4, 2)] {
            // FTRAN the entering column, then record the replacement.
            let mut dense_col = vec![0.0; 3];
            for (r, v) in store.iter_row(enter) {
                dense_col[r] = v;
            }
            let w = fact.ftran(&dense_col);
            fact.update(&w, pos);
            basis[pos] = enter;

            // Both FTRAN and BTRAN must now agree with the dense basis.
            let b = vec![1.0, -1.0, 2.0];
            let x = fact.ftran(&b);
            let back = dense_mul(&cols, &basis, &x);
            for r in 0..3 {
                assert!((back[r] - b[r]).abs() < 1e-10);
            }
            let c = vec![0.5, 1.5, -2.0];
            let y = fact.btran(&c);
            for (j, &col) in basis.iter().enumerate() {
                let dot: f64 = (0..3).map(|r| y[r] * cols[col][r]).sum();
                assert!((dot - c[j]).abs() < 1e-10);
            }
        }
        assert_eq!(fact.updates(), 2);
        assert!(!fact.needs_refresh());
    }

    #[test]
    fn empty_basis_is_fine() {
        let lu = LuFactors::empty();
        assert!(lu.solve(&[]).is_empty());
        assert!(lu.solve_transpose(&[]).is_empty());
        let store = CsrMatrix::zeros(0, 0);
        assert!(LuFactors::factorize(&store, &[]).is_ok());
    }
}
