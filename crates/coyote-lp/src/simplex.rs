//! Dense two-phase simplex implementation.
//!
//! The solver converts the user model to standard form (non-negative
//! variables, all constraints as rows with non-negative right-hand sides),
//! runs phase one with artificial variables to find a basic feasible
//! solution, then phase two on the user objective. Pivot selection uses
//! Dantzig's rule with an automatic switch to Bland's rule when progress
//! stalls, which guarantees termination.
//!
//! The implementation favours robustness over raw speed: the LPs produced by
//! the COYOTE pipeline have a few thousand variables at most, well within
//! reach of a dense tableau.

use crate::error::LpError;
use crate::model::{LpProblem, Relation, Sense};
use crate::solution::{LpSolution, SolveStats};

/// Numerical tolerance for pivot magnitudes, ratio tests and feasibility.
pub(crate) const EPS: f64 = 1e-9;
/// Dual-feasibility tolerance: a column enters the basis only when its
/// reduced cost is below −DUAL_TOL. Looser than [`EPS`] on purpose — after
/// a cost-row reprice the reduced costs are only clean to ~1e-8 on the
/// sweep grid's 500-row flow LPs, and an entering threshold tighter than
/// that sends the solver into hundreds of thousands of zero-progress pivots
/// chasing rounding noise. The objective error this tolerates is far below
/// every downstream consumer's tolerance.
pub(crate) const DUAL_TOL: f64 = 1e-7;
/// A reduced cost above this (negative) threshold is treated as numerical
/// noise when its column admits no pivot: after thousands of dense
/// eliminations the incrementally-updated cost row drifts by ~1e-8, so a
/// column with reduced cost −2e-9 and entries ~1e-10 is a zero column, not
/// a certificate of unboundedness. Genuinely unbounded LPs enter with
/// decisively negative reduced costs (|rc| ≫ this).
pub(crate) const NOISE_RC_TOL: f64 = 1e-6;
/// Refresh rounds per phase: after a phase claims optimality its cost row
/// is recomputed from scratch against the current basis (see `reprice`) and
/// the phase re-runs if fresh reduced costs still show a descent direction.
/// Bounds the optimize→verify loop that repairs cost-row drift.
pub(crate) const MAX_REFRESH_ROUNDS: usize = 4;
/// Residual tolerated at the end of phase one before declaring infeasible.
/// Slightly loose so that the anti-degeneracy perturbation (see
/// [`RHS_PERTURBATION`]) can never flip a feasible flow LP to "infeasible".
pub(crate) const PHASE1_TOL: f64 = 1e-5;
/// Consecutive non-improving pivots before switching to Bland's rule.
pub(crate) const STALL_LIMIT: usize = 64;
/// Minimum magnitude for a *preferred* pivot element in the ratio test;
/// entries in (EPS, PIVOT_TOL] are used only when no better pivot exists.
pub(crate) const PIVOT_TOL: f64 = 1e-7;
/// Entries this close to zero after an elimination step are snapped to an
/// exact zero (catastrophic-cancellation residue, ~1e3 × machine epsilon
/// below the decision tolerance EPS).
pub(crate) const SNAP_TOL: f64 = 1e-12;
/// Deterministic right-hand-side perturbation that breaks the massive
/// degeneracy of flow LPs (many zero-supply conservation rows). The
/// perturbation is far below the feasibility tolerance, so reported
/// solutions are unaffected, but it makes ties in the ratio test — the
/// cause of degenerate pivot stalls — vanishingly rare.
pub(crate) const RHS_PERTURBATION: f64 = 1e-7;

/// How an original variable maps to standard-form column(s).
#[derive(Debug, Clone)]
enum VarMap {
    /// `x = lower + x_std[col]`
    Shifted { col: usize, lower: f64 },
    /// `x = upper - x_std[col]` (used when only the upper bound is finite)
    Mirrored { col: usize, upper: f64 },
    /// `x = x_std[pos] - x_std[neg]` (free variable)
    Split { pos: usize, neg: usize },
}

struct StandardForm {
    /// rows[i] = dense coefficient row over standard columns.
    rows: Vec<Vec<f64>>,
    rhs: Vec<f64>,
    relations: Vec<Relation>,
    /// Minimization objective over standard columns.
    objective: Vec<f64>,
    /// Constant added to the objective by the variable shifts.
    objective_offset: f64,
    var_map: Vec<VarMap>,
    num_cols: usize,
}

fn build_standard_form(problem: &LpProblem) -> StandardForm {
    let mut var_map = Vec::with_capacity(problem.vars.len());
    let mut num_cols = 0usize;
    // Extra rows produced by finite upper bounds of shifted variables.
    let mut bound_rows: Vec<(usize, f64)> = Vec::new();

    for v in &problem.vars {
        if v.lower.is_finite() {
            let col = num_cols;
            num_cols += 1;
            if v.upper.is_finite() {
                bound_rows.push((col, v.upper - v.lower));
            }
            var_map.push(VarMap::Shifted {
                col,
                lower: v.lower,
            });
        } else if v.upper.is_finite() {
            let col = num_cols;
            num_cols += 1;
            var_map.push(VarMap::Mirrored {
                col,
                upper: v.upper,
            });
        } else {
            let pos = num_cols;
            let neg = num_cols + 1;
            num_cols += 2;
            var_map.push(VarMap::Split { pos, neg });
        }
    }

    // Objective over standard columns (always minimization internally).
    let sign = match problem.sense {
        Sense::Minimize => 1.0,
        Sense::Maximize => -1.0,
    };
    let mut objective = vec![0.0; num_cols];
    let mut objective_offset = 0.0;
    for (v, map) in problem.vars.iter().zip(&var_map) {
        let c = sign * v.objective;
        match *map {
            VarMap::Shifted { col, lower } => {
                objective[col] += c;
                objective_offset += c * lower;
            }
            VarMap::Mirrored { col, upper } => {
                objective[col] -= c;
                objective_offset += c * upper;
            }
            VarMap::Split { pos, neg } => {
                objective[pos] += c;
                objective[neg] -= c;
            }
        }
    }

    let mut rows = Vec::with_capacity(problem.constraints.len() + bound_rows.len());
    let mut rhs = Vec::with_capacity(rows.capacity());
    let mut relations = Vec::with_capacity(rows.capacity());

    for cons in &problem.constraints {
        let mut row = vec![0.0; num_cols];
        let mut b = cons.rhs;
        for &(var, coeff) in &cons.terms {
            match var_map[var.index()] {
                VarMap::Shifted { col, lower } => {
                    row[col] += coeff;
                    b -= coeff * lower;
                }
                VarMap::Mirrored { col, upper } => {
                    row[col] -= coeff;
                    b -= coeff * upper;
                }
                VarMap::Split { pos, neg } => {
                    row[pos] += coeff;
                    row[neg] -= coeff;
                }
            }
        }
        rows.push(row);
        rhs.push(b);
        relations.push(cons.relation);
    }

    for (col, ub) in bound_rows {
        let mut row = vec![0.0; num_cols];
        row[col] = 1.0;
        rows.push(row);
        rhs.push(ub);
        relations.push(Relation::Le);
    }

    StandardForm {
        rows,
        rhs,
        relations,
        objective,
        objective_offset,
        var_map,
        num_cols,
    }
}

/// Dense simplex tableau with an explicit basis.
struct Tableau {
    /// m x (total_cols + 1); last column is the right-hand side.
    a: Vec<Vec<f64>>,
    /// Objective row (reduced costs) of length total_cols + 1.
    cost: Vec<f64>,
    /// Basis variable (column index) of every row.
    basis: Vec<usize>,
    m: usize,
    total_cols: usize,
    /// Numerical-event tallies, accumulated locally (plain integers, no
    /// global sink traffic) and reported to `coyote-obs` once per solve.
    refresh_rounds: usize,
    pivot_guard_triggers: usize,
    noise_clamps: usize,
    snapped_entries: usize,
    /// Whether an observability sink was installed when the solve started;
    /// keeps the per-entry snap tally out of the hot elimination loop on
    /// unprofiled runs (the tally accumulator blocks vectorization).
    track_tallies: bool,
}

impl Tableau {
    fn rhs_col(&self) -> usize {
        self.total_cols
    }

    /// True if every entry of the column is below the pivot tolerance *in
    /// magnitude* — the column is numerically zero (elimination residue of a
    /// dependent column), so it can neither leave the current vertex nor
    /// certify an unbounded ray.
    fn column_is_noise(&self, col: usize) -> bool {
        (0..self.m).all(|r| self.a[r][col].abs() <= PIVOT_TOL)
    }

    fn pivot(&mut self, row: usize, col: usize) {
        let piv = self.a[row][col];
        debug_assert!(piv.abs() > EPS);
        let inv = 1.0 / piv;
        for x in self.a[row].iter_mut() {
            *x *= inv;
        }
        // Re-normalize the pivot element exactly to 1 to limit drift.
        self.a[row][col] = 1.0;
        for r in 0..self.m {
            if r == row {
                continue;
            }
            let factor = self.a[r][col];
            if factor.abs() > EPS {
                // Snap elimination residue to an exact zero: a subtraction
                // that cancels to ~1e-12 is noise, and letting it linger
                // seeds ghost columns that later look like descent
                // directions with no valid pivot (spurious "unbounded").
                //
                // Two bodies for the hottest loop in the solver: the snap
                // tally adds a serial accumulator that blocks
                // vectorization, so it only runs when a profiling sink was
                // installed at solve start. The snap decision itself (and
                // thus every number produced) is identical on both paths.
                if self.track_tallies {
                    let mut snapped = 0usize;
                    for c in 0..=self.total_cols {
                        let x = self.a[r][c] - factor * self.a[row][c];
                        let snap = x.abs() < SNAP_TOL;
                        snapped += (snap && x != 0.0) as usize;
                        self.a[r][c] = if snap { 0.0 } else { x };
                    }
                    self.snapped_entries += snapped;
                } else {
                    for c in 0..=self.total_cols {
                        let x = self.a[r][c] - factor * self.a[row][c];
                        self.a[r][c] = if x.abs() < SNAP_TOL { 0.0 } else { x };
                    }
                }
                self.a[r][col] = 0.0;
            }
        }
        let factor = self.cost[col];
        if factor.abs() > EPS {
            for c in 0..=self.total_cols {
                self.cost[c] -= factor * self.a[row][c];
            }
            self.cost[col] = 0.0;
        }
        self.basis[row] = col;
    }

    /// One simplex phase: minimize the current cost row over allowed columns.
    /// Returns number of pivots, or an error if unbounded / out of budget.
    fn run(&mut self, allowed: &dyn Fn(usize) -> bool, limit: usize) -> Result<usize, LpError> {
        let mut pivots = 0usize;
        let mut stall = 0usize;
        let mut last_obj = self.cost[self.rhs_col()];
        loop {
            if pivots >= limit {
                return Err(LpError::IterationLimit { limit });
            }
            // Entering column.
            let use_bland = stall >= STALL_LIMIT;
            let mut enter: Option<usize> = None;
            let mut best = -DUAL_TOL;
            for c in 0..self.total_cols {
                if !allowed(c) {
                    continue;
                }
                let rc = self.cost[c];
                if rc < -DUAL_TOL {
                    if use_bland {
                        enter = Some(c);
                        break;
                    }
                    if rc < best {
                        best = rc;
                        enter = Some(c);
                    }
                }
            }
            let Some(col) = enter else {
                return Ok(pivots); // optimal
            };
            // Leaving row: minimum ratio test. Ties are broken towards the
            // row with the largest pivot element (better numerical
            // stability, fewer degenerate follow-up pivots); under Bland's
            // rule ties fall back to the smallest basis index so the
            // anti-cycling guarantee holds.
            let mut leave: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for r in 0..self.m {
                let a = self.a[r][col];
                if a > EPS {
                    let ratio = self.a[r][self.rhs_col()] / a;
                    let better = if ratio < best_ratio - EPS {
                        true
                    } else if ratio < best_ratio + EPS {
                        match leave {
                            None => true,
                            Some(lr) => {
                                if use_bland {
                                    self.basis[r] < self.basis[lr]
                                } else {
                                    a > self.a[lr][col]
                                }
                            }
                        }
                    } else {
                        false
                    };
                    if better {
                        best_ratio = ratio;
                        leave = Some(r);
                    }
                }
            }
            // Pivot-size guard: dividing a row by a ~1e-9..1e-7 element
            // amplifies its rounding noise enormously and is the main way
            // the tableau decays over thousands of pivots. If the ratio
            // test forces a tiny pivot, prefer a decisively-sized pivot
            // whose ratio is at most a hair above the minimum — the basic
            // variables this under-cuts go negative by no more than the
            // relaxation, far inside the feasibility tolerance. Disabled
            // under Bland's rule: overriding its leaving row would void the
            // anti-cycling guarantee the stall switch exists for.
            if let (Some(lr), false) = (leave, use_bland) {
                if self.a[lr][col] < PIVOT_TOL {
                    let relax = EPS * (1.0 + best_ratio.abs());
                    let mut alt: Option<usize> = None;
                    for r in 0..self.m {
                        let a = self.a[r][col];
                        if a >= PIVOT_TOL && self.a[r][self.rhs_col()] / a <= best_ratio + relax {
                            let better = match alt {
                                None => true,
                                Some(ar) => a > self.a[ar][col],
                            };
                            if better {
                                alt = Some(r);
                            }
                        }
                    }
                    if let Some(ar) = alt {
                        leave = Some(ar);
                        self.pivot_guard_triggers += 1;
                    }
                }
            }
            let Some(row) = leave else {
                if self.cost[col] >= -NOISE_RC_TOL && self.column_is_noise(col) {
                    // A numerically-zero descent direction, not a real ray:
                    // neutralize the column and keep optimizing. A genuine
                    // extreme ray keeps its decisive (negative) entries and
                    // still reports unbounded below.
                    self.cost[col] = 0.0;
                    self.noise_clamps += 1;
                    continue;
                }
                return Err(LpError::Unbounded);
            };
            self.pivot(row, col);
            pivots += 1;
            let obj = self.cost[self.rhs_col()];
            if obj < last_obj - EPS {
                stall = 0;
                last_obj = obj;
            } else {
                stall += 1;
            }
        }
    }
}

/// Rebuilds the tableau's reduced-cost row from scratch: start from the
/// phase's original cost vector and price out every basic column. The
/// incremental cost-row updates inside [`Tableau::run`] accumulate rounding
/// error linearly in the pivot count; on the few-thousand-pivot flow LPs of
/// the sweep grid that drift reaches ~1e-7 and can make a phase terminate
/// "optimal" (or "infeasible"/"unbounded") spuriously. Repricing against
/// the current basis resets the drift to one elimination pass.
fn reprice(tab: &mut Tableau, base_cost: &[f64]) {
    let mut cost = vec![0.0; tab.total_cols + 1];
    cost[..base_cost.len()].copy_from_slice(base_cost);
    tab.cost = cost;
    for r in 0..tab.m {
        let b = tab.basis[r];
        let factor = tab.cost[b];
        if factor.abs() > EPS {
            for c in 0..=tab.total_cols {
                tab.cost[c] -= factor * tab.a[r][c];
            }
            tab.cost[b] = 0.0;
        }
    }
}

/// Runs one simplex phase to verified optimality: optimize, reprice the
/// cost row from the basis, and re-run while fresh reduced costs still show
/// a descent direction (bounded by [`MAX_REFRESH_ROUNDS`]). Returns the
/// total pivot count. The tableau's cost row is freshly repriced when this
/// returns, so callers read objective values with minimal drift.
fn run_phase(
    tab: &mut Tableau,
    base_cost: &[f64],
    allowed: &dyn Fn(usize) -> bool,
    limit: usize,
) -> Result<usize, LpError> {
    let mut pivots = 0usize;
    reprice(tab, base_cost);
    for _ in 0..MAX_REFRESH_ROUNDS {
        tab.refresh_rounds += 1;
        // The refresh rounds share one pivot budget so the caller's
        // iteration limit stays a hard cap; the error echoes the configured
        // limit, not the remainder the failing round saw.
        pivots += tab.run(allowed, limit - pivots).map_err(|e| match e {
            LpError::IterationLimit { .. } => LpError::IterationLimit { limit },
            other => other,
        })?;
        reprice(tab, base_cost);
        let clean = (0..tab.total_cols)
            .all(|c| !allowed(c) || tab.cost[c] >= -DUAL_TOL || noise_column(tab, c));
        if clean {
            break;
        }
    }
    Ok(pivots)
}

/// True if a column's tiny negative reduced cost is drift, not a descent
/// direction: the column must be numerically zero
/// ([`Tableau::column_is_noise`]) — a genuine extreme ray keeps decisive
/// (possibly negative) entries and is never classified as noise.
fn noise_column(tab: &Tableau, col: usize) -> bool {
    tab.cost[col] >= -NOISE_RC_TOL && tab.column_is_noise(col)
}

/// Solves `problem` (already validated) with the two-phase simplex method.
pub(crate) fn solve(problem: &LpProblem) -> Result<LpSolution, LpError> {
    let _span = coyote_obs::span("lp.solve");
    let sf = build_standard_form(problem);
    let m = sf.rows.len();
    let n = sf.num_cols;

    // Column layout: [structural | slack/surplus | artificial].
    // Count slack and artificial columns.
    let mut num_slack = 0usize;
    for rel in &sf.relations {
        match rel {
            Relation::Le | Relation::Ge => num_slack += 1,
            Relation::Eq => {}
        }
    }
    let slack_base = n;
    let art_base = n + num_slack;
    // Artificial variable for every row keeps the construction simple; rows
    // whose slack can serve as the initial basis skip the artificial.
    let mut total_cols = art_base;

    let mut a = vec![vec![0.0; art_base + m + 1]; m];
    let mut basis = vec![usize::MAX; m];
    let mut art_of_row = vec![usize::MAX; m];

    let rhs_scale = sf.rhs.iter().map(|r| r.abs()).fold(1.0_f64, f64::max);

    let mut slack_idx = 0usize;
    for i in 0..m {
        let mut flip = false;
        let mut rhs = sf.rhs[i];
        if rhs < 0.0 {
            flip = true;
            rhs = -rhs;
        }
        for (dst, &v) in a[i].iter_mut().zip(sf.rows[i].iter()).take(n) {
            *dst = if flip { -v } else { v };
        }
        // Effective relation after the sign flip.
        let rel = match (sf.relations[i], flip) {
            (Relation::Le, false) | (Relation::Ge, true) => Relation::Le,
            (Relation::Ge, false) | (Relation::Le, true) => Relation::Ge,
            (Relation::Eq, _) => Relation::Eq,
        };
        match rel {
            Relation::Le => {
                let col = slack_base + slack_idx;
                slack_idx += 1;
                a[i][col] = 1.0;
                basis[i] = col;
            }
            Relation::Ge => {
                let col = slack_base + slack_idx;
                slack_idx += 1;
                a[i][col] = -1.0;
                // needs an artificial below
            }
            Relation::Eq => {}
        }
        if basis[i] == usize::MAX {
            let art_col = total_cols;
            total_cols += 1;
            art_of_row[i] = art_col;
            a[i][art_col] = 1.0;
            basis[i] = art_col;
        }
        // Anti-degeneracy: nudge the (non-negative) right-hand side of
        // *equality* rows by a tiny, deterministic, row-dependent amount.
        // Flow LPs have many zero-supply conservation equalities, which
        // otherwise produce long runs of degenerate pivots. Inequality rows
        // are left exact so that paired `>=` / `<=` constraints (e.g. the
        // margin-1 uncertainty box, where both bounds coincide) stay
        // mutually consistent.
        let rhs = if matches!(sf.relations[i], Relation::Eq) {
            rhs + RHS_PERTURBATION * rhs_scale * ((i % 97) as f64 + 1.0) / 97.0
        } else {
            rhs
        };
        // Store rhs in a temporary place; final layout assembled next.
        a[i].truncate(art_base + m);
        a[i].push(rhs);
        // The row currently has length art_base + m + 1 with the rhs at the
        // end; unused artificial columns beyond total_cols stay zero.
        let _ = rhs;
    }

    // Shrink rows to the actual number of columns (+1 for rhs).
    for row in a.iter_mut() {
        let rhs = *row.last().expect("row has rhs");
        row.truncate(art_base + m);
        row.truncate(total_cols.max(art_base));
        row.resize(total_cols, 0.0);
        row.push(rhs);
    }

    // ---- Phase one: minimize the sum of artificial variables. ----
    let mut phase1_cost = vec![0.0; total_cols];
    for i in 0..m {
        if art_of_row[i] != usize::MAX {
            phase1_cost[art_of_row[i]] = 1.0;
        }
    }
    let mut tab = Tableau {
        a,
        cost: vec![0.0; total_cols + 1],
        basis,
        m,
        total_cols,
        refresh_rounds: 0,
        pivot_guard_triggers: 0,
        noise_clamps: 0,
        snapped_entries: 0,
        track_tallies: coyote_obs::enabled(),
    };

    let limit = problem
        .iteration_limit
        .unwrap_or(200 * (m + total_cols) + 20_000);

    let mut stats = SolveStats {
        standard_vars: n,
        rows: m,
        ..Default::default()
    };

    let has_artificials = art_of_row.iter().any(|&c| c != usize::MAX);
    if has_artificials {
        stats.phase1_pivots = run_phase(&mut tab, &phase1_cost, &|_c| true, limit)?;
        let residual = -tab.cost[tab.rhs_col()]; // cost row holds -objective
        let phase1_value = residual.abs();
        if phase1_value > PHASE1_TOL {
            return Err(LpError::Infeasible {
                residual: phase1_value,
            });
        }
        // Drive any artificial variable still in the basis out of it (at zero
        // level) so phase two never re-increases it.
        for r in 0..m {
            let b = tab.basis[r];
            if b >= art_base && art_of_row.contains(&b) {
                // Find a non-artificial column with a nonzero entry to pivot in.
                let mut found = None;
                for c in 0..art_base {
                    if tab.a[r][c].abs() > 1e-7 {
                        found = Some(c);
                        break;
                    }
                }
                if let Some(c) = found {
                    tab.pivot(r, c);
                }
                // If none exists the row is redundant; leaving the artificial
                // basic at value zero is harmless as long as it cannot grow,
                // which phase two's cost row (zero on artificials, and the
                // allowed() filter) guarantees.
            }
        }
    }

    // ---- Phase two: minimize the real objective. ----
    let mut phase2_cost = vec![0.0; tab.total_cols];
    phase2_cost[..n].copy_from_slice(&sf.objective[..n]);
    let art_base_copy = art_base;
    let art_cols: Vec<bool> = (0..tab.total_cols)
        .map(|c| c >= art_base_copy && art_of_row.contains(&c))
        .collect();
    stats.phase2_pivots = run_phase(&mut tab, &phase2_cost, &|c| !art_cols[c], limit)?;

    // ---- Extract the solution. ----
    let mut std_values = vec![0.0; tab.total_cols];
    for r in 0..m {
        let b = tab.basis[r];
        std_values[b] = tab.a[r][tab.rhs_col()];
    }
    let mut values = vec![0.0; problem.vars.len()];
    for (i, map) in sf.var_map.iter().enumerate() {
        values[i] = match *map {
            VarMap::Shifted { col, lower } => lower + std_values[col],
            VarMap::Mirrored { col, upper } => upper - std_values[col],
            VarMap::Split { pos, neg } => std_values[pos] - std_values[neg],
        };
    }

    // Internal objective is a minimization; cost row's rhs holds its negative.
    let internal_obj = -tab.cost[tab.rhs_col()] + sf.objective_offset;
    let objective = match problem.sense {
        Sense::Minimize => internal_obj,
        Sense::Maximize => -internal_obj,
    };

    stats.refresh_rounds = tab.refresh_rounds;
    stats.pivot_guard_triggers = tab.pivot_guard_triggers;
    stats.noise_clamps = tab.noise_clamps;
    stats.snapped_entries = tab.snapped_entries;
    report_solve(&stats);

    Ok(LpSolution {
        objective,
        values,
        stats,
    })
}

/// Publishes one completed solve's tallies to the global obs sink (a single
/// `enabled()` atomic load when profiling is off). All quantities are exact
/// per-solve workload counts, so their totals are bit-identical no matter
/// how solves are distributed over worker threads.
pub(crate) fn report_solve(stats: &SolveStats) {
    if !coyote_obs::enabled() {
        return;
    }
    let pivots = (stats.phase1_pivots + stats.phase2_pivots) as u64;
    coyote_obs::counter("lp.solves", 1);
    coyote_obs::counter("lp.pivots", pivots);
    coyote_obs::counter("lp.phase1_pivots", stats.phase1_pivots as u64);
    coyote_obs::counter("lp.phase2_pivots", stats.phase2_pivots as u64);
    coyote_obs::counter("lp.refresh_rounds", stats.refresh_rounds as u64);
    coyote_obs::counter("lp.pivot_guard_triggers", stats.pivot_guard_triggers as u64);
    coyote_obs::counter("lp.noise_clamps", stats.noise_clamps as u64);
    coyote_obs::counter("lp.snapped_entries", stats.snapped_entries as u64);
    coyote_obs::observe("lp.pivots_per_solve", pivots);
    coyote_obs::observe("lp.rows_per_solve", stats.rows as u64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LpProblem, Relation, Sense};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn maximize_with_le_constraints() {
        // Classic textbook LP: max 3x+2y, x+y<=4, x+3y<=6 -> (4, 0), obj 12.
        let mut lp = LpProblem::new(Sense::Maximize);
        let x = lp.add_nonneg_var("x", 3.0);
        let y = lp.add_nonneg_var("y", 2.0);
        lp.add_constraint("c1", &[(x, 1.0), (y, 1.0)], Relation::Le, 4.0);
        lp.add_constraint("c2", &[(x, 1.0), (y, 3.0)], Relation::Le, 6.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.objective, 12.0);
        assert_close(sol.value(x), 4.0);
        assert_close(sol.value(y), 0.0);
    }

    #[test]
    fn minimize_with_ge_constraints_needs_phase_one() {
        // min 2x + 3y s.t. x + y >= 10, x >= 2, y >= 3  -> x=7, y=3, obj 23.
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_var("x", 2.0, f64::INFINITY, 2.0);
        let y = lp.add_var("y", 3.0, f64::INFINITY, 3.0);
        lp.add_constraint("sum", &[(x, 1.0), (y, 1.0)], Relation::Ge, 10.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.objective, 23.0);
        assert_close(sol.value(x), 7.0);
        assert_close(sol.value(y), 3.0);
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + 2y == 4, x - y == 1 -> x=2, y=1, obj 3.
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_nonneg_var("x", 1.0);
        let y = lp.add_nonneg_var("y", 1.0);
        lp.add_constraint("e1", &[(x, 1.0), (y, 2.0)], Relation::Eq, 4.0);
        lp.add_constraint("e2", &[(x, 1.0), (y, -1.0)], Relation::Eq, 1.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.objective, 3.0);
        assert_close(sol.value(x), 2.0);
        assert_close(sol.value(y), 1.0);
    }

    #[test]
    fn detects_infeasible() {
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_var("x", 0.0, 1.0, 1.0);
        lp.add_constraint("c", &[(x, 1.0)], Relation::Ge, 5.0);
        assert!(matches!(lp.solve(), Err(LpError::Infeasible { .. })));
    }

    #[test]
    fn detects_unbounded() {
        let mut lp = LpProblem::new(Sense::Maximize);
        let x = lp.add_nonneg_var("x", 1.0);
        lp.add_constraint("c", &[(x, -1.0)], Relation::Le, 1.0);
        assert!(matches!(lp.solve(), Err(LpError::Unbounded)));
    }

    #[test]
    fn free_variables_are_split() {
        // min |style| problem: min x s.t. x >= -5 with x free -> -5.
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_var("x", f64::NEG_INFINITY, f64::INFINITY, 1.0);
        lp.add_constraint("lb", &[(x, 1.0)], Relation::Ge, -5.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.objective, -5.0);
        assert_close(sol.value(x), -5.0);
    }

    #[test]
    fn upper_bounded_only_variable() {
        // max x with x <= 3 (no lower bound) and x >= -10 as a row.
        let mut lp = LpProblem::new(Sense::Maximize);
        let x = lp.add_var("x", f64::NEG_INFINITY, 3.0, 1.0);
        lp.add_constraint("lb", &[(x, 1.0)], Relation::Ge, -10.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.objective, 3.0);
        assert_close(sol.value(x), 3.0);
    }

    #[test]
    fn shifted_lower_bounds_and_finite_upper_bounds() {
        // max x + y with 1 <= x <= 2, 0.5 <= y <= 0.75.
        let mut lp = LpProblem::new(Sense::Maximize);
        let x = lp.add_var("x", 1.0, 2.0, 1.0);
        let y = lp.add_var("y", 0.5, 0.75, 1.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.objective, 2.75);
        assert_close(sol.value(x), 2.0);
        assert_close(sol.value(y), 0.75);
    }

    #[test]
    fn negative_rhs_rows_are_handled() {
        // min x s.t. -x <= -3  (i.e. x >= 3).
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_nonneg_var("x", 1.0);
        lp.add_constraint("c", &[(x, -1.0)], Relation::Le, -3.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.value(x), 3.0);
    }

    #[test]
    fn degenerate_problems_terminate() {
        // A problem with many redundant constraints (degeneracy stress).
        let mut lp = LpProblem::new(Sense::Maximize);
        let x = lp.add_nonneg_var("x", 1.0);
        let y = lp.add_nonneg_var("y", 1.0);
        for i in 0..20 {
            let s = 1.0 + (i as f64) * 0.0; // identical rows
            lp.add_constraint(format!("r{i}"), &[(x, 1.0), (y, 1.0)], Relation::Le, s);
        }
        let sol = lp.solve().unwrap();
        assert_close(sol.objective, 1.0);
    }

    #[test]
    fn eval_matches_constraints_at_optimum() {
        let mut lp = LpProblem::new(Sense::Maximize);
        let x = lp.add_nonneg_var("x", 5.0);
        let y = lp.add_nonneg_var("y", 4.0);
        lp.add_constraint("c1", &[(x, 6.0), (y, 4.0)], Relation::Le, 24.0);
        lp.add_constraint("c2", &[(x, 1.0), (y, 2.0)], Relation::Le, 6.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.objective, 21.0);
        assert!(sol.eval(&[(x, 6.0), (y, 4.0)]) <= 24.0 + 1e-6);
        assert!(sol.eval(&[(x, 1.0), (y, 2.0)]) <= 6.0 + 1e-6);
    }

    #[test]
    fn min_cost_flow_style_lp() {
        // Send 2 units from s to t over two parallel paths with costs 1 and 3
        // and capacities 1.5 each: cheapest sends 1.5 on the cheap path.
        let mut lp = LpProblem::new(Sense::Minimize);
        let f1 = lp.add_var("f1", 0.0, 1.5, 1.0);
        let f2 = lp.add_var("f2", 0.0, 1.5, 3.0);
        lp.add_constraint("demand", &[(f1, 1.0), (f2, 1.0)], Relation::Eq, 2.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.value(f1), 1.5);
        assert_close(sol.value(f2), 0.5);
        assert_close(sol.objective, 3.0);
    }

    #[test]
    fn zero_constraint_problem_uses_bounds_only() {
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_var("x", -2.0, 7.0, 1.5);
        let sol = lp.solve().unwrap();
        assert_close(sol.value(x), -2.0);
        assert_close(sol.objective, -3.0);
    }
}

/// Degenerate and pathological instances: cycling-prone pivots, redundant
/// systems, and the error paths the worst-case LPs rely on.
#[cfg(test)]
mod edge_case_tests {
    use crate::error::LpError;
    use crate::model::{LpProblem, Relation, Sense};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    /// Beale's classic cycling example: plain Dantzig pivoting loops forever
    /// on it; the stall-triggered switch to Bland's rule must terminate at
    /// the optimum (objective 1/20 at x = (1/25, 0, 1, 0)).
    #[test]
    fn beale_cycling_instance_terminates_at_optimum() {
        let mut lp = LpProblem::new(Sense::Maximize);
        let x1 = lp.add_nonneg_var("x1", 0.75);
        let x2 = lp.add_nonneg_var("x2", -150.0);
        let x3 = lp.add_nonneg_var("x3", 0.02);
        let x4 = lp.add_nonneg_var("x4", -6.0);
        lp.add_constraint(
            "r1",
            &[(x1, 0.25), (x2, -60.0), (x3, -0.04), (x4, 9.0)],
            Relation::Le,
            0.0,
        );
        lp.add_constraint(
            "r2",
            &[(x1, 0.5), (x2, -90.0), (x3, -0.02), (x4, 3.0)],
            Relation::Le,
            0.0,
        );
        lp.add_constraint("r3", &[(x3, 1.0)], Relation::Le, 1.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.objective, 0.05);
        assert_close(sol.value(x1), 0.04);
        assert_close(sol.value(x3), 1.0);
    }

    /// A degenerate vertex where three constraints meet: the optimum (1, 1)
    /// satisfies all of them with equality, forcing zero-progress pivots.
    #[test]
    fn degenerate_vertex_is_handled() {
        let mut lp = LpProblem::new(Sense::Maximize);
        let x = lp.add_nonneg_var("x", 1.0);
        let y = lp.add_nonneg_var("y", 1.0);
        lp.add_constraint("cx", &[(x, 1.0)], Relation::Le, 1.0);
        lp.add_constraint("cy", &[(y, 1.0)], Relation::Le, 1.0);
        lp.add_constraint("sum", &[(x, 1.0), (y, 1.0)], Relation::Le, 2.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.objective, 2.0);
        assert_close(sol.value(x), 1.0);
        assert_close(sol.value(y), 1.0);
    }

    /// An all-zero objective is optimal at any feasible point; the solver
    /// must still return one that satisfies the constraints.
    #[test]
    fn zero_objective_returns_a_feasible_point() {
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_nonneg_var("x", 0.0);
        let y = lp.add_nonneg_var("y", 0.0);
        lp.add_constraint("sum", &[(x, 1.0), (y, 1.0)], Relation::Eq, 4.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.objective, 0.0);
        assert_close(sol.value(x) + sol.value(y), 4.0);
        assert!(sol.value(x) >= -1e-9 && sol.value(y) >= -1e-9);
    }

    /// Duplicated equality rows are redundant, not infeasible.
    #[test]
    fn duplicate_equality_rows_are_harmless() {
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_nonneg_var("x", 1.0);
        let y = lp.add_nonneg_var("y", 2.0);
        lp.add_constraint("e", &[(x, 1.0), (y, 1.0)], Relation::Eq, 3.0);
        lp.add_constraint("e_again", &[(x, 1.0), (y, 1.0)], Relation::Eq, 3.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.objective, 3.0);
        assert_close(sol.value(x), 3.0);
    }

    /// Contradictory equalities must surface as `Infeasible`, not as a
    /// silently wrong answer.
    #[test]
    fn contradictory_equalities_are_infeasible() {
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_nonneg_var("x", 1.0);
        let y = lp.add_nonneg_var("y", 1.0);
        lp.add_constraint("a", &[(x, 1.0), (y, 1.0)], Relation::Eq, 1.0);
        lp.add_constraint("b", &[(x, 1.0), (y, 1.0)], Relation::Eq, 3.0);
        assert!(matches!(lp.solve(), Err(LpError::Infeasible { .. })));
    }

    /// A genuinely unbounded ray whose reduced cost sits inside the
    /// noise-clamp window (−NOISE_RC_TOL, −DUAL_TOL]: the clamp only
    /// neutralizes numerically-zero columns, so the decisive −1 entry here
    /// must still surface as `Unbounded`, not "optimal at 0".
    #[test]
    fn tiny_objective_unbounded_ray_is_still_detected() {
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_nonneg_var("x", -5.0e-7);
        let s = lp.add_nonneg_var("s", 0.0);
        lp.add_constraint("c", &[(s, 1.0), (x, -1.0)], Relation::Eq, 1.0);
        assert!(matches!(lp.solve(), Err(LpError::Unbounded)));
    }

    /// A free variable pushed down by a minimization with no lower bound.
    #[test]
    fn free_variable_unbounded_below() {
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_var("x", f64::NEG_INFINITY, f64::INFINITY, 1.0);
        lp.add_constraint("ub", &[(x, 1.0)], Relation::Le, 5.0);
        assert!(matches!(lp.solve(), Err(LpError::Unbounded)));
    }

    /// The iteration limit aborts the solve with the configured limit echoed
    /// back (two equality rows need at least two phase-one pivots).
    #[test]
    fn iteration_limit_is_reported() {
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_nonneg_var("x", 1.0);
        let y = lp.add_nonneg_var("y", 1.0);
        lp.add_constraint("e1", &[(x, 1.0), (y, 2.0)], Relation::Eq, 4.0);
        lp.add_constraint("e2", &[(x, 1.0), (y, -1.0)], Relation::Eq, 1.0);
        lp.set_iteration_limit(1);
        assert!(matches!(
            lp.solve(),
            Err(LpError::IterationLimit { limit: 1 })
        ));
    }

    /// NaN input is rejected up front by validation rather than corrupting
    /// the tableau.
    #[test]
    fn nan_coefficients_are_rejected() {
        let mut lp = LpProblem::new(Sense::Maximize);
        let x = lp.add_nonneg_var("x", f64::NAN);
        lp.add_constraint("c", &[(x, 1.0)], Relation::Le, 1.0);
        assert!(matches!(lp.solve(), Err(LpError::NotFinite { .. })));
    }
}
