//! Problem-builder API: variables, bounds, linear constraints, objective.

use crate::error::LpError;
use crate::revised::{self, PhaseOneCache, WarmBasis};
use crate::simplex;
use crate::solution::LpSolution;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// Which simplex implementation solves the problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverBackend {
    /// Sparse revised simplex with LU/eta basis updates (the default).
    Revised,
    /// Dense two-phase tableau — the differential oracle. Kept for
    /// cross-checking the revised implementation; no warm-start support.
    Dense,
}

/// Process-wide default backend. `COYOTE_LP_BACKEND=dense` selects the
/// dense oracle; anything else (including unset) selects the revised
/// simplex.
pub fn default_backend() -> SolverBackend {
    static DEFAULT: OnceLock<SolverBackend> = OnceLock::new();
    *DEFAULT.get_or_init(|| match std::env::var("COYOTE_LP_BACKEND") {
        Ok(v) if v.eq_ignore_ascii_case("dense") => SolverBackend::Dense,
        _ => SolverBackend::Revised,
    })
}

static WARM_STARTS: AtomicBool = AtomicBool::new(true);
static WARM_ENV: OnceLock<bool> = OnceLock::new();

/// Globally enables/disables warm starts for [`LpProblem::solve_cached`].
/// Defaults to enabled; `COYOTE_LP_WARM=0` disables at startup. Explicit
/// [`LpProblem::solve_warm`] calls are not affected — that API is an
/// explicit opt-in by the caller.
pub fn set_warm_starts(enabled: bool) {
    WARM_STARTS.store(enabled, Ordering::Relaxed);
}

/// Whether warm starts are currently enabled (see [`set_warm_starts`]).
pub fn warm_starts_enabled() -> bool {
    let env_ok = *WARM_ENV.get_or_init(|| {
        !matches!(
            std::env::var("COYOTE_LP_WARM").as_deref(),
            Ok("0") | Ok("off")
        )
    });
    env_ok && WARM_STARTS.load(Ordering::Relaxed)
}

/// Handle to a decision variable of an [`LpProblem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Raw index of the variable in the problem.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// Minimize the objective.
    Minimize,
    /// Maximize the objective.
    Maximize,
}

/// Constraint relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `expr <= rhs`
    Le,
    /// `expr >= rhs`
    Ge,
    /// `expr == rhs`
    Eq,
}

#[derive(Debug, Clone)]
pub(crate) struct Variable {
    pub name: String,
    pub lower: f64,
    pub upper: f64,
    pub objective: f64,
}

#[derive(Debug, Clone)]
pub(crate) struct Constraint {
    pub name: String,
    /// Sparse row: (variable, coefficient). Duplicate variables are summed.
    pub terms: Vec<(VarId, f64)>,
    pub relation: Relation,
    pub rhs: f64,
}

/// A linear program under construction.
///
/// Variables have box bounds `[lower, upper]` (use `f64::NEG_INFINITY` /
/// `f64::INFINITY` for free/unbounded sides). Constraints are sparse rows.
#[derive(Debug, Clone)]
pub struct LpProblem {
    pub(crate) sense: Sense,
    pub(crate) vars: Vec<Variable>,
    pub(crate) constraints: Vec<Constraint>,
    /// Hard cap on simplex pivots; defaults to a generous bound derived from
    /// the problem size when `None`.
    pub(crate) iteration_limit: Option<usize>,
    /// Per-problem backend override; [`default_backend`] when `None`.
    pub(crate) backend: Option<SolverBackend>,
}

impl LpProblem {
    /// Creates an empty problem with the given optimization direction.
    pub fn new(sense: Sense) -> Self {
        Self {
            sense,
            vars: Vec::new(),
            constraints: Vec::new(),
            iteration_limit: None,
            backend: None,
        }
    }

    /// Overrides the solver backend for this problem (default:
    /// [`default_backend`]).
    pub fn set_backend(&mut self, backend: SolverBackend) {
        self.backend = Some(backend);
    }

    /// Adds a variable with bounds `[lower, upper]` and objective
    /// coefficient `objective`; returns its handle.
    pub fn add_var(
        &mut self,
        name: impl Into<String>,
        lower: f64,
        upper: f64,
        objective: f64,
    ) -> VarId {
        let id = VarId(self.vars.len());
        self.vars.push(Variable {
            name: name.into(),
            lower,
            upper,
            objective,
        });
        id
    }

    /// Convenience: adds a non-negative variable (`0 <= x`) with an objective
    /// coefficient.
    pub fn add_nonneg_var(&mut self, name: impl Into<String>, objective: f64) -> VarId {
        self.add_var(name, 0.0, f64::INFINITY, objective)
    }

    /// Changes the objective coefficient of an existing variable.
    pub fn set_objective(&mut self, var: VarId, coefficient: f64) {
        self.vars[var.0].objective = coefficient;
    }

    /// Adds a sparse linear constraint `Σ coeff·var  (<=|>=|==)  rhs` and
    /// returns its index (useful for reading duals later).
    pub fn add_constraint(
        &mut self,
        name: impl Into<String>,
        terms: &[(VarId, f64)],
        relation: Relation,
        rhs: f64,
    ) -> usize {
        let idx = self.constraints.len();
        self.constraints.push(Constraint {
            name: name.into(),
            terms: terms.to_vec(),
            relation,
            rhs,
        });
        idx
    }

    /// Sets an explicit pivot limit (default: `50 * (m + n) + 10_000`).
    pub fn set_iteration_limit(&mut self, limit: usize) {
        self.iteration_limit = Some(limit);
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Name of a variable (used in error messages and debugging dumps).
    pub fn var_name(&self, var: VarId) -> &str {
        &self.vars[var.0].name
    }

    /// Validates the model: finite coefficients, sane bounds, known ids.
    pub fn validate(&self) -> Result<(), LpError> {
        for v in &self.vars {
            if v.lower > v.upper {
                return Err(LpError::EmptyDomain {
                    name: v.name.clone(),
                    lower: v.lower,
                    upper: v.upper,
                });
            }
            if v.objective.is_nan() || v.objective.is_infinite() {
                return Err(LpError::NotFinite {
                    context: format!("objective coefficient of {}", v.name),
                });
            }
            if v.lower.is_nan() || v.upper.is_nan() {
                return Err(LpError::NotFinite {
                    context: format!("bounds of {}", v.name),
                });
            }
        }
        for c in &self.constraints {
            if !c.rhs.is_finite() {
                return Err(LpError::NotFinite {
                    context: format!("right-hand side of {}", c.name),
                });
            }
            for &(v, coeff) in &c.terms {
                if v.0 >= self.vars.len() {
                    return Err(LpError::UnknownVariable { index: v.0 });
                }
                if !coeff.is_finite() {
                    return Err(LpError::NotFinite {
                        context: format!("coefficient of {} in {}", self.vars[v.0].name, c.name),
                    });
                }
            }
        }
        Ok(())
    }

    /// Solves the problem with the configured backend (sparse revised
    /// simplex by default, dense tableau when selected).
    pub fn solve(&self) -> Result<LpSolution, LpError> {
        self.validate()?;
        match self.backend.unwrap_or_else(default_backend) {
            SolverBackend::Revised => revised::solve(self),
            SolverBackend::Dense => simplex::solve(self),
        }
    }

    /// Solves with phase-one replay: when `cache` holds the phase-one basis
    /// of an identical constraint system (same variables, bounds and
    /// constraints — the objective may differ), phase one is skipped and
    /// the result is bit-identical to a cold [`LpProblem::solve`]. Misses
    /// fall back to a cold solve and prime the cache. No-op equivalent to
    /// `solve()` when warm starts are disabled ([`set_warm_starts`]) or the
    /// dense backend is selected.
    pub fn solve_cached(&self, cache: &mut PhaseOneCache) -> Result<LpSolution, LpError> {
        self.validate()?;
        match self.backend.unwrap_or_else(default_backend) {
            SolverBackend::Dense => simplex::solve(self),
            SolverBackend::Revised if !warm_starts_enabled() => revised::solve(self),
            SolverBackend::Revised => revised::solve_cached(self, cache),
        }
    }

    /// Solves re-entering from a previous optimal basis, and returns the
    /// optimal basis of *this* solve for the next call. The basis survives
    /// model edits (rows/columns appended, bounds or right-hand sides
    /// changed): members are tracked semantically and the basis is repaired
    /// or abandoned (cold fallback) as needed. Reaches the same optimal
    /// objective as a cold solve; the reported vertex may differ on
    /// degenerate problems. Ignores the global warm-start toggle — calling
    /// this API is the opt-in. Falls back to a plain cold solve on the
    /// dense backend (which returns an empty reusable basis).
    pub fn solve_warm(&self, warm: Option<&WarmBasis>) -> Result<(LpSolution, WarmBasis), LpError> {
        self.validate()?;
        match self.backend.unwrap_or_else(default_backend) {
            SolverBackend::Dense => {
                let sol = simplex::solve(self)?;
                Ok((sol, WarmBasis { keys: Vec::new() }))
            }
            SolverBackend::Revised => revised::solve_warm(self, warm),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_tracks_counts_and_names() {
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_nonneg_var("x", 1.0);
        let y = lp.add_var("y", -1.0, 1.0, 2.0);
        lp.add_constraint("c", &[(x, 1.0), (y, 1.0)], Relation::Ge, 1.0);
        assert_eq!(lp.num_vars(), 2);
        assert_eq!(lp.num_constraints(), 1);
        assert_eq!(lp.var_name(x), "x");
        assert_eq!(lp.var_name(y), "y");
    }

    #[test]
    fn validation_rejects_bad_models() {
        let mut lp = LpProblem::new(Sense::Minimize);
        let _x = lp.add_var("x", 1.0, 0.0, 0.0); // empty domain
        assert!(matches!(lp.validate(), Err(LpError::EmptyDomain { .. })));

        let mut lp = LpProblem::new(Sense::Minimize);
        let _ = lp.add_var("x", 0.0, 1.0, f64::NAN);
        assert!(matches!(lp.validate(), Err(LpError::NotFinite { .. })));

        let mut lp = LpProblem::new(Sense::Minimize);
        lp.add_nonneg_var("x", 0.0);
        lp.add_constraint("bad", &[(VarId(7), 1.0)], Relation::Le, 0.0);
        assert!(matches!(
            lp.validate(),
            Err(LpError::UnknownVariable { index: 7 })
        ));

        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_nonneg_var("x", 0.0);
        lp.add_constraint("bad", &[(x, 1.0)], Relation::Le, f64::INFINITY);
        assert!(matches!(lp.validate(), Err(LpError::NotFinite { .. })));
        let _ = x;
    }

    #[test]
    fn set_objective_overrides_coefficient() {
        let mut lp = LpProblem::new(Sense::Maximize);
        let x = lp.add_var("x", 0.0, 5.0, 0.0);
        lp.set_objective(x, 3.0);
        let sol = lp.solve().unwrap();
        // Tolerance accounts for the solver's deterministic anti-degeneracy
        // right-hand-side perturbation.
        assert!((sol.objective - 15.0).abs() < 1e-5);
    }
}
