//! # coyote-lp
//!
//! A self-contained, two-phase **simplex** linear-programming solver with two
//! backends: a revised simplex over a sparse CSR constraint matrix with an
//! incrementally updated LU basis factorization (the default), and the
//! original dense tableau kept as a differential oracle
//! ([`SolverBackend::Dense`], env `COYOTE_LP_BACKEND=dense`).
//!
//! The COYOTE paper solves several families of linear programs:
//!
//! * the *demands-aware optimum* `OPTU(D)` — a per-destination
//!   multicommodity-flow LP minimizing maximum link utilization
//!   (Section III / VI, used as the normalizing denominator of every
//!   performance ratio);
//! * the *"slave LP"* (Appendix C) that finds, for a fixed routing and a
//!   fixed edge, the demand matrix maximizing that edge's utilization over
//!   all matrices routable within the capacities (optionally intersected
//!   with the operator's uncertainty box) — the building block of both the
//!   constraint-generation loop and the oblivious-ratio evaluation;
//! * the dual "weight" certificates of Theorem 5.
//!
//! The original work delegates these to AMPL/MOSEK; this crate implements the
//! solver from scratch so that the whole reproduction is dependency-free.
//!
//! Repeated solves over growing constraint systems (the constraint-generation
//! loop in `coyote-core::worst_case`) can warm-start: phase-one replay via
//! [`PhaseOneCache`] is bit-identical to a cold solve and is on by default
//! ([`set_warm_starts`], env `COYOTE_LP_WARM=0` to disable); basis restore via
//! [`WarmBasis`] survives row/column appends and falls back to a cold solve
//! when the restored basis is no longer primal feasible.
//!
//! ## Usage
//!
//! ```
//! use coyote_lp::{LpProblem, Sense, Relation};
//!
//! // maximize 3x + 2y  s.t.  x + y <= 4,  x + 3y <= 6,  x,y >= 0
//! let mut lp = LpProblem::new(Sense::Maximize);
//! let x = lp.add_var("x", 0.0, f64::INFINITY, 3.0);
//! let y = lp.add_var("y", 0.0, f64::INFINITY, 2.0);
//! lp.add_constraint("c1", &[(x, 1.0), (y, 1.0)], Relation::Le, 4.0);
//! lp.add_constraint("c2", &[(x, 1.0), (y, 3.0)], Relation::Le, 6.0);
//! let sol = lp.solve().unwrap();
//! assert!((sol.objective - 12.0).abs() < 1e-6);
//! assert!((sol.value(x) - 4.0).abs() < 1e-6);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod basis;
pub mod error;
pub mod model;
pub mod revised;
pub mod simplex;
pub mod solution;
pub mod sparse;

pub use error::LpError;
pub use model::{
    default_backend, set_warm_starts, warm_starts_enabled, LpProblem, Relation, Sense,
    SolverBackend, VarId,
};
pub use revised::{BasisKey, PhaseOneCache, RowKey, WarmBasis};
pub use solution::{LpSolution, SolveStats};
pub use sparse::CsrMatrix;
