//! Error type for the LP solver.

use std::fmt;

/// Errors reported by [`crate::LpProblem::solve`].
#[derive(Debug, Clone, PartialEq)]
pub enum LpError {
    /// The constraint system admits no feasible point.
    Infeasible {
        /// Residual infeasibility left at the end of phase one.
        residual: f64,
    },
    /// The objective is unbounded in the optimization direction.
    Unbounded,
    /// The iteration limit was exhausted before reaching optimality.
    IterationLimit {
        /// The limit that was hit.
        limit: usize,
    },
    /// A variable or constraint referenced an unknown variable id.
    UnknownVariable {
        /// The offending index.
        index: usize,
    },
    /// A coefficient, bound or right-hand side was NaN/infinite where a
    /// finite value is required.
    NotFinite {
        /// Description of where the bad value appeared.
        context: String,
    },
    /// Lower bound exceeds upper bound for a variable.
    EmptyDomain {
        /// Variable name.
        name: String,
        /// Lower bound.
        lower: f64,
        /// Upper bound.
        upper: f64,
    },
    /// The solver hit an unrecoverable numerical failure (e.g. a basis that
    /// could not be factorized or repaired). Should not occur on
    /// well-scaled problems; reported rather than panicking.
    Numerical {
        /// Description of the failure.
        context: String,
    },
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Infeasible { residual } => {
                write!(
                    f,
                    "problem is infeasible (phase-one residual {residual:.3e})"
                )
            }
            LpError::Unbounded => write!(f, "objective is unbounded"),
            LpError::IterationLimit { limit } => {
                write!(f, "simplex iteration limit of {limit} reached")
            }
            LpError::UnknownVariable { index } => write!(f, "unknown variable index {index}"),
            LpError::NotFinite { context } => write!(f, "non-finite value in {context}"),
            LpError::EmptyDomain { name, lower, upper } => {
                write!(f, "variable {name} has empty domain [{lower}, {upper}]")
            }
            LpError::Numerical { context } => write!(f, "numerical failure: {context}"),
        }
    }
}

impl std::error::Error for LpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(LpError::Unbounded.to_string().contains("unbounded"));
        assert!(LpError::Infeasible { residual: 0.5 }
            .to_string()
            .contains("infeasible"));
        assert!(LpError::IterationLimit { limit: 10 }
            .to_string()
            .contains("10"));
        assert!(LpError::EmptyDomain {
            name: "x".into(),
            lower: 2.0,
            upper: 1.0
        }
        .to_string()
        .contains("x"));
    }
}
