//! Revised simplex over a sparse column store, with warm starts.
//!
//! This is the production solver behind [`crate::LpProblem::solve`]. It
//! implements the same two-phase method as the dense oracle
//! ([`crate::simplex`]) — identical standard-form conversion, identical
//! tolerances, Dantzig pricing with the stall-triggered switch to Bland's
//! rule, the pivot-size guard and the noise-column clamp — but instead of a
//! dense tableau it keeps:
//!
//! * the constraint matrix by columns in CSR form ([`crate::sparse`]), so
//!   pricing is one BTRAN plus an `O(nnz)` sweep instead of a dense row scan;
//! * an LU factorization of the basis with product-form eta updates
//!   (the private `basis` module), refactorized every `REFRESH_PIVOTS`
//!   pivots, so each pivot costs `O(nnz)` instead of `O(rows × cols)`.
//!
//! Reduced costs are recomputed from a fresh BTRAN every iteration, so the
//! dense solver's cost-row drift problem does not exist here; the
//! optimize→refactorize→verify loop (`run_phase`) still re-checks claimed
//! optimality against a fresh factorization because the *basic values*
//! accumulate drift through the eta file.
//!
//! ## Warm starts
//!
//! Two protocols, deliberately distinct (see `docs/ARCHITECTURE.md`):
//!
//! * **Phase-one replay** ([`PhaseOneCache`], used via
//!   [`crate::LpProblem::solve_cached`]): caches the feasible basis reached
//!   at the end of phase one, keyed by a fingerprint of the *constraint
//!   system only* (bounds, rows, right-hand sides — never the objective).
//!   Phase one is a pure function of the constraints, so re-entering phase
//!   two from the cached basis is **bit-identical** to a cold solve of the
//!   same problem: both paths refactorize from scratch and recompute the
//!   basic values at the phase boundary, making the phase-two start state a
//!   pure function of (basis, constraints). This is what the
//!   constraint-generation loop uses when it re-solves the slave LP per
//!   edge with only the objective changing.
//! * **Basis restore** ([`WarmBasis`], used via
//!   [`crate::LpProblem::solve_warm`]): re-enters from a previous *optimal*
//!   basis after the problem changed (rows/columns appended, right-hand
//!   sides moved). Basis members are tracked by semantic [`BasisKey`]s so
//!   they survive index shifts; unresolvable keys are dropped, the basis is
//!   completed with slack/artificial columns and repaired if singular, and
//!   if the restored basis is primal-infeasible the solver falls back to a
//!   cold solve. This reaches the same optimal *objective* as a cold solve
//!   (both are optimal within the dual tolerance) but may report a
//!   different optimal vertex, which is why the bit-identity-sensitive
//!   pipeline paths use phase-one replay instead.

use crate::basis::{Factorization, LuFactors};
use crate::error::LpError;
use crate::model::{LpProblem, Relation, Sense};
use crate::simplex::{
    DUAL_TOL, EPS, MAX_REFRESH_ROUNDS, NOISE_RC_TOL, PHASE1_TOL, PIVOT_TOL, RHS_PERTURBATION,
    SNAP_TOL, STALL_LIMIT,
};
use crate::solution::{LpSolution, SolveStats};
use crate::sparse::CsrMatrix;

/// How an original variable maps to standard-form column(s). Mirrors the
/// dense solver's conversion exactly so both backends solve the same
/// standard-form problem.
#[derive(Debug, Clone)]
enum VarMap {
    /// `x = lower + x_std[col]`
    Shifted { col: usize, lower: f64 },
    /// `x = upper - x_std[col]`
    Mirrored { col: usize, upper: f64 },
    /// `x = x_std[pos] - x_std[neg]`
    Split { pos: usize, neg: usize },
}

/// A standard-form row, identified independently of its current index so a
/// basis can be re-mapped after constraints are appended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RowKey {
    /// The i-th user constraint of the [`LpProblem`].
    Constraint(usize),
    /// The finite-upper-bound row generated for the given variable index.
    Bound(usize),
}

/// A standard-form column, identified semantically (variable or row role)
/// rather than positionally, so a basis survives row/column appends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BasisKey {
    /// The primary standard column of a variable (its shifted, mirrored or
    /// positive-split part).
    Primary(usize),
    /// The negative-split column of a free variable.
    Negative(usize),
    /// The slack/surplus column of a row.
    Slack(RowKey),
    /// The artificial column of a row.
    Artificial(RowKey),
}

/// An optimal basis captured from a previous solve, re-usable as a warm
/// start via [`crate::LpProblem::solve_warm`]. Opaque: it stays valid (if
/// not necessarily useful) across arbitrary model edits.
#[derive(Debug, Clone)]
pub struct WarmBasis {
    pub(crate) keys: Vec<BasisKey>,
}

impl WarmBasis {
    /// Number of basic columns recorded.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True for the empty basis (a problem with no constraint rows).
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

#[derive(Debug, Clone)]
struct PhaseOneEntry {
    fingerprint: u64,
    keys: Vec<BasisKey>,
    phase1_pivots: usize,
}

/// Cache for phase-one replay across solves that share a constraint system
/// and differ only in the objective (see the module docs; used by
/// [`crate::LpProblem::solve_cached`]).
#[derive(Debug, Clone, Default)]
pub struct PhaseOneCache {
    entry: Option<PhaseOneEntry>,
}

impl PhaseOneCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// True once a phase-one basis has been captured.
    pub fn is_primed(&self) -> bool {
        self.entry.is_some()
    }
}

/// Sparse standard form: the same conversion as the dense solver's
/// `build_standard_form` + tableau assembly, stored by columns.
struct SparseForm {
    m: usize,
    total_cols: usize,
    art_base: usize,
    /// One CSR row per LP column, over the `m` constraint rows, with the
    /// right-hand-side sign flips already applied.
    cols: CsrMatrix,
    /// Non-negative, deterministically perturbed right-hand side.
    b: Vec<f64>,
    /// Phase-two (minimization) cost over all columns; zero outside the
    /// structural block.
    phase2_cost: Vec<f64>,
    /// Phase-one cost: one on artificial columns.
    phase1_cost: Vec<f64>,
    objective_offset: f64,
    var_map: Vec<VarMap>,
    is_artificial: Vec<bool>,
    /// Initial basis: slack (effective-`<=` rows) or artificial.
    initial_basis: Vec<usize>,
    /// Artificial column of each row (`usize::MAX` if none).
    art_of_row: Vec<usize>,
    /// Slack column of each row (`usize::MAX` if none).
    slack_of_row: Vec<usize>,
    /// A unit-ish column per row used for basis repair: the artificial if
    /// the row has one, its slack otherwise (every row has one of the two).
    unit_col_of_row: Vec<usize>,
    /// Semantic identity of every column.
    col_key: Vec<BasisKey>,
    /// Standard-form row behind each row index.
    row_key: Vec<RowKey>,
    /// Bound-row index of each variable (`usize::MAX` if none).
    bound_row_of_var: Vec<usize>,
    /// Constraint-system fingerprint (objective and sense excluded).
    fingerprint: u64,
    has_artificials: bool,
}

fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &byte in bytes {
        *hash ^= byte as u64;
        *hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

/// Fingerprint of the constraint system: variable bounds, constraint terms,
/// relations and right-hand sides. The objective and the optimization sense
/// are deliberately excluded — phase one never sees them.
fn constraint_fingerprint(problem: &LpProblem) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    fnv1a(&mut h, &(problem.vars.len() as u64).to_le_bytes());
    for v in &problem.vars {
        fnv1a(&mut h, &v.lower.to_bits().to_le_bytes());
        fnv1a(&mut h, &v.upper.to_bits().to_le_bytes());
    }
    fnv1a(&mut h, &(problem.constraints.len() as u64).to_le_bytes());
    for c in &problem.constraints {
        let tag: u8 = match c.relation {
            Relation::Le => 0,
            Relation::Ge => 1,
            Relation::Eq => 2,
        };
        fnv1a(&mut h, &[tag]);
        fnv1a(&mut h, &c.rhs.to_bits().to_le_bytes());
        fnv1a(&mut h, &(c.terms.len() as u64).to_le_bytes());
        for &(var, coeff) in &c.terms {
            fnv1a(&mut h, &(var.index() as u64).to_le_bytes());
            fnv1a(&mut h, &coeff.to_bits().to_le_bytes());
        }
    }
    h
}

impl SparseForm {
    fn build(problem: &LpProblem) -> Self {
        // --- Variable mapping (identical to the dense conversion). ---
        let mut var_map = Vec::with_capacity(problem.vars.len());
        let mut num_structural = 0usize;
        let mut bound_rows: Vec<(usize, f64, usize)> = Vec::new(); // (col, ub, var)
        let mut bound_row_of_var = vec![usize::MAX; problem.vars.len()];
        let mut primary_col_key: Vec<(usize, BasisKey)> = Vec::new();
        for (vi, v) in problem.vars.iter().enumerate() {
            if v.lower.is_finite() {
                let col = num_structural;
                num_structural += 1;
                if v.upper.is_finite() {
                    bound_rows.push((col, v.upper - v.lower, vi));
                }
                var_map.push(VarMap::Shifted {
                    col,
                    lower: v.lower,
                });
                primary_col_key.push((col, BasisKey::Primary(vi)));
            } else if v.upper.is_finite() {
                let col = num_structural;
                num_structural += 1;
                var_map.push(VarMap::Mirrored {
                    col,
                    upper: v.upper,
                });
                primary_col_key.push((col, BasisKey::Primary(vi)));
            } else {
                let pos = num_structural;
                let neg = num_structural + 1;
                num_structural += 2;
                var_map.push(VarMap::Split { pos, neg });
                primary_col_key.push((pos, BasisKey::Primary(vi)));
                primary_col_key.push((neg, BasisKey::Negative(vi)));
            }
        }

        // --- Minimization objective over structural columns. ---
        let sign = match problem.sense {
            Sense::Minimize => 1.0,
            Sense::Maximize => -1.0,
        };
        let mut objective = vec![0.0; num_structural];
        let mut objective_offset = 0.0;
        for (v, map) in problem.vars.iter().zip(&var_map) {
            let c = sign * v.objective;
            match *map {
                VarMap::Shifted { col, lower } => {
                    objective[col] += c;
                    objective_offset += c * lower;
                }
                VarMap::Mirrored { col, upper } => {
                    objective[col] -= c;
                    objective_offset += c * upper;
                }
                VarMap::Split { pos, neg } => {
                    objective[pos] += c;
                    objective[neg] -= c;
                }
            }
        }

        // --- Rows: user constraints then bound rows, as sparse triplets. ---
        struct Row {
            terms: Vec<(usize, f64)>,
            rhs: f64,
            relation: Relation,
            key: RowKey,
        }
        let mut rows: Vec<Row> = Vec::with_capacity(problem.constraints.len() + bound_rows.len());
        for (ci, cons) in problem.constraints.iter().enumerate() {
            let mut terms: Vec<(usize, f64)> = Vec::new();
            let mut rhs = cons.rhs;
            for &(var, coeff) in &cons.terms {
                match var_map[var.index()] {
                    VarMap::Shifted { col, lower } => {
                        terms.push((col, coeff));
                        rhs -= coeff * lower;
                    }
                    VarMap::Mirrored { col, upper } => {
                        terms.push((col, -coeff));
                        rhs -= coeff * upper;
                    }
                    VarMap::Split { pos, neg } => {
                        terms.push((pos, coeff));
                        terms.push((neg, -coeff));
                    }
                }
            }
            rows.push(Row {
                terms,
                rhs,
                relation: cons.relation,
                key: RowKey::Constraint(ci),
            });
        }
        for &(col, ub, vi) in &bound_rows {
            bound_row_of_var[vi] = rows.len();
            rows.push(Row {
                terms: vec![(col, 1.0)],
                rhs: ub,
                relation: Relation::Le,
                key: RowKey::Bound(vi),
            });
        }

        let m = rows.len();
        let rhs_scale = rows.iter().map(|r| r.rhs.abs()).fold(1.0_f64, f64::max);
        let num_slack = rows
            .iter()
            .filter(|r| matches!(r.relation, Relation::Le | Relation::Ge))
            .count();
        let slack_base = num_structural;
        let art_base = num_structural + num_slack;

        // --- Assemble columns, flips, perturbation, initial basis. ---
        let mut triplets: Vec<(usize, usize, f64)> = Vec::new();
        let mut b = Vec::with_capacity(m);
        let mut initial_basis = vec![usize::MAX; m];
        let mut art_of_row = vec![usize::MAX; m];
        let mut slack_of_row = vec![usize::MAX; m];
        let mut total_cols = art_base;
        let mut col_key: Vec<BasisKey> = vec![BasisKey::Primary(usize::MAX); art_base];
        for &(col, key) in &primary_col_key {
            col_key[col] = key;
        }
        let mut row_key = Vec::with_capacity(m);
        let mut slack_idx = 0usize;
        // Artificial columns are appended after this loop so `col_key`
        // indices stay dense; remember which rows need one.
        let mut art_rows: Vec<usize> = Vec::new();
        for (i, row) in rows.iter().enumerate() {
            row_key.push(row.key);
            let flip = row.rhs < 0.0;
            let rhs = row.rhs.abs();
            for &(col, coeff) in &row.terms {
                let v = if flip { -coeff } else { coeff };
                // `from_triplets` coalesces repeated variables exactly like
                // the dense `row[col] += coeff` accumulation.
                triplets.push((col, i, v));
            }
            let rel = match (row.relation, flip) {
                (Relation::Le, false) | (Relation::Ge, true) => Relation::Le,
                (Relation::Ge, false) | (Relation::Le, true) => Relation::Ge,
                (Relation::Eq, _) => Relation::Eq,
            };
            match rel {
                Relation::Le => {
                    let col = slack_base + slack_idx;
                    slack_idx += 1;
                    triplets.push((col, i, 1.0));
                    col_key[col] = BasisKey::Slack(row.key);
                    slack_of_row[i] = col;
                    initial_basis[i] = col;
                }
                Relation::Ge => {
                    let col = slack_base + slack_idx;
                    slack_idx += 1;
                    triplets.push((col, i, -1.0));
                    col_key[col] = BasisKey::Slack(row.key);
                    slack_of_row[i] = col;
                }
                Relation::Eq => {}
            }
            if initial_basis[i] == usize::MAX {
                art_rows.push(i);
            }
            // Anti-degeneracy perturbation: same rule as the dense solver —
            // only original *equality* rows, scaled by the rhs magnitude and
            // a deterministic row-dependent factor.
            let rhs = if matches!(row.relation, Relation::Eq) {
                rhs + RHS_PERTURBATION * rhs_scale * ((i % 97) as f64 + 1.0) / 97.0
            } else {
                rhs
            };
            b.push(rhs);
        }
        for &i in &art_rows {
            let col = total_cols;
            total_cols += 1;
            triplets.push((col, i, 1.0));
            col_key.push(BasisKey::Artificial(row_key[i]));
            art_of_row[i] = col;
            initial_basis[i] = col;
        }

        let cols = CsrMatrix::from_triplets(total_cols, m, &triplets);
        let mut is_artificial = vec![false; total_cols];
        for c in is_artificial.iter_mut().skip(art_base) {
            *c = true;
        }
        let mut phase1_cost = vec![0.0; total_cols];
        for c in phase1_cost.iter_mut().skip(art_base) {
            *c = 1.0;
        }
        let mut phase2_cost = vec![0.0; total_cols];
        phase2_cost[..num_structural].copy_from_slice(&objective);
        let unit_col_of_row: Vec<usize> = (0..m)
            .map(|i| {
                if art_of_row[i] != usize::MAX {
                    art_of_row[i]
                } else {
                    slack_of_row[i]
                }
            })
            .collect();
        let has_artificials = !art_rows.is_empty();

        SparseForm {
            m,
            total_cols,
            art_base,
            cols,
            b,
            phase2_cost,
            phase1_cost,
            objective_offset,
            var_map,
            is_artificial,
            initial_basis,
            art_of_row,
            slack_of_row,
            unit_col_of_row,
            col_key,
            row_key,
            bound_row_of_var,
            fingerprint: constraint_fingerprint(problem),
            has_artificials,
        }
    }

    /// Resolves a semantic key to its current column, if it still exists
    /// with the same role.
    fn resolve_key(&self, key: BasisKey) -> Option<usize> {
        let row_of = |rk: RowKey| -> Option<usize> {
            match rk {
                RowKey::Constraint(i) => {
                    // User constraints always occupy the leading rows.
                    let ncons = self
                        .row_key
                        .iter()
                        .take_while(|k| matches!(k, RowKey::Constraint(_)))
                        .count();
                    (i < ncons).then_some(i)
                }
                RowKey::Bound(vi) => self
                    .bound_row_of_var
                    .get(vi)
                    .copied()
                    .filter(|&r| r != usize::MAX),
            }
        };
        match key {
            BasisKey::Primary(vi) => match self.var_map.get(vi)? {
                VarMap::Shifted { col, .. } | VarMap::Mirrored { col, .. } => Some(*col),
                VarMap::Split { pos, .. } => Some(*pos),
            },
            BasisKey::Negative(vi) => match self.var_map.get(vi)? {
                VarMap::Split { neg, .. } => Some(*neg),
                _ => None,
            },
            BasisKey::Slack(rk) => {
                let r = row_of(rk)?;
                (self.slack_of_row[r] != usize::MAX).then(|| self.slack_of_row[r])
            }
            BasisKey::Artificial(rk) => {
                let r = row_of(rk)?;
                (self.art_of_row[r] != usize::MAX).then(|| self.art_of_row[r])
            }
        }
    }

    /// Maps a key list to distinct columns. `strict` requires every key to
    /// resolve (phase-one replay: the system is supposed to be identical);
    /// otherwise unresolved or duplicate keys are dropped and the basis is
    /// completed with per-row unit columns (basis restore after edits).
    fn map_keys(&self, keys: &[BasisKey], strict: bool) -> Option<Vec<usize>> {
        let mut cols = Vec::with_capacity(self.m);
        let mut used = vec![false; self.total_cols];
        for &key in keys {
            match self.resolve_key(key) {
                Some(c) if !used[c] => {
                    used[c] = true;
                    cols.push(c);
                }
                _ if strict => return None,
                _ => {}
            }
        }
        if strict && cols.len() != self.m {
            return None;
        }
        // Complete a short basis with repair columns, rows in order.
        let mut row = 0usize;
        while cols.len() < self.m && row < self.m {
            let c = self.unit_col_of_row[row];
            if !used[c] {
                used[c] = true;
                cols.push(c);
            }
            row += 1;
        }
        (cols.len() == self.m).then_some(cols)
    }
}

/// Mutable solver state shared by both phases.
struct Solver<'a> {
    sf: &'a SparseForm,
    limit: usize,
    pivots_total: usize,
    basis: Vec<usize>,
    /// Basis position of every column (`usize::MAX` when nonbasic).
    pos_of: Vec<usize>,
    fact: Factorization,
    x_b: Vec<f64>,
    clamped: Vec<bool>,
    refresh_rounds: usize,
    pivot_guard_triggers: usize,
    noise_clamps: usize,
    refactorizations: usize,
    basis_repairs: usize,
}

impl<'a> Solver<'a> {
    fn new(sf: &'a SparseForm, limit: usize) -> Result<Self, LpError> {
        let basis = sf.initial_basis.clone();
        let mut pos_of = vec![usize::MAX; sf.total_cols];
        for (i, &c) in basis.iter().enumerate() {
            pos_of[c] = i;
        }
        let mut solver = Self {
            sf,
            limit,
            pivots_total: 0,
            basis,
            pos_of,
            fact: Factorization::new(LuFactors::empty()),
            x_b: Vec::new(),
            clamped: vec![false; sf.total_cols],
            refresh_rounds: 0,
            pivot_guard_triggers: 0,
            noise_clamps: 0,
            refactorizations: 0,
            basis_repairs: 0,
        };
        solver.refactorize()?;
        Ok(solver)
    }

    /// Factorizes `basis` with singularity repair: a dependent column is
    /// replaced by the unit column of a still-uncovered row (failure
    /// positions strictly increase, so the loop terminates). Returns the
    /// factors, the (possibly repaired) basis and the repair count.
    fn factorize_repaired(
        sf: &SparseForm,
        mut basis: Vec<usize>,
    ) -> Result<(LuFactors, Vec<usize>, usize), LpError> {
        let mut repairs = 0usize;
        loop {
            match LuFactors::factorize(&sf.cols, &basis) {
                Ok(lu) => return Ok((lu, basis, repairs)),
                Err(singular) => {
                    let in_basis: std::collections::HashSet<usize> =
                        basis.iter().copied().collect();
                    let replacement = singular
                        .unpivoted_rows
                        .iter()
                        .map(|&r| sf.unit_col_of_row[r])
                        .find(|c| !in_basis.contains(c));
                    let Some(col) = replacement else {
                        return Err(LpError::Numerical {
                            context: "basis repair found no replacement column".into(),
                        });
                    };
                    basis[singular.position] = col;
                    repairs += 1;
                }
            }
        }
    }

    /// Refactorizes the current basis from scratch and recomputes the basic
    /// values from the original right-hand side, resetting eta-file drift.
    fn refactorize(&mut self) -> Result<(), LpError> {
        let (lu, basis, repairs) =
            Self::factorize_repaired(self.sf, std::mem::take(&mut self.basis))?;
        if repairs > 0 {
            self.basis_repairs += repairs;
            for p in self.pos_of.iter_mut() {
                *p = usize::MAX;
            }
            for (i, &c) in basis.iter().enumerate() {
                self.pos_of[c] = i;
            }
        }
        self.basis = basis;
        self.fact = Factorization::new(lu);
        self.x_b = self.fact.ftran(&self.sf.b);
        self.refactorizations += 1;
        Ok(())
    }

    /// Tries to install an externally supplied basis. On success the solver
    /// state is fully replaced (fresh factorization, fresh basic values);
    /// on failure (`primal infeasible beyond tolerance`) the previous state
    /// is kept untouched.
    fn try_install(&mut self, candidate: Vec<usize>) -> bool {
        let Ok((lu, basis, repairs)) = Self::factorize_repaired(self.sf, candidate) else {
            return false;
        };
        let fact = Factorization::new(lu);
        let x_b = fact.ftran(&self.sf.b);
        if x_b.iter().any(|&v| v < -PHASE1_TOL) {
            return false;
        }
        let residual: f64 = basis
            .iter()
            .zip(&x_b)
            .filter(|&(&c, _)| self.sf.is_artificial[c])
            .map(|(_, &v)| v.abs())
            .sum();
        if residual > PHASE1_TOL {
            return false;
        }
        for p in self.pos_of.iter_mut() {
            *p = usize::MAX;
        }
        for (i, &c) in basis.iter().enumerate() {
            self.pos_of[c] = i;
        }
        self.basis = basis;
        self.fact = fact;
        self.x_b = x_b;
        self.basis_repairs += repairs;
        self.refactorizations += 1;
        true
    }

    /// FTRAN of one constraint-matrix column.
    fn ftran_col(&self, col: usize) -> Vec<f64> {
        let mut dense = vec![0.0; self.sf.m];
        for (r, v) in self.sf.cols.iter_row(col) {
            dense[r] = v;
        }
        self.fact.ftran(&dense)
    }

    /// BTRAN of the basic components of a cost vector: the simplex
    /// multipliers `y` with `yᵀB = c_Bᵀ`.
    fn multipliers(&self, cost: &[f64]) -> Vec<f64> {
        let cb: Vec<f64> = self.basis.iter().map(|&c| cost[c]).collect();
        self.fact.btran(&cb)
    }

    /// Reduced cost of a column given the multipliers.
    #[inline]
    fn reduced_cost(&self, cost: &[f64], y: &[f64], col: usize) -> f64 {
        let mut dot = 0.0;
        for (r, v) in self.sf.cols.iter_row(col) {
            dot += y[r] * v;
        }
        cost[col] - dot
    }

    /// Current phase objective `c_B · x_B`.
    fn phase_objective(&self, cost: &[f64]) -> f64 {
        self.basis
            .iter()
            .zip(&self.x_b)
            .map(|(&c, &x)| cost[c] * x)
            .sum()
    }

    /// One optimization sweep: pivot until the phase claims optimality.
    /// Mirrors the dense `Tableau::run` — Dantzig pricing, Bland after
    /// [`STALL_LIMIT`] non-improving pivots, identical ratio-test
    /// tie-breaks, the pivot-size guard and the noise-column clamp.
    fn optimize(&mut self, cost: &[f64], exclude_artificials: bool) -> Result<usize, LpError> {
        // A fresh sweep re-examines previously clamped columns, exactly as
        // the dense reprice rebuilds the cost row.
        for c in self.clamped.iter_mut() {
            *c = false;
        }
        let mut pivots = 0usize;
        let mut stall = 0usize;
        let mut last_obj = self.phase_objective(cost);
        loop {
            if self.pivots_total >= self.limit {
                return Err(LpError::IterationLimit { limit: self.limit });
            }
            let use_bland = stall >= STALL_LIMIT;
            let y = self.multipliers(cost);
            // Entering column.
            let mut enter: Option<(usize, f64)> = None;
            let mut best = -DUAL_TOL;
            for j in 0..self.sf.total_cols {
                if self.pos_of[j] != usize::MAX || self.clamped[j] {
                    continue;
                }
                if exclude_artificials && self.sf.is_artificial[j] {
                    continue;
                }
                let rc = self.reduced_cost(cost, &y, j);
                if rc < -DUAL_TOL {
                    if use_bland {
                        enter = Some((j, rc));
                        break;
                    }
                    if rc < best {
                        best = rc;
                        enter = Some((j, rc));
                    }
                }
            }
            let Some((col, rc)) = enter else {
                return Ok(pivots); // optimal for this sweep
            };
            let w = self.ftran_col(col);
            // Leaving row: minimum ratio test with the dense tie-breaks.
            let mut leave: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for (r, &wr) in w.iter().enumerate() {
                if wr > EPS {
                    let ratio = self.x_b[r] / wr;
                    let better = if ratio < best_ratio - EPS {
                        true
                    } else if ratio < best_ratio + EPS {
                        match leave {
                            None => true,
                            Some(lr) => {
                                if use_bland {
                                    self.basis[r] < self.basis[lr]
                                } else {
                                    wr > w[lr]
                                }
                            }
                        }
                    } else {
                        false
                    };
                    if better {
                        best_ratio = ratio;
                        leave = Some(r);
                    }
                }
            }
            // Pivot-size guard (disabled under Bland's rule, as in the
            // dense solver).
            if let (Some(lr), false) = (leave, use_bland) {
                if w[lr] < PIVOT_TOL {
                    let relax = EPS * (1.0 + best_ratio.abs());
                    let mut alt: Option<usize> = None;
                    for (r, &wr) in w.iter().enumerate() {
                        if wr >= PIVOT_TOL && self.x_b[r] / wr <= best_ratio + relax {
                            let better = match alt {
                                None => true,
                                Some(ar) => wr > w[ar],
                            };
                            if better {
                                alt = Some(r);
                            }
                        }
                    }
                    if let Some(ar) = alt {
                        leave = Some(ar);
                        self.pivot_guard_triggers += 1;
                    }
                }
            }
            let Some(row) = leave else {
                if rc >= -NOISE_RC_TOL && w.iter().all(|v| v.abs() <= PIVOT_TOL) {
                    // Numerically-zero descent direction, not a real ray.
                    self.clamped[col] = true;
                    self.noise_clamps += 1;
                    continue;
                }
                return Err(LpError::Unbounded);
            };
            self.pivot(&w, row, col);
            pivots += 1;
            self.pivots_total += 1;
            if self.fact.needs_refresh() {
                self.refactorize()?;
            }
            let obj = self.phase_objective(cost);
            if obj < last_obj - EPS {
                stall = 0;
                last_obj = obj;
            } else {
                stall += 1;
            }
        }
    }

    /// Applies one pivot: updates basic values, the eta file and the basis
    /// bookkeeping.
    fn pivot(&mut self, w: &[f64], row: usize, col: usize) {
        let theta = self.x_b[row] / w[row];
        for (i, &wi) in w.iter().enumerate() {
            if i == row {
                continue;
            }
            let v = self.x_b[i] - theta * wi;
            self.x_b[i] = if v.abs() < SNAP_TOL { 0.0 } else { v };
        }
        self.x_b[row] = theta;
        self.fact.update(w, row);
        self.pos_of[self.basis[row]] = usize::MAX;
        self.basis[row] = col;
        self.pos_of[col] = row;
    }

    /// True when fresh reduced costs (against a just-refactorized basis)
    /// show no genuine descent direction — the sparse analogue of the dense
    /// post-reprice clean check.
    fn verified_optimal(&self, cost: &[f64], exclude_artificials: bool) -> bool {
        let y = self.multipliers(cost);
        for j in 0..self.sf.total_cols {
            if self.pos_of[j] != usize::MAX {
                continue;
            }
            if exclude_artificials && self.sf.is_artificial[j] {
                continue;
            }
            let rc = self.reduced_cost(cost, &y, j);
            if rc >= -DUAL_TOL {
                continue;
            }
            if rc >= -NOISE_RC_TOL {
                let w = self.ftran_col(j);
                if w.iter().all(|v| v.abs() <= PIVOT_TOL) {
                    continue; // numerically-zero column, not a descent direction
                }
            }
            return false;
        }
        true
    }

    /// Runs one phase to verified optimality: optimize, refactorize (which
    /// also recomputes the basic values from scratch) and re-run while
    /// fresh reduced costs still descend, bounded by
    /// [`MAX_REFRESH_ROUNDS`].
    fn run_phase(&mut self, cost: &[f64], exclude_artificials: bool) -> Result<usize, LpError> {
        let mut pivots = 0usize;
        for _ in 0..MAX_REFRESH_ROUNDS {
            self.refresh_rounds += 1;
            pivots += self.optimize(cost, exclude_artificials)?;
            self.refactorize()?;
            if self.verified_optimal(cost, exclude_artificials) {
                break;
            }
        }
        Ok(pivots)
    }

    /// Sum of the basic artificial values — the phase-one residual.
    fn artificial_residual(&self) -> f64 {
        self.basis
            .iter()
            .zip(&self.x_b)
            .filter(|&(&c, _)| self.sf.is_artificial[c])
            .map(|(_, &v)| v.abs())
            .sum()
    }

    /// Drives basic artificials out of the basis at zero level, mirroring
    /// the dense post-phase-one sweep.
    fn drive_out_artificials(&mut self) -> Result<(), LpError> {
        for r in 0..self.sf.m {
            if !self.sf.is_artificial[self.basis[r]] {
                continue;
            }
            // Row r of B⁻¹, via BTRAN of the unit vector.
            let mut e = vec![0.0; self.sf.m];
            e[r] = 1.0;
            let rho = self.fact.btran(&e);
            let mut found = None;
            for c in 0..self.sf.art_base {
                if self.pos_of[c] != usize::MAX {
                    continue;
                }
                let mut entry = 0.0;
                for (rr, v) in self.sf.cols.iter_row(c) {
                    entry += rho[rr] * v;
                }
                if entry.abs() > 1e-7 {
                    found = Some(c);
                    break;
                }
            }
            if let Some(c) = found {
                let w = self.ftran_col(c);
                self.pivot(&w, r, c);
                if self.fact.needs_refresh() {
                    self.refactorize()?;
                }
            }
            // If no column qualifies the row is redundant; the artificial
            // stays basic at value zero, and phase two's allowed() filter
            // keeps it from growing.
        }
        Ok(())
    }

    /// Semantic keys of the current basis, in position order.
    fn basis_keys(&self) -> Vec<BasisKey> {
        self.basis.iter().map(|&c| self.sf.col_key[c]).collect()
    }
}

/// How a solve enters the two-phase loop.
enum Start<'a> {
    Cold,
    /// Replay a cached post-phase-one basis (identical constraint system).
    PhaseOne(&'a [BasisKey]),
    /// Restore a previous optimal basis across model edits.
    Full(&'a [BasisKey]),
}

struct Outcome {
    solution: LpSolution,
    final_keys: Vec<BasisKey>,
    post_phase1_keys: Vec<BasisKey>,
    /// True when the warm entry path was actually used (phase one skipped).
    warm: bool,
}

fn solve_inner(problem: &LpProblem, sf: &SparseForm, start: Start<'_>) -> Result<Outcome, LpError> {
    let _span = coyote_obs::span("lp.solve");
    let limit = problem
        .iteration_limit
        .unwrap_or(200 * (sf.m + sf.total_cols) + 20_000);
    let mut solver = Solver::new(sf, limit)?;
    let mut stats = SolveStats {
        standard_vars: sf.art_base - sf.slack_count(),
        rows: sf.m,
        ..Default::default()
    };

    // Warm entry: map the keys and install the basis. Both warm kinds skip
    // phase one on success; `try_install` rejects anything that is not
    // primal-feasible within the phase-one tolerance.
    let mut warm = false;
    match start {
        Start::Cold => {}
        Start::PhaseOne(keys) => {
            if let Some(candidate) = sf.map_keys(keys, true) {
                warm = solver.try_install(candidate);
            }
        }
        Start::Full(keys) => {
            if let Some(candidate) = sf.map_keys(keys, false) {
                warm = solver.try_install(candidate);
            }
        }
    }

    if !warm {
        if sf.has_artificials {
            stats.phase1_pivots = solver.run_phase(&sf.phase1_cost, false)?;
            let residual = solver.artificial_residual();
            if residual > PHASE1_TOL {
                return Err(LpError::Infeasible { residual });
            }
            solver.drive_out_artificials()?;
        }
        // Phase boundary normalization: a fresh factorization and fresh
        // basic values make the phase-two start state a pure function of
        // (basis, constraint system) — the invariant phase-one replay
        // relies on for bit-identical results.
        solver.refactorize()?;
    }
    let post_phase1_keys = solver.basis_keys();

    stats.phase2_pivots = solver.run_phase(&sf.phase2_cost, true)?;

    // ---- Extract the solution. ----
    let mut std_values = vec![0.0; sf.total_cols];
    for (i, &c) in solver.basis.iter().enumerate() {
        std_values[c] = solver.x_b[i];
    }
    let mut values = vec![0.0; problem.vars.len()];
    for (i, map) in sf.var_map.iter().enumerate() {
        values[i] = match *map {
            VarMap::Shifted { col, lower } => lower + std_values[col],
            VarMap::Mirrored { col, upper } => upper - std_values[col],
            VarMap::Split { pos, neg } => std_values[pos] - std_values[neg],
        };
    }
    let internal_obj = solver.phase_objective(&sf.phase2_cost) + sf.objective_offset;
    let objective = match problem.sense {
        Sense::Minimize => internal_obj,
        Sense::Maximize => -internal_obj,
    };

    stats.refresh_rounds = solver.refresh_rounds;
    stats.pivot_guard_triggers = solver.pivot_guard_triggers;
    stats.noise_clamps = solver.noise_clamps;
    stats.refactorizations = solver.refactorizations;
    stats.basis_repairs = solver.basis_repairs;
    stats.warm_restore = warm;

    let final_keys = solver.basis_keys();
    Ok(Outcome {
        solution: LpSolution {
            objective,
            values,
            stats,
        },
        final_keys,
        post_phase1_keys,
        warm,
    })
}

impl SparseForm {
    fn slack_count(&self) -> usize {
        self.slack_of_row
            .iter()
            .filter(|&&c| c != usize::MAX)
            .count()
    }
}

/// Publishes a completed revised-simplex solve to the obs sink.
fn report(stats: &SolveStats) {
    if !coyote_obs::enabled() {
        return;
    }
    crate::simplex::report_solve(stats);
    coyote_obs::counter("lp.backend.revised", 1);
    coyote_obs::counter("lp.refactorizations", stats.refactorizations as u64);
    coyote_obs::counter("lp.basis_repairs", stats.basis_repairs as u64);
    if stats.warm_restore {
        coyote_obs::counter("lp.warm_solves", 1);
        coyote_obs::counter("lp.warm_pivots_saved", stats.warm_pivots_saved as u64);
    } else {
        coyote_obs::counter("lp.cold_solves", 1);
    }
}

/// Cold revised-simplex solve (already validated).
pub(crate) fn solve(problem: &LpProblem) -> Result<LpSolution, LpError> {
    let sf = SparseForm::build(problem);
    let out = solve_inner(problem, &sf, Start::Cold)?;
    report(&out.solution.stats);
    Ok(out.solution)
}

/// Solve with phase-one replay against `cache` (already validated).
pub(crate) fn solve_cached(
    problem: &LpProblem,
    cache: &mut PhaseOneCache,
) -> Result<LpSolution, LpError> {
    let sf = SparseForm::build(problem);
    let cached = cache
        .entry
        .as_ref()
        .filter(|e| e.fingerprint == sf.fingerprint)
        .cloned();
    let mut out = match &cached {
        Some(entry) => solve_inner(problem, &sf, Start::PhaseOne(&entry.keys))?,
        None => solve_inner(problem, &sf, Start::Cold)?,
    };
    if out.warm {
        out.solution.stats.warm_pivots_saved =
            cached.as_ref().map(|e| e.phase1_pivots).unwrap_or(0);
    } else {
        cache.entry = Some(PhaseOneEntry {
            fingerprint: sf.fingerprint,
            keys: out.post_phase1_keys.clone(),
            phase1_pivots: out.solution.stats.phase1_pivots,
        });
    }
    report(&out.solution.stats);
    Ok(out.solution)
}

/// Solve restoring `warm` when provided; returns the optimal basis for the
/// next restore (already validated).
pub(crate) fn solve_warm(
    problem: &LpProblem,
    warm: Option<&WarmBasis>,
) -> Result<(LpSolution, WarmBasis), LpError> {
    let sf = SparseForm::build(problem);
    let out = match warm {
        Some(wb) => {
            let attempted = solve_inner(problem, &sf, Start::Full(&wb.keys))?;
            if !attempted.warm && coyote_obs::enabled() {
                coyote_obs::counter("lp.warm_fallbacks", 1);
            }
            attempted
        }
        None => solve_inner(problem, &sf, Start::Cold)?,
    };
    report(&out.solution.stats);
    Ok((
        out.solution,
        WarmBasis {
            keys: out.final_keys,
        },
    ))
}
