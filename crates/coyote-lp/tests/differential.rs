//! Differential tests: the revised simplex against the dense oracle.
//!
//! Every case builds one [`LpProblem`] and solves two clones of it — one
//! pinned to [`SolverBackend::Revised`], one to [`SolverBackend::Dense`] —
//! and requires the outcomes to agree:
//!
//! * both optimal → objectives within `1e-6` (relative) and the revised
//!   solution satisfies every constraint and bound;
//! * both failed → the same error class (infeasible vs unbounded);
//! * one optimal, one failed → the case fails outright.
//!
//! The generated families (well over 200 accepted cases between them) cover
//! feasible, infeasible, unbounded and deliberately degenerate instances;
//! the fixed cases replay the PR 5 regression LPs (Beale cycling,
//! tiny-objective rays, duplicate and contradictory equalities, min-cost
//! flow) plus a ring-network flow LP shaped like the worst-case pipeline's.

use coyote_lp::error::LpError;
use coyote_lp::{LpProblem, Relation, Sense, SolverBackend, VarId};
use proptest::prelude::*;

/// Bounds of one generated variable, decoded from generator draws.
#[derive(Debug, Clone, Copy)]
struct VarSpec {
    lower: f64,
    upper: f64,
    objective: f64,
}

/// One generated constraint over variable indices.
#[derive(Debug, Clone)]
struct ConsSpec {
    terms: Vec<(usize, f64)>,
    relation: Relation,
    rhs: f64,
}

#[derive(Debug, Clone)]
struct LpSpec {
    sense: Sense,
    vars: Vec<VarSpec>,
    cons: Vec<ConsSpec>,
}

impl LpSpec {
    /// Decodes the flat generator draws into a spec. `bound_kind` selects
    /// non-negative / boxed / upper-only / free per variable; `term_mask`
    /// keeps ~3/4 of the candidate coefficients, so empty rows and empty
    /// columns both occur.
    #[allow(clippy::too_many_arguments)]
    fn decode(
        sense_raw: usize,
        nvars: usize,
        ncons: usize,
        bound_kind: &[usize],
        bound_lo: &[f64],
        bound_wid: &[f64],
        obj: &[f64],
        rel: &[usize],
        rhs: &[f64],
        coeff: &[f64],
        term_mask: &[usize],
    ) -> LpSpec {
        let sense = if sense_raw == 0 {
            Sense::Minimize
        } else {
            Sense::Maximize
        };
        let vars = (0..nvars)
            .map(|v| {
                let (lower, upper) = match bound_kind[v] {
                    0 => (0.0, f64::INFINITY),
                    1 => (bound_lo[v], bound_lo[v] + bound_wid[v]),
                    2 => (f64::NEG_INFINITY, bound_lo[v]),
                    _ => (f64::NEG_INFINITY, f64::INFINITY),
                };
                VarSpec {
                    lower,
                    upper,
                    objective: obj[v],
                }
            })
            .collect();
        let cons = (0..ncons)
            .map(|c| {
                let terms = (0..nvars)
                    .filter(|v| term_mask[c * 6 + v] != 0)
                    .map(|v| (v, coeff[c * 6 + v]))
                    .collect();
                let relation = match rel[c] {
                    0 => Relation::Le,
                    1 => Relation::Ge,
                    _ => Relation::Eq,
                };
                ConsSpec {
                    terms,
                    relation,
                    rhs: rhs[c],
                }
            })
            .collect();
        LpSpec { sense, vars, cons }
    }

    fn build(&self) -> (LpProblem, Vec<VarId>) {
        let mut lp = LpProblem::new(self.sense);
        let ids: Vec<VarId> = self
            .vars
            .iter()
            .enumerate()
            .map(|(i, v)| lp.add_var(format!("x{i}"), v.lower, v.upper, v.objective))
            .collect();
        for (i, c) in self.cons.iter().enumerate() {
            let terms: Vec<(VarId, f64)> = c.terms.iter().map(|&(v, k)| (ids[v], k)).collect();
            lp.add_constraint(format!("c{i}"), &terms, c.relation, c.rhs);
        }
        (lp, ids)
    }

    /// Largest absolute coefficient/rhs, for scaling feasibility tolerances.
    fn scale(&self) -> f64 {
        self.cons
            .iter()
            .flat_map(|c| c.terms.iter().map(|t| t.1.abs()).chain([c.rhs.abs()]))
            .fold(1.0_f64, f64::max)
    }

    /// Checks that `values` (one per variable) satisfies every bound and
    /// constraint within `tol`. Returns the first violation as a message.
    fn check_feasible(&self, values: &[f64], tol: f64) -> Result<(), String> {
        for (i, (v, &x)) in self.vars.iter().zip(values).enumerate() {
            if x < v.lower - tol || x > v.upper + tol {
                return Err(format!("x{i} = {x} outside [{}, {}]", v.lower, v.upper));
            }
        }
        for (i, c) in self.cons.iter().enumerate() {
            let lhs: f64 = c.terms.iter().map(|&(v, k)| k * values[v]).sum();
            let ok = match c.relation {
                Relation::Le => lhs <= c.rhs + tol,
                Relation::Ge => lhs >= c.rhs - tol,
                Relation::Eq => (lhs - c.rhs).abs() <= tol,
            };
            if !ok {
                return Err(format!(
                    "c{i}: lhs {lhs} {:?} rhs {} violated beyond {tol}",
                    c.relation, c.rhs
                ));
            }
        }
        Ok(())
    }
}

/// Solves one problem with both backends.
fn solve_both(
    lp: &LpProblem,
) -> (
    Result<coyote_lp::LpSolution, LpError>,
    Result<coyote_lp::LpSolution, LpError>,
) {
    let mut revised = lp.clone();
    revised.set_backend(SolverBackend::Revised);
    let mut dense = lp.clone();
    dense.set_backend(SolverBackend::Dense);
    (revised.solve(), dense.solve())
}

/// Coarse outcome class used to compare error paths across backends.
fn class(r: &Result<coyote_lp::LpSolution, LpError>) -> &'static str {
    match r {
        Ok(_) => "optimal",
        Err(LpError::Infeasible { .. }) => "infeasible",
        Err(LpError::Unbounded) => "unbounded",
        Err(e) => panic!("unexpected solver error: {e}"),
    }
}

/// Runs the full differential check for one spec; returns an error message
/// on the first disagreement so proptest can report the failing seed.
fn differential(spec: &LpSpec) -> Result<(), String> {
    let (lp, ids) = spec.build();
    let (rev, den) = solve_both(&lp);
    if class(&rev) != class(&den) {
        return Err(format!(
            "backends disagree: revised {} vs dense {} on {spec:?}",
            class(&rev),
            class(&den)
        ));
    }
    if let (Ok(r), Ok(d)) = (&rev, &den) {
        let tol = 1e-6 * (1.0 + d.objective.abs());
        if (r.objective - d.objective).abs() > tol {
            return Err(format!(
                "objectives diverge: revised {} vs dense {} (tol {tol}) on {spec:?}",
                r.objective, d.objective
            ));
        }
        let feas_tol = 1e-5 * spec.scale();
        let values: Vec<f64> = ids.iter().map(|&v| r.value(v)).collect();
        spec.check_feasible(&values, feas_tol)
            .map_err(|e| format!("revised solution infeasible: {e} on {spec:?}"))?;
        let dvalues: Vec<f64> = ids.iter().map(|&v| d.value(v)).collect();
        spec.check_feasible(&dvalues, feas_tol)
            .map_err(|e| format!("dense solution infeasible: {e} on {spec:?}"))?;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(140))]

    /// The core differential property over general random LPs: mixed bound
    /// types, all three relations, both senses, empty rows and columns.
    #[test]
    fn random_lps_match_dense_oracle(
        sense_raw in 0usize..2,
        nvars in 1usize..7,
        ncons in 0usize..9,
        bound_kind in collection::vec(0usize..4, 6..7),
        bound_lo in collection::vec(-3.0f64..3.0, 6..7),
        bound_wid in collection::vec(0.0f64..4.0, 6..7),
        obj in collection::vec(-4.0f64..4.0, 6..7),
        rel in collection::vec(0usize..3, 8..9),
        rhs in collection::vec(-6.0f64..6.0, 8..9),
        coeff in collection::vec(-3.0f64..3.0, 48..49),
        term_mask in collection::vec(0usize..4, 48..49),
    ) {
        let nvars = nvars.min(6);
        let ncons = ncons.min(8);
        let spec = LpSpec::decode(
            sense_raw, nvars, ncons, &bound_kind, &bound_lo, &bound_wid,
            &obj, &rel, &rhs, &coeff, &term_mask,
        );
        if let Err(msg) = differential(&spec) {
            prop_assert!(false, "{}", msg);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(60))]

    /// Degeneracy stress: every constraint is duplicated several times, so
    /// the optimum sits on a highly degenerate vertex and both solvers must
    /// take (and survive) zero-progress pivots.
    #[test]
    fn degenerate_duplicated_rows_match_dense_oracle(
        sense_raw in 0usize..2,
        nvars in 1usize..5,
        ncons in 1usize..4,
        copies in 2usize..5,
        bound_kind in collection::vec(0usize..2, 6..7),
        bound_lo in collection::vec(0.0f64..1.0, 6..7),
        bound_wid in collection::vec(1.0f64..3.0, 6..7),
        obj in collection::vec(-4.0f64..4.0, 6..7),
        rel in collection::vec(0usize..3, 8..9),
        rhs in collection::vec(0.5f64..6.0, 8..9),
        coeff in collection::vec(0.1f64..3.0, 48..49),
        term_mask in collection::vec(0usize..4, 48..49),
    ) {
        let nvars = nvars.min(4);
        let mut spec = LpSpec::decode(
            sense_raw, nvars, ncons.min(3), &bound_kind, &bound_lo, &bound_wid,
            &obj, &rel, &rhs, &coeff, &term_mask,
        );
        // Duplicate every row `copies` times (redundant, never contradictory).
        let base = spec.cons.clone();
        for _ in 1..copies {
            spec.cons.extend(base.iter().cloned());
        }
        if let Err(msg) = differential(&spec) {
            prop_assert!(false, "{}", msg);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(60))]

    /// Equality-heavy systems: every row is an equality over non-negative
    /// variables, the regime the worst-case slave LPs live in (flow
    /// conservation). Exercises phase one, artificial drive-out and the
    /// infeasible path far more often than the general family.
    #[test]
    fn equality_systems_match_dense_oracle(
        sense_raw in 0usize..2,
        nvars in 2usize..7,
        ncons in 1usize..6,
        obj in collection::vec(-2.0f64..2.0, 6..7),
        rhs in collection::vec(-4.0f64..4.0, 8..9),
        coeff in collection::vec(-2.0f64..2.0, 48..49),
        term_mask in collection::vec(0usize..3, 48..49),
    ) {
        let nvars = nvars.min(6);
        let ncons = ncons.min(5);
        let vars = (0..nvars)
            .map(|v| VarSpec { lower: 0.0, upper: f64::INFINITY, objective: obj[v] })
            .collect();
        let cons = (0..ncons)
            .map(|c| ConsSpec {
                terms: (0..nvars)
                    .filter(|v| term_mask[c * 6 + v] != 0)
                    .map(|v| (v, coeff[c * 6 + v]))
                    .collect(),
                relation: Relation::Eq,
                rhs: rhs[c],
            })
            .collect();
        let sense = if sense_raw == 0 { Sense::Minimize } else { Sense::Maximize };
        let spec = LpSpec { sense, vars, cons };
        if let Err(msg) = differential(&spec) {
            prop_assert!(false, "{}", msg);
        }
    }
}

// ---------------------------------------------------------------------------
// Fixed regression instances, replayed verbatim against both backends.
// ---------------------------------------------------------------------------

fn assert_close(a: f64, b: f64) {
    assert!((a - b).abs() < 1e-6, "{a} != {b}");
}

/// Beale's cycling example (PR 5 regression): both backends must escape the
/// Dantzig cycle via the stall-triggered Bland switch and agree on the
/// optimum 1/20.
#[test]
fn beale_cycling_instance_matches_on_both_backends() {
    let mut lp = LpProblem::new(Sense::Maximize);
    let x1 = lp.add_nonneg_var("x1", 0.75);
    let x2 = lp.add_nonneg_var("x2", -150.0);
    let x3 = lp.add_nonneg_var("x3", 0.02);
    let x4 = lp.add_nonneg_var("x4", -6.0);
    lp.add_constraint(
        "r1",
        &[(x1, 0.25), (x2, -60.0), (x3, -0.04), (x4, 9.0)],
        Relation::Le,
        0.0,
    );
    lp.add_constraint(
        "r2",
        &[(x1, 0.5), (x2, -90.0), (x3, -0.02), (x4, 3.0)],
        Relation::Le,
        0.0,
    );
    lp.add_constraint("r3", &[(x3, 1.0)], Relation::Le, 1.0);
    let (rev, den) = solve_both(&lp);
    let (rev, den) = (rev.unwrap(), den.unwrap());
    assert_close(rev.objective, 0.05);
    assert_close(den.objective, 0.05);
    assert_close(rev.value(x1), 0.04);
    assert_close(rev.value(x3), 1.0);
}

/// PR 5 regression: a genuinely unbounded ray whose reduced cost sits in
/// the noise-clamp window must still be reported as unbounded by both.
#[test]
fn tiny_objective_unbounded_ray_matches_on_both_backends() {
    let mut lp = LpProblem::new(Sense::Minimize);
    let x = lp.add_nonneg_var("x", -5.0e-7);
    let s = lp.add_nonneg_var("s", 0.0);
    lp.add_constraint("c", &[(s, 1.0), (x, -1.0)], Relation::Eq, 1.0);
    let (rev, den) = solve_both(&lp);
    assert!(matches!(rev, Err(LpError::Unbounded)), "revised: {rev:?}");
    assert!(matches!(den, Err(LpError::Unbounded)), "dense: {den:?}");
}

/// PR 5 regression: three constraints meeting at the optimum (1, 1).
#[test]
fn degenerate_vertex_matches_on_both_backends() {
    let mut lp = LpProblem::new(Sense::Maximize);
    let x = lp.add_nonneg_var("x", 1.0);
    let y = lp.add_nonneg_var("y", 1.0);
    lp.add_constraint("cx", &[(x, 1.0)], Relation::Le, 1.0);
    lp.add_constraint("cy", &[(y, 1.0)], Relation::Le, 1.0);
    lp.add_constraint("sum", &[(x, 1.0), (y, 1.0)], Relation::Le, 2.0);
    let (rev, den) = solve_both(&lp);
    let (rev, den) = (rev.unwrap(), den.unwrap());
    assert_close(rev.objective, 2.0);
    assert_close(den.objective, 2.0);
    assert_close(rev.value(x), 1.0);
    assert_close(rev.value(y), 1.0);
}

/// PR 5 regression: duplicated equality rows are redundant, not infeasible.
#[test]
fn duplicate_equality_rows_match_on_both_backends() {
    let mut lp = LpProblem::new(Sense::Minimize);
    let x = lp.add_nonneg_var("x", 1.0);
    let y = lp.add_nonneg_var("y", 2.0);
    lp.add_constraint("e", &[(x, 1.0), (y, 1.0)], Relation::Eq, 3.0);
    lp.add_constraint("e_again", &[(x, 1.0), (y, 1.0)], Relation::Eq, 3.0);
    let (rev, den) = solve_both(&lp);
    let (rev, den) = (rev.unwrap(), den.unwrap());
    assert_close(rev.objective, 3.0);
    assert_close(den.objective, 3.0);
    assert_close(rev.value(x), 3.0);
}

/// PR 5 regression: contradictory equalities surface as `Infeasible` from
/// both backends, never as a silently wrong answer.
#[test]
fn contradictory_equalities_match_on_both_backends() {
    let mut lp = LpProblem::new(Sense::Minimize);
    let x = lp.add_nonneg_var("x", 1.0);
    let y = lp.add_nonneg_var("y", 1.0);
    lp.add_constraint("a", &[(x, 1.0), (y, 1.0)], Relation::Eq, 1.0);
    lp.add_constraint("b", &[(x, 1.0), (y, 1.0)], Relation::Eq, 3.0);
    let (rev, den) = solve_both(&lp);
    assert!(
        matches!(rev, Err(LpError::Infeasible { .. })),
        "revised: {rev:?}"
    );
    assert!(
        matches!(den, Err(LpError::Infeasible { .. })),
        "dense: {den:?}"
    );
}

/// PR 5 regression: two parallel paths with capacities, cheapest first.
#[test]
fn min_cost_flow_style_lp_matches_on_both_backends() {
    let mut lp = LpProblem::new(Sense::Minimize);
    let f1 = lp.add_var("f1", 0.0, 1.5, 1.0);
    let f2 = lp.add_var("f2", 0.0, 1.5, 3.0);
    lp.add_constraint("demand", &[(f1, 1.0), (f2, 1.0)], Relation::Eq, 2.0);
    let (rev, den) = solve_both(&lp);
    let (rev, den) = (rev.unwrap(), den.unwrap());
    assert_close(rev.objective, 3.0);
    assert_close(den.objective, 3.0);
    assert_close(rev.value(f1), 1.5);
    assert_close(rev.value(f2), 0.5);
}

/// A ring-network min-cost flow shaped like the worst-case pipeline's slave
/// LPs: per-arc flow variables, per-node conservation equalities, tight arc
/// capacities forcing the unit of demand to split across both directions of
/// the ring. Alternative optima abound (any 0.4 ≤ split ≤ 0.6 is optimal),
/// so only the objective is compared across backends.
#[test]
fn ring_network_flow_lp_matches_on_both_backends() {
    const N: usize = 6; // nodes 0..6 in a ring, demand 1.0 from node 0 to 3
    let mut lp = LpProblem::new(Sense::Minimize);
    // Arc (i -> i+1) is `fwd[i]`, arc (i+1 -> i) is `bwd[i]`; unit cost,
    // capacity 0.6 so neither 3-hop path can carry the demand alone.
    let fwd: Vec<VarId> = (0..N)
        .map(|i| lp.add_var(format!("fwd{i}"), 0.0, 0.6, 1.0))
        .collect();
    let bwd: Vec<VarId> = (0..N)
        .map(|i| lp.add_var(format!("bwd{i}"), 0.0, 0.6, 1.0))
        .collect();
    for node in 0..N {
        // Outgoing: fwd[node] and bwd[node-1]; incoming: fwd[node-1], bwd[node].
        let prev = (node + N - 1) % N;
        let supply = match node {
            0 => 1.0,
            3 => -1.0,
            _ => 0.0,
        };
        lp.add_constraint(
            format!("node{node}"),
            &[
                (fwd[node], 1.0),
                (bwd[prev], 1.0),
                (fwd[prev], -1.0),
                (bwd[node], -1.0),
            ],
            Relation::Eq,
            supply,
        );
    }
    let (rev, den) = solve_both(&lp);
    let (rev, den) = (rev.unwrap(), den.unwrap());
    // Both 3-hop directions cost 3 per unit; any feasible split costs 3.
    assert_close(rev.objective, 3.0);
    assert_close(den.objective, 3.0);
    // The revised solution must itself be a feasible flow.
    for i in 0..N {
        assert!(rev.value(fwd[i]) >= -1e-9 && rev.value(fwd[i]) <= 0.6 + 1e-9);
        assert!(rev.value(bwd[i]) >= -1e-9 && rev.value(bwd[i]) <= 0.6 + 1e-9);
    }
}
