//! Warm-start correctness for the revised simplex.
//!
//! Two distinct protocols are under test (see the `coyote_lp::revised`
//! module docs):
//!
//! * **Phase-one replay** ([`PhaseOneCache`] / `solve_cached`): the cached
//!   basis may only be replayed for an *identical* constraint system, and a
//!   warm solve must then be **bit-identical** to a cold one — same
//!   objective bits, same value bits — because the pipeline's determinism
//!   guarantees ride on it.
//! * **Basis restore** ([`WarmBasis`] / `solve_warm`): the basis survives
//!   model edits (appended rows, appended columns, changed bounds); a warm
//!   solve must reach the same optimal *objective* as a cold solve of the
//!   edited problem, though possibly at a different optimal vertex.

use coyote_lp::{LpProblem, PhaseOneCache, Relation, Sense, SolverBackend, VarId, WarmBasis};

fn assert_close(a: f64, b: f64) {
    assert!((a - b).abs() < 1e-6, "{a} != {b}");
}

/// `set_warm_starts` is process-global and the test harness runs tests in
/// parallel threads; every test that asserts on `warm_restore` after a
/// `solve_cached` takes this lock so the toggle test cannot race them.
static TOGGLE: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn toggle_guard() -> std::sync::MutexGuard<'static, ()> {
    TOGGLE.lock().unwrap_or_else(|e| e.into_inner())
}

/// A small transportation-style LP whose phase one does real work: two
/// supply equalities, one demand inequality, bounded link variables.
fn transport_lp(cost_scale: f64) -> (LpProblem, Vec<VarId>) {
    let mut lp = LpProblem::new(Sense::Minimize);
    let x = lp.add_var("x", 0.0, 4.0, 1.0 * cost_scale);
    let y = lp.add_var("y", 0.0, 4.0, 2.0 * cost_scale);
    let z = lp.add_var("z", 0.0, 4.0, 3.0 * cost_scale);
    lp.add_constraint("supply", &[(x, 1.0), (y, 1.0), (z, 1.0)], Relation::Eq, 6.0);
    lp.add_constraint("mix", &[(y, 1.0), (z, 1.0)], Relation::Ge, 3.0);
    (lp, vec![x, y, z])
}

// ---------------------------------------------------------------------------
// Phase-one replay (solve_cached)
// ---------------------------------------------------------------------------

/// A cached warm solve of the same system must be bitwise identical to the
/// cold solve — objective and every variable value.
#[test]
fn phase_one_replay_is_bit_identical_to_cold() {
    let _guard = toggle_guard();
    let (lp, ids) = transport_lp(1.0);
    let cold = lp.solve().unwrap();

    let mut cache = PhaseOneCache::new();
    let first = lp.solve_cached(&mut cache).unwrap();
    assert!(cache.is_primed());
    let warm = lp.solve_cached(&mut cache).unwrap();

    assert_eq!(cold.objective.to_bits(), first.objective.to_bits());
    assert_eq!(cold.objective.to_bits(), warm.objective.to_bits());
    for &v in &ids {
        assert_eq!(cold.value(v).to_bits(), warm.value(v).to_bits());
        assert_eq!(cold.value(v).to_bits(), first.value(v).to_bits());
    }
    assert!(
        warm.stats.warm_restore,
        "second solve should replay phase one"
    );
    assert_eq!(warm.stats.phase1_pivots, 0);
    assert!(!first.stats.warm_restore);
}

/// The cache key is the constraint system only: changing the objective
/// (the constraint-generation loop's pattern) still replays phase one, and
/// each solve matches its own cold run bit for bit.
#[test]
fn phase_one_replay_survives_objective_changes() {
    let _guard = toggle_guard();
    let mut cache = PhaseOneCache::new();
    let (lp0, _) = transport_lp(1.0);
    lp0.solve_cached(&mut cache).unwrap();

    for scale in [2.0, -1.0, 0.5] {
        let (lp, ids) = transport_lp(scale);
        let cold = lp.solve().unwrap();
        let warm = lp.solve_cached(&mut cache).unwrap();
        assert!(
            warm.stats.warm_restore,
            "scale {scale} should hit the cache"
        );
        assert_eq!(cold.objective.to_bits(), warm.objective.to_bits());
        for &v in &ids {
            assert_eq!(cold.value(v).to_bits(), warm.value(v).to_bits());
        }
    }
}

/// Changing the constraint system (here: a right-hand side) must miss the
/// cache, fall back to a cold solve and re-prime.
#[test]
fn phase_one_cache_misses_on_constraint_change() {
    let _guard = toggle_guard();
    let mut cache = PhaseOneCache::new();
    let (lp, _) = transport_lp(1.0);
    lp.solve_cached(&mut cache).unwrap();

    let mut edited = LpProblem::new(Sense::Minimize);
    let x = edited.add_var("x", 0.0, 4.0, 1.0);
    let y = edited.add_var("y", 0.0, 4.0, 2.0);
    let z = edited.add_var("z", 0.0, 4.0, 3.0);
    edited.add_constraint("supply", &[(x, 1.0), (y, 1.0), (z, 1.0)], Relation::Eq, 5.0);
    edited.add_constraint("mix", &[(y, 1.0), (z, 1.0)], Relation::Ge, 3.0);

    let sol = edited.solve_cached(&mut cache).unwrap();
    assert!(!sol.stats.warm_restore, "different rhs must not replay");
    assert_close(sol.objective, 2.0 + 6.0); // x=2, y=3 -> 2 + 6
                                            // The miss re-primes the cache for the *edited* system.
    let again = edited.solve_cached(&mut cache).unwrap();
    assert!(again.stats.warm_restore);
    assert_eq!(sol.objective.to_bits(), again.objective.to_bits());
}

/// The global toggle routes `solve_cached` to plain cold solves; results
/// must be unchanged (bit-identical) either way.
#[test]
fn warm_start_toggle_does_not_change_results() {
    let _guard = toggle_guard();
    let (lp, ids) = transport_lp(1.0);
    let mut cache = PhaseOneCache::new();
    lp.solve_cached(&mut cache).unwrap();

    coyote_lp::set_warm_starts(false);
    let off = lp.solve_cached(&mut cache).unwrap();
    coyote_lp::set_warm_starts(true);
    let on = lp.solve_cached(&mut cache).unwrap();

    assert!(!off.stats.warm_restore);
    assert!(on.stats.warm_restore);
    assert_eq!(off.objective.to_bits(), on.objective.to_bits());
    for &v in &ids {
        assert_eq!(off.value(v).to_bits(), on.value(v).to_bits());
    }
}

// ---------------------------------------------------------------------------
// Basis restore (solve_warm)
// ---------------------------------------------------------------------------

/// Re-solving an unchanged problem from its own optimal basis takes zero
/// phase-one pivots and reproduces the objective.
#[test]
fn basis_restore_on_unchanged_problem_skips_phase_one() {
    let (lp, _) = transport_lp(1.0);
    let (cold, basis) = lp.solve_warm(None).unwrap();
    let (warm, _) = lp.solve_warm(Some(&basis)).unwrap();
    assert!(warm.stats.warm_restore);
    assert_eq!(warm.stats.phase1_pivots, 0);
    assert_close(warm.objective, cold.objective);
}

/// Appending a row: the previous optimal basis is restored (repaired where
/// needed) and the warm solve reaches the same objective as a cold solve of
/// the extended problem.
#[test]
fn basis_restore_survives_row_append() {
    let (lp, _) = transport_lp(1.0);
    let (_, basis) = lp.solve_warm(None).unwrap();

    // Same build sequence plus one extra (binding) constraint.
    let mut extended = LpProblem::new(Sense::Minimize);
    let x = extended.add_var("x", 0.0, 4.0, 1.0);
    let y = extended.add_var("y", 0.0, 4.0, 2.0);
    let z = extended.add_var("z", 0.0, 4.0, 3.0);
    extended.add_constraint("supply", &[(x, 1.0), (y, 1.0), (z, 1.0)], Relation::Eq, 6.0);
    extended.add_constraint("mix", &[(y, 1.0), (z, 1.0)], Relation::Ge, 3.0);
    extended.add_constraint("cap_x", &[(x, 1.0)], Relation::Le, 2.0);

    let cold = extended.solve().unwrap();
    let (warm, next) = extended.solve_warm(Some(&basis)).unwrap();
    assert_close(warm.objective, cold.objective);
    assert!(next.len() > basis.len(), "new row adds a basic column");
}

/// Appending a column (a new variable used by existing rows): semantic keys
/// keep the old basis meaningful and the warm objective matches cold.
#[test]
fn basis_restore_survives_column_append() {
    let (lp, _) = transport_lp(1.0);
    let (_, basis) = lp.solve_warm(None).unwrap();

    // Same rows, one extra cheap variable in both constraints.
    let mut extended = LpProblem::new(Sense::Minimize);
    let x = extended.add_var("x", 0.0, 4.0, 1.0);
    let y = extended.add_var("y", 0.0, 4.0, 2.0);
    let z = extended.add_var("z", 0.0, 4.0, 3.0);
    let w = extended.add_var("w", 0.0, 4.0, 0.5);
    extended.add_constraint(
        "supply",
        &[(x, 1.0), (y, 1.0), (z, 1.0), (w, 1.0)],
        Relation::Eq,
        6.0,
    );
    extended.add_constraint("mix", &[(y, 1.0), (z, 1.0), (w, 1.0)], Relation::Ge, 3.0);

    let cold = extended.solve().unwrap();
    let (warm, _) = extended.solve_warm(Some(&basis)).unwrap();
    assert_close(warm.objective, cold.objective);
}

/// A warm basis that is primal-infeasible for the edited problem (the rhs
/// moved against it) must be rejected in favor of a cold fallback — and
/// still end at the cold objective.
#[test]
fn basis_restore_falls_back_when_infeasible() {
    let (lp, _) = transport_lp(1.0);
    let (_, basis) = lp.solve_warm(None).unwrap();

    // Tighten the system so the old vertex is far outside the new feasible
    // region; whichever path the solver takes, objectives must agree.
    let mut edited = LpProblem::new(Sense::Minimize);
    let x = edited.add_var("x", 0.0, 1.0, 1.0);
    let y = edited.add_var("y", 0.0, 1.0, 2.0);
    let z = edited.add_var("z", 0.0, 1.0, 3.0);
    edited.add_constraint("supply", &[(x, 1.0), (y, 1.0), (z, 1.0)], Relation::Eq, 3.0);
    edited.add_constraint("mix", &[(y, 1.0), (z, 1.0)], Relation::Ge, 2.0);

    let cold = edited.solve().unwrap();
    let (warm, _) = edited.solve_warm(Some(&basis)).unwrap();
    assert_close(warm.objective, cold.objective);
}

/// A chain of growing problems (the `opt_mcf` usage pattern): each solve
/// warm-starts from the previous optimal basis and must track the cold
/// objective at every step.
#[test]
fn basis_restore_chain_tracks_cold_objectives() {
    let mut warm: Option<WarmBasis> = None;
    for n in 2..7usize {
        let mut lp = LpProblem::new(Sense::Minimize);
        let vars: Vec<VarId> = (0..n)
            .map(|i| lp.add_var(format!("x{i}"), 0.0, 10.0, 1.0 + i as f64))
            .collect();
        let all: Vec<(VarId, f64)> = vars.iter().map(|&v| (v, 1.0)).collect();
        lp.add_constraint("total", &all, Relation::Eq, n as f64 + 1.0);
        lp.add_constraint("tail", &[(vars[n - 1], 1.0)], Relation::Ge, 0.5);

        let cold = lp.solve().unwrap();
        let (sol, next) = lp.solve_warm(warm.as_ref()).unwrap();
        assert_close(sol.objective, cold.objective);
        warm = Some(next);
    }
}

/// The dense backend accepts the `solve_warm` API (cold solve + empty
/// basis), so callers can switch backends without special-casing.
#[test]
fn dense_backend_solves_warm_api_cold() {
    let (mut lp, _) = transport_lp(1.0);
    lp.set_backend(SolverBackend::Dense);
    let (sol, basis) = lp.solve_warm(None).unwrap();
    assert!(basis.is_empty());
    assert!(!sol.stats.warm_restore);
    let (again, _) = lp.solve_warm(Some(&basis)).unwrap();
    assert_eq!(sol.objective.to_bits(), again.objective.to_bits());
}
