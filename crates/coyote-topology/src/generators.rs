//! Deterministic synthetic backbone generators.
//!
//! The Internet Topology Zoo GraphML files used by the paper are not
//! redistributable with this reproduction, so the networks whose structure
//! is not publicly standard are *reconstructed*: a seeded generator produces
//! a 2-connected, backbone-like topology with a prescribed node count and
//! average degree, and capacities drawn from a small set of realistic
//! classes (OC-3/OC-12/OC-48-style ratios). The generator is deterministic
//! in its seed, so every experiment is reproducible bit-for-bit.

use crate::topology::Topology;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of a synthetic backbone.
#[derive(Debug, Clone)]
pub struct BackboneSpec {
    /// Topology name.
    pub name: String,
    /// Number of PoPs.
    pub nodes: usize,
    /// Extra chord links beyond the 2-connected ring (so total links =
    /// `nodes + extra_links`).
    pub extra_links: usize,
    /// Capacity classes to draw from (relative units).
    pub capacity_classes: Vec<f64>,
    /// RNG seed.
    pub seed: u64,
    /// If true, produce a sparse tree-plus-one-link topology (used for the
    /// nearly-tree networks the paper excludes from Table I).
    pub tree_like: bool,
}

impl BackboneSpec {
    /// A mesh-style backbone with the given size and seed.
    pub fn mesh(name: &str, nodes: usize, extra_links: usize, seed: u64) -> Self {
        Self {
            name: name.to_string(),
            nodes,
            extra_links,
            capacity_classes: vec![1.0, 2.5, 10.0],
            seed,
            tree_like: false,
        }
    }

    /// A nearly-tree backbone (BBNPlanet / Gambia style).
    pub fn tree(name: &str, nodes: usize, seed: u64) -> Self {
        Self {
            name: name.to_string(),
            nodes,
            extra_links: 1,
            capacity_classes: vec![1.0, 2.5],
            seed,
            tree_like: true,
        }
    }

    /// Generates the topology.
    pub fn generate(&self) -> Topology {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut topo = Topology::new(self.name.clone());
        for i in 0..self.nodes {
            topo.add_node(format!("{}-{i}", self.name));
        }
        if self.nodes < 2 {
            return topo;
        }

        let mut has_link = vec![vec![false; self.nodes]; self.nodes];
        let add = |topo: &mut Topology,
                   has_link: &mut Vec<Vec<bool>>,
                   rng: &mut StdRng,
                   a: usize,
                   b: usize|
         -> bool {
            if a == b || has_link[a][b] {
                return false;
            }
            has_link[a][b] = true;
            has_link[b][a] = true;
            let cap = self.capacity_classes[rng.gen_range(0..self.capacity_classes.len())];
            topo.add_link(a, b, cap, 1.0);
            true
        };

        if self.tree_like {
            // Random spanning tree (each node attaches to a random earlier
            // node) plus a single redundant link.
            for i in 1..self.nodes {
                let parent = rng.gen_range(0..i);
                add(&mut topo, &mut has_link, &mut rng, i, parent);
            }
            let mut added = false;
            while !added && self.nodes > 2 {
                let a = rng.gen_range(0..self.nodes);
                let b = rng.gen_range(0..self.nodes);
                added = add(&mut topo, &mut has_link, &mut rng, a, b);
            }
        } else {
            // Ring backbone guarantees 2-connectivity, chords add the meshy
            // path diversity real backbones have.
            for i in 0..self.nodes {
                add(&mut topo, &mut has_link, &mut rng, i, (i + 1) % self.nodes);
            }
            let mut remaining = self.extra_links;
            let mut attempts = 0;
            while remaining > 0 && attempts < 50 * self.extra_links + 100 {
                attempts += 1;
                let a = rng.gen_range(0..self.nodes);
                let span = rng.gen_range(2..self.nodes.max(3));
                let b = (a + span) % self.nodes;
                if add(&mut topo, &mut has_link, &mut rng, a, b) {
                    remaining -= 1;
                }
            }
        }

        // Weights follow the paper's fallback: inverse capacity.
        topo.set_inverse_capacity_weights();
        topo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_generation_is_deterministic_and_connected() {
        let spec = BackboneSpec::mesh("test", 16, 8, 42);
        let a = spec.generate();
        let b = spec.generate();
        assert_eq!(a, b);
        assert_eq!(a.node_count(), 16);
        assert_eq!(a.link_count(), 16 + 8);
        assert!(a.is_connected());
    }

    #[test]
    fn different_seeds_give_different_chords() {
        let a = BackboneSpec::mesh("x", 14, 6, 1).generate();
        let b = BackboneSpec::mesh("x", 14, 6, 2).generate();
        assert_ne!(a, b);
        assert_eq!(a.link_count(), b.link_count());
    }

    #[test]
    fn tree_topologies_are_sparse_but_connected() {
        let t = BackboneSpec::tree("t", 12, 7).generate();
        assert!(t.is_connected());
        // Tree (n-1) plus exactly one extra link.
        assert_eq!(t.link_count(), 12);
        assert!(t.average_degree() <= 2.1);
    }

    #[test]
    fn capacities_come_from_the_configured_classes() {
        let spec = BackboneSpec::mesh("caps", 10, 5, 3);
        let topo = spec.generate();
        for l in &topo.links {
            assert!(spec.capacity_classes.contains(&l.capacity));
        }
    }

    #[test]
    fn weights_are_inverse_capacity() {
        let topo = BackboneSpec::mesh("w", 10, 5, 3).generate();
        for l in &topo.links {
            for m in &topo.links {
                if l.capacity > m.capacity {
                    assert!(l.weight < m.weight);
                }
            }
        }
    }

    #[test]
    fn degenerate_sizes_do_not_panic() {
        assert_eq!(
            BackboneSpec::mesh("one", 1, 0, 0).generate().link_count(),
            0
        );
        let two = BackboneSpec::mesh("two", 2, 3, 0).generate();
        assert_eq!(two.link_count(), 1);
    }
}
