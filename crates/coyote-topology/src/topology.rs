//! The [`Topology`] type: a named, serializable description of a backbone
//! network that can be lowered to a [`coyote_graph::Graph`].
//!
//! The paper evaluates COYOTE on 16 backbone networks from the Internet
//! Topology Zoo \[19\]. Capacities follow the paper's convention: "When
//! available, we use the link capacities provided by ITZ. Otherwise, we set
//! the link capacities to be inversely-proportional to the ITZ-provided ECMP
//! weights (...). When neither ECMP link weights nor capacities are
//! available we use unit capacities and link weights."

use coyote_graph::{Graph, GraphError};
use serde::{Deserialize, Serialize};

/// One bidirectional backbone link.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// Index of one endpoint in [`Topology::nodes`].
    pub a: usize,
    /// Index of the other endpoint.
    pub b: usize,
    /// Link capacity (both directions).
    pub capacity: f64,
    /// OSPF weight (both directions).
    pub weight: f64,
}

/// A named backbone topology.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    /// Human-readable name (e.g. `"Abilene"`).
    pub name: String,
    /// Node (PoP / router) names.
    pub nodes: Vec<String>,
    /// Bidirectional links.
    pub links: Vec<Link>,
}

impl Topology {
    /// Creates an empty topology.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            nodes: Vec::new(),
            links: Vec::new(),
        }
    }

    /// Adds a node and returns its index.
    pub fn add_node(&mut self, name: impl Into<String>) -> usize {
        self.nodes.push(name.into());
        self.nodes.len() - 1
    }

    /// Adds a bidirectional link.
    pub fn add_link(&mut self, a: usize, b: usize, capacity: f64, weight: f64) {
        self.links.push(Link {
            a,
            b,
            capacity,
            weight,
        });
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of bidirectional links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Lowers the topology to a directed [`Graph`] (each link becomes two
    /// anti-parallel edges).
    pub fn to_graph(&self) -> Result<Graph, GraphError> {
        coyote_obs::counter("topology.graphs_built", 1);
        let mut g = Graph::new();
        for name in &self.nodes {
            g.add_node(name.clone())?;
        }
        for link in &self.links {
            g.add_bidirectional_edge(
                coyote_graph::NodeId(link.a),
                coyote_graph::NodeId(link.b),
                link.capacity,
                link.weight,
            )?;
        }
        Ok(g)
    }

    /// Applies the paper's fallback rule for missing weights: weight is set
    /// to `reference_capacity / capacity` (inverse capacity, Cisco default).
    pub fn set_inverse_capacity_weights(&mut self) {
        let min_cap = self
            .links
            .iter()
            .map(|l| l.capacity)
            .fold(f64::INFINITY, f64::min);
        if !min_cap.is_finite() || min_cap <= 0.0 {
            return;
        }
        // Scale so the largest weight is 10 (keeps weights in an OSPF-ish
        // integer-friendly range without affecting shortest paths).
        for l in &mut self.links {
            l.weight = 10.0 * min_cap / l.capacity;
        }
    }

    /// Indices (into [`Topology::links`]) of the links incident to `node`,
    /// in link-insertion order. Used by the failure engine to enumerate
    /// node failures and shared-risk link groups deterministically.
    pub fn incident_links(&self, node: usize) -> Vec<usize> {
        self.links
            .iter()
            .enumerate()
            .filter(|(_, l)| l.a == node || l.b == node)
            .map(|(i, _)| i)
            .collect()
    }

    /// Degree of a node (number of incident bidirectional links).
    pub fn degree(&self, node: usize) -> usize {
        self.links
            .iter()
            .filter(|l| l.a == node || l.b == node)
            .count()
    }

    /// Average node degree (counting each bidirectional link once per
    /// endpoint).
    pub fn average_degree(&self) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        2.0 * self.links.len() as f64 / self.nodes.len() as f64
    }

    /// True if the lowered graph is strongly connected (every backbone in
    /// the evaluation must be).
    pub fn is_connected(&self) -> bool {
        match self.to_graph() {
            Ok(g) => g.is_strongly_connected(),
            Err(_) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Topology {
        let mut t = Topology::new("toy");
        let a = t.add_node("a");
        let b = t.add_node("b");
        let c = t.add_node("c");
        t.add_link(a, b, 10.0, 1.0);
        t.add_link(b, c, 2.5, 1.0);
        t.add_link(a, c, 10.0, 1.0);
        t
    }

    #[test]
    fn lowering_produces_two_directed_edges_per_link() {
        let t = toy();
        let g = t.to_graph().unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 6);
        assert!(t.is_connected());
        assert!((t.average_degree() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_capacity_weights() {
        let mut t = toy();
        t.set_inverse_capacity_weights();
        // The 2.5-capacity link gets the largest weight (10), the 10-capacity
        // links get 2.5.
        assert!((t.links[1].weight - 10.0).abs() < 1e-12);
        assert!((t.links[0].weight - 2.5).abs() < 1e-12);
    }

    #[test]
    fn incident_links_and_degree_agree() {
        let t = toy();
        assert_eq!(t.incident_links(0), vec![0, 2]);
        assert_eq!(t.incident_links(1), vec![0, 1]);
        assert_eq!(t.incident_links(2), vec![1, 2]);
        for v in 0..t.node_count() {
            assert_eq!(t.incident_links(v).len(), t.degree(v));
        }
    }

    #[test]
    fn invalid_links_surface_as_errors() {
        let mut t = Topology::new("bad");
        t.add_node("only");
        t.add_link(0, 5, 1.0, 1.0);
        assert!(t.to_graph().is_err());
        assert!(!t.is_connected());
    }

    #[test]
    fn disconnected_topology_is_reported() {
        let mut t = Topology::new("disc");
        t.add_node("a");
        t.add_node("b");
        t.add_node("c");
        t.add_link(0, 1, 1.0, 1.0);
        assert!(!t.is_connected());
    }
}
