//! # coyote-topology
//!
//! Backbone network topologies for the COYOTE reproduction.
//!
//! * [`topology::Topology`] — a named, serializable topology that lowers to
//!   a [`coyote_graph::Graph`].
//! * [`zoo`] — the 16 networks of the paper's evaluation (Internet Topology
//!   Zoo reconstructions; see the module docs for exactly what is real and
//!   what is synthesized).
//! * [`generators`] — the deterministic synthetic backbone generator used
//!   for the non-redistributable networks.
//! * [`parser`] — a small text format for user-supplied topologies.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod generators;
pub mod parser;
pub mod topology;
pub mod zoo;

pub use generators::BackboneSpec;
pub use topology::{Link, Topology};
