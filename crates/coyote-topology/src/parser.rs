//! A small line-oriented text format for topologies, so users can bring
//! their own networks without GraphML tooling.
//!
//! Format (one record per line, `#` starts a comment):
//!
//! ```text
//! topology Abilene
//! node Seattle
//! node Sunnyvale
//! link Seattle Sunnyvale 10.0 1.0     # capacity weight (weight optional)
//! ```

use crate::topology::Topology;
use std::collections::HashMap;
use std::fmt;

/// Errors produced while parsing the text format.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// A line could not be interpreted.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A link referenced a node that was never declared.
    UnknownNode {
        /// 1-based line number.
        line: usize,
        /// The undeclared node name.
        name: String,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::BadLine { line, message } => write!(f, "line {line}: {message}"),
            ParseError::UnknownNode { line, name } => {
                write!(f, "line {line}: unknown node {name:?}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// Parses the text format into a [`Topology`].
pub fn parse(text: &str) -> Result<Topology, ParseError> {
    let mut topo = Topology::new("unnamed");
    let mut index: HashMap<String, usize> = HashMap::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line_number = lineno + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let keyword = parts.next().unwrap_or("");
        match keyword {
            "topology" => {
                let name = parts.collect::<Vec<_>>().join(" ");
                if name.is_empty() {
                    return Err(ParseError::BadLine {
                        line: line_number,
                        message: "topology requires a name".into(),
                    });
                }
                topo.name = name;
            }
            "node" => {
                let name = parts.next().ok_or_else(|| ParseError::BadLine {
                    line: line_number,
                    message: "node requires a name".into(),
                })?;
                if index.contains_key(name) {
                    return Err(ParseError::BadLine {
                        line: line_number,
                        message: format!("duplicate node {name:?}"),
                    });
                }
                let id = topo.add_node(name);
                index.insert(name.to_string(), id);
            }
            "link" => {
                let a = parts.next().ok_or_else(|| ParseError::BadLine {
                    line: line_number,
                    message: "link requires two endpoints".into(),
                })?;
                let b = parts.next().ok_or_else(|| ParseError::BadLine {
                    line: line_number,
                    message: "link requires two endpoints".into(),
                })?;
                let capacity: f64 =
                    parts
                        .next()
                        .unwrap_or("1.0")
                        .parse()
                        .map_err(|_| ParseError::BadLine {
                            line: line_number,
                            message: "capacity must be a number".into(),
                        })?;
                let weight: f64 =
                    parts
                        .next()
                        .unwrap_or("1.0")
                        .parse()
                        .map_err(|_| ParseError::BadLine {
                            line: line_number,
                            message: "weight must be a number".into(),
                        })?;
                let &ai = index.get(a).ok_or_else(|| ParseError::UnknownNode {
                    line: line_number,
                    name: a.to_string(),
                })?;
                let &bi = index.get(b).ok_or_else(|| ParseError::UnknownNode {
                    line: line_number,
                    name: b.to_string(),
                })?;
                topo.add_link(ai, bi, capacity, weight);
            }
            other => {
                return Err(ParseError::BadLine {
                    line: line_number,
                    message: format!("unknown keyword {other:?}"),
                });
            }
        }
    }
    Ok(topo)
}

/// Serializes a [`Topology`] into the text format accepted by [`parse`].
pub fn serialize(topo: &Topology) -> String {
    let mut out = String::new();
    out.push_str(&format!("topology {}\n", topo.name));
    for n in &topo.nodes {
        out.push_str(&format!("node {n}\n"));
    }
    for l in &topo.links {
        out.push_str(&format!(
            "link {} {} {} {}\n",
            topo.nodes[l.a], topo.nodes[l.b], l.capacity, l.weight
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn parses_a_simple_topology() {
        let text = r"
# toy network
topology Toy
node a
node b
node c
link a b 10 1
link b c 2.5      # default weight
link a c
";
        let t = parse(text).unwrap();
        assert_eq!(t.name, "Toy");
        assert_eq!(t.node_count(), 3);
        assert_eq!(t.link_count(), 3);
        assert_eq!(t.links[0].capacity, 10.0);
        assert_eq!(t.links[1].capacity, 2.5);
        assert_eq!(t.links[1].weight, 1.0);
        assert_eq!(t.links[2].capacity, 1.0);
    }

    #[test]
    fn round_trips_every_zoo_topology() {
        for topo in zoo::all() {
            let text = serialize(&topo);
            let parsed = parse(&text).unwrap();
            assert_eq!(parsed, topo, "{} did not round trip", topo.name);
        }
    }

    #[test]
    fn reports_unknown_nodes_with_line_numbers() {
        let err = parse("node a\nlink a ghost 1 1\n").unwrap_err();
        assert_eq!(
            err,
            ParseError::UnknownNode {
                line: 2,
                name: "ghost".into()
            }
        );
        assert!(err.to_string().contains("ghost"));
    }

    #[test]
    fn reports_malformed_lines() {
        assert!(matches!(
            parse("frobnicate x\n"),
            Err(ParseError::BadLine { line: 1, .. })
        ));
        assert!(matches!(
            parse("node a\nnode a\n"),
            Err(ParseError::BadLine { line: 2, .. })
        ));
        assert!(matches!(
            parse("node a\nnode b\nlink a b notanumber\n"),
            Err(ParseError::BadLine { line: 3, .. })
        ));
        assert!(matches!(
            parse("topology\n"),
            Err(ParseError::BadLine { line: 1, .. })
        ));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let t = parse("\n\n# nothing but comments\n").unwrap();
        assert_eq!(t.node_count(), 0);
        assert_eq!(t.name, "unnamed");
    }
}
