//! The 16 backbone networks of the paper's evaluation (Section VI-A).
//!
//! The paper uses the Internet Topology Zoo (ITZ) archive \[19\]. The GraphML
//! files are not redistributable here, so this module ships
//! *reconstructions*:
//!
//! * **Abilene** and **NSF** follow their well-known published structure
//!   (node lists and link sets widely reproduced in the TE literature).
//! * **Geant** and **Germany** follow the published PoP lists with an
//!   approximate link set of the right density.
//! * The remaining networks (AS1221, AS1755, AS3257, AT&T, BBNPlanet, BICS,
//!   BtEurope, Digex, GRNet, InternetMCI, Italy, Gambia) are deterministic
//!   synthetic reconstructions produced by [`crate::generators::BackboneSpec`]
//!   with node counts scaled to keep the LP sizes tractable for the
//!   from-scratch solver while preserving the backbone character (meshy,
//!   2-connected, heterogeneous capacities). BBNPlanet and Gambia are
//!   generated as near-trees, which is why the paper excludes them from
//!   Table I — we keep them for the stretch experiment (Fig. 11).
//!
//! All capacities are in relative units; OSPF weights follow the paper's
//! fallback rule (inverse capacity) unless the real dataset pins them.

use crate::generators::BackboneSpec;
use crate::topology::Topology;

/// Capacity used for Abilene's uniform OC-192 backbone links.
const ABILENE_CAP: f64 = 10.0;

/// The Abilene research backbone: 11 PoPs, 14 links, uniform capacities.
pub fn abilene() -> Topology {
    let mut t = Topology::new("Abilene");
    let names = [
        "Seattle",
        "Sunnyvale",
        "LosAngeles",
        "Denver",
        "KansasCity",
        "Houston",
        "Chicago",
        "Indianapolis",
        "Atlanta",
        "WashingtonDC",
        "NewYork",
    ];
    for n in names {
        t.add_node(n);
    }
    let links = [
        (0usize, 1usize), // Seattle - Sunnyvale
        (0, 3),           // Seattle - Denver
        (1, 2),           // Sunnyvale - LosAngeles
        (1, 3),           // Sunnyvale - Denver
        (2, 5),           // LosAngeles - Houston
        (3, 4),           // Denver - KansasCity
        (4, 5),           // KansasCity - Houston
        (4, 7),           // KansasCity - Indianapolis
        (5, 8),           // Houston - Atlanta
        (6, 7),           // Chicago - Indianapolis
        (6, 10),          // Chicago - NewYork
        (7, 8),           // Indianapolis - Atlanta
        (8, 9),           // Atlanta - WashingtonDC
        (9, 10),          // WashingtonDC - NewYork
    ];
    for (a, b) in links {
        t.add_link(a, b, ABILENE_CAP, 1.0);
    }
    t.set_inverse_capacity_weights();
    t
}

/// The 14-node NSFNET backbone (21 links), heterogeneous capacities.
pub fn nsf() -> Topology {
    let mut t = Topology::new("NSF");
    let names = [
        "Seattle",
        "PaloAlto",
        "SanDiego",
        "SaltLakeCity",
        "Boulder",
        "Houston",
        "Lincoln",
        "Champaign",
        "Pittsburgh",
        "AnnArbor",
        "Ithaca",
        "CollegePark",
        "Princeton",
        "Atlanta",
    ];
    for n in names {
        t.add_node(n);
    }
    // Classic NSFNET T3 topology (as reproduced across the TE literature).
    let links = [
        (0usize, 1usize, 2.5),
        (0, 2, 2.5),
        (0, 7, 1.0),
        (1, 2, 2.5),
        (1, 3, 2.5),
        (2, 5, 1.0),
        (3, 4, 2.5),
        (3, 10, 1.0),
        (4, 5, 2.5),
        (4, 6, 2.5),
        (5, 13, 2.5),
        (6, 7, 2.5),
        (6, 9, 1.0),
        (7, 8, 2.5),
        (8, 9, 2.5),
        (8, 11, 1.0),
        (8, 12, 2.5),
        (9, 10, 2.5),
        (10, 12, 2.5),
        (11, 13, 2.5),
        (12, 13, 1.0),
    ];
    for (a, b, c) in links {
        t.add_link(a, b, c, 1.0);
    }
    t.set_inverse_capacity_weights();
    t
}

/// GÉANT (European research backbone), 22 PoPs, approximate link set.
pub fn geant() -> Topology {
    let mut t = Topology::new("Geant");
    let names = [
        "Austria",
        "Belgium",
        "Croatia",
        "Czechia",
        "France",
        "Germany",
        "Greece",
        "Hungary",
        "Ireland",
        "Israel",
        "Italy",
        "Luxembourg",
        "Netherlands",
        "Poland",
        "Portugal",
        "Slovakia",
        "Slovenia",
        "Spain",
        "Sweden",
        "Switzerland",
        "UK",
        "NewYork",
    ];
    for n in names {
        t.add_node(n);
    }
    // Approximate 2004-era GEANT connectivity; capacities in three classes
    // (10G core, 2.5G regional, 1G access-style links).
    let links = [
        (0usize, 3usize, 10.0), // Austria - Czechia
        (0, 5, 10.0),           // Austria - Germany
        (0, 7, 2.5),            // Austria - Hungary
        (0, 10, 10.0),          // Austria - Italy
        (0, 16, 1.0),           // Austria - Slovenia
        (0, 15, 2.5),           // Austria - Slovakia
        (1, 4, 10.0),           // Belgium - France
        (1, 12, 10.0),          // Belgium - Netherlands
        (1, 11, 1.0),           // Belgium - Luxembourg
        (2, 7, 1.0),            // Croatia - Hungary
        (2, 16, 1.0),           // Croatia - Slovenia
        (3, 5, 10.0),           // Czechia - Germany
        (3, 13, 2.5),           // Czechia - Poland
        (3, 15, 1.0),           // Czechia - Slovakia
        (4, 5, 10.0),           // France - Germany
        (4, 17, 10.0),          // France - Spain
        (4, 19, 10.0),          // France - Switzerland
        (4, 20, 10.0),          // France - UK
        (4, 11, 1.0),           // France - Luxembourg
        (5, 10, 10.0),          // Germany - Italy
        (5, 12, 10.0),          // Germany - Netherlands
        (5, 13, 10.0),          // Germany - Poland
        (5, 18, 10.0),          // Germany - Sweden
        (5, 19, 10.0),          // Germany - Switzerland
        (5, 9, 2.5),            // Germany - Israel
        (6, 10, 2.5),           // Greece - Italy
        (6, 7, 1.0),            // Greece - Hungary
        (7, 15, 1.0),           // Hungary - Slovakia
        (8, 20, 2.5),           // Ireland - UK
        (8, 12, 1.0),           // Ireland - Netherlands
        (9, 10, 2.5),           // Israel - Italy
        (10, 19, 10.0),         // Italy - Switzerland
        (10, 17, 2.5),          // Italy - Spain
        (12, 20, 10.0),         // Netherlands - UK
        (12, 18, 10.0),         // Netherlands - Sweden
        (12, 21, 10.0),         // Netherlands - NewYork
        (13, 18, 2.5),          // Poland - Sweden
        (14, 17, 2.5),          // Portugal - Spain
        (14, 20, 1.0),          // Portugal - UK
        (17, 19, 2.5),          // Spain - Switzerland
        (20, 21, 10.0),         // UK - NewYork
    ];
    for (a, b, c) in links {
        t.add_link(a, b, c, 1.0);
    }
    t.set_inverse_capacity_weights();
    t
}

/// German research/backbone network (17 PoPs, Nobel-Germany-style density).
pub fn germany() -> Topology {
    let mut t = Topology::new("Germany");
    let names = [
        "Aachen",
        "Berlin",
        "Bremen",
        "Dortmund",
        "Dresden",
        "Duesseldorf",
        "Essen",
        "Frankfurt",
        "Hamburg",
        "Hannover",
        "Karlsruhe",
        "Koeln",
        "Leipzig",
        "Mannheim",
        "Muenchen",
        "Nuernberg",
        "Stuttgart",
    ];
    for n in names {
        t.add_node(n);
    }
    let links = [
        (0usize, 5usize, 2.5), // Aachen - Duesseldorf
        (0, 11, 2.5),          // Aachen - Koeln
        (1, 4, 2.5),           // Berlin - Dresden
        (1, 8, 10.0),          // Berlin - Hamburg
        (1, 9, 10.0),          // Berlin - Hannover
        (1, 12, 2.5),          // Berlin - Leipzig
        (2, 8, 2.5),           // Bremen - Hamburg
        (2, 9, 2.5),           // Bremen - Hannover
        (3, 5, 2.5),           // Dortmund - Duesseldorf
        (3, 6, 2.5),           // Dortmund - Essen
        (3, 9, 2.5),           // Dortmund - Hannover
        (4, 12, 2.5),          // Dresden - Leipzig
        (4, 15, 1.0),          // Dresden - Nuernberg
        (5, 6, 2.5),           // Duesseldorf - Essen
        (5, 11, 10.0),         // Duesseldorf - Koeln
        (6, 9, 1.0),           // Essen - Hannover
        (7, 9, 10.0),          // Frankfurt - Hannover
        (7, 10, 2.5),          // Frankfurt - Karlsruhe
        (7, 11, 10.0),         // Frankfurt - Koeln
        (7, 12, 2.5),          // Frankfurt - Leipzig
        (7, 13, 10.0),         // Frankfurt - Mannheim
        (7, 15, 2.5),          // Frankfurt - Nuernberg
        (8, 9, 10.0),          // Hamburg - Hannover
        (10, 13, 2.5),         // Karlsruhe - Mannheim
        (10, 16, 2.5),         // Karlsruhe - Stuttgart
        (12, 15, 1.0),         // Leipzig - Nuernberg
        (13, 16, 2.5),         // Mannheim - Stuttgart
        (14, 15, 10.0),        // Muenchen - Nuernberg
        (14, 16, 10.0),        // Muenchen - Stuttgart
        (14, 7, 2.5),          // Muenchen - Frankfurt
    ];
    for (a, b, c) in links {
        t.add_link(a, b, c, 1.0);
    }
    t.set_inverse_capacity_weights();
    t
}

/// All topology names used in Table I and the figures, in the order the
/// paper lists them.
pub const ALL_NAMES: [&str; 16] = [
    "AS1221",
    "AS1755",
    "AS3257",
    "Abilene",
    "ATT",
    "BBNPlanet",
    "BICS",
    "BtEurope",
    "Digex",
    "Geant",
    "Germany",
    "GRNet",
    "InternetMCI",
    "Italy",
    "NSF",
    "Gambia",
];

/// Names of the nearly-tree networks the paper excludes from Table I.
pub const NEAR_TREE_NAMES: [&str; 2] = ["BBNPlanet", "Gambia"];

/// Looks a topology up by (case-insensitive) name.
pub fn by_name(name: &str) -> Option<Topology> {
    let lower = name.to_ascii_lowercase();
    let topo = match lower.as_str() {
        "abilene" => abilene(),
        "nsf" | "nsfnet" => nsf(),
        "geant" => geant(),
        "germany" | "germany_cost" | "germanycost" => germany(),
        "as1221" => BackboneSpec::mesh("AS1221", 18, 10, 0x1221).generate(),
        "as1755" => BackboneSpec::mesh("AS1755", 18, 12, 0x1755).generate(),
        "as3257" => BackboneSpec::mesh("AS3257", 20, 12, 0x3257).generate(),
        "att" | "atnt" | "at" => BackboneSpec::mesh("ATT", 20, 11, 0xA77).generate(),
        "bbnplanet" => BackboneSpec::tree("BBNPlanet", 12, 0xBB1).generate(),
        "bics" => BackboneSpec::mesh("BICS", 16, 9, 0xB1C5).generate(),
        "bteurope" => BackboneSpec::mesh("BtEurope", 17, 9, 0xB7E0).generate(),
        "digex" => BackboneSpec::mesh("Digex", 15, 8, 0xD16E).generate(),
        "grnet" => BackboneSpec::mesh("GRNet", 15, 6, 0x6A9E).generate(),
        "internetmci" => BackboneSpec::mesh("InternetMCI", 19, 11, 0x3C1).generate(),
        "italy" | "italy_cost" | "italycost" => {
            BackboneSpec::mesh("Italy", 16, 9, 0x17A1).generate()
        }
        "gambia" => BackboneSpec::tree("Gambia", 10, 0x6AB1).generate(),
        _ => return None,
    };
    Some(topo)
}

/// All 16 topologies of the evaluation.
pub fn all() -> Vec<Topology> {
    ALL_NAMES
        .iter()
        .map(|n| by_name(n).expect("registered name"))
        .collect()
}

/// The Table I topologies: all networks except the two near-trees.
pub fn table1() -> Vec<Topology> {
    ALL_NAMES
        .iter()
        .filter(|n| !NEAR_TREE_NAMES.contains(n))
        .map(|n| by_name(n).expect("registered name"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abilene_matches_the_published_structure() {
        let t = abilene();
        assert_eq!(t.node_count(), 11);
        assert_eq!(t.link_count(), 14);
        assert!(t.is_connected());
        // Uniform capacities mean uniform weights.
        assert!(t.links.iter().all(|l| (l.capacity - 10.0).abs() < 1e-12));
    }

    #[test]
    fn nsf_matches_the_published_structure() {
        let t = nsf();
        assert_eq!(t.node_count(), 14);
        assert_eq!(t.link_count(), 21);
        assert!(t.is_connected());
    }

    #[test]
    fn geant_and_germany_are_meshy_and_connected() {
        for t in [geant(), germany()] {
            assert!(t.is_connected(), "{} disconnected", t.name);
            assert!(t.average_degree() > 2.5, "{} too sparse", t.name);
        }
    }

    #[test]
    fn every_registered_topology_loads_and_is_connected() {
        let topos = all();
        assert_eq!(topos.len(), 16);
        for t in &topos {
            assert!(t.node_count() >= 10, "{} too small", t.name);
            assert!(t.is_connected(), "{} disconnected", t.name);
            assert!(t.to_graph().is_ok());
        }
    }

    #[test]
    fn near_trees_are_sparse_and_excluded_from_table1() {
        for name in NEAR_TREE_NAMES {
            let t = by_name(name).unwrap();
            assert!(t.average_degree() <= 2.2, "{} not tree-like", name);
        }
        let t1 = table1();
        assert_eq!(t1.len(), 14);
        assert!(t1
            .iter()
            .all(|t| !NEAR_TREE_NAMES.contains(&t.name.as_str())));
    }

    #[test]
    fn lookup_is_case_insensitive_and_total() {
        assert!(by_name("abilene").is_some());
        assert!(by_name("ABILENE").is_some());
        assert!(by_name("nsfnet").is_some());
        assert!(by_name("nosuchnet").is_none());
        for name in ALL_NAMES {
            assert!(by_name(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn reconstructions_are_deterministic() {
        assert_eq!(by_name("AS1755"), by_name("AS1755"));
        assert_eq!(by_name("Digex"), by_name("Digex"));
    }

    #[test]
    fn weights_follow_inverse_capacity_in_heterogeneous_networks() {
        let t = nsf();
        for l in &t.links {
            for m in &t.links {
                if l.capacity > m.capacity {
                    assert!(l.weight < m.weight);
                }
            }
        }
    }
}
