//! Property-based tests for the flow-level simulator: invariants that must
//! hold for *any* DAG routing over *any* synthetic backbone, not just the
//! 3-router prototype.
//!
//! * flow conservation per node (in the no-drop regime, where it is exact);
//! * delivered ≤ offered, globally, per prefix, and per link (carried load
//!   never exceeds capacity);
//! * drop and delivery fractions stay in \[0, 1\];
//! * the fixed-point iteration converges within the default round budget.

use coyote_core::{build_all_dags, DagMode, PdRouting};
use coyote_graph::{Graph, NodeId};
use coyote_sim::FlowSimulator;
use coyote_traffic::DemandMatrix;
use proptest::prelude::*;

/// Builds a random connected backbone-like graph from proptest inputs: a
/// ring over `n` nodes plus `extra` chords, capacities cycled from `caps`.
fn random_graph(n: usize, extra: &[(usize, usize)], caps: &[f64]) -> Graph {
    let mut g = Graph::with_nodes(n);
    let mut cap_iter = caps.iter().copied().cycle();
    for i in 0..n {
        let c = cap_iter.next().unwrap();
        g.add_bidirectional_edge(NodeId(i), NodeId((i + 1) % n), c, 1.0)
            .unwrap();
    }
    for &(a, b) in extra {
        let (a, b) = (a % n, b % n);
        if a != b && g.find_edge(NodeId(a), NodeId(b)).is_none() {
            let c = cap_iter.next().unwrap();
            g.add_bidirectional_edge(NodeId(a), NodeId(b), c, 1.0)
                .unwrap();
        }
    }
    g.set_inverse_capacity_weights(10.0);
    g
}

/// A random DAG routing: augmented per-destination DAGs with splitting
/// ratios drawn from `raw` (normalized per node by `from_ratios`; all-zero
/// nodes fall back to uniform splits).
fn random_routing(g: &Graph, raw: &[f64]) -> PdRouting {
    let dags = build_all_dags(g, DagMode::Augmented).unwrap();
    let mut ratios = Vec::with_capacity(dags.len());
    let mut raw_iter = raw.iter().copied().cycle();
    for _ in 0..dags.len() {
        let per_edge: Vec<f64> = (0..g.edge_count())
            .map(|_| raw_iter.next().unwrap())
            .collect();
        ratios.push(per_edge);
    }
    PdRouting::from_ratios(g, dags, ratios)
}

/// A random demand matrix with one entry per (source, destination) drawn
/// from `demands` (cycled), keeping only every `stride`-th pair active.
fn random_demands(n: usize, demands: &[f64], stride: usize) -> DemandMatrix {
    let mut dm = DemandMatrix::zeros(n);
    let mut d_iter = demands.iter().copied().cycle();
    let stride = stride.max(1);
    let mut k = 0usize;
    for s in 0..n {
        for t in 0..n {
            if s == t {
                continue;
            }
            let d = d_iter.next().unwrap();
            if k.is_multiple_of(stride) {
                dm.set(NodeId(s), NodeId(t), d);
            }
            k += 1;
        }
    }
    dm
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// In the no-drop regime (capacities far above total demand) the
    /// simulator is an exact flow machine: everything offered is delivered,
    /// the simulated per-edge loads match the analytic `PdRouting` loads,
    /// and flow is conserved at every node (out = in + sourced - sunk).
    #[test]
    fn flow_is_conserved_per_node_without_drops(
        n in 4usize..9,
        extra in proptest::collection::vec((0usize..12, 0usize..12), 0..5),
        raw in proptest::collection::vec(0.0f64..4.0, 8..20),
        demands in proptest::collection::vec(0.0f64..2.0, 4..12),
        stride in 1usize..4,
    ) {
        // Capacities large enough that no link can ever saturate.
        let caps = [1000.0];
        let g = random_graph(n, &extra, &caps);
        let routing = random_routing(&g, &raw);
        let dm = random_demands(n, &demands, stride);
        let sim = FlowSimulator::from_pd_routing(&g, &routing);
        let outcome = sim.run_matrix(&dm);

        let offered = dm.total();
        prop_assert!((outcome.offered - offered).abs() < 1e-9);
        prop_assert!((outcome.delivered - offered).abs() < 1e-6 * (1.0 + offered));
        prop_assert!(outcome.drop_rate() < 1e-9);

        // Simulated edge loads match the analytic flow algebra.
        let analytic = routing.edge_loads(&g, &dm);
        for e in g.edges() {
            prop_assert!(
                (outcome.edge_loads[e.index()] - analytic[e.index()]).abs()
                    < 1e-6 * (1.0 + analytic[e.index()]),
                "edge {e}: sim {} vs analytic {}",
                outcome.edge_loads[e.index()],
                analytic[e.index()]
            );
        }

        // Node balance: out(v) - in(v) = sourced(v) - sunk(v).
        for v in g.nodes() {
            let out: f64 = g.out_edges(v).iter().map(|&e| outcome.edge_loads[e.index()]).sum();
            let inflow: f64 = g.in_edges(v).iter().map(|&e| outcome.edge_loads[e.index()]).sum();
            let sourced: f64 = g.nodes().map(|t| dm.get(v, t)).sum();
            let sunk: f64 = g.nodes().map(|s| dm.get(s, v)).sum();
            prop_assert!(
                ((out - inflow) - (sourced - sunk)).abs() < 1e-6 * (1.0 + sourced + sunk),
                "node {v}: out {out} in {inflow} sourced {sourced} sunk {sunk}"
            );
        }
    }

    /// Under arbitrary (possibly heavy) oversubscription: drop/delivery
    /// fractions stay in [0, 1], no link carries more than its capacity,
    /// delivery never exceeds the offer globally or per prefix.
    #[test]
    fn drops_are_bounded_and_links_stay_within_capacity(
        n in 4usize..9,
        extra in proptest::collection::vec((0usize..12, 0usize..12), 0..5),
        caps in proptest::collection::vec(0.5f64..2.5, 3..8),
        raw in proptest::collection::vec(0.0f64..4.0, 8..20),
        demands in proptest::collection::vec(0.0f64..5.0, 4..12),
        stride in 1usize..3,
    ) {
        let g = random_graph(n, &extra, &caps);
        let routing = random_routing(&g, &raw);
        let dm = random_demands(n, &demands, stride);
        let sim = FlowSimulator::from_pd_routing(&g, &routing);
        let outcome = sim.run_matrix(&dm);

        prop_assert!((0.0..=1.0).contains(&outcome.drop_rate()), "drop {}", outcome.drop_rate());
        prop_assert!(
            (0.0..=1.0 + 1e-12).contains(&outcome.delivery_rate()),
            "delivery {}",
            outcome.delivery_rate()
        );
        prop_assert!(outcome.delivered <= outcome.offered + 1e-9);

        for e in g.edges() {
            prop_assert!(
                outcome.edge_loads[e.index()] <= g.capacity(e) + 1e-9,
                "edge {e} carries {} over capacity {}",
                outcome.edge_loads[e.index()],
                g.capacity(e)
            );
        }
        prop_assert!(sim.max_utilization(&outcome) <= 1.0 + 1e-9);

        // Per-prefix delivery sums to the total and never exceeds the
        // prefix's own offer.
        let per_prefix_sum: f64 = outcome.delivered_per_prefix.values().sum();
        prop_assert!((per_prefix_sum - outcome.delivered).abs() < 1e-6 * (1.0 + per_prefix_sum));
        for (&t, &delivered) in &outcome.delivered_per_prefix {
            let offered_to_t = dm.total_to(NodeId(t));
            prop_assert!(
                delivered <= offered_to_t + 1e-9,
                "prefix {t} delivered {delivered} > offered {offered_to_t}"
            );
        }
    }

    /// The fixed-point iteration reaches its fixed point within the default
    /// round budget: tripling the budget changes nothing, and the outcome is
    /// deterministic run-to-run.
    #[test]
    fn fixed_point_converges_within_the_default_budget(
        n in 4usize..9,
        extra in proptest::collection::vec((0usize..12, 0usize..12), 0..5),
        caps in proptest::collection::vec(0.5f64..2.5, 3..8),
        raw in proptest::collection::vec(0.0f64..4.0, 8..20),
        demands in proptest::collection::vec(0.0f64..5.0, 4..12),
    ) {
        let g = random_graph(n, &extra, &caps);
        let routing = random_routing(&g, &raw);
        let dm = random_demands(n, &demands, 1);
        let sim = FlowSimulator::from_pd_routing(&g, &routing);
        let outcome = sim.run_matrix(&dm);

        // Deterministic: same inputs, same outcome, bit for bit.
        prop_assert_eq!(&outcome, &sim.run_matrix(&dm));

        // Converged: a much larger round budget lands on the same fixed
        // point.
        let patient = FlowSimulator::from_pd_routing(&g, &routing).with_max_rounds(96);
        prop_assert_eq!(&outcome, &patient.run_matrix(&dm));
    }
}
