//! Flow-level network emulator (the Mininet substitute).
//!
//! The paper's prototype experiment (Section VII) runs the COYOTE and
//! traditional-TE configurations in Mininet with 1 Mbps links and measures
//! the packet-drop rate of constant-bit-rate UDP flows under three traffic
//! scenarios. The outcome of such an experiment is a deterministic function
//! of the forwarding configuration, the link capacities and the offered
//! load, which this flow-level model reproduces:
//!
//! * every *prefix* (IP destination) has its own per-destination forwarding
//!   DAG and splitting ratios — this per-prefix granularity is exactly the
//!   extra expressiveness COYOTE gets from Fibbing (different prefixes of
//!   the same egress router may use different DAGs);
//! * constant-bit-rate flows are injected at their sources;
//! * when the total rate offered to a link exceeds its capacity, the excess
//!   is dropped and every flow crossing the link loses the same *fraction*
//!   (a fluid approximation of FIFO tail drop under uniform packet sizes);
//! * drops propagate: traffic lost upstream never reaches downstream links.
//!
//! Because different prefixes may use differently-ordered DAGs, the solver
//! runs a short fixed-point iteration over per-link delivery fractions; on
//! feed-forward (DAG) topologies it converges in a handful of rounds.

use coyote_graph::{EdgeId, Graph, NodeId};
use coyote_traffic::DemandMatrix;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A destination prefix: traffic addressed to it is routed by its own DAG /
/// splitting ratios, all rooted at the prefix's egress node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PrefixId(pub usize);

/// Per-prefix forwarding state: for the egress node and every edge, the
/// fraction of prefix traffic entering the edge's tail that leaves on it.
#[derive(Debug, Clone)]
pub struct PrefixRouting {
    /// The egress (destination) node of the prefix.
    pub egress: NodeId,
    /// Splitting ratio per edge (must sum to one over the out-edges a node
    /// actually uses; zero elsewhere).
    pub ratios: Vec<f64>,
}

/// A constant-bit-rate flow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CbrFlow {
    /// Ingress node.
    pub source: NodeId,
    /// Destination prefix.
    pub prefix: PrefixId,
    /// Offered rate (same units as link capacities).
    pub rate: f64,
}

/// Result of simulating one steady-state traffic scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimOutcome {
    /// Total rate offered by all flows.
    pub offered: f64,
    /// Total rate delivered to the prefixes' egress nodes.
    pub delivered: f64,
    /// Per-edge carried load (after drops).
    pub edge_loads: Vec<f64>,
    /// Per-prefix delivered rate.
    pub delivered_per_prefix: BTreeMap<usize, f64>,
    /// Rate that was offered but never reached a congested link *or* the
    /// egress: traffic stranded at a node with no usable route towards its
    /// prefix (e.g. because a failure partitioned the topology). Always
    /// part of the dropped volume (`offered - delivered`), reported
    /// separately so callers can tell "lost to congestion" from "lost to
    /// disconnection".
    pub unrouted: f64,
}

impl SimOutcome {
    /// Fraction of offered traffic that was dropped.
    pub fn drop_rate(&self) -> f64 {
        if self.offered <= 0.0 {
            return 0.0;
        }
        ((self.offered - self.delivered) / self.offered).max(0.0)
    }

    /// Fraction of offered traffic that was delivered.
    pub fn delivery_rate(&self) -> f64 {
        1.0 - self.drop_rate()
    }

    /// Fraction of offered traffic that was stranded without a route (see
    /// [`SimOutcome::unrouted`]).
    pub fn unrouted_rate(&self) -> f64 {
        if self.offered <= 0.0 {
            return 0.0;
        }
        (self.unrouted / self.offered).clamp(0.0, 1.0)
    }
}

/// The emulator: a topology plus per-prefix forwarding state.
#[derive(Debug, Clone)]
pub struct FlowSimulator {
    graph: Graph,
    prefixes: Vec<PrefixRouting>,
    /// Fixed-point iterations (enough for any DAG depth in practice).
    max_rounds: usize,
}

impl FlowSimulator {
    /// Creates an emulator over `graph` with no prefixes registered yet.
    pub fn new(graph: Graph) -> Self {
        Self {
            graph,
            prefixes: Vec::new(),
            max_rounds: 32,
        }
    }

    /// Creates an emulator over `graph` with the given prefixes already
    /// registered, in order (the first entry becomes `PrefixId(0)`). This is
    /// the generalized constructor every scenario — from the 3-router
    /// prototype to a zoo-scale conformance cell — goes through.
    pub fn with_prefixes(graph: Graph, prefixes: Vec<(NodeId, Vec<f64>)>) -> Self {
        let mut sim = Self::new(graph);
        for (egress, ratios) in prefixes {
            sim.add_prefix(egress, ratios);
        }
        sim
    }

    /// Builds a simulator that emulates a whole per-destination routing
    /// configuration: every node `t` of `graph` becomes one prefix (with
    /// `PrefixId(t.index())`) forwarded along `routing`'s DAG and splitting
    /// ratios towards `t`. Combined with [`FlowSimulator::run_matrix`] this
    /// turns any [`coyote_core::PdRouting`] + demand matrix into a simulated
    /// steady state, which is how the conformance engine cross-checks the
    /// analytic sweep numbers against the realized Fibbing routing.
    pub fn from_pd_routing(graph: &Graph, routing: &coyote_core::PdRouting) -> Self {
        assert_eq!(
            routing.destination_count(),
            graph.node_count(),
            "routing must cover every graph node as a destination"
        );
        let mut sim = Self::new(graph.clone());
        for t in graph.nodes() {
            sim.add_prefix(t, routing.ratios(t).to_vec());
        }
        sim
    }

    /// Overrides the fixed-point iteration budget (mostly for tests that
    /// want to confirm the default budget already reaches the fixed point).
    pub fn with_max_rounds(mut self, rounds: usize) -> Self {
        self.max_rounds = rounds.max(1);
        self
    }

    /// The underlying topology.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Registers a prefix and returns its id.
    pub fn add_prefix(&mut self, egress: NodeId, ratios: Vec<f64>) -> PrefixId {
        assert_eq!(
            ratios.len(),
            self.graph.edge_count(),
            "one ratio per directed edge"
        );
        let id = PrefixId(self.prefixes.len());
        self.prefixes.push(PrefixRouting { egress, ratios });
        id
    }

    /// Registers a prefix whose forwarding state is taken from a
    /// [`coyote_core::PdRouting`] (the DAG and ratios towards `egress`).
    pub fn add_prefix_from_routing(
        &mut self,
        routing: &coyote_core::PdRouting,
        egress: NodeId,
    ) -> PrefixId {
        let ratios: Vec<f64> = self
            .graph
            .edges()
            .map(|e| routing.ratio(egress, e))
            .collect();
        self.add_prefix(egress, ratios)
    }

    /// Number of registered prefixes.
    pub fn prefix_count(&self) -> usize {
        self.prefixes.len()
    }

    /// Converts a demand matrix into CBR flows addressed to the
    /// per-destination prefixes of a simulator built by
    /// [`FlowSimulator::from_pd_routing`] (prefix id == destination index).
    /// Pairs with zero demand produce no flow; iteration order is the
    /// row-major order of [`DemandMatrix::pairs`], so the flow list is
    /// deterministic.
    pub fn flows_from_matrix(&self, dm: &DemandMatrix) -> Vec<CbrFlow> {
        assert_eq!(
            self.prefixes.len(),
            self.graph.node_count(),
            "flows_from_matrix requires one prefix per node \
             (build the simulator with from_pd_routing)"
        );
        dm.pairs()
            .map(|(s, t, rate)| CbrFlow {
                source: s,
                prefix: PrefixId(t.index()),
                rate,
            })
            .collect()
    }

    /// Simulates the steady state of routing a whole demand matrix through
    /// a per-destination simulator (see [`FlowSimulator::flows_from_matrix`]).
    pub fn run_matrix(&self, dm: &DemandMatrix) -> SimOutcome {
        self.run(&self.flows_from_matrix(dm))
    }

    /// Maximum link utilization (carried load / capacity) over all edges of
    /// an outcome — the simulated counterpart of
    /// `PdRouting::max_link_utilization`. Because the emulator drops the
    /// excess on oversubscribed links, this is capped at 1 by construction.
    pub fn max_utilization(&self, outcome: &SimOutcome) -> f64 {
        self.graph
            .edges()
            .map(|e| outcome.edge_loads[e.index()] / self.graph.capacity(e))
            .fold(0.0, f64::max)
    }

    /// Simulates the steady state of a set of CBR flows.
    pub fn run(&self, flows: &[CbrFlow]) -> SimOutcome {
        let _span = coyote_obs::span("sim.flowsim");
        let ne = self.graph.edge_count();
        let nn = self.graph.node_count();

        // Delivery fraction per edge (1 = no drop), refined iteratively.
        let mut pass = vec![1.0_f64; ne];
        let mut edge_loads = vec![0.0_f64; ne];
        let mut delivered_per_prefix: BTreeMap<usize, f64> = BTreeMap::new();
        let mut delivered_total = 0.0;
        let mut unrouted_total = 0.0;
        let mut rounds = 0usize;
        let mut residual = 0.0_f64;

        for _ in 0..self.max_rounds {
            rounds += 1;
            edge_loads.iter_mut().for_each(|l| *l = 0.0);
            delivered_per_prefix.clear();
            delivered_total = 0.0;
            unrouted_total = 0.0;

            for (pid, prefix) in self.prefixes.iter().enumerate() {
                // Traffic of this prefix arriving at each node (after drops).
                let mut arriving = vec![0.0_f64; nn];
                let mut injected = 0.0_f64;
                for f in flows {
                    if f.prefix == PrefixId(pid) {
                        arriving[f.source.index()] += f.rate;
                        injected += f.rate;
                    }
                }
                // Volume of this prefix lost to congestion (link drops), as
                // opposed to stranded at nodes with no usable out-edge.
                let mut link_dropped = 0.0_f64;
                // Propagate along the prefix's DAG. A topological order of
                // the edges with positive ratio is implied by acyclicity; we
                // process nodes in order of "longest remaining path" by
                // simply iterating relaxations until stable (bounded by n).
                let mut node_out = vec![0.0_f64; nn];
                let mut processed = vec![false; nn];
                for _ in 0..nn {
                    // Pick an unprocessed node whose in-edges (with positive
                    // ratio) all come from processed nodes.
                    let mut progressed = false;
                    for u in self.graph.nodes() {
                        if processed[u.index()] || u == prefix.egress {
                            continue;
                        }
                        let ready = self.graph.in_edges(u).iter().all(|&e| {
                            prefix.ratios[e.index()] <= 0.0
                                || processed[self.graph.edge(e).src.index()]
                        });
                        if !ready {
                            continue;
                        }
                        processed[u.index()] = true;
                        progressed = true;
                        node_out[u.index()] = arriving[u.index()];
                        for &e in self.graph.out_edges(u) {
                            let r = prefix.ratios[e.index()];
                            if r <= 0.0 {
                                continue;
                            }
                            let offered_on_edge = node_out[u.index()] * r;
                            let carried = offered_on_edge * pass[e.index()];
                            edge_loads[e.index()] += offered_on_edge;
                            link_dropped += offered_on_edge - carried;
                            arriving[self.graph.edge(e).dst.index()] += carried;
                        }
                    }
                    if !progressed {
                        break;
                    }
                }
                let delivered = arriving[prefix.egress.index()];
                *delivered_per_prefix.entry(pid).or_insert(0.0) += delivered;
                delivered_total += delivered;
                // Whatever was injected but neither delivered nor lost on a
                // congested link is stranded: it reached a node with no
                // positive-ratio out-edge for this prefix (a partitioned
                // source, a pruned DAG dead end, or an unreachable cycle in
                // the ready sweep). Post-failure scenarios must see this as
                // dropped volume, never as a panic or a silent vanish.
                unrouted_total += (injected - delivered - link_dropped).max(0.0);
            }

            // Update per-edge delivery fractions from the offered loads.
            let mut changed = false;
            residual = 0.0;
            for e in self.graph.edges() {
                let offered = edge_loads[e.index()];
                let new_pass = if offered > self.graph.capacity(e) {
                    self.graph.capacity(e) / offered
                } else {
                    1.0
                };
                let delta = (new_pass - pass[e.index()]).abs();
                if delta > 1e-9 {
                    changed = true;
                }
                residual = residual.max(delta);
                pass[e.index()] = new_pass;
            }
            if !changed {
                break;
            }
        }

        if coyote_obs::enabled() {
            coyote_obs::counter("sim.flowsim.runs", 1);
            coyote_obs::counter("sim.flowsim.rounds", rounds as u64);
            coyote_obs::observe("sim.flowsim.rounds_per_run", rounds as u64);
            // The fixed-point residual of the final round (max |Δpass| over
            // all edges), quantized to 1e-12 units so the deterministic
            // histogram can hold it. 0 means the run converged exactly.
            coyote_obs::observe(
                "sim.flowsim.residual_pico",
                (residual * 1e12).round() as u64,
            );
        }

        // Report carried (post-drop) loads rather than offered loads.
        let carried: Vec<f64> = edge_loads
            .iter()
            .zip(&pass)
            .map(|(&offered, &p)| offered * p)
            .collect();

        let offered_total: f64 = flows.iter().map(|f| f.rate).sum();
        SimOutcome {
            offered: offered_total,
            delivered: delivered_total.min(offered_total),
            edge_loads: carried,
            delivered_per_prefix,
            unrouted: unrouted_total.min(offered_total),
        }
    }

    /// Utilization (carried load / capacity) of an edge in an outcome.
    pub fn utilization(&self, outcome: &SimOutcome, edge: EdgeId) -> f64 {
        outcome.edge_loads[edge.index()] / self.graph.capacity(edge)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two sources, one sink, 1-capacity links: s1 - t, s2 - t, s1 - s2.
    fn triangle() -> (Graph, NodeId, NodeId, NodeId) {
        let mut g = Graph::new();
        let s1 = g.add_node("s1").unwrap();
        let s2 = g.add_node("s2").unwrap();
        let t = g.add_node("t").unwrap();
        g.add_bidirectional_edge(s1, t, 1.0, 1.0).unwrap();
        g.add_bidirectional_edge(s2, t, 1.0, 1.0).unwrap();
        g.add_bidirectional_edge(s1, s2, 1.0, 1.0).unwrap();
        (g, s1, s2, t)
    }

    fn direct_ratios(g: &Graph, s1: NodeId, s2: NodeId, t: NodeId) -> Vec<f64> {
        let mut r = vec![0.0; g.edge_count()];
        r[g.find_edge(s1, t).unwrap().index()] = 1.0;
        r[g.find_edge(s2, t).unwrap().index()] = 1.0;
        r
    }

    #[test]
    fn under_capacity_traffic_is_fully_delivered() {
        let (g, s1, s2, t) = triangle();
        let ratios = direct_ratios(&g, s1, s2, t);
        let mut sim = FlowSimulator::new(g);
        let p = sim.add_prefix(t, ratios);
        let outcome = sim.run(&[
            CbrFlow {
                source: s1,
                prefix: p,
                rate: 0.8,
            },
            CbrFlow {
                source: s2,
                prefix: p,
                rate: 0.6,
            },
        ]);
        assert!((outcome.delivered - 1.4).abs() < 1e-9);
        assert_eq!(outcome.drop_rate(), 0.0);
        assert!((outcome.delivery_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn oversubscribed_link_drops_the_excess() {
        let (g, s1, s2, t) = triangle();
        let ratios = direct_ratios(&g, s1, s2, t);
        let mut sim = FlowSimulator::new(g);
        let p = sim.add_prefix(t, ratios);
        let outcome = sim.run(&[CbrFlow {
            source: s2,
            prefix: p,
            rate: 2.0,
        }]);
        // The s2-t link caps at 1.0: half the traffic is lost.
        assert!((outcome.delivered - 1.0).abs() < 1e-9);
        assert!((outcome.drop_rate() - 0.5).abs() < 1e-9);
        let _ = s1;
    }

    #[test]
    fn splitting_avoids_the_bottleneck() {
        let (g, s1, s2, t) = triangle();
        // s2 splits its traffic: half direct, half via s1.
        let mut ratios = vec![0.0; g.edge_count()];
        ratios[g.find_edge(s2, t).unwrap().index()] = 0.5;
        ratios[g.find_edge(s2, s1).unwrap().index()] = 0.5;
        ratios[g.find_edge(s1, t).unwrap().index()] = 1.0;
        let mut sim = FlowSimulator::new(g);
        let p = sim.add_prefix(t, ratios);
        let outcome = sim.run(&[CbrFlow {
            source: s2,
            prefix: p,
            rate: 2.0,
        }]);
        assert!(
            outcome.drop_rate() < 1e-9,
            "drop rate {}",
            outcome.drop_rate()
        );
    }

    #[test]
    fn upstream_drops_reduce_downstream_load() {
        // s2 -> s1 -> t where the first link is the bottleneck.
        let mut g = Graph::new();
        let s2 = g.add_node("s2").unwrap();
        let s1 = g.add_node("s1").unwrap();
        let t = g.add_node("t").unwrap();
        g.add_edge(s2, s1, 1.0, 1.0).unwrap();
        g.add_edge(s1, t, 10.0, 1.0).unwrap();
        let mut ratios = vec![0.0; g.edge_count()];
        ratios[0] = 1.0;
        ratios[1] = 1.0;
        let s1t = g.find_edge(s1, t).unwrap();
        let mut sim = FlowSimulator::new(g);
        let p = sim.add_prefix(t, ratios);
        let outcome = sim.run(&[CbrFlow {
            source: s2,
            prefix: p,
            rate: 3.0,
        }]);
        // Only 1.0 survives the first link, so the second carries 1.0.
        assert!((outcome.edge_loads[s1t.index()] - 1.0).abs() < 1e-9);
        assert!((outcome.drop_rate() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn per_prefix_routing_is_independent() {
        let (g, s1, s2, t) = triangle();
        // Prefix A goes direct from both sources; prefix B from s2 detours
        // via s1.
        let ratios_a = direct_ratios(&g, s1, s2, t);
        let mut ratios_b = vec![0.0; g.edge_count()];
        ratios_b[g.find_edge(s2, s1).unwrap().index()] = 1.0;
        ratios_b[g.find_edge(s1, t).unwrap().index()] = 1.0;
        let s1t = g.find_edge(s1, t).unwrap();
        let mut sim = FlowSimulator::new(g);
        let pa = sim.add_prefix(t, ratios_a);
        let pb = sim.add_prefix(t, ratios_b);
        let outcome = sim.run(&[
            CbrFlow {
                source: s1,
                prefix: pa,
                rate: 0.4,
            },
            CbrFlow {
                source: s2,
                prefix: pb,
                rate: 0.5,
            },
        ]);
        assert_eq!(outcome.drop_rate(), 0.0);
        // The s1-t link carries both prefixes.
        assert!((outcome.edge_loads[s1t.index()] - 0.9).abs() < 1e-9);
        assert!((outcome.delivered_per_prefix[&0] - 0.4).abs() < 1e-9);
        assert!((outcome.delivered_per_prefix[&1] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn with_prefixes_matches_incremental_registration() {
        let (g, s1, s2, t) = triangle();
        let ratios = direct_ratios(&g, s1, s2, t);
        let mut incremental = FlowSimulator::new(g.clone());
        let p = incremental.add_prefix(t, ratios.clone());
        let batch = FlowSimulator::with_prefixes(g, vec![(t, ratios)]);
        assert_eq!(batch.prefix_count(), 1);
        let flows = [CbrFlow {
            source: s2,
            prefix: p,
            rate: 2.0,
        }];
        assert_eq!(incremental.run(&flows), batch.run(&flows));
    }

    #[test]
    fn from_pd_routing_simulates_a_whole_demand_matrix() {
        use coyote_core::ecmp_routing;

        let (g, s1, s2, t) = triangle();
        let routing = ecmp_routing(&g).unwrap();
        let sim = FlowSimulator::from_pd_routing(&g, &routing);
        assert_eq!(sim.prefix_count(), g.node_count());

        // Under-capacity demands are fully delivered and the simulated
        // utilizations agree with the analytic per-edge loads.
        let mut dm = DemandMatrix::zeros(g.node_count());
        dm.set(s1, t, 0.5);
        dm.set(s2, t, 0.25);
        let outcome = sim.run_matrix(&dm);
        assert!((outcome.delivered - 0.75).abs() < 1e-9);
        assert_eq!(outcome.drop_rate(), 0.0);
        let analytic = routing.edge_loads(&g, &dm);
        for e in g.edges() {
            assert!(
                (outcome.edge_loads[e.index()] - analytic[e.index()]).abs() < 1e-9,
                "edge {e}: sim {} vs analytic {}",
                outcome.edge_loads[e.index()],
                analytic[e.index()]
            );
        }
        assert!(
            (sim.max_utilization(&outcome) - routing.max_link_utilization(&g, &dm)).abs() < 1e-9
        );
    }

    #[test]
    fn flows_from_matrix_is_deterministic_and_skips_zero_pairs() {
        let (g, s1, s2, t) = triangle();
        let routing = coyote_core::ecmp_routing(&g).unwrap();
        let sim = FlowSimulator::from_pd_routing(&g, &routing);
        let mut dm = DemandMatrix::zeros(g.node_count());
        dm.set(s2, t, 1.5);
        let flows = sim.flows_from_matrix(&dm);
        assert_eq!(flows.len(), 1);
        assert_eq!(flows[0].source, s2);
        assert_eq!(flows[0].prefix, PrefixId(t.index()));
        assert_eq!(flows[0].rate, 1.5);
        let _ = s1;
    }

    #[test]
    fn partitioned_demand_registers_as_unrouted_drop() {
        // Two components: {a, b} and {c, t}, with t the egress. Demand from
        // a and b can never reach t — it must show up as dropped *and*
        // unrouted volume, not panic and not silently vanish.
        let mut g = Graph::new();
        let a = g.add_node("a").unwrap();
        let b = g.add_node("b").unwrap();
        let c = g.add_node("c").unwrap();
        let t = g.add_node("t").unwrap();
        g.add_bidirectional_edge(a, b, 1.0, 1.0).unwrap();
        g.add_bidirectional_edge(c, t, 1.0, 1.0).unwrap();
        let mut ratios = vec![0.0; g.edge_count()];
        ratios[g.find_edge(c, t).unwrap().index()] = 1.0;
        let mut sim = FlowSimulator::new(g);
        let p = sim.add_prefix(t, ratios);
        let outcome = sim.run(&[
            CbrFlow {
                source: a,
                prefix: p,
                rate: 0.7,
            },
            CbrFlow {
                source: b,
                prefix: p,
                rate: 0.3,
            },
            CbrFlow {
                source: c,
                prefix: p,
                rate: 0.5,
            },
        ]);
        // The reachable flow (from c) is delivered; the stranded 1.0 from
        // the far component is dropped and attributed to disconnection.
        assert!((outcome.offered - 1.5).abs() < 1e-9);
        assert!((outcome.delivered - 0.5).abs() < 1e-9);
        assert!((outcome.unrouted - 1.0).abs() < 1e-9);
        assert!((outcome.drop_rate() - 1.0 / 1.5).abs() < 1e-9);
        assert!((outcome.unrouted_rate() - 1.0 / 1.5).abs() < 1e-9);
        // No edge of either component carries the stranded traffic.
        assert!(outcome.edge_loads.iter().all(|&l| l <= 0.5 + 1e-9));
    }

    #[test]
    fn congestion_drops_are_not_counted_as_unrouted() {
        let (g, s1, s2, t) = triangle();
        let ratios = direct_ratios(&g, s1, s2, t);
        let mut sim = FlowSimulator::new(g);
        let p = sim.add_prefix(t, ratios);
        // 2.0 offered into a 1.0-capacity link: congestion drop, fully
        // routed — unrouted must stay zero.
        let outcome = sim.run(&[CbrFlow {
            source: s2,
            prefix: p,
            rate: 2.0,
        }]);
        assert!((outcome.drop_rate() - 0.5).abs() < 1e-9);
        assert!(outcome.unrouted.abs() < 1e-9);
        let _ = s1;
    }

    #[test]
    fn zero_traffic_is_a_noop() {
        let (g, s1, s2, t) = triangle();
        let ratios = direct_ratios(&g, s1, s2, t);
        let mut sim = FlowSimulator::new(g);
        let _p = sim.add_prefix(t, ratios);
        let outcome = sim.run(&[]);
        assert_eq!(outcome.offered, 0.0);
        assert_eq!(outcome.drop_rate(), 0.0);
        assert!(outcome.edge_loads.iter().all(|&l| l == 0.0));
    }
}
