//! # coyote-sim
//!
//! Flow-level network emulator used by the COYOTE reproduction as the
//! substitute for the paper's Mininet prototype experiment (Section VII,
//! Fig. 12).
//!
//! * [`flowsim`] — a capacity-limited, per-prefix, proportional-drop
//!   flow-level simulator. Each IP prefix carries its own forwarding DAG
//!   and splitting ratios (the per-prefix granularity Fibbing makes
//!   possible), constant-bit-rate flows are injected at sources, and the
//!   excess on oversubscribed links is dropped proportionally. A simulator
//!   is built either prefix by prefix, from an explicit prefix list
//!   ([`FlowSimulator::with_prefixes`]), or from any graph plus a whole
//!   per-destination routing ([`FlowSimulator::from_pd_routing`] +
//!   [`FlowSimulator::run_matrix`]), which is how the conformance engine in
//!   `coyote-bench` simulates zoo-scale sweep cells through the realized
//!   Fibbing routing.
//! * [`scenario`] — the exact prototype setup of the paper: the 3-router
//!   topology with 1 Mbps links, the two destination prefixes, the three
//!   offered-load phases, and the TE1/TE2/TE3/COYOTE configurations — all
//!   expressed through the generalized constructor above.
//!
//! ```
//! use coyote_sim::scenario::{run_prototype, PrototypeScheme};
//!
//! let coyote = run_prototype(PrototypeScheme::Coyote);
//! let te1 = run_prototype(PrototypeScheme::Te1);
//! assert!(coyote.worst_drop_rate() < te1.worst_drop_rate());
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod flowsim;
pub mod scenario;

pub use flowsim::{CbrFlow, FlowSimulator, PrefixId, SimOutcome};
pub use scenario::{run_all, run_prototype, PrototypeResult, PrototypeScheme};
