//! The prototype experiment of Section VII (Fig. 12).
//!
//! Topology: two sources `s1`, `s2` and a target router `t` advertising two
//! IP prefixes `t1` and `t2`; every link has 1 Mbps of capacity. Three
//! 15-second traffic phases are emulated with CBR/UDP traffic:
//!
//! | phase | s1 → t1 | s2 → t2 |
//! |-------|---------|---------|
//! | 1     | 0 Mbps  | 2 Mbps  |
//! | 2     | 1 Mbps  | 1 Mbps  |
//! | 3     | 2 Mbps  | 0 Mbps  |
//!
//! Traditional TE must use the *same* forwarding DAG for both prefixes, so
//! only three configurations exist (TE1: both sources forward directly;
//! TE2: `s1` splits via `s2`; TE3: the mirror image of TE2) and each drops
//! 25–50 % of the traffic in at least one phase. COYOTE gives each prefix
//! its own DAG — traffic to `t1` is split at `s1`, traffic to `t2` at `s2`
//! (realized by a Fibbing lie) — and drops (almost) nothing.

use crate::flowsim::{CbrFlow, FlowSimulator, PrefixId, SimOutcome};
use coyote_graph::{Graph, NodeId};
use serde::{Deserialize, Serialize};

/// The TE configurations compared in the prototype experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PrototypeScheme {
    /// Both sources forward both prefixes on their direct link.
    Te1,
    /// `s1` splits both prefixes between its direct link and the path via
    /// `s2`; `s2` forwards directly.
    Te2,
    /// Mirror image of [`PrototypeScheme::Te2`] (`s2` splits, `s1` direct).
    Te3,
    /// COYOTE: prefix `t1` is split at `s1`, prefix `t2` is split at `s2`.
    Coyote,
}

impl PrototypeScheme {
    /// All schemes, in the order the paper discusses them.
    pub const ALL: [PrototypeScheme; 4] = [
        PrototypeScheme::Te1,
        PrototypeScheme::Te2,
        PrototypeScheme::Te3,
        PrototypeScheme::Coyote,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            PrototypeScheme::Te1 => "TE1",
            PrototypeScheme::Te2 => "TE2",
            PrototypeScheme::Te3 => "TE3",
            PrototypeScheme::Coyote => "COYOTE",
        }
    }
}

/// One simulated traffic phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseResult {
    /// Offered (s1 → t1, s2 → t2) rates in Mbps.
    pub offered: (f64, f64),
    /// Fraction of offered traffic dropped in this phase.
    pub drop_rate: f64,
    /// Fraction delivered.
    pub delivery_rate: f64,
}

/// Result of the whole three-phase experiment for one scheme.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrototypeResult {
    /// Which scheme was emulated.
    pub scheme: String,
    /// Per-phase results in phase order.
    pub phases: Vec<PhaseResult>,
}

impl PrototypeResult {
    /// The worst drop rate over the three phases (the number the paper's
    /// discussion quotes: 25–50 % for TE1–TE3, ≈0 for COYOTE).
    pub fn worst_drop_rate(&self) -> f64 {
        self.phases.iter().map(|p| p.drop_rate).fold(0.0, f64::max)
    }

    /// Cumulative drop rate over all phases (total dropped / total offered).
    pub fn cumulative_drop_rate(&self) -> f64 {
        let offered: f64 = self.phases.iter().map(|p| p.offered.0 + p.offered.1).sum();
        if offered <= 0.0 {
            return 0.0;
        }
        let dropped: f64 = self
            .phases
            .iter()
            .map(|p| (p.offered.0 + p.offered.1) * p.drop_rate)
            .sum();
        dropped / offered
    }
}

/// The prototype topology (all links 1 Mbps).
pub fn prototype_topology() -> (Graph, NodeId, NodeId, NodeId) {
    let mut g = Graph::new();
    let s1 = g.add_node("s1").unwrap();
    let s2 = g.add_node("s2").unwrap();
    let t = g.add_node("t").unwrap();
    g.add_bidirectional_edge(s1, t, 1.0, 1.0).unwrap();
    g.add_bidirectional_edge(s2, t, 1.0, 1.0).unwrap();
    g.add_bidirectional_edge(s1, s2, 1.0, 1.0).unwrap();
    (g, s1, s2, t)
}

/// The three offered-load phases of the experiment, in Mbps.
pub const PHASES: [(f64, f64); 3] = [(0.0, 2.0), (1.0, 1.0), (2.0, 0.0)];

fn ratios_direct(g: &Graph, s1: NodeId, s2: NodeId, t: NodeId) -> Vec<f64> {
    let mut r = vec![0.0; g.edge_count()];
    r[g.find_edge(s1, t).unwrap().index()] = 1.0;
    r[g.find_edge(s2, t).unwrap().index()] = 1.0;
    r
}

fn ratios_split_at(g: &Graph, splitter: NodeId, other: NodeId, t: NodeId) -> Vec<f64> {
    let mut r = vec![0.0; g.edge_count()];
    r[g.find_edge(splitter, t).unwrap().index()] = 0.5;
    r[g.find_edge(splitter, other).unwrap().index()] = 0.5;
    r[g.find_edge(other, t).unwrap().index()] = 1.0;
    r
}

/// Builds the simulator (with both prefixes registered) for a scheme.
/// Returns the simulator and the prefix ids `(t1, t2)`.
pub fn build_scheme(scheme: PrototypeScheme) -> (FlowSimulator, PrefixId, PrefixId) {
    let (g, s1, s2, t) = prototype_topology();
    let (ratios_t1, ratios_t2) = match scheme {
        PrototypeScheme::Te1 => (ratios_direct(&g, s1, s2, t), ratios_direct(&g, s1, s2, t)),
        PrototypeScheme::Te2 => (
            ratios_split_at(&g, s1, s2, t),
            ratios_split_at(&g, s1, s2, t),
        ),
        PrototypeScheme::Te3 => (
            ratios_split_at(&g, s2, s1, t),
            ratios_split_at(&g, s2, s1, t),
        ),
        PrototypeScheme::Coyote => (
            ratios_split_at(&g, s1, s2, t),
            ratios_split_at(&g, s2, s1, t),
        ),
    };
    // Both prefixes share the egress router t; the generalized constructor
    // assigns PrefixId(0) to t1 and PrefixId(1) to t2 (registration order).
    let sim = FlowSimulator::with_prefixes(g, vec![(t, ratios_t1), (t, ratios_t2)]);
    (sim, PrefixId(0), PrefixId(1))
}

/// Runs the three-phase experiment for one scheme.
pub fn run_prototype(scheme: PrototypeScheme) -> PrototypeResult {
    let (sim, p1, p2) = build_scheme(scheme);
    let (_, s1, s2, _t) = prototype_topology();
    let phases = PHASES
        .iter()
        .map(|&(r1, r2)| {
            let mut flows = Vec::new();
            if r1 > 0.0 {
                flows.push(CbrFlow {
                    source: s1,
                    prefix: p1,
                    rate: r1,
                });
            }
            if r2 > 0.0 {
                flows.push(CbrFlow {
                    source: s2,
                    prefix: p2,
                    rate: r2,
                });
            }
            let outcome: SimOutcome = sim.run(&flows);
            PhaseResult {
                offered: (r1, r2),
                drop_rate: outcome.drop_rate(),
                delivery_rate: outcome.delivery_rate(),
            }
        })
        .collect();
    PrototypeResult {
        scheme: scheme.name().to_string(),
        phases,
    }
}

/// Runs the experiment for every scheme (the full Fig. 12 comparison).
pub fn run_all() -> Vec<PrototypeResult> {
    PrototypeScheme::ALL
        .iter()
        .map(|&s| run_prototype(s))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(scheme: PrototypeScheme) -> PrototypeResult {
        run_prototype(scheme)
    }

    #[test]
    fn te1_drops_half_when_a_single_source_sends_two_mbps() {
        let r = result(PrototypeScheme::Te1);
        assert!(
            (r.phases[0].drop_rate - 0.5).abs() < 1e-9,
            "{:?}",
            r.phases[0]
        );
        assert!((r.phases[1].drop_rate - 0.0).abs() < 1e-9);
        assert!((r.phases[2].drop_rate - 0.5).abs() < 1e-9);
        assert!((r.worst_drop_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn te2_fixes_phase_three_but_hurts_phase_two() {
        let r = result(PrototypeScheme::Te2);
        // Phase 1: s2 alone sends 2 on its direct link -> 50% loss.
        assert!((r.phases[0].drop_rate - 0.5).abs() < 1e-9);
        // Phase 2: s1's detoured half collides with s2's direct traffic.
        assert!(
            (r.phases[1].drop_rate - 0.25).abs() < 1e-9,
            "{:?}",
            r.phases[1]
        );
        // Phase 3: s1 splits its 2 Mbps -> no loss.
        assert!(r.phases[2].drop_rate < 1e-9);
    }

    #[test]
    fn te3_is_the_mirror_of_te2() {
        let te2 = result(PrototypeScheme::Te2);
        let te3 = result(PrototypeScheme::Te3);
        assert!((te2.phases[0].drop_rate - te3.phases[2].drop_rate).abs() < 1e-9);
        assert!((te2.phases[2].drop_rate - te3.phases[0].drop_rate).abs() < 1e-9);
        assert!((te2.phases[1].drop_rate - te3.phases[1].drop_rate).abs() < 1e-9);
    }

    #[test]
    fn coyote_drops_nothing_in_any_phase() {
        let r = result(PrototypeScheme::Coyote);
        for phase in &r.phases {
            assert!(
                phase.drop_rate < 1e-9,
                "COYOTE dropped {} in phase {:?}",
                phase.drop_rate,
                phase.offered
            );
        }
        assert!(r.cumulative_drop_rate() < 1e-9);
    }

    #[test]
    fn every_traditional_scheme_loses_at_least_a_quarter_somewhere() {
        // The paper: "each of the TE schemes (TE1-3) achievable via
        // traditional TE with ECMP leads to a significant packet-drop rate
        // (25%-50%) in at least one of the traffic scenarios."
        for scheme in [
            PrototypeScheme::Te1,
            PrototypeScheme::Te2,
            PrototypeScheme::Te3,
        ] {
            let r = result(scheme);
            assert!(
                r.worst_drop_rate() >= 0.25 - 1e-9,
                "{} worst drop {}",
                r.scheme,
                r.worst_drop_rate()
            );
        }
    }

    #[test]
    fn run_all_numbers_are_pinned() {
        // Regression pin for the generalized-constructor refactor: the
        // prototype must keep producing exactly the numbers the hard-wired
        // path produced (drop rates per scheme per phase). These are exact
        // rationals the fluid solver reaches in one or two rounds, so the
        // comparison is tight.
        let expected: [(&str, [f64; 3]); 4] = [
            ("TE1", [0.5, 0.0, 0.5]),
            ("TE2", [0.5, 0.25, 0.0]),
            ("TE3", [0.0, 0.25, 0.5]),
            ("COYOTE", [0.0, 0.0, 0.0]),
        ];
        for (result, (scheme, drops)) in run_all().iter().zip(expected) {
            assert_eq!(result.scheme, scheme);
            assert_eq!(result.phases.len(), 3);
            for (phase, want) in result.phases.iter().zip(drops) {
                assert!(
                    (phase.drop_rate - want).abs() < 1e-12,
                    "{scheme} offered {:?}: drop {} != pinned {want}",
                    phase.offered,
                    phase.drop_rate
                );
                assert!((phase.delivery_rate - (1.0 - want)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn run_all_covers_every_scheme() {
        let all = run_all();
        assert_eq!(all.len(), 4);
        let names: Vec<&str> = all.iter().map(|r| r.scheme.as_str()).collect();
        assert_eq!(names, vec!["TE1", "TE2", "TE3", "COYOTE"]);
        // COYOTE strictly dominates every traditional scheme in cumulative
        // drops.
        let coyote = all.last().unwrap().cumulative_drop_rate();
        for r in &all[..3] {
            assert!(coyote < r.cumulative_drop_rate());
        }
    }
}
