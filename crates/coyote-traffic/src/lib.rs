//! # coyote-traffic
//!
//! Traffic-demand models and uncertainty sets for the COYOTE reproduction.
//!
//! The paper evaluates COYOTE against two synthetic *base* demand-matrix
//! models — [`gravity::GravityModel`] (Roughan et al. \[22\]) and
//! [`bimodal::BimodalModel`] (Medina et al. \[23\]) — and wraps either in an
//! *uncertainty margin*: the real demand of a pair may be anywhere between
//! `base / margin` and `base · margin` ([`uncertainty::UncertaintySet`]).
//! The fully *oblivious* setting, where nothing is known about demands,
//! corresponds to [`uncertainty::UncertaintySet::Oblivious`].
//!
//! [`demand::DemandMatrix`] is the dense matrix type every other crate
//! consumes.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod bimodal;
pub mod demand;
pub mod gravity;
pub mod uncertainty;

pub use bimodal::BimodalModel;
pub use demand::DemandMatrix;
pub use gravity::GravityModel;
pub use uncertainty::UncertaintySet;
