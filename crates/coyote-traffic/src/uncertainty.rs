//! Demand-uncertainty sets.
//!
//! COYOTE optimizes splitting ratios "with respect to all (even adversarially
//! chosen) traffic scenarios within the operator's uncertainty bounds"
//! (Section III): the actual demand `d_st` may take any value in
//! `[d_st^min, d_st^max]`. The evaluation parameterizes the bounds with a
//! *margin* `x ≥ 1` around a base matrix: `d_st ∈ [d_st / x, d_st · x]`
//! (Section VI-B). The fully *oblivious* variant assumes nothing at all:
//! every non-negative matrix is possible.

use crate::demand::DemandMatrix;
use coyote_graph::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The set of demand matrices the operator deems possible.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum UncertaintySet {
    /// Every non-negative demand matrix is possible ("oblivious" in the
    /// paper; only matrices that are routable at all matter, which the
    /// worst-case computation enforces separately).
    Oblivious {
        /// Number of nodes.
        node_count: usize,
    },
    /// Box bounds `d_st ∈ [lower_st, upper_st]` for every ordered pair, up to
    /// a common non-negative scaling λ (the paper scales every candidate
    /// matrix so it is routable; see Appendix C, constraint (8)).
    Box {
        /// Per-pair lower bounds.
        lower: DemandMatrix,
        /// Per-pair upper bounds.
        upper: DemandMatrix,
    },
}

impl UncertaintySet {
    /// The fully oblivious set over `node_count` nodes.
    pub fn oblivious(node_count: usize) -> Self {
        UncertaintySet::Oblivious { node_count }
    }

    /// Box uncertainty derived from a base matrix and a margin `x ≥ 1`:
    /// `d ∈ [base / x, base · x]` entry-wise (the construction used in the
    /// paper's figures and Table I).
    pub fn from_margin(base: &DemandMatrix, margin: f64) -> Self {
        assert!(
            margin >= 1.0,
            "uncertainty margin must be >= 1, got {margin}"
        );
        let n = base.node_count();
        let mut lower = DemandMatrix::zeros(n);
        let mut upper = DemandMatrix::zeros(n);
        for (s, t, d) in base.pairs() {
            lower.set(s, t, d / margin);
            upper.set(s, t, d * margin);
        }
        UncertaintySet::Box { lower, upper }
    }

    /// Explicit box bounds.
    pub fn from_bounds(lower: DemandMatrix, upper: DemandMatrix) -> Self {
        assert_eq!(
            lower.node_count(),
            upper.node_count(),
            "bound matrices must have the same node count"
        );
        UncertaintySet::Box { lower, upper }
    }

    /// Number of nodes the set talks about.
    pub fn node_count(&self) -> usize {
        match self {
            UncertaintySet::Oblivious { node_count } => *node_count,
            UncertaintySet::Box { lower, .. } => lower.node_count(),
        }
    }

    /// True if the set places no restriction on demands.
    pub fn is_oblivious(&self) -> bool {
        matches!(self, UncertaintySet::Oblivious { .. })
    }

    /// Lower bound of a pair (zero in the oblivious set).
    pub fn lower(&self, s: NodeId, t: NodeId) -> f64 {
        match self {
            UncertaintySet::Oblivious { .. } => 0.0,
            UncertaintySet::Box { lower, .. } => lower.get(s, t),
        }
    }

    /// Upper bound of a pair (`f64::INFINITY` in the oblivious set).
    pub fn upper(&self, s: NodeId, t: NodeId) -> f64 {
        match self {
            UncertaintySet::Oblivious { .. } => f64::INFINITY,
            UncertaintySet::Box { upper, .. } => upper.get(s, t),
        }
    }

    /// True if `dm` lies inside the box, allowing a common scaling `lambda`.
    /// For `lambda = 1` this is plain membership.
    pub fn contains_scaled(&self, dm: &DemandMatrix, lambda: f64, tol: f64) -> bool {
        match self {
            UncertaintySet::Oblivious { .. } => true,
            UncertaintySet::Box { lower, upper } => {
                let n = lower.node_count();
                for s in 0..n {
                    for t in 0..n {
                        if s == t {
                            continue;
                        }
                        let (s, t) = (NodeId(s), NodeId(t));
                        let v = dm.get(s, t);
                        if v < lambda * lower.get(s, t) - tol || v > lambda * upper.get(s, t) + tol
                        {
                            return false;
                        }
                    }
                }
                true
            }
        }
    }

    /// True if `dm` lies inside the box exactly (no scaling).
    pub fn contains(&self, dm: &DemandMatrix, tol: f64) -> bool {
        self.contains_scaled(dm, 1.0, tol)
    }

    /// The pairs whose upper bound is strictly positive — the only pairs
    /// that can ever carry traffic. Oblivious sets return every ordered
    /// pair.
    pub fn active_pairs(&self) -> Vec<(NodeId, NodeId)> {
        let n = self.node_count();
        match self {
            UncertaintySet::Oblivious { .. } => {
                let mut out = Vec::with_capacity(n * (n - 1));
                for s in 0..n {
                    for t in 0..n {
                        if s != t {
                            out.push((NodeId(s), NodeId(t)));
                        }
                    }
                }
                out
            }
            UncertaintySet::Box { upper, .. } => upper.pairs().map(|(s, t, _)| (s, t)).collect(),
        }
    }

    /// The "envelope" matrix of upper bounds (useful as a pessimistic
    /// starting matrix). Returns `None` for the oblivious set.
    pub fn upper_envelope(&self) -> Option<DemandMatrix> {
        match self {
            UncertaintySet::Oblivious { .. } => None,
            UncertaintySet::Box { upper, .. } => Some(upper.clone()),
        }
    }

    /// The matrix of lower bounds. Returns `None` for the oblivious set.
    pub fn lower_envelope(&self) -> Option<DemandMatrix> {
        match self {
            UncertaintySet::Oblivious { .. } => None,
            UncertaintySet::Box { lower, .. } => Some(lower.clone()),
        }
    }

    /// Samples `count` matrices uniformly inside the box (for the oblivious
    /// set, samples inside `[0, fallback_upper]` per entry). Used by
    /// randomized robustness tests.
    pub fn sample(&self, count: usize, fallback_upper: f64, seed: u64) -> Vec<DemandMatrix> {
        let n = self.node_count();
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count)
            .map(|_| {
                let mut dm = DemandMatrix::zeros(n);
                for s in 0..n {
                    for t in 0..n {
                        if s == t {
                            continue;
                        }
                        let (s, t) = (NodeId(s), NodeId(t));
                        let lo = self.lower(s, t);
                        let hi = match self.upper(s, t) {
                            u if u.is_finite() => u,
                            _ => fallback_upper,
                        };
                        if hi <= 0.0 {
                            continue;
                        }
                        dm.set(s, t, rng.gen_range(lo..=hi.max(lo)));
                    }
                }
                dm
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> DemandMatrix {
        DemandMatrix::from_pairs(
            3,
            &[(NodeId(0), NodeId(2), 2.0), (NodeId(1), NodeId(2), 4.0)],
        )
    }

    #[test]
    fn margin_box_brackets_the_base_matrix() {
        let b = base();
        let set = UncertaintySet::from_margin(&b, 2.0);
        assert!(!set.is_oblivious());
        assert_eq!(set.lower(NodeId(0), NodeId(2)), 1.0);
        assert_eq!(set.upper(NodeId(0), NodeId(2)), 4.0);
        assert_eq!(set.lower(NodeId(1), NodeId(2)), 2.0);
        assert_eq!(set.upper(NodeId(1), NodeId(2)), 8.0);
        // Pairs with no base demand stay pinned at zero.
        assert_eq!(set.upper(NodeId(0), NodeId(1)), 0.0);
        assert!(set.contains(&b, 1e-12));
    }

    #[test]
    fn margin_one_pins_the_matrix_exactly() {
        let b = base();
        let set = UncertaintySet::from_margin(&b, 1.0);
        assert!(set.contains(&b, 1e-12));
        let mut other = b.clone();
        other.set(NodeId(0), NodeId(2), 2.5);
        assert!(!set.contains(&other, 1e-12));
    }

    #[test]
    #[should_panic(expected = "margin must be >= 1")]
    fn rejects_margins_below_one() {
        let _ = UncertaintySet::from_margin(&base(), 0.5);
    }

    #[test]
    fn scaled_membership() {
        let b = base();
        let set = UncertaintySet::from_margin(&b, 1.0);
        let doubled = b.scaled(2.0);
        assert!(!set.contains(&doubled, 1e-12));
        assert!(set.contains_scaled(&doubled, 2.0, 1e-12));
    }

    #[test]
    fn oblivious_set_accepts_everything() {
        let set = UncertaintySet::oblivious(3);
        assert!(set.is_oblivious());
        assert!(set.contains(&base(), 0.0));
        assert_eq!(set.upper(NodeId(0), NodeId(1)), f64::INFINITY);
        assert_eq!(set.lower(NodeId(0), NodeId(1)), 0.0);
        assert_eq!(set.active_pairs().len(), 6);
        assert!(set.upper_envelope().is_none());
        assert!(set.lower_envelope().is_none());
    }

    #[test]
    fn active_pairs_follow_positive_upper_bounds() {
        let set = UncertaintySet::from_margin(&base(), 3.0);
        let pairs = set.active_pairs();
        assert_eq!(pairs.len(), 2);
        assert!(pairs.contains(&(NodeId(0), NodeId(2))));
        assert!(pairs.contains(&(NodeId(1), NodeId(2))));
    }

    #[test]
    fn samples_stay_inside_the_box() {
        let set = UncertaintySet::from_margin(&base(), 2.0);
        for dm in set.sample(20, 10.0, 99) {
            assert!(set.contains(&dm, 1e-9));
        }
        // Deterministic for a fixed seed.
        assert_eq!(set.sample(3, 10.0, 1), set.sample(3, 10.0, 1));
    }

    #[test]
    fn envelopes_round_trip() {
        let b = base();
        let set = UncertaintySet::from_margin(&b, 2.0);
        let up = set.upper_envelope().unwrap();
        let lo = set.lower_envelope().unwrap();
        assert_eq!(up.get(NodeId(1), NodeId(2)), 8.0);
        assert_eq!(lo.get(NodeId(1), NodeId(2)), 2.0);
        assert!(set.contains(&lo, 1e-12));
        assert!(set.contains(&up, 1e-12));
    }
}
