//! The gravity traffic model.
//!
//! The paper's evaluation (Section VI-B) uses two base demand-matrix models;
//! the first is *gravity* \[22\] (Roughan et al.): "the amount of flow sent
//! from router i to router j is proportional to the product of i's and j's
//! total outgoing capacities". The matrix is then scaled so that it can be
//! routed within the network capacities (the performance ratio is invariant
//! to rescaling, so the absolute scale only needs to be sane).

use crate::demand::DemandMatrix;
use coyote_graph::Graph;

/// Gravity model generator.
#[derive(Debug, Clone, Default)]
pub struct GravityModel {
    /// Total traffic in the generated matrix, before any feasibility
    /// rescaling by the caller. Defaults to the sum of all link capacities
    /// divided by the number of nodes, a scale at which backbone networks
    /// are moderately loaded.
    pub total_demand: Option<f64>,
}

impl GravityModel {
    /// Creates a gravity model with an explicit total demand.
    pub fn with_total(total: f64) -> Self {
        Self {
            total_demand: Some(total),
        }
    }

    /// Generates the gravity matrix for `graph`.
    pub fn generate(&self, graph: &Graph) -> DemandMatrix {
        let n = graph.node_count();
        let mut dm = DemandMatrix::zeros(n);
        if n < 2 {
            return dm;
        }
        let caps: Vec<f64> = graph.nodes().map(|v| graph.total_out_capacity(v)).collect();
        let mut weight_sum = 0.0;
        for s in 0..n {
            for t in 0..n {
                if s != t {
                    weight_sum += caps[s] * caps[t];
                }
            }
        }
        if weight_sum <= 0.0 {
            return dm;
        }
        let total = self.total_demand.unwrap_or_else(|| {
            let cap_sum: f64 = graph.edges().map(|e| graph.capacity(e)).sum();
            cap_sum / n as f64
        });
        for s in 0..n {
            for t in 0..n {
                if s != t {
                    let share = caps[s] * caps[t] / weight_sum;
                    dm.set(
                        coyote_graph::NodeId(s),
                        coyote_graph::NodeId(t),
                        total * share,
                    );
                }
            }
        }
        dm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coyote_graph::NodeId;

    fn asymmetric_graph() -> Graph {
        let mut g = Graph::new();
        let a = g.add_node("a").unwrap();
        let b = g.add_node("b").unwrap();
        let c = g.add_node("c").unwrap();
        g.add_bidirectional_edge(a, b, 10.0, 1.0).unwrap();
        g.add_bidirectional_edge(b, c, 1.0, 1.0).unwrap();
        g
    }

    #[test]
    fn total_matches_requested_volume() {
        let g = asymmetric_graph();
        let dm = GravityModel::with_total(42.0).generate(&g);
        assert!((dm.total() - 42.0).abs() < 1e-9);
    }

    #[test]
    fn demands_are_proportional_to_capacity_products() {
        let g = asymmetric_graph();
        let dm = GravityModel::with_total(1.0).generate(&g);
        // out capacities: a = 10, b = 11, c = 1.
        let dab = dm.get(NodeId(0), NodeId(1));
        let dac = dm.get(NodeId(0), NodeId(2));
        let dbc = dm.get(NodeId(1), NodeId(2));
        assert!((dab / dac - 11.0 / 1.0).abs() < 1e-9);
        assert!((dbc / dac - 11.0 / 10.0).abs() < 1e-9);
        // Symmetric pairs have symmetric demand in the gravity model.
        assert!((dm.get(NodeId(1), NodeId(0)) - dab).abs() < 1e-12);
    }

    #[test]
    fn default_total_is_positive_and_finite() {
        let g = asymmetric_graph();
        let dm = GravityModel::default().generate(&g);
        assert!(dm.total() > 0.0);
        assert!(dm.total().is_finite());
    }

    #[test]
    fn degenerate_graphs_yield_zero_matrices() {
        let g = Graph::with_nodes(1);
        assert!(GravityModel::default().generate(&g).is_zero());
        let g = Graph::with_nodes(3); // no edges -> zero out-capacity
        assert!(GravityModel::default().generate(&g).is_zero());
    }

    #[test]
    fn every_ordered_pair_gets_positive_demand() {
        let g = asymmetric_graph();
        let dm = GravityModel::default().generate(&g);
        assert_eq!(dm.pairs().count(), 6);
    }
}
