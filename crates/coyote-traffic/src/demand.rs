//! Demand matrices: how much traffic each (source, destination) pair wants
//! to send.
//!
//! Section III of the paper: "Given a Demand Matrix (DM)
//! `D = {d_{s1 t1}, …, d_{sk tk}}` specifying the demand between each pair of
//! vertices". Demands are non-negative rates in the same units as link
//! capacities; the performance ratio is invariant to rescaling the whole
//! matrix, which several algorithms exploit.

use coyote_graph::NodeId;
use serde::{Deserialize, Serialize};

/// A dense |V| × |V| demand matrix (diagonal is ignored / kept at zero).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DemandMatrix {
    n: usize,
    /// Row-major demands: `data[s * n + t]`.
    data: Vec<f64>,
}

impl DemandMatrix {
    /// Creates an all-zero demand matrix over `n` nodes.
    pub fn zeros(n: usize) -> Self {
        Self {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Demand from `s` to `t` (zero on the diagonal).
    #[inline]
    pub fn get(&self, s: NodeId, t: NodeId) -> f64 {
        self.data[s.index() * self.n + t.index()]
    }

    /// Sets the demand from `s` to `t`. Self-demands and negative values are
    /// clamped to zero.
    pub fn set(&mut self, s: NodeId, t: NodeId, value: f64) {
        if s == t {
            return;
        }
        self.data[s.index() * self.n + t.index()] = value.max(0.0);
    }

    /// Adds `value` to the demand from `s` to `t`.
    pub fn add(&mut self, s: NodeId, t: NodeId, value: f64) {
        let v = self.get(s, t) + value;
        self.set(s, t, v);
    }

    /// Multiplies every entry by `factor`.
    pub fn scale(&mut self, factor: f64) {
        for v in &mut self.data {
            *v *= factor;
        }
    }

    /// Returns a scaled copy.
    pub fn scaled(&self, factor: f64) -> Self {
        let mut out = self.clone();
        out.scale(factor);
        out
    }

    /// Sum of all demands.
    pub fn total(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Largest single demand.
    pub fn max_entry(&self) -> f64 {
        self.data.iter().copied().fold(0.0, f64::max)
    }

    /// True if every demand is zero.
    pub fn is_zero(&self) -> bool {
        self.data.iter().all(|&v| v == 0.0)
    }

    /// Iterator over the strictly positive (source, destination, demand)
    /// triples, in row-major order (deterministic).
    pub fn pairs(&self) -> impl Iterator<Item = (NodeId, NodeId, f64)> + '_ {
        (0..self.n).flat_map(move |s| {
            (0..self.n).filter_map(move |t| {
                let v = self.data[s * self.n + t];
                if v > 0.0 && s != t {
                    Some((NodeId(s), NodeId(t), v))
                } else {
                    None
                }
            })
        })
    }

    /// All destinations that receive a positive amount of traffic.
    pub fn active_destinations(&self) -> Vec<NodeId> {
        let mut dests: Vec<NodeId> = (0..self.n)
            .filter(|&t| (0..self.n).any(|s| s != t && self.data[s * self.n + t] > 0.0))
            .map(NodeId)
            .collect();
        dests.sort();
        dests
    }

    /// Total traffic destined to `t` from all sources.
    pub fn total_to(&self, t: NodeId) -> f64 {
        (0..self.n)
            .filter(|&s| s != t.index())
            .map(|s| self.data[s * self.n + t.index()])
            .sum()
    }

    /// Entry-wise maximum of two matrices (used to build envelope matrices
    /// for uncertainty sets).
    pub fn entrywise_max(&self, other: &DemandMatrix) -> DemandMatrix {
        assert_eq!(self.n, other.n, "node count mismatch");
        DemandMatrix {
            n: self.n,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| a.max(b))
                .collect(),
        }
    }

    /// Builds a matrix from explicit (source, destination, demand) triples.
    pub fn from_pairs(n: usize, pairs: &[(NodeId, NodeId, f64)]) -> Self {
        let mut dm = Self::zeros(n);
        for &(s, t, d) in pairs {
            dm.add(s, t, d);
        }
        dm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_and_diagonal_is_ignored() {
        let mut dm = DemandMatrix::zeros(3);
        dm.set(NodeId(0), NodeId(1), 2.5);
        dm.set(NodeId(1), NodeId(1), 7.0); // diagonal: ignored
        dm.set(NodeId(2), NodeId(0), -3.0); // negative: clamped
        assert_eq!(dm.get(NodeId(0), NodeId(1)), 2.5);
        assert_eq!(dm.get(NodeId(1), NodeId(1)), 0.0);
        assert_eq!(dm.get(NodeId(2), NodeId(0)), 0.0);
        assert_eq!(dm.total(), 2.5);
        assert_eq!(dm.max_entry(), 2.5);
        assert!(!dm.is_zero());
        assert!(DemandMatrix::zeros(2).is_zero());
    }

    #[test]
    fn scaling_and_totals() {
        let mut dm = DemandMatrix::zeros(3);
        dm.set(NodeId(0), NodeId(2), 1.0);
        dm.set(NodeId(1), NodeId(2), 3.0);
        dm.scale(2.0);
        assert_eq!(dm.total(), 8.0);
        assert_eq!(dm.total_to(NodeId(2)), 8.0);
        assert_eq!(dm.total_to(NodeId(0)), 0.0);
        let dm2 = dm.scaled(0.5);
        assert_eq!(dm2.total(), 4.0);
        assert_eq!(dm.total(), 8.0); // original untouched
    }

    #[test]
    fn pairs_iterates_only_positive_offdiagonal() {
        let mut dm = DemandMatrix::zeros(3);
        dm.set(NodeId(0), NodeId(1), 1.0);
        dm.set(NodeId(2), NodeId(1), 2.0);
        let pairs: Vec<_> = dm.pairs().collect();
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0], (NodeId(0), NodeId(1), 1.0));
        assert_eq!(pairs[1], (NodeId(2), NodeId(1), 2.0));
        assert_eq!(dm.active_destinations(), vec![NodeId(1)]);
    }

    #[test]
    fn from_pairs_accumulates_duplicates() {
        let dm = DemandMatrix::from_pairs(
            3,
            &[
                (NodeId(0), NodeId(1), 1.0),
                (NodeId(0), NodeId(1), 2.0),
                (NodeId(1), NodeId(2), 0.5),
            ],
        );
        assert_eq!(dm.get(NodeId(0), NodeId(1)), 3.0);
        assert_eq!(dm.get(NodeId(1), NodeId(2)), 0.5);
    }

    #[test]
    fn entrywise_max_is_an_envelope() {
        let mut a = DemandMatrix::zeros(2);
        a.set(NodeId(0), NodeId(1), 1.0);
        let mut b = DemandMatrix::zeros(2);
        b.set(NodeId(1), NodeId(0), 2.0);
        let m = a.entrywise_max(&b);
        assert_eq!(m.get(NodeId(0), NodeId(1)), 1.0);
        assert_eq!(m.get(NodeId(1), NodeId(0)), 2.0);
    }

    #[test]
    #[should_panic(expected = "node count mismatch")]
    fn entrywise_max_requires_same_size() {
        let a = DemandMatrix::zeros(2);
        let b = DemandMatrix::zeros(3);
        let _ = a.entrywise_max(&b);
    }
}
