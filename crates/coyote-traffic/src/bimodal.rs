//! The bimodal traffic model.
//!
//! Second base model of the paper's evaluation (Section VI-B), after Medina
//! et al. \[23\]: "a small fraction of all pairs of routers exchange large
//! quantities of traffic, and the other pairs send small flows". Pairs are
//! selected pseudo-randomly from a caller-supplied seed so experiments are
//! reproducible.

use crate::demand::DemandMatrix;
use coyote_graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Bimodal model generator.
#[derive(Debug, Clone)]
pub struct BimodalModel {
    /// Fraction of ordered pairs that are "elephant" pairs (default 0.1).
    pub large_fraction: f64,
    /// Mean demand of an elephant pair, as a multiple of the mean mouse
    /// demand (default 10).
    pub large_to_small_ratio: f64,
    /// Total traffic in the generated matrix (same convention as the gravity
    /// model: `None` means "sum of capacities / n").
    pub total_demand: Option<f64>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BimodalModel {
    fn default() -> Self {
        Self {
            large_fraction: 0.1,
            large_to_small_ratio: 10.0,
            total_demand: None,
            seed: 0xC0707E,
        }
    }
}

impl BimodalModel {
    /// Creates a bimodal model with an explicit seed (other parameters are
    /// the defaults).
    pub fn with_seed(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// Generates the bimodal matrix for `graph`.
    pub fn generate(&self, graph: &Graph) -> DemandMatrix {
        let n = graph.node_count();
        let mut dm = DemandMatrix::zeros(n);
        if n < 2 {
            return dm;
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut raw = vec![0.0; n * n];
        let mut raw_total = 0.0;
        for s in 0..n {
            for t in 0..n {
                if s == t {
                    continue;
                }
                let is_large = rng.gen::<f64>() < self.large_fraction;
                // Uniform jitter around the mode's mean keeps the matrix
                // generic (no exactly-equal demands).
                let jitter = 0.5 + rng.gen::<f64>();
                let base = if is_large {
                    self.large_to_small_ratio
                } else {
                    1.0
                };
                let v = base * jitter;
                raw[s * n + t] = v;
                raw_total += v;
            }
        }
        let total = self.total_demand.unwrap_or_else(|| {
            let cap_sum: f64 = graph.edges().map(|e| graph.capacity(e)).sum();
            cap_sum / n as f64
        });
        if raw_total <= 0.0 {
            return dm;
        }
        for s in 0..n {
            for t in 0..n {
                if s != t {
                    dm.set(NodeId(s), NodeId(t), total * raw[s * n + t] / raw_total);
                }
            }
        }
        dm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize) -> Graph {
        let mut g = Graph::with_nodes(n);
        for i in 0..n {
            g.add_bidirectional_edge(NodeId(i), NodeId((i + 1) % n), 10.0, 1.0)
                .unwrap();
        }
        g
    }

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let g = ring(8);
        let a = BimodalModel::with_seed(7).generate(&g);
        let b = BimodalModel::with_seed(7).generate(&g);
        assert_eq!(a, b);
        let c = BimodalModel::with_seed(8).generate(&g);
        assert_ne!(a, c);
    }

    #[test]
    fn respects_total_demand() {
        let g = ring(6);
        let dm = BimodalModel {
            total_demand: Some(100.0),
            ..BimodalModel::default()
        }
        .generate(&g);
        assert!((dm.total() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn exhibits_two_modes() {
        let g = ring(12);
        let dm = BimodalModel {
            large_fraction: 0.2,
            large_to_small_ratio: 50.0,
            total_demand: Some(1000.0),
            seed: 3,
        }
        .generate(&g);
        let mut values: Vec<f64> = dm.pairs().map(|(_, _, d)| d).collect();
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let small_median = values[values.len() / 4];
        let large_max = values[values.len() - 1];
        // Elephants should dwarf mice by roughly the configured ratio.
        assert!(
            large_max / small_median > 10.0,
            "ratio {} too small",
            large_max / small_median
        );
    }

    #[test]
    fn all_pairs_get_some_traffic() {
        let g = ring(5);
        let dm = BimodalModel::default().generate(&g);
        assert_eq!(dm.pairs().count(), 5 * 4);
    }

    #[test]
    fn single_node_graph_yields_zero_matrix() {
        let g = Graph::with_nodes(1);
        assert!(BimodalModel::default().generate(&g).is_zero());
    }
}
