//! Property tests for span nesting and ordering under the worker pool.
//!
//! Spans carry (start, duration) intervals stamped from each worker's
//! monotonic clock and a per-thread nesting depth. On any single trace
//! lane (= one worker thread of one registry) the intervals of two spans
//! must therefore either be disjoint or properly nested — partial overlap
//! would mean the exporter reconstructs a broken hierarchy in
//! chrome://tracing. These properties must hold for every item/thread
//! configuration, so they are checked under proptest.

use coyote_obs::{install, uninstall, Registry, TraceEvent};
use coyote_runtime::WorkerPool;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};

/// The observability sink is process-global; tests that install a registry
/// must not run concurrently with each other.
static SINK_LOCK: Mutex<()> = Mutex::new(());

fn exclusive() -> MutexGuard<'static, ()> {
    SINK_LOCK
        .lock()
        .unwrap_or_else(|poison| poison.into_inner())
}

/// Opens `depth` nested `prop.nest` spans, innermost last.
fn nest(depth: usize) {
    if depth == 0 {
        std::hint::black_box(0u64);
        return;
    }
    let _span = coyote_obs::span("prop.nest");
    nest(depth - 1);
}

/// Checks that on every lane, span intervals are disjoint or properly
/// nested, and that a span running inside another is recorded deeper.
fn assert_lanes_well_nested(events: &[TraceEvent]) -> Result<(), TestCaseError> {
    let mut by_lane: BTreeMap<u32, Vec<&TraceEvent>> = BTreeMap::new();
    for e in events {
        by_lane.entry(e.lane).or_default().push(e);
    }
    for (lane, mut evs) in by_lane {
        // Outer spans first at equal start times.
        evs.sort_by_key(|e| (e.start_ns, std::cmp::Reverse(e.dur_ns)));
        for i in 0..evs.len() {
            for j in (i + 1)..evs.len() {
                let (a, b) = (evs[i], evs[j]);
                let a_end = a.start_ns + a.dur_ns;
                let b_end = b.start_ns + b.dur_ns;
                let disjoint = b.start_ns >= a_end;
                let contained = b.start_ns >= a.start_ns && b_end <= a_end;
                prop_assert!(
                    disjoint || contained,
                    "partial overlap on lane {lane}: {} [{}, {}) vs {} [{}, {})",
                    a.name,
                    a.start_ns,
                    a_end,
                    b.name,
                    b.start_ns,
                    b_end
                );
                if !disjoint {
                    // b ran strictly inside a on the same thread, so it was
                    // opened while a was open: it must be recorded deeper.
                    prop_assert!(
                        b.depth > a.depth,
                        "lane {lane}: {} (depth {}) inside {} (depth {})",
                        b.name,
                        b.depth,
                        a.name,
                        a.depth
                    );
                }
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn pool_spans_nest_properly_on_every_lane(
        depths in proptest::collection::vec(0usize..4, 1..12),
        threads in 1usize..5,
    ) {
        let _guard = exclusive();
        let registry = Arc::new(Registry::new());
        install(registry.clone());
        let pool = WorkerPool::new(threads);
        let out = pool.par_map(&depths, |d| {
            let _item = coyote_obs::span("prop.item");
            nest(*d);
            *d
        });
        uninstall();
        prop_assert_eq!(&out, &depths);

        let events = registry.trace_events();
        // Every span was recorded exactly once: one prop.item per item and
        // one prop.nest per nesting level, regardless of thread count.
        let items = events.iter().filter(|e| e.name == "prop.item").count();
        prop_assert_eq!(items, depths.len());
        let nests = events.iter().filter(|e| e.name == "prop.nest").count();
        prop_assert_eq!(nests, depths.iter().sum::<usize>());
        assert_lanes_well_nested(&events)?;

        // The deterministic snapshot view is identical no matter how many
        // workers recorded it: counters and value histograms commute.
        let snapshot = registry.snapshot();
        prop_assert_eq!(
            snapshot.counters.get("runtime.pool.items").copied(),
            Some(depths.len() as u64)
        );
    }
}
