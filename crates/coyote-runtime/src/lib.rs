//! # coyote-runtime
//!
//! A tiny, dependency-free parallel runtime for the COYOTE reproduction.
//!
//! The experiment harness (`coyote-bench`) evaluates large scenario grids —
//! 16 topologies × two base demand models × a sweep of uncertainty margins —
//! where every scenario is independent and CPU-bound (LP solves, gradient
//! descent, max-flow). This crate provides the one primitive that workload
//! needs: an **ordered parallel map** over a slice, built on
//! [`std::thread::scope`] so the build stays offline (no `rayon`, no
//! external crates).
//!
//! Guarantees:
//!
//! * **Ordering** — [`WorkerPool::par_map`] returns outputs in the same
//!   order as the inputs, regardless of which worker finished first.
//! * **Determinism** — given a pure function, the output is identical to the
//!   serial `items.iter().map(f).collect()`; thread count only changes
//!   wall-clock time, never results.
//! * **Panic propagation** — a panic inside the mapped function is re-raised
//!   on the caller's thread once all workers have drained (no hangs, no
//!   silently dropped items).
//!
//! ## Example
//!
//! ```
//! use coyote_runtime::WorkerPool;
//!
//! let pool = WorkerPool::new(4);
//! let squares = pool.par_map(&[1, 2, 3, 4, 5], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]);
//!
//! // Fallible work, abort-on-error: the first error (in *input* order)
//! // is returned and remaining items stop being claimed.
//! let parsed: Result<Vec<i32>, _> =
//!     pool.try_par_map(&["1", "2", "3"], |s| s.parse::<i32>());
//! assert_eq!(parsed.unwrap(), vec![1, 2, 3]);
//!
//! // Fallible work, capture-everything: every per-item `Result` is kept,
//! // so isolated failures do not abort the batch.
//! let outcomes = pool.par_map_results(&["1", "x", "3"], |s| s.parse::<i32>());
//! assert_eq!(outcomes.iter().filter(|r| r.is_ok()).count(), 2);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod pool;

pub use pool::{available_threads, par_map, WorkerPool};
