//! The scoped worker pool and its ordered `par_map`.
//!
//! The pool is deliberately minimal: it owns no long-lived threads and no
//! channels. Each `par_map` call spawns scoped workers that pull item
//! indices from a shared atomic counter (work-stealing by index), apply the
//! function, and stash `(index, output)` pairs; after the scope joins, the
//! pairs are sorted by index so the output order always matches the input
//! order. Spawning a handful of OS threads per call is noise next to the
//! seconds-long LP solves each scenario evaluation performs.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads the pool would use for `threads = 0` (auto):
/// the machine's available parallelism, or 1 if that cannot be determined.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A scoped worker pool with a fixed thread budget.
///
/// The pool is `Copy` and holds no resources; it is configuration, not
/// state. See [the crate docs](crate) for the guarantees `par_map` makes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerPool {
    threads: usize,
}

impl WorkerPool {
    /// Creates a pool that uses up to `threads` workers per call.
    ///
    /// `threads = 0` means "auto": use [`available_threads`]. `threads = 1`
    /// is the serial path (no threads are spawned at all).
    pub fn new(threads: usize) -> Self {
        Self {
            threads: if threads == 0 {
                available_threads()
            } else {
                threads
            },
        }
    }

    /// The strictly serial pool (`threads = 1`).
    pub fn serial() -> Self {
        Self { threads: 1 }
    }

    /// The worker budget of this pool.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maps `f` over `items` in parallel, returning outputs in input order.
    ///
    /// Never spawns more workers than there are items; with one worker (or
    /// zero/one items) it degenerates to a plain serial map. If `f` panics
    /// for any item, the panic is propagated to the caller after all
    /// workers finish.
    pub fn par_map<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        let workers = self.threads.min(items.len());
        coyote_obs::counter("runtime.pool.calls", 1);
        if workers <= 1 {
            // The serial fast path evaluates every item, so counting the
            // whole batch up front matches what the parallel path's
            // per-worker claim tallies sum to — keeping `runtime.pool.items`
            // bit-identical across `--threads` values.
            coyote_obs::counter("runtime.pool.items", items.len() as u64);
            return items.iter().map(f).collect();
        }

        let profiling = coyote_obs::enabled();
        let next = AtomicUsize::new(0);
        let collected: Mutex<Vec<(usize, U)>> = Mutex::new(Vec::with_capacity(items.len()));
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let _worker_span = coyote_obs::span("runtime.pool.worker");
                        let worker_start = std::time::Instant::now();
                        let mut busy = std::time::Duration::ZERO;
                        let mut claimed = 0u64;
                        let mut local: Vec<(usize, U)> = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= items.len() {
                                break;
                            }
                            claimed += 1;
                            if profiling {
                                let t0 = std::time::Instant::now();
                                local.push((i, f(&items[i])));
                                busy += t0.elapsed();
                            } else {
                                local.push((i, f(&items[i])));
                            }
                        }
                        if profiling {
                            coyote_obs::counter("runtime.pool.items", claimed);
                            coyote_obs::observe_duration("runtime.pool.worker_busy", busy);
                            coyote_obs::observe_duration(
                                "runtime.pool.worker_idle",
                                worker_start.elapsed().saturating_sub(busy),
                            );
                        }
                        // One lock per worker, not per item.
                        collected
                            .lock()
                            .expect("no worker panics while holding the lock")
                            .append(&mut local);
                    })
                })
                .collect();
            // Join every worker before re-raising, so a panic cannot leave
            // stragglers running; re-raise the original payload (scope's own
            // propagation would replace it with a generic message).
            let mut panic_payload = None;
            for handle in handles {
                if let Err(payload) = handle.join() {
                    panic_payload.get_or_insert(payload);
                }
            }
            if let Some(payload) = panic_payload {
                std::panic::resume_unwind(payload);
            }
        });

        let mut pairs = collected
            .into_inner()
            .expect("no worker panics while holding the lock");
        debug_assert_eq!(pairs.len(), items.len());
        pairs.sort_by_key(|&(i, _)| i);
        pairs.into_iter().map(|(_, u)| u).collect()
    }

    /// Maps a fallible `f` over `items` in parallel, capturing every
    /// per-item `Result` without short-circuiting.
    ///
    /// This is the graceful-degradation counterpart of [`try_par_map`]:
    /// where `try_par_map` stops claiming work at the first error (right
    /// for "any failure aborts the experiment"), `par_map_results`
    /// evaluates **every** item exactly once and returns all outcomes in
    /// input order, so a batch with isolated failures — say a failure grid
    /// with a few partitioned cells — still completes the healthy cells.
    /// Determinism carries over unchanged from [`par_map`]: the same items
    /// yield the same `Vec` regardless of the worker count.
    ///
    /// [`try_par_map`]: WorkerPool::try_par_map
    /// [`par_map`]: WorkerPool::par_map
    pub fn par_map_results<T, U, E, F>(&self, items: &[T], f: F) -> Vec<Result<U, E>>
    where
        T: Sync,
        U: Send,
        E: Send,
        F: Fn(&T) -> Result<U, E> + Sync,
    {
        // `Result<U, E>` is an ordinary `Send` output; the unconditional
        // map already gives exactly-once evaluation, input-order results,
        // and panic propagation. The separate entry point exists so call
        // sites state their cancellation semantics explicitly.
        self.par_map(items, f)
    }

    /// Maps a fallible `f` over `items` in parallel, short-circuiting on
    /// failure.
    ///
    /// On success returns the outputs in input order. On failure, workers
    /// stop claiming new items as soon as any item has failed (items
    /// already in flight still finish), and the error for the **earliest
    /// input index among the evaluated items** is returned. That choice is
    /// deterministic: indices are claimed in increasing order, so by the
    /// time any error at index `j` is observed, every index below `j` has
    /// already been claimed and will complete — the earliest failing index
    /// overall is always among the finished items, exactly as a serial
    /// short-circuiting loop would have reported it.
    pub fn try_par_map<T, U, E, F>(&self, items: &[T], f: F) -> Result<Vec<U>, E>
    where
        T: Sync,
        U: Send,
        E: Send,
        F: Fn(&T) -> Result<U, E> + Sync,
    {
        let workers = self.threads.min(items.len());
        coyote_obs::counter("runtime.pool.calls", 1);
        if workers <= 1 {
            // The serial path short-circuits at the first error. On success
            // every item is evaluated, matching the parallel claim tallies;
            // failed runs abort the experiment, so their counts are never
            // compared.
            coyote_obs::counter("runtime.pool.items", items.len() as u64);
            return items.iter().map(f).collect();
        }

        let profiling = coyote_obs::enabled();
        let next = AtomicUsize::new(0);
        let failed = AtomicBool::new(false);
        let collected: Mutex<Vec<(usize, Result<U, E>)>> =
            Mutex::new(Vec::with_capacity(items.len()));
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let _worker_span = coyote_obs::span("runtime.pool.worker");
                        let worker_start = std::time::Instant::now();
                        let mut busy = std::time::Duration::ZERO;
                        let mut claimed = 0u64;
                        let mut local: Vec<(usize, Result<U, E>)> = Vec::new();
                        while !failed.load(Ordering::Relaxed) {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= items.len() {
                                break;
                            }
                            claimed += 1;
                            let t0 = profiling.then(std::time::Instant::now);
                            let result = f(&items[i]);
                            if let Some(t0) = t0 {
                                busy += t0.elapsed();
                            }
                            if result.is_err() {
                                failed.store(true, Ordering::Relaxed);
                            }
                            local.push((i, result));
                        }
                        if profiling {
                            coyote_obs::counter("runtime.pool.items", claimed);
                            coyote_obs::observe_duration("runtime.pool.worker_busy", busy);
                            coyote_obs::observe_duration(
                                "runtime.pool.worker_idle",
                                worker_start.elapsed().saturating_sub(busy),
                            );
                        }
                        collected
                            .lock()
                            .expect("no worker panics while holding the lock")
                            .append(&mut local);
                    })
                })
                .collect();
            let mut panic_payload = None;
            for handle in handles {
                if let Err(payload) = handle.join() {
                    panic_payload.get_or_insert(payload);
                }
            }
            if let Some(payload) = panic_payload {
                std::panic::resume_unwind(payload);
            }
        });

        let mut pairs = collected
            .into_inner()
            .expect("no worker panics while holding the lock");
        pairs.sort_by_key(|&(i, _)| i);
        // Earliest-index error wins; only a complete, error-free run yields Ok.
        let mut out = Vec::with_capacity(items.len());
        for (_, result) in pairs {
            out.push(result?);
        }
        debug_assert_eq!(out.len(), items.len());
        Ok(out)
    }
}

impl Default for WorkerPool {
    /// The default pool is "auto" (one worker per available core).
    fn default() -> Self {
        Self::new(0)
    }
}

/// Free-function convenience: `WorkerPool::new(threads).par_map(items, f)`.
pub fn par_map<T, U, F>(threads: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    WorkerPool::new(threads).par_map(items, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn preserves_input_order() {
        // Make late items finish first so completion order != input order.
        let items: Vec<u64> = (0..64).collect();
        let out = WorkerPool::new(8).par_map(&items, |&x| {
            std::thread::sleep(std::time::Duration::from_micros(200 * (64 - x)));
            x * 2
        });
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let items: Vec<u32> = Vec::new();
        let out: Vec<u32> = WorkerPool::new(4).par_map(&items, |&x| x + 1);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item_runs_serially() {
        let out = WorkerPool::new(16).par_map(&[41], |&x| x + 1);
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn visits_every_item_exactly_once() {
        let hits = AtomicUsize::new(0);
        let items: Vec<usize> = (0..1000).collect();
        let out = WorkerPool::new(7).par_map(&items, |&x| {
            hits.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1000);
        assert_eq!(out, items);
    }

    #[test]
    fn matches_the_serial_path_bit_for_bit() {
        let items: Vec<f64> = (1..200).map(|i| i as f64 * 0.37).collect();
        let f = |x: &f64| (x.sqrt() + x.sin()) / (1.0 + x.abs());
        let serial: Vec<f64> = items.iter().map(f).collect();
        let parallel = WorkerPool::new(6).par_map(&items, f);
        // Exact bit equality, not approximate: the parallel map runs the
        // same code on the same inputs, only on different threads.
        assert_eq!(serial, parallel);
    }

    #[test]
    #[should_panic(expected = "boom at 7")]
    fn propagates_worker_panics() {
        let items: Vec<usize> = (0..32).collect();
        WorkerPool::new(4).par_map(&items, |&x| {
            if x == 7 {
                panic!("boom at {x}");
            }
            x
        });
    }

    #[test]
    fn zero_threads_means_auto() {
        assert_eq!(WorkerPool::new(0).threads(), available_threads());
        assert!(WorkerPool::default().threads() >= 1);
        assert_eq!(WorkerPool::serial().threads(), 1);
    }

    #[test]
    fn try_par_map_returns_earliest_error_in_input_order() {
        let items: Vec<i32> = (0..50).collect();
        let res: Result<Vec<i32>, String> = WorkerPool::new(8).try_par_map(&items, |&x| {
            if x % 10 == 9 {
                Err(format!("bad {x}"))
            } else {
                Ok(x)
            }
        });
        assert_eq!(res.unwrap_err(), "bad 9");
    }

    #[test]
    fn try_par_map_stops_claiming_work_after_a_failure() {
        let evaluated = AtomicUsize::new(0);
        let items: Vec<usize> = (0..100).collect();
        let res: Result<Vec<usize>, &str> = WorkerPool::new(4).try_par_map(&items, |&x| {
            evaluated.fetch_add(1, Ordering::Relaxed);
            if x == 0 {
                return Err("fails immediately");
            }
            std::thread::sleep(std::time::Duration::from_millis(20));
            Ok(x)
        });
        assert_eq!(res.unwrap_err(), "fails immediately");
        // Item 0 fails before most of the slow items are claimed; without
        // cancellation all 100 items would run. Items already in flight
        // when the failure lands still finish, hence the loose bound.
        assert!(
            evaluated.load(Ordering::Relaxed) < 50,
            "evaluated {} items after an immediate failure",
            evaluated.load(Ordering::Relaxed)
        );
    }

    #[test]
    fn try_par_map_success_preserves_order() {
        let items: Vec<i32> = (0..20).collect();
        let res: Result<Vec<i32>, ()> = WorkerPool::new(4).try_par_map(&items, |&x| Ok(x * 3));
        assert_eq!(
            res.unwrap(),
            items.iter().map(|x| x * 3).collect::<Vec<_>>()
        );
    }

    #[test]
    fn par_map_results_preserves_order_with_mixed_outcomes() {
        let items: Vec<i32> = (0..50).collect();
        let out: Vec<Result<i32, String>> = WorkerPool::new(8).par_map_results(&items, |&x| {
            // Slow down early items so completion order differs from
            // input order, as in the `par_map` ordering test.
            std::thread::sleep(std::time::Duration::from_micros(100 * (50 - x) as u64));
            if x % 10 == 9 {
                Err(format!("bad {x}"))
            } else {
                Ok(x * 2)
            }
        });
        assert_eq!(out.len(), items.len());
        for (i, result) in out.iter().enumerate() {
            if i % 10 == 9 {
                assert_eq!(result.as_ref().unwrap_err(), &format!("bad {i}"));
            } else {
                assert_eq!(result.as_ref().unwrap(), &((i as i32) * 2));
            }
        }
    }

    #[test]
    fn par_map_results_evaluates_every_item_despite_early_failures() {
        // The defining contrast with `try_par_map`: an error at index 0
        // must not stop later items from being claimed and evaluated.
        let evaluated = AtomicUsize::new(0);
        let items: Vec<usize> = (0..200).collect();
        let out: Vec<Result<usize, &str>> = WorkerPool::new(4).par_map_results(&items, |&x| {
            evaluated.fetch_add(1, Ordering::Relaxed);
            if x % 3 == 0 {
                Err("every third item fails")
            } else {
                Ok(x)
            }
        });
        assert_eq!(evaluated.load(Ordering::Relaxed), 200);
        assert_eq!(out.iter().filter(|r| r.is_err()).count(), 67);
        assert_eq!(out.iter().filter(|r| r.is_ok()).count(), 133);
    }

    #[test]
    fn par_map_results_matches_the_serial_path_bit_for_bit() {
        let items: Vec<f64> = (1..150).map(|i| i as f64 * 0.61).collect();
        let f = |x: &f64| -> Result<f64, String> {
            if *x > 60.0 {
                Err(format!("overflow {x}"))
            } else {
                Ok((x.sqrt() + x.cos()) / (1.0 + x.abs()))
            }
        };
        let serial: Vec<Result<f64, String>> = WorkerPool::serial().par_map_results(&items, f);
        let parallel = WorkerPool::new(6).par_map_results(&items, f);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn par_map_results_empty_input_yields_empty_output() {
        let items: Vec<u32> = Vec::new();
        let out: Vec<Result<u32, ()>> = WorkerPool::new(4).par_map_results(&items, |&x| Ok(x));
        assert!(out.is_empty());
    }

    #[test]
    fn free_function_matches_pool() {
        let items = [1, 2, 3];
        assert_eq!(par_map(3, &items, |&x| x + 1), vec![2, 3, 4]);
    }
}
