//! # coyote-gp
//!
//! Geometric-programming (GP) and log-space convex-optimization toolkit.
//!
//! COYOTE's in-DAG traffic-splitting optimization (Section V-C and
//! Appendix C of the paper) cannot be expressed as a linear program because
//! link loads are *products* of splitting ratios along paths. The paper's
//! way out is geometric programming: take logarithms of the splitting
//! variables so that each load constraint becomes a *log-sum-exp of affine
//! functions* (convex), approximate the non-posynomial splitting-sum
//! constraints by monomials ("condensation", the complementary-GP technique
//! of Boyd et al. \[17\]), and iterate.
//!
//! This crate provides, from scratch:
//!
//! * [`monomial::Monomial`] and [`posynomial::Posynomial`] — the GP algebra,
//!   with evaluation both in the original and in the log domain;
//! * [`logspace`] — numerically stable `log-sum-exp`, `softmax` and related
//!   helpers;
//! * [`condense`] — monomial approximation (condensation) of posynomials at
//!   a point, the building block of the iterative complementary-GP loop;
//! * [`solver`] — first-order unconstrained minimizers (gradient descent with
//!   backtracking, Adam) over a user-supplied differentiable objective, plus
//!   a penalty-method wrapper [`solver::GpProblem`] for full GP programs
//!   (posynomial objective + posynomial `<= 1` constraints + monomial
//!   equalities).
//!
//! `coyote-core` uses the solver with a softmax parametrization of splitting
//! ratios (which enforces the per-node "ratios sum to one" constraint
//! exactly) and uses the GP algebra to cross-validate against the analytic
//! optimum of the paper's running example (the inverse golden ratio,
//! Appendix B).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod condense;
pub mod logspace;
pub mod monomial;
pub mod posynomial;
pub mod solver;

pub use monomial::Monomial;
pub use posynomial::Posynomial;
pub use solver::{AdamOptions, GpProblem, Objective, OptResult};
