//! First-order minimizers and a penalty-method GP solver.
//!
//! The COYOTE splitting-ratio optimization needs to minimize a smooth
//! non-linear objective (the log-sum-exp-smoothed worst-case link
//! utilization as a function of log-splitting parameters). The paper uses
//! MOSEK's interior-point method; this reproduction uses a robust
//! first-order scheme — Adam with optional restarts — which reaches the same
//! optima on the problem sizes of the evaluation (verified against analytic
//! solutions and LP lower bounds in `coyote-core`).
//!
//! Two layers are provided:
//!
//! * [`minimize_adam`] / [`minimize_gradient_descent`] over any
//!   [`Objective`] (a function returning value + gradient);
//! * [`GpProblem`]: a posynomial objective with posynomial `≤ 1` constraints
//!   solved in the log domain via an exterior penalty, used for the small
//!   analytic programs and to cross-check the core pipeline.

use crate::logspace::{smooth_max, smooth_max_weights};
use crate::posynomial::Posynomial;

/// A differentiable objective: returns the value at `x` and writes the
/// gradient into `grad` (which is zeroed by the caller).
pub trait Objective {
    /// Evaluates the objective and its gradient at `x`.
    fn eval(&self, x: &[f64], grad: &mut [f64]) -> f64;

    /// Dimension of the decision vector.
    fn dim(&self) -> usize;
}

impl<F> Objective for (usize, F)
where
    F: Fn(&[f64], &mut [f64]) -> f64,
{
    fn eval(&self, x: &[f64], grad: &mut [f64]) -> f64 {
        (self.1)(x, grad)
    }
    fn dim(&self) -> usize {
        self.0
    }
}

/// Options for [`minimize_adam`].
#[derive(Debug, Clone)]
pub struct AdamOptions {
    /// Step size.
    pub learning_rate: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Numerical floor inside the update.
    pub epsilon: f64,
    /// Maximum iterations.
    pub max_iters: usize,
    /// Stop when the infinity norm of the gradient falls below this value.
    pub gradient_tolerance: f64,
    /// Stop when the best objective has not improved by more than
    /// `value_tolerance` over the last `patience` iterations.
    pub value_tolerance: f64,
    /// See `value_tolerance`.
    pub patience: usize,
}

impl Default for AdamOptions {
    fn default() -> Self {
        Self {
            learning_rate: 0.05,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            max_iters: 2_000,
            gradient_tolerance: 1e-7,
            value_tolerance: 1e-9,
            patience: 200,
        }
    }
}

/// Result of an optimization run.
#[derive(Debug, Clone)]
pub struct OptResult {
    /// Best point found.
    pub x: Vec<f64>,
    /// Objective value at [`OptResult::x`].
    pub value: f64,
    /// Number of iterations performed.
    pub iterations: usize,
    /// True if a tolerance-based stopping rule fired (as opposed to running
    /// out of iterations).
    pub converged: bool,
}

/// Minimizes `objective` starting from `x0` with the Adam optimizer.
pub fn minimize_adam(objective: &dyn Objective, x0: &[f64], opts: &AdamOptions) -> OptResult {
    let n = objective.dim();
    assert_eq!(x0.len(), n, "x0 dimension mismatch");
    let mut x = x0.to_vec();
    let mut m = vec![0.0; n];
    let mut v = vec![0.0; n];
    let mut grad = vec![0.0; n];

    let mut best_x = x.clone();
    let mut best_val = f64::INFINITY;
    let mut since_improvement = 0usize;
    let mut converged = false;
    let mut iterations = 0usize;

    for t in 1..=opts.max_iters {
        iterations = t;
        grad.iter_mut().for_each(|g| *g = 0.0);
        let val = objective.eval(&x, &mut grad);
        if val < best_val - opts.value_tolerance {
            best_val = val;
            best_x.copy_from_slice(&x);
            since_improvement = 0;
        } else {
            if val < best_val {
                best_val = val;
                best_x.copy_from_slice(&x);
            }
            since_improvement += 1;
        }

        let gnorm = grad.iter().fold(0.0_f64, |a, &g| a.max(g.abs()));
        if gnorm < opts.gradient_tolerance {
            converged = true;
            break;
        }
        if since_improvement >= opts.patience {
            converged = true;
            break;
        }

        let b1t = 1.0 - opts.beta1.powi(t as i32);
        let b2t = 1.0 - opts.beta2.powi(t as i32);
        for i in 0..n {
            m[i] = opts.beta1 * m[i] + (1.0 - opts.beta1) * grad[i];
            v[i] = opts.beta2 * v[i] + (1.0 - opts.beta2) * grad[i] * grad[i];
            let mh = m[i] / b1t;
            let vh = v[i] / b2t;
            x[i] -= opts.learning_rate * mh / (vh.sqrt() + opts.epsilon);
        }
    }

    coyote_obs::counter("gp.adam.runs", 1);
    coyote_obs::counter("gp.adam.iterations", iterations as u64);

    OptResult {
        x: best_x,
        value: best_val,
        iterations,
        converged,
    }
}

/// Plain gradient descent with backtracking line search (Armijo rule).
/// Slower than Adam on the TE objectives but useful as a deterministic
/// cross-check in tests.
pub fn minimize_gradient_descent(
    objective: &dyn Objective,
    x0: &[f64],
    max_iters: usize,
    tolerance: f64,
) -> OptResult {
    let n = objective.dim();
    let mut x = x0.to_vec();
    let mut grad = vec![0.0; n];
    let mut converged = false;
    let mut iterations = 0usize;
    let mut value = {
        grad.iter_mut().for_each(|g| *g = 0.0);
        objective.eval(&x, &mut grad)
    };

    for it in 1..=max_iters {
        iterations = it;
        let gnorm2: f64 = grad.iter().map(|g| g * g).sum();
        if gnorm2.sqrt() < tolerance {
            converged = true;
            break;
        }
        // Backtracking line search.
        let mut step = 1.0;
        let mut improved = false;
        for _ in 0..40 {
            let cand: Vec<f64> = x
                .iter()
                .zip(&grad)
                .map(|(&xi, &gi)| xi - step * gi)
                .collect();
            let mut cand_grad = vec![0.0; n];
            let cand_val = objective.eval(&cand, &mut cand_grad);
            if cand_val <= value - 1e-4 * step * gnorm2 {
                x = cand;
                value = cand_val;
                grad = cand_grad;
                improved = true;
                break;
            }
            step *= 0.5;
        }
        if !improved {
            converged = true;
            break;
        }
    }

    OptResult {
        x,
        value,
        iterations,
        converged,
    }
}

/// A geometric program in standard form:
///
/// ```text
/// minimize    f0(x)
/// subject to  f_i(x) <= 1     (posynomials)
/// ```
///
/// solved in the log domain with an exterior quadratic penalty on the
/// constraints and Adam as the inner minimizer. The penalty weight is
/// increased geometrically until all constraints are satisfied to tolerance.
#[derive(Debug, Clone)]
pub struct GpProblem {
    /// Number of variables.
    pub num_vars: usize,
    /// Posynomial objective.
    pub objective: Posynomial,
    /// Posynomial constraints, each interpreted as `p(x) <= 1`.
    pub constraints: Vec<Posynomial>,
}

impl GpProblem {
    /// Creates a GP with the given number of variables and objective.
    pub fn new(num_vars: usize, objective: Posynomial) -> Self {
        Self {
            num_vars,
            objective,
            constraints: Vec::new(),
        }
    }

    /// Adds a `p(x) <= 1` constraint.
    pub fn add_constraint_le_one(&mut self, p: Posynomial) {
        self.constraints.push(p);
    }

    /// Solves the GP starting from the all-ones point (log-domain origin)
    /// unless `x0` is provided. Returns the solution in the *original*
    /// domain (strictly positive values).
    pub fn solve(&self, x0: Option<&[f64]>) -> OptResult {
        let n = self.num_vars;
        let y0: Vec<f64> = match x0 {
            Some(x) => x.iter().map(|&v| v.max(1e-12).ln()).collect(),
            None => vec![0.0; n],
        };

        let mut y = y0;
        let mut penalty = 10.0;
        let mut result_value = f64::INFINITY;
        // Penalty loop: each round minimizes objective + penalty * violations².
        for _round in 0..12 {
            let objective = self.objective.clone();
            let constraints = self.constraints.clone();
            let pen = penalty;
            let obj_fn = (n, move |yv: &[f64], grad: &mut [f64]| -> f64 {
                // Objective in the log domain: log f0 is convex; minimizing
                // f0 is equivalent to minimizing log f0.
                let mut value = objective.eval_log(yv);
                objective.accumulate_log_gradient(yv, 1.0, grad);
                for c in &constraints {
                    let g = c.eval_log(yv); // log p(x); feasible iff <= 0
                    if g > 0.0 {
                        value += pen * g * g;
                        c.accumulate_log_gradient(yv, 2.0 * pen * g, grad);
                    }
                }
                value
            });
            let opts = AdamOptions {
                max_iters: 4_000,
                learning_rate: 0.03,
                ..AdamOptions::default()
            };
            let res = minimize_adam(&obj_fn, &y, &opts);
            // Polish with line-search gradient descent: the penalized
            // objective is smooth, so the Armijo search closes the last gap
            // that a fixed-step method leaves open.
            let polished = minimize_gradient_descent(&obj_fn, &res.x, 500, 1e-10);
            y = if polished.value <= res.value {
                polished.x.clone()
            } else {
                res.x.clone()
            };
            result_value = polished.value.min(res.value);

            let worst_violation = self
                .constraints
                .iter()
                .map(|c| c.eval_log(&y))
                .fold(0.0_f64, f64::max);
            if worst_violation <= 1e-6 {
                break;
            }
            penalty *= 10.0;
        }

        OptResult {
            value: self.objective.eval_log(&y).exp(),
            x: y.iter().map(|&v| v.exp()).collect(),
            iterations: 0,
            converged: result_value.is_finite(),
        }
    }
}

/// Minimizes the (smoothed) maximum of several differentiable quantities.
///
/// `values_and_jacobian(x, values, jac)` must fill `values` (length `k`) and
/// the dense Jacobian `jac[k][n]`. The helper smooths the max with
/// temperature `tau` and minimizes with Adam; it is used by `coyote-core` to
/// minimize the worst-case link utilization over edges and demand matrices.
pub fn minimize_smooth_max<F>(
    n: usize,
    k: usize,
    values_and_jacobian: F,
    x0: &[f64],
    tau: f64,
    opts: &AdamOptions,
) -> OptResult
where
    F: Fn(&[f64], &mut [f64], &mut [Vec<f64>]),
{
    let obj = (n, move |x: &[f64], grad: &mut [f64]| -> f64 {
        let mut values = vec![0.0; k];
        let mut jac = vec![vec![0.0; n]; k];
        values_and_jacobian(x, &mut values, &mut jac);
        let weights = smooth_max_weights(&values, tau);
        for (w, row) in weights.iter().zip(&jac) {
            for i in 0..n {
                grad[i] += w * row[i];
            }
        }
        smooth_max(&values, tau)
    });
    minimize_adam(&obj, x0, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monomial::Monomial;

    #[test]
    fn adam_minimizes_a_quadratic() {
        // f(x) = (x0 - 3)^2 + 2 (x1 + 1)^2
        let obj = (2usize, |x: &[f64], g: &mut [f64]| -> f64 {
            g[0] += 2.0 * (x[0] - 3.0);
            g[1] += 4.0 * (x[1] + 1.0);
            (x[0] - 3.0).powi(2) + 2.0 * (x[1] + 1.0).powi(2)
        });
        let res = minimize_adam(
            &obj,
            &[0.0, 0.0],
            &AdamOptions {
                max_iters: 20_000,
                learning_rate: 0.05,
                ..Default::default()
            },
        );
        assert!(res.value < 1e-6, "value = {}", res.value);
        assert!((res.x[0] - 3.0).abs() < 1e-2);
        assert!((res.x[1] + 1.0).abs() < 1e-2);
    }

    #[test]
    fn gradient_descent_minimizes_a_quadratic() {
        let obj = (1usize, |x: &[f64], g: &mut [f64]| -> f64 {
            g[0] += 2.0 * (x[0] - 5.0);
            (x[0] - 5.0).powi(2)
        });
        let res = minimize_gradient_descent(&obj, &[0.0], 500, 1e-10);
        assert!((res.x[0] - 5.0).abs() < 1e-4);
        assert!(res.converged);
    }

    #[test]
    fn adam_respects_iteration_limit() {
        let obj = (1usize, |x: &[f64], g: &mut [f64]| -> f64 {
            g[0] += 1.0; // constant slope: never converges
            x[0]
        });
        let res = minimize_adam(
            &obj,
            &[0.0],
            &AdamOptions {
                max_iters: 50,
                patience: 1_000,
                ..Default::default()
            },
        );
        assert_eq!(res.iterations, 50);
    }

    #[test]
    fn gp_problem_solves_a_classic_example() {
        // minimize 1/(x*y) subject to x + y <= 1  -> x = y = 1/2, obj = 4.
        let objective = Posynomial::from_monomial(Monomial::new(1.0, vec![(0, -1.0), (1, -1.0)]));
        let mut gp = GpProblem::new(2, objective);
        gp.add_constraint_le_one(Posynomial::new(vec![Monomial::var(0), Monomial::var(1)]));
        let res = gp.solve(Some(&[0.2, 0.2]));
        assert!((res.value - 4.0).abs() < 0.05, "value = {}", res.value);
        assert!((res.x[0] - 0.5).abs() < 0.02);
        assert!((res.x[1] - 0.5).abs() < 0.02);
    }

    #[test]
    fn gp_problem_with_asymmetric_constraint() {
        // minimize 1/x subject to 2x <= 1 -> x = 1/2, objective 2.
        let objective = Posynomial::from_monomial(Monomial::new(1.0, vec![(0, -1.0)]));
        let mut gp = GpProblem::new(1, objective);
        gp.add_constraint_le_one(Posynomial::from_monomial(Monomial::new(
            2.0,
            vec![(0, 1.0)],
        )));
        let res = gp.solve(None);
        assert!((res.x[0] - 0.5).abs() < 0.02, "x = {}", res.x[0]);
        assert!((res.value - 2.0).abs() < 0.05);
    }

    #[test]
    fn smooth_max_minimizer_balances_two_terms() {
        // minimize max(x, 1 - x): optimum at x = 0.5 with value 0.5.
        let res = minimize_smooth_max(
            1,
            2,
            |x, values, jac| {
                values[0] = x[0];
                values[1] = 1.0 - x[0];
                jac[0][0] = 1.0;
                jac[1][0] = -1.0;
            },
            &[0.0],
            1e-3,
            &AdamOptions {
                max_iters: 5_000,
                learning_rate: 0.02,
                ..Default::default()
            },
        );
        assert!((res.x[0] - 0.5).abs() < 1e-2, "x = {}", res.x[0]);
        assert!((res.value - 0.5).abs() < 1e-2);
    }

    #[test]
    fn objective_trait_dim_mismatch_panics() {
        let obj = (2usize, |_x: &[f64], _g: &mut [f64]| 0.0);
        let result = std::panic::catch_unwind(|| {
            minimize_adam(&obj, &[0.0], &AdamOptions::default());
        });
        assert!(result.is_err());
    }
}
