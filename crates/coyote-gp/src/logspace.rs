//! Numerically stable log-space primitives.

/// Stable `log(Σ exp(x_i))`.
///
/// Returns `f64::NEG_INFINITY` for an empty slice (the sum of zero terms).
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NEG_INFINITY;
    }
    let m = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if m == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    let sum: f64 = xs.iter().map(|&x| (x - m).exp()).sum();
    m + sum.ln()
}

/// Stable softmax: `out[i] = exp(x_i) / Σ_j exp(x_j)`.
///
/// The result sums to 1 (up to floating point) for non-empty input.
pub fn softmax(xs: &[f64]) -> Vec<f64> {
    if xs.is_empty() {
        return Vec::new();
    }
    let m = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = xs.iter().map(|&x| (x - m).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// Smoothed maximum: `smooth_max(xs, τ) = τ · log Σ exp(x_i / τ)`.
///
/// As `τ → 0` this converges to `max(xs)` from above; it is used to smooth
/// the max-link-utilization objective so that gradient methods apply.
pub fn smooth_max(xs: &[f64], tau: f64) -> f64 {
    assert!(tau > 0.0, "smoothing temperature must be positive");
    let scaled: Vec<f64> = xs.iter().map(|&x| x / tau).collect();
    tau * log_sum_exp(&scaled)
}

/// Gradient weights of [`smooth_max`] with respect to each input:
/// `∂ smooth_max / ∂ x_i = softmax(x / τ)_i`.
pub fn smooth_max_weights(xs: &[f64], tau: f64) -> Vec<f64> {
    assert!(tau > 0.0, "smoothing temperature must be positive");
    let scaled: Vec<f64> = xs.iter().map(|&x| x / tau).collect();
    softmax(&scaled)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_sum_exp_matches_naive_on_small_values() {
        let xs: [f64; 3] = [0.0, 1.0, -2.0];
        let naive = (xs.iter().map(|x| x.exp()).sum::<f64>()).ln();
        assert!((log_sum_exp(&xs) - naive).abs() < 1e-12);
    }

    #[test]
    fn log_sum_exp_is_stable_for_large_values() {
        let xs = [1000.0, 1000.0];
        // naive would overflow; stable version gives 1000 + ln 2.
        assert!((log_sum_exp(&xs) - (1000.0 + 2f64.ln())).abs() < 1e-9);
        let xs = [-1000.0, -1000.0];
        assert!((log_sum_exp(&xs) - (-1000.0 + 2f64.ln())).abs() < 1e-9);
    }

    #[test]
    fn log_sum_exp_of_empty_is_neg_infinity() {
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
    }

    #[test]
    fn softmax_sums_to_one_and_orders_correctly() {
        let s = softmax(&[1.0, 2.0, 3.0]);
        let sum: f64 = s.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(s[2] > s[1] && s[1] > s[0]);
        assert!(softmax(&[]).is_empty());
    }

    #[test]
    fn softmax_handles_extreme_inputs() {
        let s = softmax(&[-1e6, 0.0, 1e6]);
        assert!(s.iter().all(|v| v.is_finite()));
        assert!((s[2] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn smooth_max_upper_bounds_max_and_converges() {
        let xs = [0.3, 0.9, 0.7];
        let m = 0.9;
        for &tau in &[1.0, 0.1, 0.01, 0.001] {
            let sm = smooth_max(&xs, tau);
            assert!(sm >= m - 1e-12);
        }
        assert!((smooth_max(&xs, 1e-4) - m).abs() < 1e-3);
    }

    #[test]
    fn smooth_max_weights_are_a_distribution_peaked_at_the_max() {
        let xs = [0.3, 0.9, 0.7];
        let w = smooth_max_weights(&xs, 0.01);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(w[1] > 0.99);
    }

    #[test]
    #[should_panic(expected = "temperature must be positive")]
    fn smooth_max_rejects_non_positive_tau() {
        let _ = smooth_max(&[1.0], 0.0);
    }
}
