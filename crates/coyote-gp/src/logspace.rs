//! Numerically stable log-space primitives.

/// Stable `log(Σ exp(x_i))`.
///
/// Returns `f64::NEG_INFINITY` for an empty slice (the sum of zero terms).
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NEG_INFINITY;
    }
    let m = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if m == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    let sum: f64 = xs.iter().map(|&x| (x - m).exp()).sum();
    m + sum.ln()
}

/// Stable softmax: `out[i] = exp(x_i) / Σ_j exp(x_j)`.
///
/// The result sums to 1 (up to floating point) for non-empty input.
pub fn softmax(xs: &[f64]) -> Vec<f64> {
    if xs.is_empty() {
        return Vec::new();
    }
    let m = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = xs.iter().map(|&x| (x - m).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// [`softmax`] into a reusable buffer (cleared first). Bit-identical to
/// [`softmax`]: same shift by the maximum, same sequential sum.
pub fn softmax_into(xs: &[f64], out: &mut Vec<f64>) {
    out.clear();
    if xs.is_empty() {
        return;
    }
    let m = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    out.reserve(xs.len());
    for &x in xs {
        out.push((x - m).exp());
    }
    let sum: f64 = out.iter().sum();
    for e in out.iter_mut() {
        *e /= sum;
    }
}

/// Smoothed maximum: `smooth_max(xs, τ) = τ · log Σ exp(x_i / τ)`.
///
/// As `τ → 0` this converges to `max(xs)` from above; it is used to smooth
/// the max-link-utilization objective so that gradient methods apply.
pub fn smooth_max(xs: &[f64], tau: f64) -> f64 {
    assert!(tau > 0.0, "smoothing temperature must be positive");
    let scaled: Vec<f64> = xs.iter().map(|&x| x / tau).collect();
    tau * log_sum_exp(&scaled)
}

/// Gradient weights of [`smooth_max`] with respect to each input:
/// `∂ smooth_max / ∂ x_i = softmax(x / τ)_i`.
pub fn smooth_max_weights(xs: &[f64], tau: f64) -> Vec<f64> {
    assert!(tau > 0.0, "smoothing temperature must be positive");
    let scaled: Vec<f64> = xs.iter().map(|&x| x / tau).collect();
    softmax(&scaled)
}

/// Fused [`smooth_max`] + [`smooth_max_weights`]: returns the smoothed
/// maximum and writes the gradient weights into `weights` (cleared first,
/// capacity reused). Bit-identical to calling the two functions separately
/// — the scaled values, exponentials and their sequential sum are computed
/// in the same order — but with a single pass and no temporary allocations,
/// which matters in the splitting optimizer's inner loop where `xs` is the
/// full (matrix × edge) utilization vector evaluated thousands of times.
pub fn smooth_max_and_weights_into(xs: &[f64], tau: f64, weights: &mut Vec<f64>) -> f64 {
    assert!(tau > 0.0, "smoothing temperature must be positive");
    weights.clear();
    if xs.is_empty() {
        return f64::NEG_INFINITY;
    }
    let m = xs
        .iter()
        .map(|&x| x / tau)
        .fold(f64::NEG_INFINITY, f64::max);
    if m == f64::NEG_INFINITY {
        // Matches softmax on an all-(-∞) input (NaN weights) and
        // log_sum_exp's -∞ guard for the value.
        weights.extend(xs.iter().map(|_| f64::NAN));
        return f64::NEG_INFINITY;
    }
    weights.reserve(xs.len());
    let mut sum = 0.0;
    for &x in xs {
        let e = (x / tau - m).exp();
        weights.push(e);
        sum += e;
    }
    for w in weights.iter_mut() {
        *w /= sum;
    }
    tau * (m + sum.ln())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_sum_exp_matches_naive_on_small_values() {
        let xs: [f64; 3] = [0.0, 1.0, -2.0];
        let naive = (xs.iter().map(|x| x.exp()).sum::<f64>()).ln();
        assert!((log_sum_exp(&xs) - naive).abs() < 1e-12);
    }

    #[test]
    fn log_sum_exp_is_stable_for_large_values() {
        let xs = [1000.0, 1000.0];
        // naive would overflow; stable version gives 1000 + ln 2.
        assert!((log_sum_exp(&xs) - (1000.0 + 2f64.ln())).abs() < 1e-9);
        let xs = [-1000.0, -1000.0];
        assert!((log_sum_exp(&xs) - (-1000.0 + 2f64.ln())).abs() < 1e-9);
    }

    #[test]
    fn log_sum_exp_of_empty_is_neg_infinity() {
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
    }

    #[test]
    fn softmax_sums_to_one_and_orders_correctly() {
        let s = softmax(&[1.0, 2.0, 3.0]);
        let sum: f64 = s.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(s[2] > s[1] && s[1] > s[0]);
        assert!(softmax(&[]).is_empty());
    }

    #[test]
    fn softmax_handles_extreme_inputs() {
        let s = softmax(&[-1e6, 0.0, 1e6]);
        assert!(s.iter().all(|v| v.is_finite()));
        assert!((s[2] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn smooth_max_upper_bounds_max_and_converges() {
        let xs = [0.3, 0.9, 0.7];
        let m = 0.9;
        for &tau in &[1.0, 0.1, 0.01, 0.001] {
            let sm = smooth_max(&xs, tau);
            assert!(sm >= m - 1e-12);
        }
        assert!((smooth_max(&xs, 1e-4) - m).abs() < 1e-3);
    }

    #[test]
    fn smooth_max_weights_are_a_distribution_peaked_at_the_max() {
        let xs = [0.3, 0.9, 0.7];
        let w = smooth_max_weights(&xs, 0.01);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(w[1] > 0.99);
    }

    #[test]
    #[should_panic(expected = "temperature must be positive")]
    fn smooth_max_rejects_non_positive_tau() {
        let _ = smooth_max(&[1.0], 0.0);
    }

    #[test]
    fn fused_smooth_max_is_bit_identical_to_separate_calls() {
        let xs = [0.31, 0.94, 0.72, 0.11, 0.94];
        let mut weights = vec![999.0; 2]; // stale contents must be cleared
        for &tau in &[1.0, 0.05, 1e-4] {
            let fused = smooth_max_and_weights_into(&xs, tau, &mut weights);
            assert_eq!(fused, smooth_max(&xs, tau));
            assert_eq!(weights, smooth_max_weights(&xs, tau));
        }
        assert_eq!(
            smooth_max_and_weights_into(&[], 1.0, &mut weights),
            f64::NEG_INFINITY
        );
        assert!(weights.is_empty());
    }
}
