//! Monomials: `c · x_1^{a_1} · x_2^{a_2} · …` with `c > 0`.
//!
//! In the log domain (`y_i = log x_i`) a monomial is the exponential of an
//! affine function: `log m(x) = log c + Σ a_i y_i`, which is what makes
//! geometric programs convex after the change of variables.

/// A monomial over variables indexed `0..n`: a positive coefficient times a
/// product of variables raised to real exponents.
#[derive(Debug, Clone, PartialEq)]
pub struct Monomial {
    /// Positive multiplicative coefficient.
    pub coeff: f64,
    /// Sparse exponent list `(variable index, exponent)`; variables not
    /// listed have exponent 0.
    pub exponents: Vec<(usize, f64)>,
}

impl Monomial {
    /// Creates a monomial; panics if the coefficient is not strictly
    /// positive (a requirement of GP).
    pub fn new(coeff: f64, exponents: Vec<(usize, f64)>) -> Self {
        assert!(
            coeff > 0.0 && coeff.is_finite(),
            "monomial coefficient must be positive and finite, got {coeff}"
        );
        let mut m = Self { coeff, exponents };
        m.normalize();
        m
    }

    /// The constant monomial `c`.
    pub fn constant(coeff: f64) -> Self {
        Self::new(coeff, Vec::new())
    }

    /// A single variable `x_i`.
    pub fn var(index: usize) -> Self {
        Self::new(1.0, vec![(index, 1.0)])
    }

    fn normalize(&mut self) {
        // Merge duplicate variables and drop zero exponents for canonical
        // comparisons.
        self.exponents.sort_by_key(|&(i, _)| i);
        let mut merged: Vec<(usize, f64)> = Vec::with_capacity(self.exponents.len());
        for &(i, a) in &self.exponents {
            match merged.last_mut() {
                Some((j, b)) if *j == i => *b += a,
                _ => merged.push((i, a)),
            }
        }
        merged.retain(|&(_, a)| a != 0.0);
        self.exponents = merged;
    }

    /// Evaluates the monomial at a strictly positive point.
    pub fn eval(&self, x: &[f64]) -> f64 {
        let mut v = self.coeff;
        for &(i, a) in &self.exponents {
            v *= x[i].powf(a);
        }
        v
    }

    /// Evaluates `log m` at a point given in the log domain (`y_i = log x_i`).
    pub fn eval_log(&self, y: &[f64]) -> f64 {
        let mut v = self.coeff.ln();
        for &(i, a) in &self.exponents {
            v += a * y[i];
        }
        v
    }

    /// Gradient of `log m` with respect to the log-domain variables: the
    /// exponent of each variable (constant in `y`). Accumulates `scale * a_i`
    /// into `grad`.
    pub fn accumulate_log_gradient(&self, scale: f64, grad: &mut [f64]) {
        for &(i, a) in &self.exponents {
            grad[i] += scale * a;
        }
    }

    /// Product of two monomials.
    pub fn mul(&self, other: &Monomial) -> Monomial {
        let mut exps = self.exponents.clone();
        exps.extend_from_slice(&other.exponents);
        Monomial::new(self.coeff * other.coeff, exps)
    }

    /// Raises the monomial to a real power.
    pub fn pow(&self, p: f64) -> Monomial {
        Monomial::new(
            self.coeff.powf(p),
            self.exponents.iter().map(|&(i, a)| (i, a * p)).collect(),
        )
    }

    /// Largest variable index referenced, if any.
    pub fn max_var(&self) -> Option<usize> {
        self.exponents.iter().map(|&(i, _)| i).max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluation_in_both_domains_agrees() {
        // 2 * x0^2 * x1^-1
        let m = Monomial::new(2.0, vec![(0, 2.0), (1, -1.0)]);
        let x = [3.0, 4.0];
        let direct = m.eval(&x);
        assert!((direct - 2.0 * 9.0 / 4.0).abs() < 1e-12);
        let y = [x[0].ln(), x[1].ln()];
        assert!((m.eval_log(&y) - direct.ln()).abs() < 1e-12);
    }

    #[test]
    fn normalization_merges_duplicates_and_drops_zeros() {
        let m = Monomial::new(1.0, vec![(2, 1.0), (0, 0.5), (2, 1.0), (1, 0.0)]);
        assert_eq!(m.exponents, vec![(0, 0.5), (2, 2.0)]);
        assert_eq!(m.max_var(), Some(2));
        assert_eq!(Monomial::constant(3.0).max_var(), None);
    }

    #[test]
    fn product_and_power() {
        let a = Monomial::new(2.0, vec![(0, 1.0)]);
        let b = Monomial::new(3.0, vec![(0, 1.0), (1, 2.0)]);
        let p = a.mul(&b);
        assert_eq!(p.coeff, 6.0);
        assert_eq!(p.exponents, vec![(0, 2.0), (1, 2.0)]);
        let q = a.pow(2.0);
        assert_eq!(q.coeff, 4.0);
        assert_eq!(q.exponents, vec![(0, 2.0)]);
        let x = [2.0, 5.0];
        assert!((p.eval(&x) - a.eval(&x) * b.eval(&x)).abs() < 1e-12);
    }

    #[test]
    fn log_gradient_is_the_exponent_vector() {
        let m = Monomial::new(5.0, vec![(0, 2.0), (3, -1.5)]);
        let mut grad = vec![0.0; 4];
        m.accumulate_log_gradient(2.0, &mut grad);
        assert_eq!(grad, vec![4.0, 0.0, 0.0, -3.0]);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_non_positive_coefficients() {
        let _ = Monomial::new(0.0, vec![]);
    }

    #[test]
    fn var_constructor() {
        let m = Monomial::var(3);
        assert_eq!(m.eval(&[0.0, 0.0, 0.0, 7.0]), 7.0);
    }
}
