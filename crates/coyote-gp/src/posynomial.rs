//! Posynomials: sums of monomials (all coefficients positive).
//!
//! After the log change of variables a posynomial constraint `p(x) ≤ 1`
//! becomes `log Σ exp(affine_i(y)) ≤ 0`, a convex constraint — the key fact
//! behind the paper's geometric-programming formulation of in-DAG traffic
//! splitting (Appendix C).

use crate::logspace::log_sum_exp;
use crate::monomial::Monomial;

/// A posynomial: `Σ_k c_k Π_i x_i^{a_{ik}}` with every `c_k > 0`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Posynomial {
    /// The monomial terms of the sum.
    pub terms: Vec<Monomial>,
}

impl Posynomial {
    /// The zero posynomial (no terms). Note `eval` of an empty posynomial is
    /// 0, which is only a valid GP expression as a degenerate case.
    pub fn zero() -> Self {
        Self { terms: Vec::new() }
    }

    /// A posynomial with a single term.
    pub fn from_monomial(m: Monomial) -> Self {
        Self { terms: vec![m] }
    }

    /// Builds a posynomial from a list of terms.
    pub fn new(terms: Vec<Monomial>) -> Self {
        Self { terms }
    }

    /// Adds a term.
    pub fn push(&mut self, m: Monomial) {
        self.terms.push(m);
    }

    /// Sum of two posynomials.
    pub fn add(&self, other: &Posynomial) -> Posynomial {
        let mut terms = self.terms.clone();
        terms.extend(other.terms.iter().cloned());
        Posynomial { terms }
    }

    /// Product with a monomial (remains a posynomial).
    pub fn mul_monomial(&self, m: &Monomial) -> Posynomial {
        Posynomial {
            terms: self.terms.iter().map(|t| t.mul(m)).collect(),
        }
    }

    /// Scales every coefficient by a positive factor.
    pub fn scale(&self, factor: f64) -> Posynomial {
        assert!(factor > 0.0, "scale factor must be positive");
        Posynomial {
            terms: self
                .terms
                .iter()
                .map(|t| Monomial::new(t.coeff * factor, t.exponents.clone()))
                .collect(),
        }
    }

    /// Evaluates the posynomial at a strictly positive point.
    pub fn eval(&self, x: &[f64]) -> f64 {
        self.terms.iter().map(|t| t.eval(x)).sum()
    }

    /// Evaluates `log p` at a log-domain point (`y_i = log x_i`) using the
    /// stable log-sum-exp.
    pub fn eval_log(&self, y: &[f64]) -> f64 {
        let logs: Vec<f64> = self.terms.iter().map(|t| t.eval_log(y)).collect();
        log_sum_exp(&logs)
    }

    /// Gradient of `log p(e^y)` with respect to `y`, accumulated into `grad`
    /// scaled by `scale`. The gradient is the convex combination of the
    /// terms' exponent vectors weighted by each term's share of the sum.
    pub fn accumulate_log_gradient(&self, y: &[f64], scale: f64, grad: &mut [f64]) {
        if self.terms.is_empty() {
            return;
        }
        let logs: Vec<f64> = self.terms.iter().map(|t| t.eval_log(y)).collect();
        let total = log_sum_exp(&logs);
        for (t, &lg) in self.terms.iter().zip(&logs) {
            let weight = (lg - total).exp();
            t.accumulate_log_gradient(scale * weight, grad);
        }
    }

    /// Number of terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True if there are no terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Largest variable index referenced by any term.
    pub fn max_var(&self) -> Option<usize> {
        self.terms.iter().filter_map(|t| t.max_var()).max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Posynomial {
        // p(x) = 2 x0 + 3 x0 x1^2 + 0.5 / x1
        Posynomial::new(vec![
            Monomial::new(2.0, vec![(0, 1.0)]),
            Monomial::new(3.0, vec![(0, 1.0), (1, 2.0)]),
            Monomial::new(0.5, vec![(1, -1.0)]),
        ])
    }

    #[test]
    fn eval_in_both_domains_agrees() {
        let p = sample();
        let x = [1.5, 0.7];
        let direct = p.eval(&x);
        let expected = 2.0 * 1.5 + 3.0 * 1.5 * 0.49 + 0.5 / 0.7;
        assert!((direct - expected).abs() < 1e-12);
        let y = [x[0].ln(), x[1].ln()];
        assert!((p.eval_log(&y) - direct.ln()).abs() < 1e-12);
    }

    #[test]
    fn algebra_add_mul_scale() {
        let p = sample();
        let q = Posynomial::from_monomial(Monomial::constant(1.0));
        let x = [2.0, 3.0];
        assert!((p.add(&q).eval(&x) - (p.eval(&x) + 1.0)).abs() < 1e-12);
        let m = Monomial::new(2.0, vec![(1, 1.0)]);
        assert!((p.mul_monomial(&m).eval(&x) - p.eval(&x) * m.eval(&x)).abs() < 1e-9);
        assert!((p.scale(3.0).eval(&x) - 3.0 * p.eval(&x)).abs() < 1e-9);
    }

    #[test]
    fn log_gradient_matches_finite_differences() {
        let p = sample();
        let y = [0.3_f64, -0.2];
        let mut grad = vec![0.0; 2];
        p.accumulate_log_gradient(&y, 1.0, &mut grad);
        let h = 1e-6;
        for i in 0..2 {
            let mut yp = y;
            yp[i] += h;
            let mut ym = y;
            ym[i] -= h;
            let fd = (p.eval_log(&yp) - p.eval_log(&ym)) / (2.0 * h);
            assert!(
                (grad[i] - fd).abs() < 1e-5,
                "grad[{i}] = {} vs fd {fd}",
                grad[i]
            );
        }
    }

    #[test]
    fn empty_posynomial_behaves_like_zero() {
        let p = Posynomial::zero();
        assert!(p.is_empty());
        assert_eq!(p.eval(&[1.0]), 0.0);
        assert_eq!(p.eval_log(&[0.0]), f64::NEG_INFINITY);
        let mut grad = vec![0.0; 1];
        p.accumulate_log_gradient(&[0.0], 1.0, &mut grad);
        assert_eq!(grad, vec![0.0]);
        assert_eq!(p.max_var(), None);
    }

    #[test]
    fn max_var_spans_all_terms() {
        assert_eq!(sample().max_var(), Some(1));
        let p = Posynomial::new(vec![Monomial::var(5), Monomial::constant(1.0)]);
        assert_eq!(p.max_var(), Some(5));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn scale_rejects_non_positive_factors() {
        let _ = sample().scale(0.0);
    }
}
