//! Monomial condensation (the complementary-GP approximation step).
//!
//! COYOTE's splitting-ratio program contains constraints of the form
//! `Σ_e φ_t(v, e) ≥ 1` which are *not* posynomial upper bounds and therefore
//! not directly GP-compatible. Appendix C of the paper follows the standard
//! complementary-GP recipe \[17\]: approximate the left-hand side around the
//! current iterate `φ₀` by the best local monomial
//!
//! ```text
//! S(φ) ≈ k · Π_i φ(i)^{a(i)},   a(i) = φ₀(i) / Σ_j φ₀(j),
//!                               k    = Σ_j φ₀(j) / Π_i φ₀(i)^{a(i)}
//! ```
//!
//! which matches value and gradient at `φ₀` and under-estimates the sum
//! everywhere (arithmetic–geometric mean inequality), so the condensed
//! constraint is conservative. The GP is then solved, the approximation
//! point updated, and the procedure iterated until the splitting ratios
//! converge.

use crate::monomial::Monomial;
use crate::posynomial::Posynomial;

/// Best local monomial approximation of a posynomial at the strictly
/// positive point `x0` (value and gradient match at `x0`).
///
/// Panics if the posynomial is empty or `x0` has a non-positive entry used
/// by the posynomial.
pub fn condense_at(p: &Posynomial, x0: &[f64]) -> Monomial {
    assert!(!p.is_empty(), "cannot condense an empty posynomial");
    let values: Vec<f64> = p.terms.iter().map(|t| t.eval(x0)).collect();
    let total: f64 = values.iter().sum();
    assert!(
        total.is_finite() && total > 0.0,
        "posynomial must be positive and finite at the expansion point"
    );

    // Exponent of variable i in the condensed monomial: Σ_k w_k a_{ik},
    // where w_k = value_k / total.
    let n = p.max_var().map_or(0, |m| m + 1).max(x0.len());
    let mut exps = vec![0.0; n];
    for (term, &v) in p.terms.iter().zip(&values) {
        let w = v / total;
        for &(i, a) in &term.exponents {
            exps[i] += w * a;
        }
    }
    // Coefficient chosen so the monomial equals `total` at x0.
    let mut denom = 1.0;
    for (i, &a) in exps.iter().enumerate() {
        if a != 0.0 {
            denom *= x0[i].powf(a);
        }
    }
    let coeff = total / denom;
    Monomial::new(
        coeff,
        exps.into_iter()
            .enumerate()
            .filter(|&(_, a)| a != 0.0)
            .collect(),
    )
}

/// One step of the complementary-GP treatment of a `p(x) ≥ 1` constraint:
/// returns the monomial `m` such that the conservative replacement
/// constraint is `m(x) ≥ 1` (equivalently `1 / m(x) ≤ 1`, a valid GP
/// constraint).
pub fn relax_ge_one(p: &Posynomial, x0: &[f64]) -> Monomial {
    condense_at(p, x0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_of_two_vars() -> Posynomial {
        Posynomial::new(vec![Monomial::var(0), Monomial::var(1)])
    }

    #[test]
    fn condensation_matches_value_at_the_point() {
        let p = sum_of_two_vars();
        let x0 = [0.3, 0.7];
        let m = condense_at(&p, &x0);
        assert!((m.eval(&x0) - 1.0).abs() < 1e-12);
        // Exponents are the normalized shares.
        let exps: std::collections::HashMap<usize, f64> = m.exponents.iter().copied().collect();
        assert!((exps[&0] - 0.3).abs() < 1e-12);
        assert!((exps[&1] - 0.7).abs() < 1e-12);
    }

    #[test]
    fn condensation_matches_gradient_at_the_point() {
        // d log p / d y_i must agree between the posynomial and the monomial.
        let p = Posynomial::new(vec![
            Monomial::new(2.0, vec![(0, 1.0)]),
            Monomial::new(1.0, vec![(0, 2.0), (1, 1.0)]),
        ]);
        let x0: [f64; 2] = [0.8, 1.3];
        let y0 = [x0[0].ln(), x0[1].ln()];
        let m = condense_at(&p, &x0);
        let mut gp = vec![0.0; 2];
        p.accumulate_log_gradient(&y0, 1.0, &mut gp);
        let mut gm = vec![0.0; 2];
        m.accumulate_log_gradient(1.0, &mut gm);
        for i in 0..2 {
            assert!((gp[i] - gm[i]).abs() < 1e-9, "{} vs {}", gp[i], gm[i]);
        }
    }

    #[test]
    fn condensation_underestimates_everywhere() {
        // AM-GM: the condensed monomial never exceeds the posynomial.
        let p = sum_of_two_vars();
        let x0 = [0.5, 0.5];
        let m = condense_at(&p, &x0);
        for &(a, b) in &[(0.1, 0.9), (0.3, 0.3), (1.5, 0.2), (2.0, 2.0)] {
            let x = [a, b];
            assert!(m.eval(&x) <= p.eval(&x) + 1e-12);
        }
    }

    #[test]
    fn relax_ge_one_returns_the_same_monomial() {
        let p = sum_of_two_vars();
        let x0 = [0.4, 0.6];
        assert_eq!(relax_ge_one(&p, &x0), condense_at(&p, &x0));
    }

    #[test]
    #[should_panic(expected = "empty posynomial")]
    fn condensing_empty_posynomial_panics() {
        let _ = condense_at(&Posynomial::zero(), &[1.0]);
    }
}
