//! Shortest-path-first (Dijkstra) computations and shortest-path DAG
//! extraction.
//!
//! OSPF routers run Dijkstra over the link-state database; traffic to a
//! destination `t` follows the *shortest-path DAG towards `t`*: the set of
//! edges `(u, v)` with `dist(u -> t) = w(u, v) + dist(v -> t)`. COYOTE's DAG
//! construction (Section V-B, Step I) starts from exactly this DAG, so the
//! routines here compute distances *towards* a destination by running
//! Dijkstra over reversed edges.

use crate::graph::{EdgeId, Graph, NodeId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Relative tolerance used when comparing path lengths for equality
/// (two paths whose lengths differ by less than this are "equal cost").
pub const ECMP_EPSILON: f64 = 1e-9;

/// Result of a single-source (or single-destination) Dijkstra run.
#[derive(Debug, Clone)]
pub struct SpfResult {
    /// `dist[v]` is the shortest distance from/to the root; `f64::INFINITY`
    /// when unreachable.
    pub dist: Vec<f64>,
    /// The root node of the computation.
    pub root: NodeId,
}

impl SpfResult {
    /// Distance for `node`.
    #[inline]
    pub fn distance(&self, node: NodeId) -> f64 {
        self.dist[node.index()]
    }

    /// True if `node` can reach (or be reached from) the root.
    #[inline]
    pub fn reachable(&self, node: NodeId) -> bool {
        self.dist[node.index()].is_finite()
    }
}

/// The shortest-path DAG rooted at (i.e. directed towards) a destination.
#[derive(Debug, Clone)]
pub struct ShortestPathDag {
    /// Destination every edge of the DAG leads towards.
    pub destination: NodeId,
    /// Distance of every node to the destination.
    pub dist_to_dest: Vec<f64>,
    /// For every node, the outgoing edges that lie on *some* shortest path to
    /// the destination (the ECMP next-hop set).
    pub next_hop_edges: Vec<Vec<EdgeId>>,
}

impl ShortestPathDag {
    /// All DAG edges, flattened.
    pub fn edges(&self) -> Vec<EdgeId> {
        let mut out: Vec<EdgeId> = self.next_hop_edges.iter().flatten().copied().collect();
        out.sort();
        out
    }

    /// ECMP next-hop edge set of `node` towards the destination.
    pub fn next_hops(&self, node: NodeId) -> &[EdgeId] {
        &self.next_hop_edges[node.index()]
    }

    /// Number of nodes that can reach the destination.
    pub fn reachable_count(&self) -> usize {
        self.dist_to_dest.iter().filter(|d| d.is_finite()).count()
    }
}

#[derive(Debug, PartialEq)]
struct HeapEntry {
    dist: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering: BinaryHeap is a max-heap, we want the minimum
        // distance on top. Ties broken on node id for determinism.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Dijkstra from `source` following edges forward, using edge weights.
/// Weights must be non-negative; non-positive weights are clamped to a tiny
/// positive value so OSPF's "weight >= 1" convention is preserved.
pub fn dijkstra_from(graph: &Graph, source: NodeId) -> SpfResult {
    dijkstra_impl(graph, source, Direction::Forward)
}

/// Dijkstra *towards* `destination`: distances are measured along directed
/// edges pointing at the destination (i.e. Dijkstra on the reversed graph).
pub fn dijkstra_to(graph: &Graph, destination: NodeId) -> SpfResult {
    dijkstra_impl(graph, destination, Direction::Reverse)
}

#[derive(Clone, Copy)]
enum Direction {
    Forward,
    Reverse,
}

fn dijkstra_impl(graph: &Graph, root: NodeId, dir: Direction) -> SpfResult {
    coyote_obs::counter("graph.spf.runs", 1);
    let n = graph.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut done = vec![false; n];
    let mut heap = BinaryHeap::new();
    dist[root.index()] = 0.0;
    heap.push(HeapEntry {
        dist: 0.0,
        node: root,
    });

    while let Some(HeapEntry { dist: d, node: u }) = heap.pop() {
        if done[u.index()] {
            continue;
        }
        done[u.index()] = true;
        let edges = match dir {
            Direction::Forward => graph.out_edges(u),
            Direction::Reverse => graph.in_edges(u),
        };
        for &e in edges {
            let edge = graph.edge(e);
            let v = match dir {
                Direction::Forward => edge.dst,
                Direction::Reverse => edge.src,
            };
            let w = sanitize_weight(edge.weight);
            let nd = d + w;
            if nd + ECMP_EPSILON < dist[v.index()] {
                dist[v.index()] = nd;
                heap.push(HeapEntry { dist: nd, node: v });
            }
        }
    }

    SpfResult { dist, root }
}

#[inline]
fn sanitize_weight(w: f64) -> f64 {
    if w.is_finite() && w > 0.0 {
        w
    } else {
        ECMP_EPSILON
    }
}

/// Computes the shortest-path DAG towards `destination`: the edges `(u, v)`
/// with `dist(u) ≈ w(u,v) + dist(v)` where distances are measured towards the
/// destination. This is exactly the set of ECMP next hops OSPF installs.
pub fn shortest_path_dag(graph: &Graph, destination: NodeId) -> ShortestPathDag {
    let spf = dijkstra_to(graph, destination);
    let n = graph.node_count();
    let mut next_hop_edges = vec![Vec::new(); n];
    for e in graph.edges() {
        let edge = graph.edge(e);
        let du = spf.dist[edge.src.index()];
        let dv = spf.dist[edge.dst.index()];
        if !du.is_finite() || !dv.is_finite() {
            continue;
        }
        let w = sanitize_weight(edge.weight);
        // Relative tolerance: weights can span orders of magnitude when set
        // to inverse capacities.
        let tol = ECMP_EPSILON * (1.0 + du.abs().max(dv.abs() + w.abs()));
        if (du - (dv + w)).abs() <= tol {
            next_hop_edges[edge.src.index()].push(e);
        }
    }
    ShortestPathDag {
        destination,
        dist_to_dest: spf.dist,
        next_hop_edges,
    }
}

/// Computes the shortest-path DAGs towards every node of the graph.
pub fn all_shortest_path_dags(graph: &Graph) -> Vec<ShortestPathDag> {
    graph.nodes().map(|t| shortest_path_dag(graph, t)).collect()
}

/// Hop-count distances (every edge counts 1) from `source` to all nodes,
/// following edges forward. Used by the path-stretch experiment which
/// measures stretch in hops regardless of OSPF weights.
pub fn hop_distances_from(graph: &Graph, source: NodeId) -> Vec<Option<usize>> {
    let n = graph.node_count();
    let mut dist = vec![None; n];
    let mut queue = std::collections::VecDeque::new();
    dist[source.index()] = Some(0);
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()].expect("queued nodes have distances");
        for &e in graph.out_edges(u) {
            let v = graph.edge(e).dst;
            if dist[v.index()].is_none() {
                dist[v.index()] = Some(du + 1);
                queue.push_back(v);
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    /// The running example of the paper (Fig. 1a): s1, s2, v, t with unit
    /// capacity links. All physical links are bidirectional.
    pub(crate) fn fig1_topology() -> (Graph, NodeId, NodeId, NodeId, NodeId) {
        let mut g = Graph::new();
        let s1 = g.add_node("s1").unwrap();
        let s2 = g.add_node("s2").unwrap();
        let v = g.add_node("v").unwrap();
        let t = g.add_node("t").unwrap();
        g.add_bidirectional_edge(s1, s2, 1.0, 1.0).unwrap();
        g.add_bidirectional_edge(s1, v, 1.0, 1.0).unwrap();
        g.add_bidirectional_edge(s2, v, 1.0, 1.0).unwrap();
        g.add_bidirectional_edge(s2, t, 1.0, 1.0).unwrap();
        g.add_bidirectional_edge(v, t, 1.0, 1.0).unwrap();
        (g, s1, s2, v, t)
    }

    #[test]
    fn dijkstra_forward_distances() {
        let (g, s1, s2, v, t) = fig1_topology();
        let spf = dijkstra_from(&g, s1);
        assert_eq!(spf.distance(s1), 0.0);
        assert_eq!(spf.distance(s2), 1.0);
        assert_eq!(spf.distance(v), 1.0);
        assert_eq!(spf.distance(t), 2.0);
    }

    #[test]
    fn dijkstra_towards_destination() {
        let (g, s1, s2, v, t) = fig1_topology();
        let spf = dijkstra_to(&g, t);
        assert_eq!(spf.distance(t), 0.0);
        assert_eq!(spf.distance(s2), 1.0);
        assert_eq!(spf.distance(v), 1.0);
        assert_eq!(spf.distance(s1), 2.0);
    }

    #[test]
    fn shortest_path_dag_matches_fig1b() {
        // With unit weights, s1 has two equal-cost next hops (via s2 and v),
        // while s2 and v forward straight to t — exactly Fig. 1b of the paper.
        let (g, s1, s2, v, t) = fig1_topology();
        let dag = shortest_path_dag(&g, t);
        assert_eq!(dag.next_hops(s1).len(), 2);
        assert_eq!(dag.next_hops(s2).len(), 1);
        assert_eq!(dag.next_hops(v).len(), 1);
        assert_eq!(dag.next_hops(t).len(), 0);
        let s2_nh = g.edge(dag.next_hops(s2)[0]).dst;
        let v_nh = g.edge(dag.next_hops(v)[0]).dst;
        assert_eq!(s2_nh, t);
        assert_eq!(v_nh, t);
        // The (s2,v) link is not on any shortest path to t.
        let s2v = g.find_edge(s2, v).unwrap();
        assert!(!dag.edges().contains(&s2v));
    }

    #[test]
    fn unreachable_nodes_have_infinite_distance() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1), 1.0, 1.0).unwrap();
        let spf = dijkstra_to(&g, NodeId(1));
        assert!(spf.reachable(NodeId(0)));
        assert!(!spf.reachable(NodeId(2)));
        let dag = shortest_path_dag(&g, NodeId(1));
        assert_eq!(dag.reachable_count(), 2);
        assert!(dag.next_hops(NodeId(2)).is_empty());
    }

    #[test]
    fn all_dags_cover_all_destinations() {
        let (g, ..) = fig1_topology();
        let dags = all_shortest_path_dags(&g);
        assert_eq!(dags.len(), g.node_count());
        for (i, dag) in dags.iter().enumerate() {
            assert_eq!(dag.destination, NodeId(i));
            // The destination itself never has next hops.
            assert!(dag.next_hops(NodeId(i)).is_empty());
            // Everyone else has at least one (strongly connected topology).
            for v in g.nodes() {
                if v != NodeId(i) {
                    assert!(!dag.next_hops(v).is_empty());
                }
            }
        }
    }

    #[test]
    fn weighted_shortest_paths_prefer_light_edges() {
        let mut g = Graph::new();
        let a = g.add_node("a").unwrap();
        let b = g.add_node("b").unwrap();
        let c = g.add_node("c").unwrap();
        // Direct edge is heavy, detour is light.
        g.add_edge(a, c, 1.0, 10.0).unwrap();
        g.add_edge(a, b, 1.0, 1.0).unwrap();
        g.add_edge(b, c, 1.0, 1.0).unwrap();
        let dag = shortest_path_dag(&g, c);
        // a's only shortest next hop is via b.
        assert_eq!(dag.next_hops(a).len(), 1);
        assert_eq!(g.edge(dag.next_hops(a)[0]).dst, b);
        assert!((dag.dist_to_dest[a.index()] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn hop_distances_ignore_weights() {
        let mut g = Graph::new();
        let a = g.add_node("a").unwrap();
        let b = g.add_node("b").unwrap();
        let c = g.add_node("c").unwrap();
        g.add_edge(a, c, 1.0, 10.0).unwrap();
        g.add_edge(a, b, 1.0, 1.0).unwrap();
        g.add_edge(b, c, 1.0, 1.0).unwrap();
        let hops = hop_distances_from(&g, a);
        assert_eq!(hops[c.index()], Some(1)); // direct edge, 1 hop
        assert_eq!(hops[b.index()], Some(1));
    }

    #[test]
    fn zero_or_negative_weights_are_sanitized() {
        let mut g = Graph::new();
        let a = g.add_node("a").unwrap();
        let b = g.add_node("b").unwrap();
        g.add_edge(a, b, 1.0, 0.0).unwrap();
        let spf = dijkstra_from(&g, a);
        assert!(spf.distance(b) > 0.0);
        assert!(spf.distance(b) < 1e-6);
    }
}
