//! Error type shared by the graph substrate.

use std::fmt;

/// Errors produced while building or querying graphs and DAGs.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// A node index was out of range for the graph it was used with.
    InvalidNode {
        /// The offending node index.
        node: usize,
        /// Number of nodes in the graph.
        node_count: usize,
    },
    /// An edge index was out of range for the graph it was used with.
    InvalidEdge {
        /// The offending edge index.
        edge: usize,
        /// Number of edges in the graph.
        edge_count: usize,
    },
    /// An edge with non-positive capacity was inserted.
    NonPositiveCapacity {
        /// Source node of the edge.
        src: usize,
        /// Destination node of the edge.
        dst: usize,
        /// The rejected capacity.
        capacity: f64,
    },
    /// A self-loop was inserted; the routing model never uses them.
    SelfLoop {
        /// The node carrying the loop.
        node: usize,
    },
    /// A duplicate node name was registered.
    DuplicateNodeName(String),
    /// The edge set handed to [`crate::Dag::new`] contains a directed cycle,
    /// so it is not a valid per-destination DAG.
    NotAcyclic {
        /// Destination the DAG was rooted at.
        destination: usize,
    },
    /// A node cannot reach the DAG's destination through DAG edges.
    Unreachable {
        /// The disconnected node.
        node: usize,
        /// Destination of the DAG.
        destination: usize,
    },
    /// A requested node name does not exist.
    UnknownNodeName(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::InvalidNode { node, node_count } => {
                write!(
                    f,
                    "node index {node} out of range (graph has {node_count} nodes)"
                )
            }
            GraphError::InvalidEdge { edge, edge_count } => {
                write!(
                    f,
                    "edge index {edge} out of range (graph has {edge_count} edges)"
                )
            }
            GraphError::NonPositiveCapacity { src, dst, capacity } => {
                write!(f, "edge {src}->{dst} has non-positive capacity {capacity}")
            }
            GraphError::SelfLoop { node } => write!(f, "self loop on node {node} is not allowed"),
            GraphError::DuplicateNodeName(name) => write!(f, "duplicate node name {name:?}"),
            GraphError::NotAcyclic { destination } => {
                write!(
                    f,
                    "edge set for destination {destination} contains a directed cycle"
                )
            }
            GraphError::Unreachable { node, destination } => {
                write!(
                    f,
                    "node {node} cannot reach destination {destination} inside the DAG"
                )
            }
            GraphError::UnknownNodeName(name) => write!(f, "unknown node name {name:?}"),
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GraphError::InvalidNode {
            node: 7,
            node_count: 3,
        };
        assert!(e.to_string().contains("7"));
        assert!(e.to_string().contains("3"));
        let e = GraphError::NonPositiveCapacity {
            src: 0,
            dst: 1,
            capacity: -2.0,
        };
        assert!(e.to_string().contains("-2"));
        let e = GraphError::NotAcyclic { destination: 4 };
        assert!(e.to_string().contains("cycle"));
        let e = GraphError::UnknownNodeName("x".into());
        assert!(e.to_string().contains('x'));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            GraphError::SelfLoop { node: 1 },
            GraphError::SelfLoop { node: 1 }
        );
        assert_ne!(
            GraphError::SelfLoop { node: 1 },
            GraphError::SelfLoop { node: 2 }
        );
    }
}
