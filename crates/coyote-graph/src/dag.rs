//! Per-destination DAG representation.
//!
//! Destination-based routing requires the routes towards each destination to
//! form a directed acyclic graph (Section III of the paper: "for every vertex
//! `t` and directed cycle `C` in `G`, for some edge `e ∈ C` on the cycle
//! `φ_t(e) = 0`"). A [`Dag`] is the set of edges a given destination is
//! allowed to use, validated for acyclicity, together with the topological
//! order needed to propagate splitting ratios and flows.

use crate::error::GraphError;
use crate::graph::{EdgeId, Graph, NodeId};
use serde::{Deserialize, Serialize};

/// A validated per-destination DAG: a subset of graph edges that is acyclic
/// and in which every participating node can reach the destination.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dag {
    destination: NodeId,
    /// Membership bitmap indexed by edge id.
    member: Vec<bool>,
    /// Outgoing DAG edges per node (subset of the graph's out-adjacency).
    out_edges: Vec<Vec<EdgeId>>,
    /// Incoming DAG edges per node.
    in_edges: Vec<Vec<EdgeId>>,
    /// Nodes ordered so that every DAG edge goes from a later to an earlier
    /// position ("reverse topological": destination first).
    topo_from_dest: Vec<NodeId>,
}

impl Dag {
    /// Builds a DAG rooted at `destination` from an edge set, validating that
    /// the edges are acyclic and that every node with at least one DAG edge
    /// (or that the graph marks as a traffic source) can reach the
    /// destination inside the DAG.
    pub fn new(graph: &Graph, destination: NodeId, edges: &[EdgeId]) -> Result<Self, GraphError> {
        let n = graph.node_count();
        if destination.index() >= n {
            return Err(GraphError::InvalidNode {
                node: destination.index(),
                node_count: n,
            });
        }
        let mut member = vec![false; graph.edge_count()];
        for &e in edges {
            if e.index() >= graph.edge_count() {
                return Err(GraphError::InvalidEdge {
                    edge: e.index(),
                    edge_count: graph.edge_count(),
                });
            }
            member[e.index()] = true;
        }

        let mut out_edges = vec![Vec::new(); n];
        let mut in_edges = vec![Vec::new(); n];
        for e in graph.edges() {
            if member[e.index()] {
                let (u, v) = graph.endpoints(e);
                out_edges[u.index()].push(e);
                in_edges[v.index()].push(e);
            }
        }

        // Kahn's algorithm on the DAG edges, starting from the destination and
        // walking edges backwards, yields the order "destination first".
        // A node is emitted once all of its outgoing DAG edges lead to emitted
        // nodes; if not every participating node is emitted there is a cycle.
        let mut remaining_out: Vec<usize> = out_edges.iter().map(Vec::len).collect();
        let mut emitted = vec![false; n];
        let mut topo = Vec::with_capacity(n);
        let mut queue = std::collections::VecDeque::new();
        // Nodes with no outgoing DAG edges are sinks; only the destination is
        // a legitimate sink, others are simply not part of this DAG.
        for v in graph.nodes() {
            if remaining_out[v.index()] == 0 {
                queue.push_back(v);
            }
        }
        while let Some(v) = queue.pop_front() {
            if emitted[v.index()] {
                continue;
            }
            emitted[v.index()] = true;
            topo.push(v);
            for &e in &in_edges[v.index()] {
                let u = graph.edge(e).src;
                remaining_out[u.index()] -= 1;
                if remaining_out[u.index()] == 0 {
                    queue.push_back(u);
                }
            }
        }
        if topo.len() != n {
            return Err(GraphError::NotAcyclic {
                destination: destination.index(),
            });
        }

        // Reachability inside the DAG: every node with an outgoing DAG edge
        // must reach the destination following DAG edges.
        let mut reaches = vec![false; n];
        reaches[destination.index()] = true;
        // topo is ordered "sinks first", destination among the first entries;
        // walking it in order guarantees successors are resolved before
        // predecessors.
        for &v in &topo {
            if reaches[v.index()] {
                continue;
            }
            if out_edges[v.index()]
                .iter()
                .any(|&e| reaches[graph.edge(e).dst.index()])
            {
                reaches[v.index()] = true;
            }
        }
        for v in graph.nodes() {
            if !out_edges[v.index()].is_empty() && !reaches[v.index()] {
                return Err(GraphError::Unreachable {
                    node: v.index(),
                    destination: destination.index(),
                });
            }
        }

        // Order the topological list so the destination comes first and only
        // keep nodes that participate (destination + nodes with DAG edges).
        let topo_from_dest: Vec<NodeId> = topo
            .into_iter()
            .filter(|&v| {
                v == destination
                    || !out_edges[v.index()].is_empty()
                    || !in_edges[v.index()].is_empty()
            })
            .collect();

        Ok(Self {
            destination,
            member,
            out_edges,
            in_edges,
            topo_from_dest,
        })
    }

    /// Builds the DAG that contains the ECMP shortest-path edges towards the
    /// destination of `spf` (Step I of COYOTE's DAG construction).
    pub fn from_shortest_paths(
        graph: &Graph,
        spf: &crate::spf::ShortestPathDag,
    ) -> Result<Self, GraphError> {
        Dag::new(graph, spf.destination, &spf.edges())
    }

    /// Destination this DAG routes towards.
    #[inline]
    pub fn destination(&self) -> NodeId {
        self.destination
    }

    /// True if `edge` belongs to the DAG.
    #[inline]
    pub fn contains(&self, edge: EdgeId) -> bool {
        self.member[edge.index()]
    }

    /// Outgoing DAG edges of a node (its allowed next hops towards the
    /// destination).
    #[inline]
    pub fn out_edges(&self, node: NodeId) -> &[EdgeId] {
        &self.out_edges[node.index()]
    }

    /// Incoming DAG edges of a node.
    #[inline]
    pub fn in_edges(&self, node: NodeId) -> &[EdgeId] {
        &self.in_edges[node.index()]
    }

    /// All DAG edges in ascending id order.
    pub fn edges(&self) -> Vec<EdgeId> {
        self.member
            .iter()
            .enumerate()
            .filter_map(|(i, &m)| if m { Some(EdgeId(i)) } else { None })
            .collect()
    }

    /// Number of DAG edges.
    pub fn edge_count(&self) -> usize {
        self.member.iter().filter(|&&m| m).count()
    }

    /// Nodes ordered destination-first: every DAG edge `(u, v)` has `v`
    /// appearing before `u`. Propagating *loads* (which flow towards the
    /// destination) therefore walks this order in reverse; propagating
    /// per-source fractions walks it in reverse as well, starting from each
    /// source.
    #[inline]
    pub fn topo_from_destination(&self) -> &[NodeId] {
        &self.topo_from_dest
    }

    /// Nodes ordered sources-first (reverse of [`Self::topo_from_destination`]):
    /// every DAG edge `(u, v)` has `u` appearing before `v`. This is the order
    /// in which traffic entering at any node propagates towards the
    /// destination.
    pub fn topo_to_destination(&self) -> Vec<NodeId> {
        self.topo_from_dest.iter().rev().copied().collect()
    }

    /// True if `node` participates in the DAG (has an in- or out-edge) or is
    /// the destination.
    pub fn participates(&self, node: NodeId) -> bool {
        node == self.destination
            || !self.out_edges[node.index()].is_empty()
            || !self.in_edges[node.index()].is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spf::shortest_path_dag;

    fn fig1() -> (Graph, NodeId, NodeId, NodeId, NodeId) {
        let mut g = Graph::new();
        let s1 = g.add_node("s1").unwrap();
        let s2 = g.add_node("s2").unwrap();
        let v = g.add_node("v").unwrap();
        let t = g.add_node("t").unwrap();
        g.add_bidirectional_edge(s1, s2, 1.0, 1.0).unwrap();
        g.add_bidirectional_edge(s1, v, 1.0, 1.0).unwrap();
        g.add_bidirectional_edge(s2, v, 1.0, 1.0).unwrap();
        g.add_bidirectional_edge(s2, t, 1.0, 1.0).unwrap();
        g.add_bidirectional_edge(v, t, 1.0, 1.0).unwrap();
        (g, s1, s2, v, t)
    }

    #[test]
    fn builds_from_shortest_paths() {
        let (g, s1, s2, v, t) = fig1();
        let spf = shortest_path_dag(&g, t);
        let dag = Dag::from_shortest_paths(&g, &spf).unwrap();
        assert_eq!(dag.destination(), t);
        assert_eq!(dag.out_edges(s1).len(), 2);
        assert_eq!(dag.out_edges(s2).len(), 1);
        assert_eq!(dag.out_edges(v).len(), 1);
        assert!(dag.out_edges(t).is_empty());
        assert_eq!(dag.edge_count(), 4);
    }

    #[test]
    fn rejects_cycles() {
        let (g, s1, s2, _v, t) = fig1();
        // s1 -> s2, s2 -> s1 is a 2-cycle.
        let e1 = g.find_edge(s1, s2).unwrap();
        let e2 = g.find_edge(s2, s1).unwrap();
        let e3 = g.find_edge(s2, t).unwrap();
        let err = Dag::new(&g, t, &[e1, e2, e3]).unwrap_err();
        assert!(matches!(err, GraphError::NotAcyclic { .. }));
    }

    #[test]
    fn rejects_nodes_that_cannot_reach_destination() {
        let (g, s1, _s2, v, t) = fig1();
        // s1 -> v only, with no way for v to continue to t: v has an outgoing
        // edge? No — v has none, so v is a sink that is not the destination;
        // s1 cannot reach t.
        let e = g.find_edge(s1, v).unwrap();
        let err = Dag::new(&g, t, &[e]).unwrap_err();
        assert!(matches!(err, GraphError::Unreachable { .. }));
    }

    #[test]
    fn topological_orders_are_consistent() {
        let (g, _s1, _s2, _v, t) = fig1();
        let spf = shortest_path_dag(&g, t);
        let dag = Dag::from_shortest_paths(&g, &spf).unwrap();
        let order = dag.topo_from_destination();
        let pos: std::collections::HashMap<_, _> =
            order.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        for e in dag.edges() {
            let (u, v) = g.endpoints(e);
            // Destination-first order: heads appear before tails.
            assert!(pos[&v] < pos[&u], "edge {u}->{v} violates topo order");
        }
        let fwd = dag.topo_to_destination();
        assert_eq!(fwd.len(), order.len());
        assert_eq!(fwd.first(), order.last());
    }

    #[test]
    fn contains_and_edges_agree() {
        let (g, _s1, _s2, _v, t) = fig1();
        let spf = shortest_path_dag(&g, t);
        let dag = Dag::from_shortest_paths(&g, &spf).unwrap();
        for e in g.edges() {
            assert_eq!(dag.contains(e), dag.edges().contains(&e));
        }
    }

    #[test]
    fn participation_reflects_edge_membership() {
        let (g, s1, s2, v, t) = fig1();
        let e1 = g.find_edge(s2, t).unwrap();
        let dag = Dag::new(&g, t, &[e1]).unwrap();
        assert!(dag.participates(s2));
        assert!(dag.participates(t));
        assert!(!dag.participates(s1));
        assert!(!dag.participates(v));
    }

    #[test]
    fn empty_dag_is_valid_for_isolated_destination() {
        let (g, _, _, _, t) = fig1();
        let dag = Dag::new(&g, t, &[]).unwrap();
        assert_eq!(dag.edge_count(), 0);
        assert!(dag.participates(t));
    }

    #[test]
    fn invalid_indices_are_rejected() {
        let (g, _, _, _, t) = fig1();
        assert!(matches!(
            Dag::new(&g, NodeId(99), &[]),
            Err(GraphError::InvalidNode { .. })
        ));
        assert!(matches!(
            Dag::new(&g, t, &[EdgeId(999)]),
            Err(GraphError::InvalidEdge { .. })
        ));
    }
}
