//! Path-length utilities for the stretch experiment (Fig. 11).
//!
//! COYOTE augments the shortest-path DAGs with extra edges, so traffic can
//! take longer routes; the paper reports that the *average path stretch*
//! (expected hop count under COYOTE divided by expected hop count under
//! OSPF/ECMP) stays within ~10%. Given per-node next-hop splitting fractions,
//! the expected hop count from a source to the destination satisfies
//! `E[hops(u)] = Σ_e φ(e)·(1 + E[hops(head(e))])`, solved by walking the DAG
//! in topological order.

use crate::dag::Dag;
use crate::graph::{EdgeId, Graph, NodeId};

/// Expected number of hops from every node to `dag.destination()` when, at
/// every node, the fraction of traffic leaving on edge `e` is `split(e)`
/// (fractions over each node's DAG out-edges must sum to 1 for nodes that
/// carry traffic; nodes with all-zero fractions are treated as not carrying
/// traffic and get `None`).
pub fn expected_hops<F>(graph: &Graph, dag: &Dag, split: F) -> Vec<Option<f64>>
where
    F: Fn(EdgeId) -> f64,
{
    let n = graph.node_count();
    let mut hops: Vec<Option<f64>> = vec![None; n];
    hops[dag.destination().index()] = Some(0.0);
    // Destination-first order guarantees successors are resolved first.
    for &u in dag.topo_from_destination() {
        if u == dag.destination() {
            continue;
        }
        let out = dag.out_edges(u);
        if out.is_empty() {
            continue;
        }
        let mut total_frac = 0.0;
        let mut acc = 0.0;
        let mut well_defined = true;
        for &e in out {
            let f = split(e);
            if f <= 0.0 {
                continue;
            }
            let v = graph.edge(e).dst;
            match hops[v.index()] {
                Some(h) => acc += f * (1.0 + h),
                None => {
                    well_defined = false;
                    break;
                }
            }
            total_frac += f;
        }
        if well_defined && total_frac > 1e-9 {
            hops[u.index()] = Some(acc / total_frac);
        }
    }
    hops
}

/// Average stretch of routing A versus routing B over a set of
/// (source, destination) pairs: `mean( hops_A(s,t) / hops_B(s,t) )`.
/// Pairs where either expected hop count is undefined or zero are skipped.
pub fn average_stretch(
    pairs: &[(NodeId, NodeId)],
    hops_a: &dyn Fn(NodeId, NodeId) -> Option<f64>,
    hops_b: &dyn Fn(NodeId, NodeId) -> Option<f64>,
) -> Option<f64> {
    let mut sum = 0.0;
    let mut count = 0usize;
    for &(s, t) in pairs {
        if s == t {
            continue;
        }
        let (Some(a), Some(b)) = (hops_a(s, t), hops_b(s, t)) else {
            continue;
        };
        if b <= 0.0 {
            continue;
        }
        sum += a / b;
        count += 1;
    }
    if count == 0 {
        None
    } else {
        Some(sum / count as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spf::shortest_path_dag;

    fn fig1() -> (Graph, NodeId, NodeId, NodeId, NodeId) {
        let mut g = Graph::new();
        let s1 = g.add_node("s1").unwrap();
        let s2 = g.add_node("s2").unwrap();
        let v = g.add_node("v").unwrap();
        let t = g.add_node("t").unwrap();
        g.add_bidirectional_edge(s1, s2, 1.0, 1.0).unwrap();
        g.add_bidirectional_edge(s1, v, 1.0, 1.0).unwrap();
        g.add_bidirectional_edge(s2, v, 1.0, 1.0).unwrap();
        g.add_bidirectional_edge(s2, t, 1.0, 1.0).unwrap();
        g.add_bidirectional_edge(v, t, 1.0, 1.0).unwrap();
        (g, s1, s2, v, t)
    }

    #[test]
    fn equal_split_expected_hops() {
        let (g, s1, s2, v, t) = fig1();
        let spf = shortest_path_dag(&g, t);
        let dag = Dag::from_shortest_paths(&g, &spf).unwrap();
        // ECMP: s1 splits 1/2 between s2 and v; both forward straight to t.
        let hops = expected_hops(&g, &dag, |_e| 1.0);
        assert_eq!(hops[t.index()], Some(0.0));
        assert_eq!(hops[s2.index()], Some(1.0));
        assert_eq!(hops[v.index()], Some(1.0));
        assert!((hops[s1.index()].unwrap() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn skewed_split_changes_expected_hops() {
        let (g, s1, s2, v, t) = fig1();
        // DAG with an extra s2->v edge to create a 3-hop option for s1.
        let mut edges = shortest_path_dag(&g, t).edges();
        edges.push(g.find_edge(s2, v).unwrap());
        let dag = Dag::new(&g, t, &edges).unwrap();
        let s2v = g.find_edge(s2, v).unwrap();
        let s2t = g.find_edge(s2, t).unwrap();
        let s1s2 = g.find_edge(s1, s2).unwrap();
        let s1v = g.find_edge(s1, v).unwrap();
        let vt = g.find_edge(v, t).unwrap();
        let split = move |e: EdgeId| -> f64 {
            if e == s2v || e == s2t || e == s1s2 || e == s1v {
                0.5
            } else if e == vt {
                1.0
            } else {
                0.0
            }
        };
        let hops = expected_hops(&g, &dag, split);
        // s2: 0.5*(1+0) + 0.5*(1+1) = 1.5 hops; s1: 0.5*(1+1.5)+0.5*(1+1)=2.25.
        assert!((hops[s2.index()].unwrap() - 1.5).abs() < 1e-9);
        assert!((hops[s1.index()].unwrap() - 2.25).abs() < 1e-9);
    }

    #[test]
    fn zero_fraction_nodes_are_undefined() {
        let (g, s1, _s2, v, t) = fig1();
        let spf = shortest_path_dag(&g, t);
        let dag = Dag::from_shortest_paths(&g, &spf).unwrap();
        // Kill all fractions: no node (other than t) has a defined hop count.
        let hops = expected_hops(&g, &dag, |_e| 0.0);
        assert_eq!(hops[t.index()], Some(0.0));
        assert_eq!(hops[s1.index()], None);
        assert_eq!(hops[v.index()], None);
    }

    #[test]
    fn stretch_of_identical_routings_is_one() {
        let (g, s1, s2, v, t) = fig1();
        let spf = shortest_path_dag(&g, t);
        let dag = Dag::from_shortest_paths(&g, &spf).unwrap();
        let hops = expected_hops(&g, &dag, |_e| 1.0);
        let lookup = |_s: NodeId, d: NodeId| hops[d.index()].map(|_| 1.0);
        let pairs = vec![(s1, t), (s2, t), (v, t)];
        let s = average_stretch(&pairs, &lookup, &lookup).unwrap();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stretch_skips_undefined_pairs() {
        let (_, s1, s2, _v, t) = fig1();
        let a = |_s: NodeId, _t: NodeId| -> Option<f64> { None };
        let b = |_s: NodeId, _t: NodeId| -> Option<f64> { Some(1.0) };
        assert_eq!(average_stretch(&[(s1, t), (s2, t)], &a, &b), None);
    }
}
