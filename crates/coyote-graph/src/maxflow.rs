//! Maximum flow / minimum cut (Dinic's algorithm).
//!
//! Used to (a) check that a demand matrix is routable at all, (b) scale the
//! demand polytope of the NP-hardness gadget (Theorem 1 of the paper relies
//! on `mincut(s1, t) = mincut(s2, t) = 2·SUM`), and (c) provide capacity
//! upper bounds when generating traffic matrices.

use crate::graph::{Graph, NodeId};

/// Residual-network edge used internally by Dinic's algorithm.
#[derive(Debug, Clone)]
struct ResidualEdge {
    to: usize,
    cap: f64,
    /// Index of the reverse residual edge inside `adj[to]`.
    rev: usize,
}

/// Max-flow solver over a [`Graph`]'s directed edges and capacities.
///
/// The solver copies the graph into a residual network; the original graph is
/// untouched. Construct one per (graph, query batch): sources/sinks can vary
/// between calls because the residual network is rebuilt per call.
#[derive(Debug)]
pub struct MaxFlow<'g> {
    graph: &'g Graph,
}

/// Result of a max-flow computation.
#[derive(Debug, Clone)]
pub struct MaxFlowResult {
    /// Value of the maximum flow (== capacity of the minimum cut).
    pub value: f64,
    /// Nodes on the source side of a minimum cut.
    pub source_side: Vec<NodeId>,
}

impl<'g> MaxFlow<'g> {
    /// Creates a solver bound to `graph`.
    pub fn new(graph: &'g Graph) -> Self {
        Self { graph }
    }

    /// Maximum flow from `source` to `sink` respecting directed edge
    /// capacities.
    pub fn max_flow(&self, source: NodeId, sink: NodeId) -> MaxFlowResult {
        self.max_flow_multi(&[source], sink)
    }

    /// Maximum flow from a *set* of sources (joined to a virtual super-source
    /// with infinite-capacity edges) to `sink`.
    pub fn max_flow_multi(&self, sources: &[NodeId], sink: NodeId) -> MaxFlowResult {
        let n = self.graph.node_count();
        // Node n is the virtual super source.
        let total_nodes = n + 1;
        let super_source = n;
        let mut adj: Vec<Vec<ResidualEdge>> = vec![Vec::new(); total_nodes];

        let add_edge = |adj: &mut Vec<Vec<ResidualEdge>>, u: usize, v: usize, cap: f64| {
            let rev_u = adj[v].len();
            let rev_v = adj[u].len();
            adj[u].push(ResidualEdge {
                to: v,
                cap,
                rev: rev_u,
            });
            adj[v].push(ResidualEdge {
                to: u,
                cap: 0.0,
                rev: rev_v,
            });
        };

        for e in self.graph.edges() {
            let edge = self.graph.edge(e);
            add_edge(&mut adj, edge.src.index(), edge.dst.index(), edge.capacity);
        }
        let huge: f64 = self
            .graph
            .edges()
            .map(|e| self.graph.capacity(e))
            .sum::<f64>()
            .max(1.0)
            * 4.0;
        for &s in sources {
            add_edge(&mut adj, super_source, s.index(), huge);
        }

        let s = super_source;
        let t = sink.index();
        let mut flow = 0.0;
        let eps = 1e-12 * huge.max(1.0);

        loop {
            // BFS level graph.
            let mut level = vec![usize::MAX; total_nodes];
            let mut queue = std::collections::VecDeque::new();
            level[s] = 0;
            queue.push_back(s);
            while let Some(u) = queue.pop_front() {
                for e in &adj[u] {
                    if e.cap > eps && level[e.to] == usize::MAX {
                        level[e.to] = level[u] + 1;
                        queue.push_back(e.to);
                    }
                }
            }
            if level[t] == usize::MAX {
                break;
            }
            // DFS blocking flow.
            let mut iter = vec![0usize; total_nodes];
            loop {
                let pushed = Self::dfs(&mut adj, &level, &mut iter, s, t, f64::INFINITY, eps);
                if pushed <= eps {
                    break;
                }
                flow += pushed;
            }
        }

        // Min-cut: nodes reachable from the super source in the residual graph.
        let mut seen = vec![false; total_nodes];
        let mut stack = vec![s];
        seen[s] = true;
        while let Some(u) = stack.pop() {
            for e in &adj[u] {
                if e.cap > eps && !seen[e.to] {
                    seen[e.to] = true;
                    stack.push(e.to);
                }
            }
        }
        let source_side = (0..n).filter(|&i| seen[i]).map(NodeId).collect();

        MaxFlowResult {
            value: flow,
            source_side,
        }
    }

    fn dfs(
        adj: &mut Vec<Vec<ResidualEdge>>,
        level: &[usize],
        iter: &mut [usize],
        u: usize,
        t: usize,
        limit: f64,
        eps: f64,
    ) -> f64 {
        if u == t {
            return limit;
        }
        while iter[u] < adj[u].len() {
            let i = iter[u];
            let (to, cap, rev) = {
                let e = &adj[u][i];
                (e.to, e.cap, e.rev)
            };
            if cap > eps && level[u] + 1 == level[to] {
                let d = Self::dfs(adj, level, iter, to, t, limit.min(cap), eps);
                if d > eps {
                    adj[u][i].cap -= d;
                    adj[to][rev].cap += d;
                    return d;
                }
            }
            iter[u] += 1;
        }
        0.0
    }
}

/// Convenience wrapper: min-cut capacity between `source` and `sink`.
pub fn min_cut(graph: &Graph, source: NodeId, sink: NodeId) -> f64 {
    MaxFlow::new(graph).max_flow(source, sink).value
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    #[test]
    fn simple_series_parallel() {
        let mut g = Graph::new();
        let s = g.add_node("s").unwrap();
        let a = g.add_node("a").unwrap();
        let b = g.add_node("b").unwrap();
        let t = g.add_node("t").unwrap();
        g.add_edge(s, a, 3.0, 1.0).unwrap();
        g.add_edge(s, b, 2.0, 1.0).unwrap();
        g.add_edge(a, t, 2.0, 1.0).unwrap();
        g.add_edge(b, t, 3.0, 1.0).unwrap();
        g.add_edge(a, b, 1.0, 1.0).unwrap();
        let res = MaxFlow::new(&g).max_flow(s, t);
        assert!((res.value - 5.0).abs() < 1e-9, "value = {}", res.value);
        assert!(res.source_side.contains(&s));
        assert!(!res.source_side.contains(&t));
    }

    #[test]
    fn bottleneck_single_path() {
        let mut g = Graph::new();
        let s = g.add_node("s").unwrap();
        let m = g.add_node("m").unwrap();
        let t = g.add_node("t").unwrap();
        g.add_edge(s, m, 10.0, 1.0).unwrap();
        g.add_edge(m, t, 1.5, 1.0).unwrap();
        assert!((min_cut(&g, s, t) - 1.5).abs() < 1e-9);
    }

    #[test]
    fn disconnected_has_zero_flow() {
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1), 5.0, 1.0).unwrap();
        g.add_edge(NodeId(2), NodeId(3), 5.0, 1.0).unwrap();
        assert_eq!(min_cut(&g, NodeId(0), NodeId(3)), 0.0);
    }

    #[test]
    fn multi_source_flow_adds_up() {
        let mut g = Graph::new();
        let s1 = g.add_node("s1").unwrap();
        let s2 = g.add_node("s2").unwrap();
        let t = g.add_node("t").unwrap();
        g.add_edge(s1, t, 2.0, 1.0).unwrap();
        g.add_edge(s2, t, 3.0, 1.0).unwrap();
        let res = MaxFlow::new(&g).max_flow_multi(&[s1, s2], t);
        assert!((res.value - 5.0).abs() < 1e-9);
    }

    /// The INTEGER gadget of Theorem 1: for a weight w, mincut(s1, t) through
    /// one gadget should be 2w (the (m_i, t) edge).
    #[test]
    fn integer_gadget_min_cut() {
        let w = 3.0;
        let mut g = Graph::new();
        let s1 = g.add_node("s1").unwrap();
        let s2 = g.add_node("s2").unwrap();
        let x1 = g.add_node("x1").unwrap();
        let x2 = g.add_node("x2").unwrap();
        let m = g.add_node("m").unwrap();
        let t = g.add_node("t").unwrap();
        g.add_bidirectional_edge(x1, x2, w, 1.0).unwrap();
        g.add_bidirectional_edge(x1, m, w, 1.0).unwrap();
        g.add_bidirectional_edge(x2, m, w, 1.0).unwrap();
        g.add_edge(s1, x1, 2.0 * w, 1.0).unwrap();
        g.add_edge(s2, x2, 2.0 * w, 1.0).unwrap();
        g.add_edge(m, t, 2.0 * w, 1.0).unwrap();
        assert!((min_cut(&g, s1, t) - 2.0 * w).abs() < 1e-9);
        assert!((min_cut(&g, s2, t) - 2.0 * w).abs() < 1e-9);
        let both = MaxFlow::new(&g).max_flow_multi(&[s1, s2], t).value;
        assert!((both - 2.0 * w).abs() < 1e-9);
    }

    #[test]
    fn fractional_capacities_are_exact_enough() {
        let mut g = Graph::new();
        let s = g.add_node("s").unwrap();
        let a = g.add_node("a").unwrap();
        let t = g.add_node("t").unwrap();
        g.add_edge(s, a, 0.3, 1.0).unwrap();
        g.add_edge(a, t, 0.7, 1.0).unwrap();
        g.add_edge(s, t, 0.25, 1.0).unwrap();
        assert!((min_cut(&g, s, t) - 0.55).abs() < 1e-9);
    }
}

/// Edge cases that underpin every worst-case computation: degenerate
/// capacities, direction sensitivity, and the cut/flow duality itself.
#[cfg(test)]
mod edge_case_tests {
    use super::*;
    use crate::error::GraphError;
    use crate::graph::Graph;

    #[test]
    fn zero_negative_and_nan_capacity_edges_are_rejected() {
        let mut g = Graph::with_nodes(2);
        for bad in [0.0, -1.0, f64::NAN] {
            let res = g.add_edge(NodeId(0), NodeId(1), bad, 1.0);
            assert!(
                matches!(res, Err(GraphError::NonPositiveCapacity { .. })),
                "capacity {bad} should be rejected, got {res:?}"
            );
        }
        // The graph must be untouched by the failed insertions.
        assert_eq!(g.edges().count(), 0);
        assert_eq!(min_cut(&g, NodeId(0), NodeId(1)), 0.0);
    }

    #[test]
    fn flow_respects_edge_direction() {
        // Only a reverse path exists: t -> m -> s carries nothing s -> t.
        let mut g = Graph::with_nodes(3);
        g.add_edge(NodeId(2), NodeId(1), 4.0, 1.0).unwrap();
        g.add_edge(NodeId(1), NodeId(0), 4.0, 1.0).unwrap();
        assert_eq!(min_cut(&g, NodeId(0), NodeId(2)), 0.0);
        // Adding the forward direction opens the path.
        g.add_edge(NodeId(0), NodeId(1), 1.5, 1.0).unwrap();
        g.add_edge(NodeId(1), NodeId(2), 2.5, 1.0).unwrap();
        assert!((min_cut(&g, NodeId(0), NodeId(2)) - 1.5).abs() < 1e-9);
    }

    #[test]
    fn reported_cut_capacity_equals_flow_value() {
        // Max-flow/min-cut duality on a graph with a non-trivial cut: the
        // capacity of edges crossing from `source_side` to its complement
        // must equal the flow value exactly.
        let mut g = Graph::with_nodes(6);
        let caps = [
            (0, 1, 3.0),
            (0, 2, 2.0),
            (1, 3, 1.0),
            (2, 3, 2.5),
            (1, 4, 1.5),
            (4, 5, 1.0),
            (3, 5, 3.0),
        ];
        for &(a, b, c) in &caps {
            g.add_edge(NodeId(a), NodeId(b), c, 1.0).unwrap();
        }
        let res = MaxFlow::new(&g).max_flow(NodeId(0), NodeId(5));
        let in_cut = |n: NodeId| res.source_side.contains(&n);
        let cut_capacity: f64 = g
            .edges()
            .map(|e| g.edge(e))
            .filter(|e| in_cut(e.src) && !in_cut(e.dst))
            .map(|e| e.capacity)
            .sum();
        assert!(
            (cut_capacity - res.value).abs() < 1e-9,
            "cut {cut_capacity} != flow {res_value}",
            res_value = res.value
        );
        assert!(in_cut(NodeId(0)));
        assert!(!in_cut(NodeId(5)));
    }

    #[test]
    fn tiny_capacities_do_not_vanish() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1), 1e-7, 1.0).unwrap();
        g.add_edge(NodeId(1), NodeId(2), 1e-7, 1.0).unwrap();
        let v = min_cut(&g, NodeId(0), NodeId(2));
        assert!((v - 1e-7).abs() < 1e-15, "value = {v}");
    }

    #[test]
    fn duplicate_sources_do_not_double_count() {
        let mut g = Graph::with_nodes(2);
        g.add_edge(NodeId(0), NodeId(1), 2.0, 1.0).unwrap();
        let res = MaxFlow::new(&g).max_flow_multi(&[NodeId(0), NodeId(0)], NodeId(1));
        assert!((res.value - 2.0).abs() < 1e-9, "value = {}", res.value);
    }

    #[test]
    fn antiparallel_edges_carry_independent_capacity() {
        // u <-> v as two directed edges with different capacities; flow in
        // each direction is limited by its own edge only.
        let mut g = Graph::with_nodes(2);
        g.add_edge(NodeId(0), NodeId(1), 3.0, 1.0).unwrap();
        g.add_edge(NodeId(1), NodeId(0), 1.0, 1.0).unwrap();
        assert!((min_cut(&g, NodeId(0), NodeId(1)) - 3.0).abs() < 1e-9);
        assert!((min_cut(&g, NodeId(1), NodeId(0)) - 1.0).abs() < 1e-9);
    }
}
