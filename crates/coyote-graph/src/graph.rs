//! Compact adjacency-list digraph with per-edge capacity and OSPF weight.
//!
//! The network model of the paper (Section III): a directed and capacitated
//! graph `G = (V, E)` where `c_e` denotes the capacity of edge `e`. Links of
//! real networks are bidirectional; they are modelled as two anti-parallel
//! directed edges, and [`Graph::add_bidirectional_edge`] inserts both at once
//! while remembering that they form a pair (useful when a DAG must pick an
//! orientation for a physical link).

use crate::error::GraphError;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Index of a node (router) in a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub usize);

/// Index of a directed edge (link direction) in a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EdgeId(pub usize);

impl NodeId {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl EdgeId {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// A directed edge: one direction of a physical link.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// Tail (the router the traffic leaves).
    pub src: NodeId,
    /// Head (the router the traffic enters).
    pub dst: NodeId,
    /// Capacity `c_e` (arbitrary rate units; utilisation = flow / capacity).
    pub capacity: f64,
    /// OSPF link weight (used by the shortest-path DAG heuristics).
    pub weight: f64,
    /// The anti-parallel twin edge if the physical link is bidirectional.
    pub reverse: Option<EdgeId>,
}

/// A directed, capacitated, weighted multigraph with named nodes.
///
/// Node and edge iteration order is insertion order, making every algorithm
/// built on top deterministic.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Graph {
    names: Vec<String>,
    name_index: HashMap<String, NodeId>,
    edges: Vec<Edge>,
    out_adj: Vec<Vec<EdgeId>>,
    in_adj: Vec<Vec<EdgeId>>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a graph with `n` anonymous nodes named `v0..v{n-1}`.
    pub fn with_nodes(n: usize) -> Self {
        let mut g = Self::new();
        for i in 0..n {
            g.add_node(format!("v{i}"))
                .expect("generated node names are unique");
        }
        g
    }

    /// Adds a node with a unique human-readable name and returns its id.
    pub fn add_node(&mut self, name: impl Into<String>) -> Result<NodeId, GraphError> {
        let name = name.into();
        if self.name_index.contains_key(&name) {
            return Err(GraphError::DuplicateNodeName(name));
        }
        let id = NodeId(self.names.len());
        self.name_index.insert(name.clone(), id);
        self.names.push(name);
        self.out_adj.push(Vec::new());
        self.in_adj.push(Vec::new());
        Ok(id)
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.names.len()
    }

    /// Number of directed edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Iterator over all node ids in insertion order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.names.len()).map(NodeId)
    }

    /// Iterator over all edge ids in insertion order.
    pub fn edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edges.len()).map(EdgeId)
    }

    /// Human-readable name of a node.
    pub fn node_name(&self, node: NodeId) -> &str {
        &self.names[node.index()]
    }

    /// Looks up a node by its name.
    pub fn node_by_name(&self, name: &str) -> Result<NodeId, GraphError> {
        self.name_index
            .get(name)
            .copied()
            .ok_or_else(|| GraphError::UnknownNodeName(name.to_string()))
    }

    fn check_node(&self, node: NodeId) -> Result<(), GraphError> {
        if node.index() >= self.node_count() {
            return Err(GraphError::InvalidNode {
                node: node.index(),
                node_count: self.node_count(),
            });
        }
        Ok(())
    }

    /// Adds a single directed edge and returns its id.
    pub fn add_edge(
        &mut self,
        src: NodeId,
        dst: NodeId,
        capacity: f64,
        weight: f64,
    ) -> Result<EdgeId, GraphError> {
        self.check_node(src)?;
        self.check_node(dst)?;
        if src == dst {
            return Err(GraphError::SelfLoop { node: src.index() });
        }
        if capacity.is_nan() || capacity <= 0.0 {
            return Err(GraphError::NonPositiveCapacity {
                src: src.index(),
                dst: dst.index(),
                capacity,
            });
        }
        let id = EdgeId(self.edges.len());
        self.edges.push(Edge {
            src,
            dst,
            capacity,
            weight,
            reverse: None,
        });
        self.out_adj[src.index()].push(id);
        self.in_adj[dst.index()].push(id);
        Ok(id)
    }

    /// Adds a bidirectional physical link as two anti-parallel directed edges
    /// sharing the same capacity and weight. Returns `(forward, backward)`.
    pub fn add_bidirectional_edge(
        &mut self,
        a: NodeId,
        b: NodeId,
        capacity: f64,
        weight: f64,
    ) -> Result<(EdgeId, EdgeId), GraphError> {
        let fwd = self.add_edge(a, b, capacity, weight)?;
        let bwd = self.add_edge(b, a, capacity, weight)?;
        self.edges[fwd.index()].reverse = Some(bwd);
        self.edges[bwd.index()].reverse = Some(fwd);
        Ok((fwd, bwd))
    }

    /// Returns the edge record.
    #[inline]
    pub fn edge(&self, edge: EdgeId) -> &Edge {
        &self.edges[edge.index()]
    }

    /// Mutable access to an edge (used to retune weights by the local search).
    #[inline]
    pub fn edge_mut(&mut self, edge: EdgeId) -> &mut Edge {
        &mut self.edges[edge.index()]
    }

    /// Endpoints `(src, dst)` of an edge.
    #[inline]
    pub fn endpoints(&self, edge: EdgeId) -> (NodeId, NodeId) {
        let e = self.edge(edge);
        (e.src, e.dst)
    }

    /// Capacity of an edge.
    #[inline]
    pub fn capacity(&self, edge: EdgeId) -> f64 {
        self.edge(edge).capacity
    }

    /// OSPF weight of an edge.
    #[inline]
    pub fn weight(&self, edge: EdgeId) -> f64 {
        self.edge(edge).weight
    }

    /// Sets the OSPF weight of an edge.
    pub fn set_weight(&mut self, edge: EdgeId, weight: f64) {
        self.edges[edge.index()].weight = weight;
    }

    /// Sets the OSPF weight of an edge and of its anti-parallel twin, if any.
    pub fn set_symmetric_weight(&mut self, edge: EdgeId, weight: f64) {
        self.edges[edge.index()].weight = weight;
        if let Some(rev) = self.edges[edge.index()].reverse {
            self.edges[rev.index()].weight = weight;
        }
    }

    /// Outgoing edges of a node.
    #[inline]
    pub fn out_edges(&self, node: NodeId) -> &[EdgeId] {
        &self.out_adj[node.index()]
    }

    /// Incoming edges of a node.
    #[inline]
    pub fn in_edges(&self, node: NodeId) -> &[EdgeId] {
        &self.in_adj[node.index()]
    }

    /// Finds the first directed edge `src -> dst`, if present.
    pub fn find_edge(&self, src: NodeId, dst: NodeId) -> Option<EdgeId> {
        self.out_adj[src.index()]
            .iter()
            .copied()
            .find(|&e| self.edge(e).dst == dst)
    }

    /// The anti-parallel twin of an edge, either the recorded pair or any
    /// directed edge running the opposite way.
    pub fn reverse_edge(&self, edge: EdgeId) -> Option<EdgeId> {
        let e = self.edge(edge);
        e.reverse.or_else(|| self.find_edge(e.dst, e.src))
    }

    /// Sets every link weight to the inverse of its capacity (Cisco's default
    /// OSPF recommendation, and the paper's *reverse capacities* heuristic).
    /// Weights are scaled so the largest is `scale`.
    pub fn set_inverse_capacity_weights(&mut self, scale: f64) {
        let min_cap = self
            .edges
            .iter()
            .map(|e| e.capacity)
            .fold(f64::INFINITY, f64::min);
        if !min_cap.is_finite() || min_cap <= 0.0 {
            return;
        }
        for e in &mut self.edges {
            e.weight = scale * min_cap / e.capacity;
        }
    }

    /// Sum of capacities on the outgoing edges of `node` (used by the gravity
    /// traffic model, which is proportional to total outgoing capacity).
    pub fn total_out_capacity(&self, node: NodeId) -> f64 {
        self.out_adj[node.index()]
            .iter()
            .map(|&e| self.edge(e).capacity)
            .sum()
    }

    /// True if `dst` is reachable from `src` following directed edges.
    pub fn is_reachable(&self, src: NodeId, dst: NodeId) -> bool {
        if src == dst {
            return true;
        }
        let mut seen = vec![false; self.node_count()];
        let mut stack = vec![src];
        seen[src.index()] = true;
        while let Some(u) = stack.pop() {
            for &e in self.out_edges(u) {
                let v = self.edge(e).dst;
                if v == dst {
                    return true;
                }
                if !seen[v.index()] {
                    seen[v.index()] = true;
                    stack.push(v);
                }
            }
        }
        false
    }

    /// True if every ordered pair of distinct nodes is connected by a
    /// directed path (strong connectivity).
    pub fn is_strongly_connected(&self) -> bool {
        if self.node_count() <= 1 {
            return true;
        }
        let root = NodeId(0);
        self.nodes()
            .all(|v| self.is_reachable(root, v) && self.is_reachable(v, root))
    }

    /// Returns a copy of this graph with the given directed edges removed.
    ///
    /// The node set (ids and names) is preserved unchanged — a router whose
    /// every link died stays in the graph as an isolated node — so `NodeId`s,
    /// demand matrices, and per-destination routings built against the
    /// original graph keep their dimensions. Surviving edges are re-added in
    /// insertion order, and anti-parallel `reverse` pairings are remapped to
    /// the new `EdgeId`s (a twin whose partner died loses its pairing).
    /// Duplicate or out-of-range ids in `failed` are ignored.
    pub fn without_edges(&self, failed: &[EdgeId]) -> Graph {
        let mut dead = vec![false; self.edge_count()];
        for &e in failed {
            if e.index() < dead.len() {
                dead[e.index()] = true;
            }
        }
        let mut pruned = Graph::new();
        for name in &self.names {
            pruned
                .add_node(name.clone())
                .expect("names were unique in the source graph");
        }
        // Map old EdgeId -> new EdgeId for the surviving edges, then fix up
        // the reverse pairings in a second pass.
        let mut remap: Vec<Option<EdgeId>> = vec![None; self.edge_count()];
        for (i, e) in self.edges.iter().enumerate() {
            if dead[i] {
                continue;
            }
            let new_id = pruned
                .add_edge(e.src, e.dst, e.capacity, e.weight)
                .expect("surviving edges were valid in the source graph");
            remap[i] = Some(new_id);
        }
        for (i, e) in self.edges.iter().enumerate() {
            let Some(new_id) = remap[i] else { continue };
            pruned.edges[new_id.index()].reverse = e.reverse.and_then(|twin| remap[twin.index()]);
        }
        pruned
    }

    /// A deterministic summary string used in reports (`name(nodes, edges)`),
    /// e.g. `Abilene(11 nodes, 28 edges)`.
    pub fn summary(&self, name: &str) -> String {
        format!(
            "{name}({} nodes, {} directed edges)",
            self.node_count(),
            self.edge_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        let mut g = Graph::new();
        let a = g.add_node("a").unwrap();
        let b = g.add_node("b").unwrap();
        let c = g.add_node("c").unwrap();
        g.add_bidirectional_edge(a, b, 10.0, 1.0).unwrap();
        g.add_bidirectional_edge(b, c, 5.0, 1.0).unwrap();
        g.add_bidirectional_edge(a, c, 2.0, 1.0).unwrap();
        g
    }

    #[test]
    fn builds_nodes_and_edges() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 6);
        assert_eq!(g.node_name(NodeId(0)), "a");
        assert_eq!(g.node_by_name("c").unwrap(), NodeId(2));
        assert!(g.node_by_name("zzz").is_err());
    }

    #[test]
    fn rejects_duplicate_names() {
        let mut g = Graph::new();
        g.add_node("a").unwrap();
        assert!(matches!(
            g.add_node("a"),
            Err(GraphError::DuplicateNodeName(_))
        ));
    }

    #[test]
    fn rejects_bad_edges() {
        let mut g = Graph::with_nodes(2);
        assert!(matches!(
            g.add_edge(NodeId(0), NodeId(0), 1.0, 1.0),
            Err(GraphError::SelfLoop { .. })
        ));
        assert!(matches!(
            g.add_edge(NodeId(0), NodeId(1), 0.0, 1.0),
            Err(GraphError::NonPositiveCapacity { .. })
        ));
        assert!(matches!(
            g.add_edge(NodeId(0), NodeId(1), -1.0, 1.0),
            Err(GraphError::NonPositiveCapacity { .. })
        ));
        assert!(matches!(
            g.add_edge(NodeId(0), NodeId(5), 1.0, 1.0),
            Err(GraphError::InvalidNode { .. })
        ));
    }

    #[test]
    fn bidirectional_edges_know_their_twin() {
        let g = triangle();
        let ab = g.find_edge(NodeId(0), NodeId(1)).unwrap();
        let ba = g.find_edge(NodeId(1), NodeId(0)).unwrap();
        assert_eq!(g.reverse_edge(ab), Some(ba));
        assert_eq!(g.reverse_edge(ba), Some(ab));
        assert_eq!(g.edge(ab).capacity, g.edge(ba).capacity);
    }

    #[test]
    fn adjacency_is_consistent() {
        let g = triangle();
        for e in g.edges() {
            let (u, v) = g.endpoints(e);
            assert!(g.out_edges(u).contains(&e));
            assert!(g.in_edges(v).contains(&e));
        }
        // Each node of the triangle has degree 2 in both directions.
        for v in g.nodes() {
            assert_eq!(g.out_edges(v).len(), 2);
            assert_eq!(g.in_edges(v).len(), 2);
        }
    }

    #[test]
    fn inverse_capacity_weights_follow_cisco_rule() {
        let mut g = triangle();
        g.set_inverse_capacity_weights(10.0);
        // Smallest capacity (2.0) gets the largest weight (scale = 10).
        let ac = g.find_edge(NodeId(0), NodeId(2)).unwrap();
        let ab = g.find_edge(NodeId(0), NodeId(1)).unwrap();
        assert!((g.weight(ac) - 10.0).abs() < 1e-12);
        assert!((g.weight(ab) - 2.0).abs() < 1e-12);
        // Weight is inversely proportional to capacity.
        assert!(g.weight(ab) < g.weight(ac));
    }

    #[test]
    fn symmetric_weight_updates_both_directions() {
        let mut g = triangle();
        let ab = g.find_edge(NodeId(0), NodeId(1)).unwrap();
        let ba = g.reverse_edge(ab).unwrap();
        g.set_symmetric_weight(ab, 7.5);
        assert_eq!(g.weight(ab), 7.5);
        assert_eq!(g.weight(ba), 7.5);
    }

    #[test]
    fn reachability_and_strong_connectivity() {
        let g = triangle();
        assert!(g.is_strongly_connected());
        let mut g2 = Graph::with_nodes(3);
        g2.add_edge(NodeId(0), NodeId(1), 1.0, 1.0).unwrap();
        g2.add_edge(NodeId(1), NodeId(2), 1.0, 1.0).unwrap();
        assert!(g2.is_reachable(NodeId(0), NodeId(2)));
        assert!(!g2.is_reachable(NodeId(2), NodeId(0)));
        assert!(!g2.is_strongly_connected());
    }

    #[test]
    fn total_out_capacity_sums_outgoing_links() {
        let g = triangle();
        // a has links to b (10) and c (2).
        assert!((g.total_out_capacity(NodeId(0)) - 12.0).abs() < 1e-12);
    }

    #[test]
    fn without_edges_preserves_nodes_and_remaps_twins() {
        let g = triangle();
        let ab = g.find_edge(NodeId(0), NodeId(1)).unwrap();
        let ba = g.reverse_edge(ab).unwrap();
        // Fail the whole a<->b link (both directions).
        let pruned = g.without_edges(&[ab, ba]);
        assert_eq!(pruned.node_count(), 3);
        assert_eq!(pruned.edge_count(), 4);
        assert!(pruned.find_edge(NodeId(0), NodeId(1)).is_none());
        assert!(pruned.find_edge(NodeId(1), NodeId(0)).is_none());
        // Surviving links keep their attributes and their twin pairing.
        let bc = pruned.find_edge(NodeId(1), NodeId(2)).unwrap();
        let cb = pruned.find_edge(NodeId(2), NodeId(1)).unwrap();
        assert_eq!(pruned.edge(bc).reverse, Some(cb));
        assert_eq!(pruned.edge(cb).reverse, Some(bc));
        assert_eq!(pruned.capacity(bc), 5.0);
        // Node names survive unchanged.
        assert_eq!(pruned.node_name(NodeId(2)), "c");
    }

    #[test]
    fn without_edges_can_isolate_a_node() {
        let g = triangle();
        // Fail every edge touching node b: the node stays, isolated.
        let touching_b: Vec<EdgeId> = g
            .edges()
            .filter(|&e| {
                let (u, v) = g.endpoints(e);
                u == NodeId(1) || v == NodeId(1)
            })
            .collect();
        let pruned = g.without_edges(&touching_b);
        assert_eq!(pruned.node_count(), 3);
        assert_eq!(pruned.edge_count(), 2);
        assert!(pruned.out_edges(NodeId(1)).is_empty());
        assert!(pruned.in_edges(NodeId(1)).is_empty());
        assert!(!pruned.is_strongly_connected());
        // a and c remain mutually reachable over the surviving a<->c link.
        assert!(pruned.is_reachable(NodeId(0), NodeId(2)));
        assert!(pruned.is_reachable(NodeId(2), NodeId(0)));
    }

    #[test]
    fn without_edges_one_direction_drops_the_twin_pairing() {
        let g = triangle();
        let ab = g.find_edge(NodeId(0), NodeId(1)).unwrap();
        let pruned = g.without_edges(&[ab]);
        assert_eq!(pruned.edge_count(), 5);
        let ba = pruned.find_edge(NodeId(1), NodeId(0)).unwrap();
        assert_eq!(pruned.edge(ba).reverse, None);
        // Out-of-range and duplicate ids are ignored.
        let same = g.without_edges(&[EdgeId(999), EdgeId(999)]);
        assert_eq!(same.edge_count(), g.edge_count());
    }

    #[test]
    fn summary_mentions_counts() {
        let g = triangle();
        let s = g.summary("triangle");
        assert!(s.contains("3 nodes"));
        assert!(s.contains("6 directed edges"));
    }
}
