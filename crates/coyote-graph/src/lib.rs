//! # coyote-graph
//!
//! Directed, capacitated graph substrate for the COYOTE traffic-engineering
//! reproduction ("Lying Your Way to Better Traffic Engineering", CoNEXT 2016).
//!
//! The paper models the network as a directed capacitated graph `G = (V, E)`
//! where `c_e` is the capacity of edge `e`, and routes traffic along
//! per-destination directed acyclic graphs (DAGs). This crate provides the
//! pieces every other crate builds on:
//!
//! * [`Graph`] — a compact adjacency-list digraph with per-edge capacity and
//!   OSPF-style weight, plus node names for human-readable reporting.
//! * [`spf`] — Dijkstra shortest paths, distances *towards* a destination and
//!   extraction of the shortest-path DAG rooted at a destination (the
//!   starting point of COYOTE's DAG construction, Section V-B Step I).
//! * [`dag`] — per-destination DAG representation with topological orders,
//!   acyclicity validation and reverse-topological traversal (the order in
//!   which splitting ratios and loads are propagated).
//! * [`maxflow`] — Dinic max-flow / min-cut, used to scale demand polytopes
//!   (the NP-hardness gadget of Theorem 1 relies on min-cuts) and to sanity
//!   check that demand matrices are routable at all.
//! * [`path`] — hop counts and average path length under a routing function,
//!   used by the Fig. 11 "path stretch" experiment.
//!
//! The crate is dependency-free (besides `serde` for persisting topologies)
//! and deterministic: iteration orders are fixed so that experiments are
//! reproducible run-to-run.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod dag;
pub mod error;
pub mod graph;
pub mod maxflow;
pub mod path;
pub mod spf;

pub use dag::Dag;
pub use error::GraphError;
pub use graph::{Edge, EdgeId, Graph, NodeId};
pub use spf::{ShortestPathDag, SpfResult};
