//! The thread-safe metrics/trace registry and the global sink.
//!
//! A [`Registry`] collects four kinds of data behind one mutex:
//!
//! * **counters** — monotonically increasing `u64` sums. Additions commute,
//!   so totals are bit-identical no matter how work is spread over threads.
//! * **gauges** — last-written `f64` values (use only for values that are
//!   set once per run, e.g. configuration, if determinism matters).
//! * **histograms** — log2-bucketed *value* distributions (pivots per
//!   solve, fake nodes per destination). Deterministic across thread
//!   counts for the same reason counters are.
//! * **timings** — log2-bucketed *duration* distributions in nanoseconds,
//!   fed by [`Span`](crate::Span) drops and explicit
//!   [`observe_duration`](crate::observe_duration) calls. Wall time is
//!   inherently non-deterministic, so these live in their own section and
//!   are excluded from [`Snapshot::deterministic`] comparisons.
//!
//! Nothing is collected unless a registry is installed as the global sink
//! via [`install`]; every recording entry point first checks
//! a relaxed atomic flag, so the disabled path costs one atomic load.

use crate::hist::{Histogram, HistogramSnapshot};
use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// One completed span, as stored in the trace buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span name (the stage taxonomy, e.g. `"conform.compile"`).
    pub name: &'static str,
    /// Trace lane: 0 for the first thread that recorded an event, then one
    /// lane per additional recording thread (maps to `tid` in chrome trace).
    pub lane: u32,
    /// Start time in nanoseconds since the registry was created.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Nesting depth at the time the span was opened (0 = top level).
    pub depth: u32,
}

#[derive(Default)]
struct State {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
    timings: BTreeMap<String, Histogram>,
    trace: Vec<TraceEvent>,
}

/// A thread-safe collector for counters, gauges, histograms, timings and
/// trace events. See the [module docs](self) for the data model.
pub struct Registry {
    id: u64,
    epoch: Instant,
    next_lane: AtomicU32,
    state: Mutex<State>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry").field("id", &self.id).finish()
    }
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

/// Registry ids start at 1 so the thread-local lane cache can use 0 for
/// "no lane assigned yet".
static NEXT_REGISTRY_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// `(registry id, lane)` for the current thread; invalidated when a
    /// different registry records from this thread.
    static LANE: Cell<(u64, u32)> = const { Cell::new((0, 0)) };
    /// Current span nesting depth on this thread.
    static DEPTH: Cell<u32> = const { Cell::new(0) };
}

impl Registry {
    /// A fresh, empty registry. Its creation instant is the epoch for all
    /// trace timestamps.
    pub fn new() -> Self {
        Self {
            id: NEXT_REGISTRY_ID.fetch_add(1, Ordering::Relaxed),
            epoch: Instant::now(),
            next_lane: AtomicU32::new(0),
            state: Mutex::new(State::default()),
        }
    }

    /// The instant all trace timestamps are relative to.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Adds `delta` to the counter `name`.
    pub fn counter(&self, name: &str, delta: u64) {
        let mut state = self.state.lock().expect("obs registry poisoned");
        *state.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Sets the gauge `name` to `value` (last write wins).
    pub fn gauge(&self, name: &str, value: f64) {
        let mut state = self.state.lock().expect("obs registry poisoned");
        state.gauges.insert(name.to_string(), value);
    }

    /// Records `value` into the (deterministic) value histogram `name`.
    pub fn observe(&self, name: &str, value: u64) {
        let mut state = self.state.lock().expect("obs registry poisoned");
        state
            .histograms
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    /// Records a duration of `nanos` into the timing histogram `name`.
    pub fn observe_duration(&self, name: &str, nanos: u64) {
        let mut state = self.state.lock().expect("obs registry poisoned");
        state
            .timings
            .entry(name.to_string())
            .or_default()
            .record(nanos);
    }

    /// The trace lane of the calling thread, assigning a fresh one on the
    /// first event this thread records against this registry.
    pub fn lane(&self) -> u32 {
        LANE.with(|cell| {
            let (registry_id, lane) = cell.get();
            if registry_id == self.id {
                lane
            } else {
                let fresh = self.next_lane.fetch_add(1, Ordering::Relaxed);
                cell.set((self.id, fresh));
                fresh
            }
        })
    }

    /// Records a completed span: one trace event on the caller's lane plus
    /// an observation in the `name` timing histogram.
    pub fn record_span(&self, name: &'static str, start_ns: u64, dur_ns: u64, depth: u32) {
        let lane = self.lane();
        let mut state = self.state.lock().expect("obs registry poisoned");
        state.trace.push(TraceEvent {
            name,
            lane,
            start_ns,
            dur_ns,
            depth,
        });
        state
            .timings
            .entry(name.to_string())
            .or_default()
            .record(dur_ns);
    }

    /// A copy of all trace events recorded so far, in completion order.
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.state
            .lock()
            .expect("obs registry poisoned")
            .trace
            .clone()
    }

    /// Captures the current counters/gauges/histograms/timings.
    pub fn snapshot(&self) -> Snapshot {
        let state = self.state.lock().expect("obs registry poisoned");
        Snapshot {
            counters: state.counters.clone(),
            gauges: state.gauges.clone(),
            histograms: state
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), HistogramSnapshot::of(v)))
                .collect(),
            timings: state
                .timings
                .iter()
                .map(|(k, v)| (k.clone(), HistogramSnapshot::of(v)))
                .collect(),
        }
    }

    pub(crate) fn enter_depth() -> u32 {
        DEPTH.with(|d| {
            let depth = d.get();
            d.set(depth + 1);
            depth
        })
    }

    pub(crate) fn exit_depth() {
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
    }
}

/// A point-in-time copy of a registry's metrics, with deterministic
/// (`BTreeMap`) key ordering in every section.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// Monotonic counters (deterministic across thread counts).
    pub counters: BTreeMap<String, u64>,
    /// Last-written gauges.
    pub gauges: BTreeMap<String, f64>,
    /// Value histograms (deterministic across thread counts).
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Duration histograms in nanoseconds (wall time: non-deterministic).
    pub timings: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// This snapshot with the non-deterministic `timings` section cleared —
    /// two profiled runs of the same workload compare equal under this view
    /// regardless of `--threads`.
    pub fn deterministic(&self) -> Snapshot {
        Snapshot {
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            histograms: self.histograms.clone(),
            timings: BTreeMap::new(),
        }
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static SINK: RwLock<Option<Arc<Registry>>> = RwLock::new(None);

/// True when a registry is installed as the global sink. One relaxed atomic
/// load: this is the entire cost of every obs call site when profiling is
/// off.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Installs `registry` as the global sink, replacing any previous one.
pub fn install(registry: Arc<Registry>) {
    *SINK.write().expect("obs sink poisoned") = Some(registry);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Removes the global sink (subsequent obs calls become no-ops) and returns
/// the registry that was installed, if any.
pub fn uninstall() -> Option<Arc<Registry>> {
    ENABLED.store(false, Ordering::Relaxed);
    SINK.write().expect("obs sink poisoned").take()
}

/// The currently installed registry, if any.
pub fn installed() -> Option<Arc<Registry>> {
    if !enabled() {
        return None;
    }
    SINK.read().expect("obs sink poisoned").clone()
}

/// Runs `f` against the installed registry; does nothing when disabled.
#[inline]
pub fn with_sink(f: impl FnOnce(&Registry)) {
    if !enabled() {
        return;
    }
    if let Some(registry) = SINK.read().expect("obs sink poisoned").as_ref() {
        f(registry);
    }
}
