//! Log2-bucketed histograms.
//!
//! Values are `u64` (counts, nanoseconds, quantized residuals). Bucket `0`
//! holds exactly the value `0`; bucket `i > 0` holds the half-open power-of-
//! two range `[2^(i-1), 2^i - 1]`, so bucket 1 is `{1}`, bucket 2 is
//! `{2, 3}`, bucket 64 is `[2^63, u64::MAX]`. Sixty-five buckets cover the
//! full `u64` domain with no overflow and no value left out, and recording
//! is a handful of integer ops — cheap enough for per-solve hot paths.

/// Number of buckets: one for zero plus one per bit position.
pub const BUCKETS: usize = 65;

/// Returns the bucket index for `value` (see module docs for the ranges).
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Lower bound of bucket `index`: 0 for bucket 0, `2^(index-1)` otherwise.
#[inline]
pub fn bucket_lower_bound(index: usize) -> u64 {
    if index == 0 {
        0
    } else {
        1u64 << (index - 1)
    }
}

/// A log2-bucketed histogram over `u64` values.
#[derive(Debug, Clone)]
pub struct Histogram {
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
    buckets: [u64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }

    /// Records one observation of `value`.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum += u128::from(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[bucket_index(value)] += 1;
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded values (u128: cannot overflow for any realistic
    /// number of u64 observations).
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest recorded value, or 0 for an empty histogram.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value, or 0 for an empty histogram.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The raw bucket counts, indexed by [`bucket_index`].
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// The non-empty buckets as `(lower_bound, count)` pairs, in increasing
    /// bucket order — the sparse form the exporters serialize.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_lower_bound(i), c))
            .collect()
    }
}

/// An immutable copy of a histogram, as captured by
/// [`Registry::snapshot`](crate::Registry::snapshot).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u128,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
    /// Sparse `(bucket lower bound, count)` pairs in increasing order.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Captures the current contents of `hist`.
    pub fn of(hist: &Histogram) -> Self {
        Self {
            count: hist.count(),
            sum: hist.sum(),
            min: hist.min(),
            max: hist.max(),
            buckets: hist.nonzero_buckets(),
        }
    }

    /// Mean of the observed values, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_goes_to_bucket_zero() {
        assert_eq!(bucket_index(0), 0);
        let mut h = Histogram::new();
        h.record(0);
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn exact_powers_of_two_start_their_own_bucket() {
        for bit in 0..64u32 {
            let v = 1u64 << bit;
            assert_eq!(bucket_index(v), bit as usize + 1, "value {v}");
            if v > 1 {
                assert_eq!(bucket_index(v - 1), bit as usize, "value {}", v - 1);
            }
            assert_eq!(bucket_lower_bound(bit as usize + 1), v);
        }
    }

    #[test]
    fn u64_max_lands_in_the_last_bucket() {
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.buckets()[BUCKETS - 1], 2);
        assert_eq!(h.sum(), 2 * u128::from(u64::MAX));
        assert_eq!(h.max(), u64::MAX);
    }

    #[test]
    fn snapshot_is_sparse_and_ordered() {
        let mut h = Histogram::new();
        for v in [0, 1, 1, 7, 1024] {
            h.record(v);
        }
        let snap = HistogramSnapshot::of(&h);
        assert_eq!(snap.count, 5);
        assert_eq!(snap.sum, 1033);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, 1024);
        assert_eq!(snap.buckets, vec![(0, 1), (1, 2), (4, 1), (1024, 1)]);
        assert!((snap.mean() - 1033.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let snap = HistogramSnapshot::of(&Histogram::new());
        assert_eq!(snap.count, 0);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, 0);
        assert!(snap.buckets.is_empty());
        assert_eq!(snap.mean(), 0.0);
    }
}
