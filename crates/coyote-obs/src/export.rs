//! Exporters: chrome://tracing JSON and flat metrics JSON/text.
//!
//! Both exporters are hand-rolled (the crate is dependency-free) and emit
//! keys in deterministic order: trace events are sorted by `(start, lane)`,
//! metric sections iterate `BTreeMap`s. Two profiled runs of the same
//! workload therefore produce diffable output, and the `counters` /
//! `histograms` sections are bit-identical across `--threads` values.

use crate::hist::HistogramSnapshot;
use crate::registry::{Registry, Snapshot, TraceEvent};
use std::fmt::Write as _;

/// Serializes the registry's trace buffer in the chrome://tracing "JSON
/// array" format (also accepted by Perfetto): one complete (`"ph": "X"`)
/// event per span, `pid` fixed at 1, one `tid` lane per recording thread,
/// timestamps in microseconds since the registry epoch.
pub fn chrome_trace_json(registry: &Registry) -> String {
    let mut events = registry.trace_events();
    events.sort_by_key(|e| (e.start_ns, e.lane, std::cmp::Reverse(e.dur_ns)));
    let mut out = String::with_capacity(events.len() * 96 + 64);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, event) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_trace_event(&mut out, event);
    }
    out.push_str("]}");
    out
}

fn write_trace_event(out: &mut String, event: &TraceEvent) {
    out.push_str("{\"name\":");
    write_json_string(out, event.name);
    let _ = write!(
        out,
        ",\"cat\":\"coyote\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\"args\":{{\"depth\":{}}}}}",
        event.lane,
        Micros(event.start_ns),
        Micros(event.dur_ns),
        event.depth
    );
}

/// Nanoseconds rendered as decimal microseconds with nanosecond precision.
struct Micros(u64);

impl std::fmt::Display for Micros {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let micros = self.0 / 1_000;
        let frac = self.0 % 1_000;
        if frac == 0 {
            write!(f, "{micros}")
        } else {
            write!(f, "{micros}.{frac:03}")
        }
    }
}

/// Serializes a metrics snapshot as pretty-printed JSON with four sections
/// (`counters`, `gauges`, `histograms`, `timings`), each with sorted keys.
///
/// `counters` and `histograms` record deterministic work quantities and
/// compare bit-identical across `--threads` values; `timings` holds wall
/// time and varies run to run — strip it (see
/// [`Snapshot::deterministic`]) before diffing two runs.
pub fn metrics_json(snapshot: &Snapshot) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\n  \"counters\": {");
    let mut first = true;
    for (name, value) in &snapshot.counters {
        push_entry_sep(&mut out, &mut first);
        write_json_string(&mut out, name);
        let _ = write!(out, ": {value}");
    }
    close_section(&mut out, first);
    out.push_str(",\n  \"gauges\": {");
    first = true;
    for (name, value) in &snapshot.gauges {
        push_entry_sep(&mut out, &mut first);
        write_json_string(&mut out, name);
        out.push_str(": ");
        write_json_f64(&mut out, *value);
    }
    close_section(&mut out, first);
    for (label, section) in [
        ("histograms", &snapshot.histograms),
        ("timings", &snapshot.timings),
    ] {
        let _ = write!(out, ",\n  \"{label}\": {{");
        first = true;
        for (name, hist) in section {
            push_entry_sep(&mut out, &mut first);
            write_json_string(&mut out, name);
            out.push_str(": ");
            write_histogram(&mut out, hist);
        }
        close_section(&mut out, first);
    }
    out.push_str("\n}\n");
    out
}

fn push_entry_sep(out: &mut String, first: &mut bool) {
    if *first {
        *first = false;
    } else {
        out.push(',');
    }
    out.push_str("\n    ");
}

fn close_section(out: &mut String, was_empty: bool) {
    if was_empty {
        out.push('}');
    } else {
        out.push_str("\n  }");
    }
}

fn write_histogram(out: &mut String, hist: &HistogramSnapshot) {
    let _ = write!(
        out,
        "{{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"buckets\": [",
        hist.count, hist.sum, hist.min, hist.max
    );
    for (i, (lo, count)) in hist.buckets.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "[{lo}, {count}]");
    }
    out.push_str("]}");
}

/// Serializes a metrics snapshot as flat `name value` text lines, one
/// metric per line, sections in the same order as [`metrics_json`] and
/// keys sorted within each section.
pub fn metrics_text(snapshot: &Snapshot) -> String {
    let mut out = String::with_capacity(2048);
    for (name, value) in &snapshot.counters {
        let _ = writeln!(out, "counter {name} {value}");
    }
    for (name, value) in &snapshot.gauges {
        let _ = writeln!(out, "gauge {name} {value}");
    }
    for (label, section) in [
        ("histogram", &snapshot.histograms),
        ("timing", &snapshot.timings),
    ] {
        for (name, hist) in section {
            let _ = writeln!(
                out,
                "{label} {name} count={} sum={} min={} max={} mean={:.3}",
                hist.count,
                hist.sum,
                hist.min,
                hist.max,
                hist.mean()
            );
        }
    }
    out
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_json_f64(out: &mut String, value: f64) {
    if value.is_finite() {
        let _ = write!(out, "{value}");
        // Bare integers are valid JSON numbers but ambiguous to some
        // consumers; keep them as-is (e.g. `2` for a thread count).
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn micros_formats_nanosecond_precision() {
        assert_eq!(Micros(0).to_string(), "0");
        assert_eq!(Micros(1_000).to_string(), "1");
        assert_eq!(Micros(1_234).to_string(), "1.234");
        assert_eq!(Micros(999).to_string(), "0.999");
    }

    #[test]
    fn json_strings_are_escaped() {
        let mut out = String::new();
        write_json_string(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn empty_registry_exports_empty_sections() {
        let registry = Registry::new();
        assert_eq!(
            chrome_trace_json(&registry),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}"
        );
        let json = metrics_json(&registry.snapshot());
        assert!(json.contains("\"counters\": {}"));
        assert!(json.contains("\"timings\": {}"));
    }

    #[test]
    fn metrics_json_orders_keys_deterministically() {
        let registry = Registry::new();
        registry.counter("z.last", 1);
        registry.counter("a.first", 2);
        registry.observe("m.hist", 3);
        registry.gauge("g.value", 0.5);
        let json = metrics_json(&Arc::new(registry).snapshot());
        let a = json.find("a.first").unwrap();
        let z = json.find("z.last").unwrap();
        assert!(a < z);
        assert!(json.contains("\"g.value\": 0.5"));
        assert!(json.contains("\"buckets\": [[2, 1]]"));
    }
}
