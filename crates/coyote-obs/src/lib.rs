//! # coyote-obs
//!
//! Zero-dependency observability for the COYOTE pipeline: hierarchical
//! timed spans, monotonic counters, gauges and log2-bucketed histograms
//! behind a thread-safe [`Registry`], with two exporters —
//! [`chrome_trace_json`] (open in chrome://tracing or Perfetto) and
//! [`metrics_json`] / [`metrics_text`] (flat, sorted, diffable).
//!
//! ## Zero cost when disabled
//!
//! All recording goes through a global sink that defaults to *absent*:
//! every free function here first checks a relaxed atomic flag and returns
//! immediately when no registry is installed. Hot paths (the simplex pivot
//! loop) additionally accumulate counts in plain local integers and report
//! once per solve, so enabling profiling does not perturb what it measures.
//!
//! ## Determinism
//!
//! `counters` and `histograms` record *work quantities* (pivots, LP solves,
//! fake nodes, flow-sim rounds). Totals are sums of per-item contributions
//! and addition commutes, so these sections are bit-identical across
//! `--threads` values. Wall time lives in the separate `timings` section
//! (and the trace); strip it via [`Snapshot::deterministic`] when
//! comparing runs.
//!
//! ```
//! use std::sync::Arc;
//!
//! let registry = Arc::new(coyote_obs::Registry::new());
//! coyote_obs::install(registry.clone());
//! {
//!     let _span = coyote_obs::span("demo.stage");
//!     coyote_obs::counter("demo.items", 3);
//!     coyote_obs::observe("demo.size", 128);
//! }
//! coyote_obs::uninstall();
//! let snapshot = registry.snapshot();
//! assert_eq!(snapshot.counters["demo.items"], 3);
//! assert_eq!(snapshot.timings["demo.stage"].count, 1);
//! let trace = coyote_obs::chrome_trace_json(&registry);
//! assert!(trace.contains("demo.stage"));
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod export;
pub mod hist;
pub mod registry;
pub mod span;

pub use export::{chrome_trace_json, metrics_json, metrics_text};
pub use hist::{bucket_index, bucket_lower_bound, Histogram, HistogramSnapshot, BUCKETS};
pub use registry::{enabled, install, installed, uninstall, Registry, Snapshot, TraceEvent};
pub use span::Span;

/// Adds `delta` to the counter `name`; no-op when profiling is disabled.
#[inline]
pub fn counter(name: &str, delta: u64) {
    registry::with_sink(|r| r.counter(name, delta));
}

/// Sets the gauge `name` to `value`; no-op when profiling is disabled.
#[inline]
pub fn gauge(name: &str, value: f64) {
    registry::with_sink(|r| r.gauge(name, value));
}

/// Records `value` into the deterministic value histogram `name`; no-op
/// when profiling is disabled.
#[inline]
pub fn observe(name: &str, value: u64) {
    registry::with_sink(|r| r.observe(name, value));
}

/// Records a duration into the (non-deterministic) timing histogram
/// `name`; no-op when profiling is disabled.
#[inline]
pub fn observe_duration(name: &str, duration: std::time::Duration) {
    registry::with_sink(|r| {
        r.observe_duration(name, u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX))
    });
}

/// Opens a timed span named `name`; the span closes (and records a trace
/// event plus a timing observation) when the returned guard drops. Inert
/// when profiling is disabled.
#[inline]
pub fn span(name: &'static str) -> Span {
    Span::open(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex, MutexGuard};

    /// The global sink is process-wide; tests that install a registry must
    /// not interleave.
    static SINK_LOCK: Mutex<()> = Mutex::new(());

    fn exclusive() -> MutexGuard<'static, ()> {
        SINK_LOCK
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    #[test]
    fn disabled_sink_records_nothing() {
        let _guard = exclusive();
        uninstall();
        assert!(!enabled());
        counter("ghost", 1);
        observe("ghost", 1);
        gauge("ghost", 1.0);
        observe_duration("ghost", std::time::Duration::from_millis(1));
        let span = span("ghost");
        assert!(!span.is_recording());
        drop(span);
        // Install a fresh registry afterwards: nothing from above leaked in.
        let registry = Arc::new(Registry::new());
        install(registry.clone());
        uninstall();
        let snapshot = registry.snapshot();
        assert!(snapshot.counters.is_empty());
        assert!(snapshot.histograms.is_empty());
        assert!(snapshot.gauges.is_empty());
        assert!(snapshot.timings.is_empty());
        assert!(registry.trace_events().is_empty());
    }

    #[test]
    fn install_routes_all_metric_kinds() {
        let _guard = exclusive();
        let registry = Arc::new(Registry::new());
        install(registry.clone());
        counter("c", 2);
        counter("c", 3);
        gauge("g", 1.25);
        observe("h", 7);
        observe_duration("t", std::time::Duration::from_nanos(1500));
        {
            let _outer = span("outer");
            let _inner = span("inner");
        }
        uninstall();
        assert!(!enabled());
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counters["c"], 5);
        assert_eq!(snapshot.gauges["g"], 1.25);
        assert_eq!(snapshot.histograms["h"].count, 1);
        assert_eq!(snapshot.timings["t"].sum, 1500);
        assert_eq!(snapshot.timings["outer"].count, 1);
        assert_eq!(snapshot.timings["inner"].count, 1);
        let events = registry.trace_events();
        assert_eq!(events.len(), 2);
        let outer = events.iter().find(|e| e.name == "outer").unwrap();
        let inner = events.iter().find(|e| e.name == "inner").unwrap();
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        assert_eq!(outer.lane, inner.lane);
        // The inner interval is contained in the outer one.
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns);
    }

    #[test]
    fn deterministic_view_drops_timings_only() {
        let _guard = exclusive();
        let registry = Arc::new(Registry::new());
        install(registry.clone());
        counter("work", 10);
        observe("sizes", 4);
        observe_duration("wall", std::time::Duration::from_micros(3));
        uninstall();
        let view = registry.snapshot().deterministic();
        assert_eq!(view.counters["work"], 10);
        assert_eq!(view.histograms["sizes"].count, 1);
        assert!(view.timings.is_empty());
    }

    #[test]
    fn threads_get_distinct_lanes() {
        let _guard = exclusive();
        let registry = Arc::new(Registry::new());
        install(registry.clone());
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    let _span = span("worker");
                });
            }
        });
        uninstall();
        let lanes: std::collections::BTreeSet<u32> =
            registry.trace_events().iter().map(|e| e.lane).collect();
        assert_eq!(lanes.len(), 3, "each thread gets its own lane");
    }
}
