//! RAII timed spans.
//!
//! [`span`](fn@crate::span) opens a span that closes when the guard drops,
//! recording a trace event on the calling thread's lane and an observation
//! in the span-name timing histogram. Spans nest naturally: a per-thread
//! depth counter tags each event with its nesting level, and chrome://
//! tracing reconstructs the hierarchy from the (start, duration) intervals
//! on each lane. When no registry is installed the guard is inert — no
//! clock read, no allocation.

use crate::registry::{installed, Registry};
use std::sync::Arc;
use std::time::Instant;

/// An RAII guard for a timed span; the span ends when the guard drops.
///
/// Created by [`span`](fn@crate::span). Inert (all drops are no-ops) when
/// profiling is disabled.
#[derive(Debug)]
#[must_use = "a span measures the scope it lives in; dropping it immediately records nothing useful"]
pub struct Span {
    inner: Option<SpanInner>,
}

#[derive(Debug)]
struct SpanInner {
    name: &'static str,
    registry: Arc<Registry>,
    start: Instant,
    depth: u32,
}

impl Span {
    /// Opens a span named `name` against the installed registry (inert when
    /// disabled).
    pub fn open(name: &'static str) -> Self {
        match installed() {
            Some(registry) => {
                let depth = Registry::enter_depth();
                Span {
                    inner: Some(SpanInner {
                        name,
                        registry,
                        start: Instant::now(),
                        depth,
                    }),
                }
            }
            None => Span { inner: None },
        }
    }

    /// True when this span is actually recording.
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            let dur_ns = clamp_ns(inner.start.elapsed().as_nanos());
            let start_ns = clamp_ns(
                inner
                    .start
                    .saturating_duration_since(inner.registry.epoch())
                    .as_nanos(),
            );
            inner
                .registry
                .record_span(inner.name, start_ns, dur_ns, inner.depth);
            Registry::exit_depth();
        }
    }
}

#[inline]
fn clamp_ns(nanos: u128) -> u64 {
    u64::try_from(nanos).unwrap_or(u64::MAX)
}
