//! Integration tests for the observability layer wired through the
//! conformance pipeline:
//!
//! * a profiled conformance run on Abilene exports a chrome://tracing
//!   trace that is valid JSON and whose span names cover every pipeline
//!   stage (compile → SPF → LP → flow simulation);
//! * the deterministic snapshot sections (counters + value histograms) are
//!   bit-identical between `threads = 1` and `threads = 2` — the property
//!   the CI profile smoke step asserts on the full artifacts.
//!
//! The vendored `serde_json` stand-in serializes only, so validity is
//! checked with a small recursive-descent JSON recognizer instead of a
//! parser round-trip.

use coyote_bench::conformance::DEFAULT_TOLERANCE;
use coyote_bench::{run_conformance, BaseModel, Effort, SweepGrid, WeightHeuristic};
use coyote_obs::{chrome_trace_json, install, metrics_json, uninstall, Registry};
use std::sync::{Arc, Mutex, MutexGuard};

/// The observability sink is process-global; tests that install a registry
/// must not run concurrently with each other.
static SINK_LOCK: Mutex<()> = Mutex::new(());

fn exclusive() -> MutexGuard<'static, ()> {
    SINK_LOCK
        .lock()
        .unwrap_or_else(|poison| poison.into_inner())
}

/// One conformance cell: Abilene × gravity at margin 2.0 — enough to
/// exercise compile, SPF, LP, CG and flow simulation.
fn abilene_grid() -> SweepGrid {
    SweepGrid::cross(
        &["Abilene"],
        &[BaseModel::Gravity],
        &[2.0],
        &[WeightHeuristic::InverseCapacity],
        Effort::Quick,
    )
}

/// Runs the Abilene conformance cell with a fresh registry installed and
/// returns the registry (caller must hold the sink lock).
fn profiled_run(threads: usize) -> Arc<Registry> {
    let registry = Arc::new(Registry::new());
    install(registry.clone());
    let report =
        run_conformance(&abilene_grid(), threads, DEFAULT_TOLERANCE).expect("conformance run");
    uninstall();
    assert_eq!(report.cells, 1);
    registry
}

/// Minimal recursive-descent JSON recognizer (RFC 8259 grammar, no value
/// construction): accepts exactly the strings that are one JSON value.
struct JsonChecker<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonChecker<'a> {
    fn new(text: &'a str) -> Self {
        JsonChecker {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                byte as char,
                self.pos,
                self.peek().map(|b| b as char)
            ))
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(format!("expected {word:?} at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.eat(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                other => return Err(format!("expected , or }} found {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.eat(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                other => return Err(format!("expected , or ] found {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.eat(b'"')?;
        while let Some(b) = self.peek() {
            self.pos += 1;
            match b {
                b'"' => return Ok(()),
                b'\\' => {
                    let esc = self.peek().ok_or("truncated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't' => {}
                        b'u' => {
                            for _ in 0..4 {
                                let h = self.peek().ok_or("truncated \\u escape")?;
                                if !h.is_ascii_hexdigit() {
                                    return Err(format!("bad \\u digit at byte {}", self.pos));
                                }
                                self.pos += 1;
                            }
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                0x00..=0x1f => return Err(format!("raw control byte in string at {}", self.pos)),
                _ => {}
            }
        }
        Err("unterminated string".into())
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = |c: &mut Self| -> Result<(), String> {
            let start = c.pos;
            while matches!(c.peek(), Some(b'0'..=b'9')) {
                c.pos += 1;
            }
            if c.pos == start {
                Err(format!("expected digit at byte {}", c.pos))
            } else {
                Ok(())
            }
        };
        digits(self)?;
        if self.peek() == Some(b'.') {
            self.pos += 1;
            digits(self)?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            digits(self)?;
        }
        Ok(())
    }
}

/// Asserts `text` is exactly one JSON value (plus surrounding whitespace).
fn assert_valid_json(text: &str, what: &str) {
    let mut checker = JsonChecker::new(text);
    checker
        .value()
        .unwrap_or_else(|e| panic!("{what} is not valid JSON: {e}"));
    checker.skip_ws();
    assert_eq!(
        checker.pos,
        text.len(),
        "{what} has trailing garbage after the JSON value"
    );
}

#[test]
fn json_checker_recognizes_the_grammar() {
    assert_valid_json(
        r#"{"a": [1, -2.5e3, "x\n\u00e9", true, null], "b": {}}"#,
        "sample",
    );
    for bad in ["{", "[1,]", "\"\\q\"", "01x", "{\"a\" 1}", "[] []"] {
        let mut checker = JsonChecker::new(bad);
        let complete = checker.value().is_ok() && {
            checker.skip_ws();
            checker.pos == bad.len()
        };
        assert!(!complete, "checker accepted invalid JSON {bad:?}");
    }
}

#[test]
fn chrome_trace_is_valid_json_and_covers_every_pipeline_stage() {
    let _guard = exclusive();
    let registry = profiled_run(1);

    let trace = chrome_trace_json(&registry);
    assert_valid_json(&trace, "chrome trace");
    assert!(trace.contains("\"traceEvents\""));
    assert!(trace.contains("\"ph\":\"X\""));

    // Every stage of the pipeline left at least one span in the trace.
    for stage in [
        "conform.cell",
        "conform.evaluate",
        "conform.verify",
        "conform.flowsim",
        "bench.evaluate_scenario",
        "core.optimize_splitting",
        "core.opt_mcf",
        "core.worst_case",
        "lp.solve",
        "ospf.compile",
        "ospf.spf",
        "sim.flowsim",
    ] {
        assert!(
            trace.contains(&format!("\"name\":\"{stage}\"")),
            "trace is missing pipeline stage {stage}"
        );
    }

    let metrics = metrics_json(&registry.snapshot());
    assert_valid_json(&metrics, "metrics snapshot");
    for section in [
        "\"counters\"",
        "\"gauges\"",
        "\"histograms\"",
        "\"timings\"",
    ] {
        assert!(
            metrics.contains(section),
            "metrics missing section {section}"
        );
    }
}

#[test]
fn deterministic_metrics_are_bit_identical_across_thread_counts() {
    let _guard = exclusive();
    let serial = profiled_run(1);
    let parallel = profiled_run(2);

    let serial_view = serial.snapshot().deterministic();
    let parallel_view = parallel.snapshot().deterministic();
    assert_eq!(
        metrics_json(&serial_view),
        metrics_json(&parallel_view),
        "deterministic metrics diverged between threads=1 and threads=2"
    );

    // The run did real work: the workload counters are non-trivial.
    for counter in [
        "lp.pivots",
        "lp.solves",
        "core.cg.rounds",
        "ospf.fake_nodes",
        "sim.flowsim.rounds",
        "runtime.pool.items",
    ] {
        assert!(
            serial_view.counters.get(counter).copied().unwrap_or(0) > 0,
            "counter {counter} was never incremented"
        );
    }
}
