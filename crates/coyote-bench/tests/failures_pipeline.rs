//! End-to-end pipeline test for the failure-scenario engine (ISSUE 7
//! acceptance): the Abilene single-link and single-node grids complete with
//! zero aborts, every cell yields a structured verdict, degradation ratios
//! are finite wherever the network stays connected, and the report is
//! bit-identical across thread counts.

use coyote_bench::{
    run_failures, BaseModel, CellOutcome, Effort, EventClass, FailureGrid, SweepGrid, SweepSpec,
    WeightHeuristic, DEFAULT_FAILURE_SEED,
};

fn abilene_grid(classes: EventClass) -> FailureGrid {
    let grid = SweepGrid {
        specs: vec![SweepSpec {
            topology: "Abilene".into(),
            model: BaseModel::Gravity,
            margin: 2.0,
            heuristic: WeightHeuristic::InverseCapacity,
            effort: Effort::Quick,
        }],
    };
    FailureGrid::build(&grid, classes, DEFAULT_FAILURE_SEED).expect("grid")
}

#[test]
fn abilene_single_link_grid_is_thread_count_invariant() {
    let grid = abilene_grid(EventClass::Link);
    assert_eq!(grid.len(), 14, "Abilene has 14 links");

    let serial = run_failures(&grid, 1, 0.05).expect("serial run");
    let parallel = run_failures(&grid, 4, 0.05).expect("parallel run");
    assert_eq!(serial.threads, 1);
    assert_eq!(parallel.threads, 4);
    assert_eq!(serial.records.len(), grid.len());
    assert_eq!(parallel.records.len(), grid.len());

    // Bit-identical across thread counts once wall-clock noise is zeroed.
    for (s, p) in serial.records.iter().zip(&parallel.records) {
        assert_eq!(
            s.deterministic_view(),
            p.deterministic_view(),
            "cell {} differs between 1 and 4 threads",
            s.cell
        );
    }

    // Abilene is 2-edge-connected: no single link failure loses demand, and
    // both modes must exist with a finite degradation ratio in every cell.
    for r in &serial.records {
        assert_eq!(r.dead_demand_volume, 0.0, "{}", r.cell);
        assert_eq!(r.unroutable_volume, 0.0, "{}", r.cell);
        let obl = r
            .oblivious
            .as_ref()
            .unwrap_or_else(|| panic!("cell {} lost its oblivious mode: {:?}", r.cell, r.outcome));
        let re = r.reoptimized.as_ref().unwrap_or_else(|| {
            panic!(
                "cell {} lost its re-optimized mode: {:?}",
                r.cell, r.outcome
            )
        });
        assert!(obl.max_utilization.is_finite() && obl.max_utilization > 0.0);
        assert!(re.max_utilization.is_finite() && re.max_utilization > 0.0);
        let ratio = r.degradation_ratio.expect("finite degradation ratio");
        assert!(
            ratio.is_finite() && ratio > 0.0,
            "{}: ratio {ratio}",
            r.cell
        );
        // The oblivious routing keeps all traffic flowing on a connected
        // residual topology.
        assert!(obl.sim.unrouted.abs() < 1e-9, "{}", r.cell);
    }
}

#[test]
fn abilene_single_node_grid_completes_with_structured_verdicts() {
    let grid = abilene_grid(EventClass::Node);
    assert_eq!(grid.len(), 11, "Abilene has 11 nodes");

    let report = run_failures(&grid, 4, 0.05).expect("node grid must not abort");
    assert_eq!(report.records.len(), grid.len());

    for r in &report.records {
        // A node failure kills that node's demand: the verdict must say so
        // rather than fail the run.
        assert!(
            matches!(r.outcome, CellOutcome::Unroutable { .. }),
            "cell {}: expected unroutable, got {:?}",
            r.cell,
            r.outcome
        );
        assert!(r.dead_demand_volume > 0.0, "{}", r.cell);
        // Graceful degradation: both modes still measured on the surviving
        // demand, with finite utilizations.
        for (name, mode) in [("oblivious", &r.oblivious), ("reoptimized", &r.reoptimized)] {
            let m = mode
                .as_ref()
                .unwrap_or_else(|| panic!("cell {} lost its {name} mode", r.cell));
            assert!(m.max_utilization.is_finite(), "{} {name}", r.cell);
            assert!(m.sim.drop_rate >= 0.0 && m.sim.drop_rate <= 1.0);
        }
    }

    // The reports are JSON-serializable end to end (the CLI contract).
    let json = serde_json::to_string(&report).expect("report serializes");
    assert!(json.contains("Unroutable"));
}
