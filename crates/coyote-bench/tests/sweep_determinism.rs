//! The core guarantee of the parallel sweep engine: thread count changes
//! wall-clock time, never results. A parallel sweep must produce exactly
//! the same `ProtocolRatios` — bit-for-bit, not approximately — as the
//! serial path, in the same (grid) order.

use coyote_bench::{margin_sweep, run_sweep, BaseModel, Effort, SweepGrid, WeightHeuristic};

fn small_grid() -> SweepGrid {
    SweepGrid::cross(
        &["Abilene", "NSF"],
        &[BaseModel::Gravity],
        &[1.0, 2.0],
        &[WeightHeuristic::InverseCapacity],
        Effort::Quick,
    )
}

#[test]
fn parallel_sweep_is_bit_identical_to_serial() {
    let grid = small_grid();
    let serial = run_sweep(&grid, 1).expect("serial sweep");
    let parallel = run_sweep(&grid, 4).expect("parallel sweep");

    assert_eq!(serial.threads, 1);
    assert_eq!(parallel.threads, 4);
    assert_eq!(serial.records.len(), grid.len());
    assert_eq!(parallel.records.len(), grid.len());

    for (s, p) in serial.records.iter().zip(&parallel.records) {
        // Same grid cell in the same position...
        assert_eq!(s.spec, p.spec);
        // ...and exactly the same numbers. `ProtocolRatios` derives
        // `PartialEq` over raw `f64`s, so this is bit-for-bit equality,
        // not an epsilon comparison.
        assert_eq!(s.ratios, p.ratios, "diverged on {}", s.spec.id());
    }
}

#[test]
fn margin_sweep_driver_is_thread_count_invariant() {
    let margins = [1.0, 2.0];
    let serial = margin_sweep(
        "Abilene",
        BaseModel::Gravity,
        WeightHeuristic::InverseCapacity,
        &margins,
        Effort::Quick,
        1,
    )
    .expect("serial margin sweep");
    let parallel = margin_sweep(
        "Abilene",
        BaseModel::Gravity,
        WeightHeuristic::InverseCapacity,
        &margins,
        Effort::Quick,
        4,
    )
    .expect("parallel margin sweep");
    assert_eq!(serial, parallel);
    // Rows come back in margin order.
    let got: Vec<f64> = serial.iter().map(|r| r.margin).collect();
    assert_eq!(got, margins);
}

#[test]
fn sweep_report_is_ordered_and_timed() {
    let grid = small_grid().filter("abilene");
    assert_eq!(grid.len(), 2);
    let report = run_sweep(&grid, 2).expect("sweep");
    assert_eq!(report.scenarios, 2);
    assert!(report.wall_secs > 0.0);
    for (spec, record) in grid.specs.iter().zip(&report.records) {
        assert_eq!(spec, &record.spec);
        assert!(record.wall_secs > 0.0);
    }
    // The report serializes (the CI smoke uploads it as an artifact).
    let json = serde_json::to_string_pretty(&report).expect("serialize");
    assert!(json.contains("\"records\""));
    assert!(json.contains("Abilene"));
}
