//! The conformance engine's end-to-end guarantees, following the pattern of
//! `sweep_determinism.rs`:
//!
//! * on real zoo topologies × both demand models, the configuration the
//!   Fibbing program realizes behaves like the intended optimized routing —
//!   matching DAGs, split error within tolerance, and intended-vs-realized
//!   max-utilization / drop-rate deltas within tolerance on both the base
//!   and the worst-case demand matrix;
//! * thread count changes wall-clock time only: a `threads = 4` conformance
//!   run is bit-identical to `threads = 1`, record for record;
//! * LP warm starts change wall-clock time only: the grid with phase-one
//!   replay enabled is bit-identical to the grid with it disabled.

use coyote_bench::conformance::DEFAULT_TOLERANCE;
use coyote_bench::{
    run_conformance, run_conformance_with, BaseModel, Effort, SweepGrid, WeightHeuristic,
};
use coyote_ospf::{CompressionLevel, DEFAULT_EPSILON};

fn small_grid() -> SweepGrid {
    SweepGrid::cross(
        &["Abilene", "NSF"],
        &[BaseModel::Gravity, BaseModel::Bimodal],
        &[2.0],
        &[WeightHeuristic::InverseCapacity],
        Effort::Quick,
    )
}

#[test]
fn realized_routing_conforms_on_abilene_and_nsf_under_both_models() {
    let grid = small_grid();
    assert_eq!(grid.len(), 4, "2 topologies x 2 models");
    let report = run_conformance(&grid, 0, DEFAULT_TOLERANCE).expect("conformance run");
    assert_eq!(report.cells, 4);

    for record in &report.records {
        let id = record.spec.id();
        assert!(record.dags_match, "{id}: realized DAGs diverged");
        assert!(
            record.faithful,
            "{id}: split error {} above tolerance",
            record.max_split_error
        );
        assert!(
            record.max_utilization_delta <= DEFAULT_TOLERANCE,
            "{id}: max-utilization delta {} above {DEFAULT_TOLERANCE}",
            record.max_utilization_delta
        );
        assert!(
            record.drop_rate_delta <= DEFAULT_TOLERANCE,
            "{id}: drop-rate delta {} above {DEFAULT_TOLERANCE}",
            record.drop_rate_delta
        );
        assert!(record.within_tolerance, "{id}: verdict failed");
        // The simulated steady states are physical: nothing over-delivered,
        // nothing over capacity.
        for mc in [&record.base, &record.worst] {
            for s in [&mc.intended, &mc.realized] {
                assert!(s.delivered <= s.offered + 1e-9, "{id}");
                assert!(s.max_utilization <= 1.0 + 1e-9, "{id}");
                assert!((0.0..=1.0).contains(&s.drop_rate), "{id}");
            }
        }
    }
    assert!(report.all_within_tolerance());
    assert_eq!(report.pass_count(), 4);
}

#[test]
fn parallel_conformance_is_bit_identical_to_serial() {
    let grid = small_grid();
    let serial = run_conformance(&grid, 1, DEFAULT_TOLERANCE).expect("serial run");
    let parallel = run_conformance(&grid, 4, DEFAULT_TOLERANCE).expect("parallel run");

    assert_eq!(serial.threads, 1);
    assert_eq!(parallel.threads, 4);
    assert_eq!(serial.records.len(), grid.len());
    assert_eq!(parallel.records.len(), grid.len());

    for (s, p) in serial.records.iter().zip(&parallel.records) {
        // Same grid cell in the same position, with exactly the same
        // numbers. The record types derive `PartialEq` over raw `f64`s, so
        // comparing through `deterministic_view` (which neutralizes the
        // only timing field) is bit-for-bit equality, not an epsilon
        // comparison. The CI bit-identity assertion compares the same view.
        assert_eq!(s.spec, p.spec);
        assert_eq!(
            s.deterministic_view(),
            p.deterministic_view(),
            "diverged on {}",
            s.spec.id()
        );
    }

    // The reports serialize (the CI smoke uploads one as an artifact).
    let json = serde_json::to_string_pretty(&parallel).expect("serialize");
    assert!(json.contains("\"records\""));
    assert!(json.contains("\"within_tolerance\""));
}

/// The `--compress` path is differential against the plain path: the same
/// grid compiled at `lossy(DEFAULT_EPSILON)` must keep every cell's
/// verdict while shrinking the lie programs by at least 10x in aggregate —
/// the end-to-end form of the per-program equivalence proved by
/// `coyote-ospf/tests/compress_props.rs`.
#[test]
fn compressed_conformance_keeps_verdicts_with_an_order_fewer_fakes() {
    let grid = small_grid();
    let plain = run_conformance(&grid, 1, DEFAULT_TOLERANCE).expect("plain run");
    let level = CompressionLevel::Lossy { epsilon: DEFAULT_EPSILON };
    let compressed = run_conformance_with(&grid, 1, DEFAULT_TOLERANCE, level).expect("lossy run");

    assert_eq!(plain.compression, "off");
    assert_eq!(compressed.compression, level.label());
    assert_eq!(plain.records.len(), compressed.records.len());

    for (p, c) in plain.records.iter().zip(&compressed.records) {
        let id = p.spec.id();
        assert_eq!(p.spec, c.spec);
        // Verdicts survive compression cell by cell, not just in aggregate.
        assert_eq!(
            p.within_tolerance, c.within_tolerance,
            "{id}: compression flipped the verdict"
        );
        assert!(c.dags_match, "{id}: compression changed the DAG support");
        assert!(
            c.max_split_error <= p.max_split_error.max(DEFAULT_EPSILON) + 1e-9,
            "{id}: compressed split error {} beyond max(plain {}, epsilon)",
            c.max_split_error,
            p.max_split_error
        );
        assert!(
            c.fake_nodes <= p.fake_nodes,
            "{id}: compression grew the program"
        );
        // The plain compiler never shares fakes, so its advertisement count
        // equals its fake count; the compressed one packs several prefixes
        // onto each fake.
        assert_eq!(p.prefix_advertisements, p.fake_nodes, "{id}");
        assert!(c.fake_nodes <= c.prefix_advertisements, "{id}");
    }

    let before = plain.total_fake_nodes();
    let after = compressed.total_fake_nodes();
    assert!(
        after * 10 <= before,
        "aggregate compression below 10x: {before} -> {after}"
    );
    assert!(compressed.all_within_tolerance());
}

/// Thread count stays timing-only under compression: a compressed
/// `threads = 4` run is bit-identical to `threads = 1`, record for record,
/// exactly like the uncompressed guarantee above.
#[test]
fn compressed_conformance_is_bit_identical_across_thread_counts() {
    let grid = small_grid();
    let level = CompressionLevel::Lossy { epsilon: DEFAULT_EPSILON };
    let serial = run_conformance_with(&grid, 1, DEFAULT_TOLERANCE, level).expect("serial run");
    let parallel = run_conformance_with(&grid, 4, DEFAULT_TOLERANCE, level).expect("parallel run");

    assert_eq!(serial.threads, 1);
    assert_eq!(parallel.threads, 4);
    for (s, p) in serial.records.iter().zip(&parallel.records) {
        assert_eq!(s.spec, p.spec);
        assert_eq!(
            s.deterministic_view(),
            p.deterministic_view(),
            "compressed run diverged on {}",
            s.spec.id()
        );
    }
}

/// The revised simplex's phase-one replay is engineered to be bit-identical
/// to cold solves (both paths renormalize at the phase boundary), so the
/// entire conformance grid must produce identical records with warm starts
/// on and off — the pipeline-level proof of the solver-level invariant
/// tested in `coyote-lp/tests/warm_start.rs`.
#[test]
fn conformance_grid_is_bit_identical_with_warm_starts_on_and_off() {
    let grid = small_grid();

    coyote_lp::set_warm_starts(false);
    let cold = run_conformance(&grid, 1, DEFAULT_TOLERANCE);
    coyote_lp::set_warm_starts(true);
    let cold = cold.expect("cold run");
    let warm = run_conformance(&grid, 1, DEFAULT_TOLERANCE).expect("warm run");

    for (c, w) in cold.records.iter().zip(&warm.records) {
        assert_eq!(c.spec, w.spec);
        assert_eq!(
            c.deterministic_view(),
            w.deterministic_view(),
            "warm starts changed the result on {}",
            c.spec.id()
        );
    }
}
