//! The conformance engine's end-to-end guarantees, following the pattern of
//! `sweep_determinism.rs`:
//!
//! * on real zoo topologies × both demand models, the configuration the
//!   Fibbing program realizes behaves like the intended optimized routing —
//!   matching DAGs, split error within tolerance, and intended-vs-realized
//!   max-utilization / drop-rate deltas within tolerance on both the base
//!   and the worst-case demand matrix;
//! * thread count changes wall-clock time only: a `threads = 4` conformance
//!   run is bit-identical to `threads = 1`, record for record;
//! * LP warm starts change wall-clock time only: the grid with phase-one
//!   replay enabled is bit-identical to the grid with it disabled.

use coyote_bench::conformance::DEFAULT_TOLERANCE;
use coyote_bench::{run_conformance, BaseModel, Effort, SweepGrid, WeightHeuristic};

fn small_grid() -> SweepGrid {
    SweepGrid::cross(
        &["Abilene", "NSF"],
        &[BaseModel::Gravity, BaseModel::Bimodal],
        &[2.0],
        &[WeightHeuristic::InverseCapacity],
        Effort::Quick,
    )
}

#[test]
fn realized_routing_conforms_on_abilene_and_nsf_under_both_models() {
    let grid = small_grid();
    assert_eq!(grid.len(), 4, "2 topologies x 2 models");
    let report = run_conformance(&grid, 0, DEFAULT_TOLERANCE).expect("conformance run");
    assert_eq!(report.cells, 4);

    for record in &report.records {
        let id = record.spec.id();
        assert!(record.dags_match, "{id}: realized DAGs diverged");
        assert!(
            record.faithful,
            "{id}: split error {} above tolerance",
            record.max_split_error
        );
        assert!(
            record.max_utilization_delta <= DEFAULT_TOLERANCE,
            "{id}: max-utilization delta {} above {DEFAULT_TOLERANCE}",
            record.max_utilization_delta
        );
        assert!(
            record.drop_rate_delta <= DEFAULT_TOLERANCE,
            "{id}: drop-rate delta {} above {DEFAULT_TOLERANCE}",
            record.drop_rate_delta
        );
        assert!(record.within_tolerance, "{id}: verdict failed");
        // The simulated steady states are physical: nothing over-delivered,
        // nothing over capacity.
        for mc in [&record.base, &record.worst] {
            for s in [&mc.intended, &mc.realized] {
                assert!(s.delivered <= s.offered + 1e-9, "{id}");
                assert!(s.max_utilization <= 1.0 + 1e-9, "{id}");
                assert!((0.0..=1.0).contains(&s.drop_rate), "{id}");
            }
        }
    }
    assert!(report.all_within_tolerance());
    assert_eq!(report.pass_count(), 4);
}

#[test]
fn parallel_conformance_is_bit_identical_to_serial() {
    let grid = small_grid();
    let serial = run_conformance(&grid, 1, DEFAULT_TOLERANCE).expect("serial run");
    let parallel = run_conformance(&grid, 4, DEFAULT_TOLERANCE).expect("parallel run");

    assert_eq!(serial.threads, 1);
    assert_eq!(parallel.threads, 4);
    assert_eq!(serial.records.len(), grid.len());
    assert_eq!(parallel.records.len(), grid.len());

    for (s, p) in serial.records.iter().zip(&parallel.records) {
        // Same grid cell in the same position, with exactly the same
        // numbers. The record types derive `PartialEq` over raw `f64`s, so
        // comparing through `deterministic_view` (which neutralizes the
        // only timing field) is bit-for-bit equality, not an epsilon
        // comparison. The CI bit-identity assertion compares the same view.
        assert_eq!(s.spec, p.spec);
        assert_eq!(
            s.deterministic_view(),
            p.deterministic_view(),
            "diverged on {}",
            s.spec.id()
        );
    }

    // The reports serialize (the CI smoke uploads one as an artifact).
    let json = serde_json::to_string_pretty(&parallel).expect("serialize");
    assert!(json.contains("\"records\""));
    assert!(json.contains("\"within_tolerance\""));
}

/// The revised simplex's phase-one replay is engineered to be bit-identical
/// to cold solves (both paths renormalize at the phase boundary), so the
/// entire conformance grid must produce identical records with warm starts
/// on and off — the pipeline-level proof of the solver-level invariant
/// tested in `coyote-lp/tests/warm_start.rs`.
#[test]
fn conformance_grid_is_bit_identical_with_warm_starts_on_and_off() {
    let grid = small_grid();

    coyote_lp::set_warm_starts(false);
    let cold = run_conformance(&grid, 1, DEFAULT_TOLERANCE);
    coyote_lp::set_warm_starts(true);
    let cold = cold.expect("cold run");
    let warm = run_conformance(&grid, 1, DEFAULT_TOLERANCE).expect("warm run");

    for (c, w) in cold.records.iter().zip(&warm.records) {
        assert_eq!(c.spec, w.spec);
        assert_eq!(
            c.deterministic_view(),
            w.deterministic_view(),
            "warm starts changed the result on {}",
            c.spec.id()
        );
    }
}
