//! End-to-end pipeline benchmarks: the full COYOTE optimization (DAG
//! construction + splitting optimization) and the Fibbing translation on the
//! running example and on Abilene.

use coyote_core::example_fig1;
use coyote_core::prelude::*;
use coyote_ospf::{compute_program, VirtualLinkBudget};
use coyote_topology::zoo;
use coyote_traffic::{GravityModel, UncertaintySet};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_pipeline(c: &mut Criterion) {
    c.bench_function("coyote_end_to_end_fig1", |b| {
        let (graph, nodes) = example_fig1::topology();
        let unc = example_fig1::uncertainty(&nodes);
        b.iter(|| {
            let result = coyote(&graph, &unc, None, &CoyoteConfig::fast()).unwrap();
            criterion::black_box(result.working_set_ratio)
        })
    });

    c.bench_function("coyote_end_to_end_abilene_quick", |b| {
        let graph = {
            let mut g = zoo::abilene().to_graph().unwrap();
            g.set_inverse_capacity_weights(10.0);
            g
        };
        let base = GravityModel::default().generate(&graph);
        let unc = UncertaintySet::from_margin(&base, 2.0);
        let cfg = CoyoteConfig {
            cg_rounds: 1,
            adam_iterations: 300,
            evaluation: EvaluationOptions {
                corners: 4,
                samples: 2,
                spikes: 2,
                seed: 7,
            },
            ..CoyoteConfig::fast()
        };
        b.iter(|| {
            let result = coyote(&graph, &unc, Some(&base), &cfg).unwrap();
            criterion::black_box(result.working_set_ratio)
        })
    });

    c.bench_function("fibbing_translation_abilene", |b| {
        let mut graph = zoo::abilene().to_graph().unwrap();
        graph.set_inverse_capacity_weights(10.0);
        let target = uniform_augmented_routing(&graph).unwrap();
        b.iter(|| {
            let program =
                compute_program(&graph, &target, VirtualLinkBudget::per_prefix(5)).unwrap();
            criterion::black_box(program.stats.fake_nodes)
        })
    });
}

criterion_group! {
    name = pipeline;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_pipeline
}
criterion_main!(pipeline);
