//! Micro-benchmarks of the pipeline's computational kernels: shortest-path
//! DAG extraction, max-flow, the LP solver on an `OPTU` instance, the exact
//! slave LP, and one splitting-optimization inner step.

use coyote_core::prelude::*;
use coyote_core::worst_case::FractionTable;
use coyote_graph::maxflow::MaxFlow;
use coyote_graph::spf::shortest_path_dag;
use coyote_graph::NodeId;
use coyote_topology::zoo;
use coyote_traffic::{GravityModel, UncertaintySet};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

fn bench_kernels(c: &mut Criterion) {
    let topo = zoo::abilene();
    let graph = topo.to_graph().unwrap();
    let base = GravityModel::default().generate(&graph);
    let uncertainty = UncertaintySet::from_margin(&base, 2.0);

    c.bench_function("spf_dag_abilene_all_destinations", |b| {
        b.iter(|| {
            for t in graph.nodes() {
                let dag = shortest_path_dag(&graph, t);
                criterion::black_box(dag.reachable_count());
            }
        })
    });

    c.bench_function("maxflow_abilene_corner_to_corner", |b| {
        b.iter(|| {
            let res = MaxFlow::new(&graph).max_flow(NodeId(0), NodeId(10));
            criterion::black_box(res.value)
        })
    });

    c.bench_function("optu_lp_abilene_gravity", |b| {
        b.iter(|| criterion::black_box(optu(&graph, &base).unwrap()))
    });

    let dags = build_all_dags(&graph, DagMode::Augmented).unwrap();
    c.bench_function("optu_within_dags_abilene_gravity", |b| {
        b.iter(|| criterion::black_box(optu_within_dags(&graph, &dags, &base).unwrap()))
    });

    let ecmp = ecmp_routing(&graph).unwrap();
    c.bench_function("slave_lp_worst_case_single_edge", |b| {
        let fractions = FractionTable::new(&graph, &ecmp);
        let edge = graph.edges().next().unwrap();
        b.iter(|| {
            let wc = coyote_core::worst_case::worst_case_for_edge(
                &graph,
                &ecmp,
                &fractions,
                edge,
                &uncertainty,
                RoutabilityScope::WithinDags,
            )
            .unwrap();
            criterion::black_box(wc.map(|(_, r)| r))
        })
    });

    c.bench_function("edge_loads_abilene_gravity", |b| {
        b.iter_batched(
            || base.clone(),
            |dm| criterion::black_box(ecmp.max_link_utilization(&graph, &dm)),
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = kernels;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_kernels
}
criterion_main!(kernels);
