//! Ablation: what does DAG augmentation (Section V-B, Step II) buy?
//!
//! Compares, on the same evaluation family, the worst-case performance of
//! uniform splitting over the plain shortest-path DAGs (ECMP) versus uniform
//! splitting over the augmented DAGs versus fully optimized COYOTE. The
//! benchmark both times the three configurations and prints their ratios
//! once, so `cargo bench` doubles as the ablation report.

use coyote_core::prelude::*;
use coyote_topology::zoo;
use coyote_traffic::{GravityModel, UncertaintySet};
use criterion::{criterion_group, criterion_main, Criterion};

fn setup() -> (
    coyote_graph::Graph,
    coyote_traffic::DemandMatrix,
    UncertaintySet,
    EvaluationSet,
) {
    let mut graph = zoo::abilene().to_graph().unwrap();
    graph.set_inverse_capacity_weights(10.0);
    let base = GravityModel::default().generate(&graph);
    let unc = UncertaintySet::from_margin(&base, 2.5);
    let dags = build_all_dags(&graph, DagMode::Augmented).unwrap();
    let eval = EvaluationSet::build(
        &graph,
        &dags,
        &unc,
        Some(&base),
        &EvaluationOptions {
            corners: 6,
            samples: 2,
            spikes: 3,
            seed: 11,
        },
    )
    .unwrap();
    (graph, base, unc, eval)
}

fn bench_ablation_augment(c: &mut Criterion) {
    let (graph, base, unc, eval) = setup();

    // One-shot report printed alongside the timings.
    let ecmp = ecmp_routing(&graph).unwrap();
    let augmented = uniform_augmented_routing(&graph).unwrap();
    let cfg = CoyoteConfig::fast();
    let optimized = coyote(&graph, &unc, Some(&base), &cfg).unwrap();
    println!(
        "[ablation:augment] Abilene margin 2.5 — ECMP {:.3}, uniform augmented {:.3}, COYOTE {:.3}",
        eval.performance_ratio(&graph, &ecmp),
        eval.performance_ratio(&graph, &augmented),
        eval.performance_ratio(&graph, &optimized.routing),
    );

    c.bench_function("ablation_ecmp_shortest_path_dags", |b| {
        b.iter(|| {
            let r = ecmp_routing(&graph).unwrap();
            criterion::black_box(eval.performance_ratio(&graph, &r))
        })
    });

    c.bench_function("ablation_uniform_augmented_dags", |b| {
        b.iter(|| {
            let r = uniform_augmented_routing(&graph).unwrap();
            criterion::black_box(eval.performance_ratio(&graph, &r))
        })
    });

    c.bench_function("ablation_full_coyote_optimization", |b| {
        b.iter(|| {
            let r = coyote(&graph, &unc, Some(&base), &cfg).unwrap();
            criterion::black_box(eval.performance_ratio(&graph, &r.routing))
        })
    });
}

criterion_group! {
    name = ablation_augment;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_ablation_augment
}
criterion_main!(ablation_augment);
