//! Serial versus parallel sweep over a small scenario grid.
//!
//! The two benchmarks run the *same* grid (two small backbones × both base
//! models × two margins, quick effort) through `run_sweep` with one worker
//! and with four, so comparing their wall-clock times is a direct read on
//! the scenario-sweep engine's speedup. `BENCH_sweep.json` at the repo
//! root records a measured baseline for the trajectory.

use coyote_bench::{run_sweep, BaseModel, Effort, SweepGrid, WeightHeuristic};
use criterion::{criterion_group, criterion_main, Criterion};

fn small_grid() -> SweepGrid {
    SweepGrid::cross(
        &["Abilene", "NSF"],
        &[BaseModel::Gravity, BaseModel::Bimodal],
        &[1.0, 2.0],
        &[WeightHeuristic::InverseCapacity],
        Effort::Quick,
    )
}

fn bench_sweep(c: &mut Criterion) {
    let grid = small_grid();

    c.bench_function("sweep_8_scenarios_serial", |b| {
        b.iter(|| criterion::black_box(run_sweep(&grid, 1).unwrap()))
    });

    c.bench_function("sweep_8_scenarios_4_threads", |b| {
        b.iter(|| criterion::black_box(run_sweep(&grid, 4).unwrap()))
    });
}

criterion_group! {
    name = sweep;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_sweep
}
criterion_main!(sweep);
