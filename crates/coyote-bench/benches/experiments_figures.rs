//! One benchmark per paper artefact: times a reduced version of every table
//! and figure driver so regressions in any experiment path are caught. The
//! margin-sweep drivers are exercised on the smaller backbones (NSF, Digex,
//! Abilene) so that `cargo bench` stays in the minutes range; the figure
//! binaries themselves use the paper's topologies.
//!
//! These are wall-clock heavy (each iteration runs LPs and the splitting
//! optimizer), so the sample counts are kept at Criterion's minimum. The
//! multi-scenario drivers are pinned to one worker thread here so timings
//! stay comparable across machines; the `sweep` bench measures the
//! parallel speedup explicitly.

use coyote_bench::{
    fig10_approximation, fig11_stretch, fig12_prototype, fig1_running_example, margin_sweep,
    table1, theorem1_gadget, theorem4_lower_bound, BaseModel, Effort, WeightHeuristic,
};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_figures(c: &mut Criterion) {
    c.bench_function("fig1_running_example", |b| {
        b.iter(|| criterion::black_box(fig1_running_example().unwrap()))
    });

    c.bench_function("theorem1_gadget", |b| {
        b.iter(|| criterion::black_box(theorem1_gadget(&[1.0, 2.0, 3.0]).unwrap()))
    });

    c.bench_function("theorem4_lower_bound_n8", |b| {
        b.iter(|| criterion::black_box(theorem4_lower_bound(8).unwrap()))
    });

    c.bench_function("fig6_driver_single_margin_quick_nsf", |b| {
        b.iter(|| {
            criterion::black_box(
                margin_sweep(
                    "NSF",
                    BaseModel::Gravity,
                    WeightHeuristic::InverseCapacity,
                    &[2.0],
                    Effort::Quick,
                    1,
                )
                .unwrap(),
            )
        })
    });

    c.bench_function("fig8_driver_single_margin_quick_digex", |b| {
        b.iter(|| {
            criterion::black_box(
                margin_sweep(
                    "Digex",
                    BaseModel::Bimodal,
                    WeightHeuristic::InverseCapacity,
                    &[2.0],
                    Effort::Quick,
                    1,
                )
                .unwrap(),
            )
        })
    });

    c.bench_function("fig9_abilene_local_search_quick", |b| {
        b.iter(|| {
            criterion::black_box(
                margin_sweep(
                    "Abilene",
                    BaseModel::Bimodal,
                    WeightHeuristic::LocalSearch,
                    &[2.0],
                    Effort::Quick,
                    1,
                )
                .unwrap(),
            )
        })
    });

    c.bench_function("fig10_approximation_abilene_quick", |b| {
        b.iter(|| criterion::black_box(fig10_approximation("Abilene", 2.0, Effort::Quick).unwrap()))
    });

    c.bench_function("fig11_stretch_abilene_nsf_quick", |b| {
        b.iter(|| {
            criterion::black_box(fig11_stretch(&["Abilene", "NSF"], Effort::Quick, 1).unwrap())
        })
    });

    c.bench_function("fig12_prototype", |b| {
        b.iter(|| criterion::black_box(fig12_prototype()))
    });

    c.bench_function("table1_single_cell_abilene_quick", |b| {
        b.iter(|| {
            criterion::black_box(
                table1(&["Abilene"], &[2.0], BaseModel::Gravity, Effort::Quick, 1).unwrap(),
            )
        })
    });
}

criterion_group! {
    name = figures;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_figures
}
criterion_main!(figures);
