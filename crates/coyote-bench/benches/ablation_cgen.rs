//! Ablation: constraint generation versus single-shot optimization.
//!
//! COYOTE's splitting optimizer alternates between optimizing over a finite
//! working set of demand matrices and asking the exact LP adversary for a
//! new worst case (the practical twin of the paper's dualization). This
//! ablation compares one round (no adversarial feedback) against the full
//! loop, both in runtime and in the achieved worst-case ratio.

use coyote_core::prelude::*;
use coyote_topology::zoo;
use coyote_traffic::{GravityModel, UncertaintySet};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_ablation_cgen(c: &mut Criterion) {
    let mut graph = zoo::nsf().to_graph().unwrap();
    graph.set_inverse_capacity_weights(10.0);
    let base = GravityModel::default().generate(&graph);
    let unc = UncertaintySet::from_margin(&base, 2.0);

    let single_shot = CoyoteConfig {
        cg_rounds: 1,
        adam_iterations: 600,
        ..CoyoteConfig::fast()
    };
    let with_cgen = CoyoteConfig {
        cg_rounds: 3,
        cg_candidate_edges: 2,
        adam_iterations: 600,
        ..CoyoteConfig::fast()
    };

    // One-shot report: exact worst case of both variants.
    let a = coyote(&graph, &unc, Some(&base), &single_shot).unwrap();
    let b = coyote(&graph, &unc, Some(&base), &with_cgen).unwrap();
    let exact_a =
        performance_ratio_exact(&graph, &a.routing, &unc, RoutabilityScope::WithinDags, None)
            .unwrap()
            .ratio;
    let exact_b =
        performance_ratio_exact(&graph, &b.routing, &unc, RoutabilityScope::WithinDags, None)
            .unwrap()
            .ratio;
    println!(
        "[ablation:cgen] NSF margin 2.0 — single-shot exact ratio {exact_a:.3}, with constraint generation {exact_b:.3}"
    );

    c.bench_function("ablation_single_shot_optimization", |bch| {
        bch.iter(|| {
            let r = coyote(&graph, &unc, Some(&base), &single_shot).unwrap();
            criterion::black_box(r.working_set_ratio)
        })
    });

    c.bench_function("ablation_constraint_generation", |bch| {
        bch.iter(|| {
            let r = coyote(&graph, &unc, Some(&base), &with_cgen).unwrap();
            criterion::black_box(r.working_set_ratio)
        })
    });
}

criterion_group! {
    name = ablation_cgen;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_ablation_cgen
}
criterion_main!(ablation_cgen);
