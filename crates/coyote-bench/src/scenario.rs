//! Scenario specification and the four-protocol evaluation shared by every
//! figure and by Table I.
//!
//! A *scenario* is a topology, a base demand-matrix model, an uncertainty
//! margin and a link-weight heuristic. Evaluating a scenario produces the
//! performance ratio (worst case over the evaluation family, normalized by
//! the demands-aware optimum within the same DAGs) of the four protocols the
//! paper compares:
//!
//! 1. traditional TE with ECMP,
//! 2. **Base**: the optimal demands-aware routing for the base matrix,
//!    re-evaluated across the uncertainty set,
//! 3. **COYOTE (oblivious)**: splitting ratios optimized with no knowledge
//!    of the demands,
//! 4. **COYOTE (partial knowledge)**: splitting ratios optimized for the
//!    margin box.

use coyote_core::prelude::*;
use coyote_graph::Graph;
use coyote_topology::{zoo, Topology};
use coyote_traffic::{BimodalModel, DemandMatrix, GravityModel, UncertaintySet};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// Base demand-matrix model (Section VI-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BaseModel {
    /// Gravity model \[22\].
    Gravity,
    /// Bimodal model \[23\].
    Bimodal,
}

impl BaseModel {
    /// Generates the base matrix for a graph.
    pub fn generate(self, graph: &Graph) -> DemandMatrix {
        match self {
            BaseModel::Gravity => GravityModel::default().generate(graph),
            BaseModel::Bimodal => BimodalModel::default().generate(graph),
        }
    }

    /// Generates the base matrix for a named topology, memoizing the result.
    ///
    /// Both models derive their demands from the node count, the link
    /// capacities and the model's own (fixed) parameters — never from the
    /// link weights — so within one process every scenario that shares a
    /// (topology, model) pair shares one matrix. A sweep over the margin
    /// grid would otherwise re-run the identical gravity/bimodal generation
    /// for every margin and every protocol evaluation. The cache is
    /// thread-safe; parallel sweep workers hit it concurrently.
    pub fn generate_cached(self, topology_name: &str, graph: &Graph) -> DemandMatrix {
        // The matrix depends on the graph only through its size and link
        // capacities, so those (as a fingerprint) are the cache key — a
        // hand-built topology that reuses a zoo name with different
        // capacities can never be served a stale matrix.
        let key = (topology_name.to_string(), capacity_fingerprint(graph), self);
        // Hold the lock across the miss so concurrent workers can never
        // generate the same matrix twice: generation is exactly-once per
        // key, which also keeps the profiled generation count deterministic
        // across `--threads` values.
        let mut cache = base_matrix_cache().lock().unwrap();
        if let Some(dm) = cache.get(&key) {
            return dm.clone();
        }
        let dm = self.generate(graph);
        coyote_obs::counter("bench.base_matrices_generated", 1);
        cache.insert(key, dm.clone());
        dm
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            BaseModel::Gravity => "gravity",
            BaseModel::Bimodal => "bimodal",
        }
    }
}

type BaseMatrixKey = (String, u64, BaseModel);

/// Process-wide memo for [`BaseModel::generate_cached`].
fn base_matrix_cache() -> &'static Mutex<HashMap<BaseMatrixKey, DemandMatrix>> {
    static CACHE: OnceLock<Mutex<HashMap<BaseMatrixKey, DemandMatrix>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Hash of everything the demand models read from a graph: node count and
/// the per-edge (endpoints, capacity) list. Weights are deliberately
/// excluded — the heuristics rewrite them without affecting demands.
fn capacity_fingerprint(graph: &Graph) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    graph.node_count().hash(&mut h);
    for e in graph.edges() {
        let (u, v) = graph.endpoints(e);
        u.index().hash(&mut h);
        v.index().hash(&mut h);
        graph.capacity(e).to_bits().hash(&mut h);
    }
    h.finish()
}

/// Link-weight heuristic for the DAG construction (Section V-B Step I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WeightHeuristic {
    /// Weights inversely proportional to capacities (Cisco default).
    InverseCapacity,
    /// The local-search heuristic of Appendix A.
    LocalSearch,
}

impl WeightHeuristic {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            WeightHeuristic::InverseCapacity => "reverse-capacities",
            WeightHeuristic::LocalSearch => "local-search",
        }
    }
}

/// Effort level of a run: `Quick` keeps every experiment to seconds-to-
/// minutes on a laptop; `Full` uses the paper's full sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Effort {
    /// Reduced working sets / optimizer budgets.
    Quick,
    /// The paper-scale configuration.
    Full,
}

/// A fully specified experiment scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The topology under test.
    pub topology: Topology,
    /// Base traffic model.
    pub model: BaseModel,
    /// Uncertainty margin (≥ 1).
    pub margin: f64,
    /// Link-weight heuristic.
    pub heuristic: WeightHeuristic,
    /// Effort level.
    pub effort: Effort,
}

impl Scenario {
    /// Convenience constructor using a topology registered in the zoo.
    pub fn from_zoo(
        name: &str,
        model: BaseModel,
        margin: f64,
        heuristic: WeightHeuristic,
        effort: Effort,
    ) -> Option<Self> {
        Some(Self {
            topology: zoo::by_name(name)?,
            model,
            margin,
            heuristic,
            effort,
        })
    }

    fn evaluation_options(&self) -> EvaluationOptions {
        match self.effort {
            Effort::Quick => EvaluationOptions {
                corners: 6,
                samples: 2,
                spikes: 3,
                seed: 0xC0707E,
            },
            Effort::Full => EvaluationOptions::default(),
        }
    }

    fn coyote_config(&self) -> CoyoteConfig {
        match self.effort {
            Effort::Quick => CoyoteConfig {
                cg_rounds: 2,
                cg_candidate_edges: 1,
                adam_iterations: 500,
                evaluation: self.evaluation_options(),
                ..CoyoteConfig::fast()
            },
            Effort::Full => CoyoteConfig {
                evaluation: self.evaluation_options(),
                ..CoyoteConfig::default()
            },
        }
    }
}

/// Performance ratios of the four protocols for one scenario (the columns of
/// Table I).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProtocolRatios {
    /// Topology name.
    pub topology: String,
    /// Uncertainty margin.
    pub margin: f64,
    /// Traditional TE with ECMP.
    pub ecmp: f64,
    /// Optimal routing for the base matrix, re-evaluated under uncertainty.
    pub base: f64,
    /// COYOTE optimized with no demand knowledge.
    pub coyote_oblivious: f64,
    /// COYOTE optimized for the margin box.
    pub coyote_partial: f64,
}

impl ProtocolRatios {
    /// How much further from optimum ECMP is relative to COYOTE
    /// (partial knowledge); > 1 means COYOTE wins.
    pub fn ecmp_vs_coyote(&self) -> f64 {
        if self.coyote_partial <= 0.0 {
            return f64::INFINITY;
        }
        self.ecmp / self.coyote_partial
    }
}

/// Everything produced while evaluating a scenario, for callers that need
/// more than the headline ratios (e.g. Fig. 10 re-uses the COYOTE routing).
pub struct ScenarioEvaluation {
    /// The graph with the heuristic's weights applied.
    pub graph: Graph,
    /// The base demand matrix.
    pub base: DemandMatrix,
    /// The uncertainty set.
    pub uncertainty: UncertaintySet,
    /// The shared evaluation family.
    pub evaluation: EvaluationSet,
    /// The headline ratios.
    pub ratios: ProtocolRatios,
    /// The COYOTE (partial knowledge) routing, for downstream experiments.
    pub coyote_routing: PdRouting,
    /// The ECMP routing under the same weights.
    pub ecmp_routing: PdRouting,
}

/// Evaluates one scenario: builds the four protocols and measures them on a
/// shared evaluation family.
pub fn evaluate_scenario(scenario: &Scenario) -> Result<ScenarioEvaluation, CoreError> {
    let _span = coyote_obs::span("bench.evaluate_scenario");
    coyote_obs::counter("bench.scenario_evaluations", 1);
    let mut graph = scenario.topology.to_graph()?;

    // Step I weights.
    match scenario.heuristic {
        WeightHeuristic::InverseCapacity => graph.set_inverse_capacity_weights(10.0),
        WeightHeuristic::LocalSearch => {
            let base = scenario
                .model
                .generate_cached(&scenario.topology.name, &graph);
            let unc = UncertaintySet::from_margin(&base, scenario.margin);
            let cfg = match scenario.effort {
                Effort::Quick => LocalSearchConfig {
                    outer_iterations: 2,
                    moves_per_iteration: 3,
                    ..Default::default()
                },
                Effort::Full => LocalSearchConfig::default(),
            };
            let result = coyote_core::local_search::local_search_weights(&graph, &unc, &cfg)?;
            graph = coyote_core::local_search::apply_weights(&graph, &result.weights)?;
        }
    }

    let base = scenario
        .model
        .generate_cached(&scenario.topology.name, &graph);
    let uncertainty = UncertaintySet::from_margin(&base, scenario.margin);

    // COYOTE's augmented DAGs are also the normalization scope.
    let dags = build_all_dags(&graph, DagMode::Augmented)?;
    let evaluation = EvaluationSet::build(
        &graph,
        &dags,
        &uncertainty,
        Some(&base),
        &scenario.evaluation_options(),
    )?;

    // 1. ECMP.
    let ecmp = ecmp_routing(&graph)?;
    let ecmp_ratio = evaluation.performance_ratio(&graph, &ecmp);

    // 2. Base: optimal for the base matrix within the DAGs.
    let (base_routing, _) = optimal_routing_within_dags(&graph, &dags, &base)?;
    let base_ratio = evaluation.performance_ratio(&graph, &base_routing);

    // 3. COYOTE oblivious. The shared evaluation family seeds the working
    //    set (its optima are already computed); the constraint-generation
    //    adversary is unconstrained, so the optimizer still guards against
    //    arbitrary matrices.
    let cfg = scenario.coyote_config();
    let oblivious_set = UncertaintySet::oblivious(graph.node_count());
    let coyote_obl = optimize_splitting_with_working_set(
        &graph,
        dags.clone(),
        &oblivious_set,
        Some(&base),
        &cfg,
        evaluation.clone(),
    )?;
    let obl_ratio = evaluation.performance_ratio(&graph, &coyote_obl.routing);

    // 4. COYOTE partial knowledge.
    let coyote_partial = optimize_splitting_with_working_set(
        &graph,
        dags,
        &uncertainty,
        Some(&base),
        &cfg,
        evaluation.clone(),
    )?;
    let partial_ratio = evaluation.performance_ratio(&graph, &coyote_partial.routing);

    let ratios = ProtocolRatios {
        topology: scenario.topology.name.clone(),
        margin: scenario.margin,
        ecmp: ecmp_ratio,
        base: base_ratio,
        coyote_oblivious: obl_ratio,
        coyote_partial: partial_ratio,
    };

    Ok(ScenarioEvaluation {
        graph,
        base,
        uncertainty,
        evaluation,
        ratios,
        coyote_routing: coyote_partial.routing,
        ecmp_routing: ecmp,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abilene_quick_scenario_orders_the_protocols_sensibly() {
        let scenario = Scenario::from_zoo(
            "Abilene",
            BaseModel::Gravity,
            2.0,
            WeightHeuristic::InverseCapacity,
            Effort::Quick,
        )
        .unwrap();
        let eval = evaluate_scenario(&scenario).unwrap();
        let r = &eval.ratios;
        // All ratios are valid performance ratios.
        for v in [r.ecmp, r.base, r.coyote_oblivious, r.coyote_partial] {
            assert!(v >= 1.0 - 1e-6, "ratio {v} below 1");
            assert!(v.is_finite());
        }
        // COYOTE with knowledge of the box never loses to ECMP on the shared
        // evaluation family (it contains ECMP in its search space).
        assert!(
            r.coyote_partial <= r.ecmp + 0.05,
            "COYOTE {} vs ECMP {}",
            r.coyote_partial,
            r.ecmp
        );
    }

    #[test]
    fn unknown_topology_name_is_rejected() {
        assert!(Scenario::from_zoo(
            "NoSuchNet",
            BaseModel::Gravity,
            2.0,
            WeightHeuristic::InverseCapacity,
            Effort::Quick
        )
        .is_none());
    }

    #[test]
    fn cached_base_matrix_matches_a_fresh_generation() {
        let topo = zoo::by_name("Abilene").unwrap();
        let graph = topo.to_graph().unwrap();
        for model in [BaseModel::Gravity, BaseModel::Bimodal] {
            let fresh = model.generate(&graph);
            let first = model.generate_cached(&topo.name, &graph);
            let second = model.generate_cached(&topo.name, &graph);
            assert_eq!(fresh, first);
            assert_eq!(first, second);
        }
    }

    #[test]
    fn model_and_heuristic_names() {
        assert_eq!(BaseModel::Gravity.name(), "gravity");
        assert_eq!(BaseModel::Bimodal.name(), "bimodal");
        assert_eq!(
            WeightHeuristic::InverseCapacity.name(),
            "reverse-capacities"
        );
        assert_eq!(WeightHeuristic::LocalSearch.name(), "local-search");
    }
}
