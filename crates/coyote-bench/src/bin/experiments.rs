//! The `experiments` binary: regenerates every table and figure of the
//! paper from the command line, and runs parallel sweeps over the full
//! scenario grid.
//!
//! ```text
//! experiments <command> [--full] [--threads N] [--format json|csv|text]
//!             [--out PATH] [--filter SUBSTR] [--limit N] [--tolerance T]
//!             [--profile] [--trace-out PATH] [--metrics-out PATH]
//!
//! Commands:
//!   fig1        Running example (Fig. 1, Appendix B)
//!   gadget      Theorem 1 BIPARTITION gadget
//!   lowerbound  Theorem 4 Ω(|V|) instance
//!   fig6        Geant, gravity model, ratio vs margin
//!   fig7        Digex, gravity model
//!   fig8        AS1755, bimodal model
//!   fig9        Abilene, bimodal model, local-search weights
//!   fig10       Splitting-ratio approximation with 3/5/10 virtual next hops
//!   fig11       Average path stretch across topologies
//!   fig12       Prototype packet-drop experiment
//!   table1      Full ratio table (topologies × margins)
//!   sweep       Full scenario grid (topologies × models × margins), with
//!               per-scenario wall-clock timings in the report
//!   conform     Full-stack conformance: every Table-I-eligible topology ×
//!               both demand models through compile → realized Fibbing
//!               routing → flow-level simulation, with intended-vs-realized
//!               deltas and a per-cell tolerance verdict
//!   failures    Failure-scenario engine: the conformance grid crossed with
//!               fault events (single-link, single-node, SRLG groups, demand
//!               spikes); per cell, the pre-failure Fibbing program is kept
//!               and SPF-reconverged over the pruned LSDB (oblivious mode)
//!               and compared against a recompiled program (re-optimized
//!               mode), with a structured within/degraded/unroutable verdict
//!   serve       Long-running incremental TE daemon: loads a topology and
//!               demand model, compiles the Fibbing program once, then
//!               serves telemetry and accepts demand/link/node updates over
//!               HTTP/JSON, re-optimizing incrementally (dirty destinations
//!               only) and advancing its LSDB through per-prefix LSA deltas
//!   all         Everything above except sweep, conform, failures and serve
//!
//! Flags:
//!   --full        Paper-scale sweeps (default: quick configuration)
//!   --threads N   Worker threads for multi-scenario commands
//!                 (0 = one per core, the default; 1 = serial)
//!   --format F    Output format: text (default), json, or csv
//!   --json        Shorthand for --format json
//!   --out PATH    Write the report to PATH instead of stdout
//!   --filter S    sweep/conform/failures: keep scenarios whose id contains
//!                 S (case-insensitive; ids look like Abilene/gravity/
//!                 reverse-capacities/m2.0, failure cells append +link-3)
//!   --limit N     sweep/conform/failures: evaluate at most the first N
//!                 scenarios
//!   --tolerance T conform/failures: per-cell verdict threshold (conform:
//!                 split error and intended-vs-realized deltas; failures:
//!                 oblivious drop rate and degradation-ratio excess;
//!                 default 0.05)
//!   --compress    conform only: compile every cell's Fibbing program
//!                 through the lossy compression pipeline (cross-destination
//!                 fake merging + ratio quantization + no-op elimination)
//!   --compress-epsilon E  conform only: quantization tolerance of the
//!                 lossy pass (implies --compress; default 0.02)
//!   --pareto      conform only: sweep the grid once per compression level
//!                 (off, lossless, and a ladder of epsilons) and emit the
//!                 fake-nodes-vs-split-error Pareto table instead of the
//!                 per-cell report
//!   --events E    failures only: which event classes to inject —
//!                 link|node|srlg|spike|all (default all)
//!   --profile     sweep/conform/failures: record spans and workload
//!                 counters via coyote-obs and append a per-stage time table
//!                 plus the deterministic counters to the text report footer
//!   --trace-out PATH    sweep/conform/failures: write a chrome://tracing /
//!                 Perfetto-compatible JSON trace (implies --profile)
//!   --metrics-out PATH  sweep/conform/failures: write the counters/gauges/
//!                 histograms/timings snapshot as JSON (implies --profile)
//!   --port N      serve only: TCP port to listen on (default 7300)
//!   --topology T  serve only: topology-zoo name (default abilene)
//!   --model M     serve only: initial demand model, gravity|bimodal
//!                 (default gravity)
//!   --budget N    serve only: wECMP FIB-entry budget per prefix (default 5)
//!   --no-comparator  serve only: skip the batch-pipeline comparator
//!                 measurement at startup (faster start; /state then reports
//!                 no batch_recompile_micros)
//!
//! Every flag may be given at most once; repeated flags (e.g.
//! `--threads 1 --threads 4`) are rejected with an error rather than
//! silently letting the last occurrence win. `--json` counts as `--format`.
//! ```
//!
//! Multi-scenario commands (fig6–fig9, fig11, table1, sweep, conform,
//! failures) fan their independent scenario evaluations out across a worker
//! pool; the thread count changes wall-clock time only, never the numbers
//! in the report.

use coyote_bench::conformance::{default_pareto_levels, run_pareto, DEFAULT_TOLERANCE};
use coyote_bench::report::{
    conformance_csv, conformance_text, failures_csv, failures_text, format_series, format_table,
    pareto_csv, pareto_text, percent, profile_text, ratio, ratios_csv, sweep_csv, sweep_text,
    ReportFormat, Series,
};
use coyote_bench::{
    fig10_approximation, fig11_stretch, fig11_topologies, fig12_prototype, fig1_running_example,
    fig6_margins, margin_sweep, run_conformance_with, run_failures, run_sweep, table1,
    table1_margins, table1_topologies, theorem1_gadget, theorem4_lower_bound, BaseModel, Effort,
    EventClass, FailureGrid, ProtocolRatios, SweepGrid, WeightHeuristic,
};
use coyote_ospf::{CompressionLevel, DEFAULT_EPSILON};

/// Parsed command line.
#[derive(Debug)]
struct Cli {
    command: String,
    effort: Effort,
    threads: usize,
    format: ReportFormat,
    out: Option<String>,
    filter: Option<String>,
    limit: Option<usize>,
    tolerance: f64,
    compress: bool,
    compress_epsilon: Option<f64>,
    pareto: bool,
    events: EventClass,
    profile: bool,
    trace_out: Option<String>,
    metrics_out: Option<String>,
    port: u16,
    topology: String,
    model: String,
    budget: usize,
    no_comparator: bool,
}

impl Cli {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut cli = Cli {
            command: String::new(),
            effort: Effort::Quick,
            threads: 0,
            format: ReportFormat::Text,
            out: None,
            filter: None,
            limit: None,
            tolerance: DEFAULT_TOLERANCE,
            compress: false,
            compress_epsilon: None,
            pareto: false,
            events: EventClass::All,
            profile: false,
            trace_out: None,
            metrics_out: None,
            port: 7300,
            topology: "abilene".to_string(),
            model: "gravity".to_string(),
            budget: 5,
            no_comparator: false,
        };
        let mut it = args.iter().peekable();
        // Every flag may appear at most once; `--json` is shorthand for
        // `--format json`, so the two share a key.
        let mut seen: Vec<&'static str> = Vec::new();
        let mut once = |key: &'static str| -> Result<(), String> {
            if seen.contains(&key) {
                return Err(format!(
                    "flag --{key} given more than once (repeated flags are rejected \
                     rather than letting the last occurrence win)"
                ));
            }
            seen.push(key);
            Ok(())
        };
        fn value(
            it: &mut std::iter::Peekable<std::slice::Iter<String>>,
            flag: &str,
        ) -> Result<String, String> {
            // Refuse to swallow the next flag as this flag's value
            // (`--filter --threads 2` should error, not filter on "--threads").
            match it.peek() {
                Some(v) if !v.starts_with("--") => Ok(it.next().cloned().unwrap()),
                _ => Err(format!("{flag} needs a value")),
            }
        }
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--full" => {
                    once("full")?;
                    cli.effort = Effort::Full;
                }
                "--json" => {
                    once("format")?;
                    cli.format = ReportFormat::Json;
                }
                "--threads" => {
                    once("threads")?;
                    cli.threads = value(&mut it, "--threads")?
                        .parse()
                        .map_err(|e| format!("--threads: {e}"))?;
                }
                "--format" => {
                    once("format")?;
                    cli.format = value(&mut it, "--format")?.parse()?;
                }
                "--out" => {
                    once("out")?;
                    cli.out = Some(value(&mut it, "--out")?);
                }
                "--filter" => {
                    once("filter")?;
                    cli.filter = Some(value(&mut it, "--filter")?);
                }
                "--limit" => {
                    once("limit")?;
                    cli.limit = Some(
                        value(&mut it, "--limit")?
                            .parse()
                            .map_err(|e| format!("--limit: {e}"))?,
                    );
                }
                "--tolerance" => {
                    once("tolerance")?;
                    cli.tolerance = value(&mut it, "--tolerance")?
                        .parse()
                        .map_err(|e| format!("--tolerance: {e}"))?;
                    if cli.tolerance.is_nan() || cli.tolerance < 0.0 {
                        return Err(format!(
                            "--tolerance must be a non-negative number, got {}",
                            cli.tolerance
                        ));
                    }
                }
                "--compress" => {
                    once("compress")?;
                    cli.compress = true;
                }
                "--compress-epsilon" => {
                    once("compress-epsilon")?;
                    let eps: f64 = value(&mut it, "--compress-epsilon")?
                        .parse()
                        .map_err(|e| format!("--compress-epsilon: {e}"))?;
                    if eps.is_nan() || eps < 0.0 {
                        return Err(format!(
                            "--compress-epsilon must be a non-negative number, got {eps}"
                        ));
                    }
                    cli.compress = true;
                    cli.compress_epsilon = Some(eps);
                }
                "--pareto" => {
                    once("pareto")?;
                    cli.pareto = true;
                }
                "--events" => {
                    once("events")?;
                    cli.events = value(&mut it, "--events")?.parse()?;
                }
                "--profile" => {
                    once("profile")?;
                    cli.profile = true;
                }
                "--trace-out" => {
                    once("trace-out")?;
                    cli.trace_out = Some(value(&mut it, "--trace-out")?);
                }
                "--metrics-out" => {
                    once("metrics-out")?;
                    cli.metrics_out = Some(value(&mut it, "--metrics-out")?);
                }
                "--port" => {
                    once("port")?;
                    cli.port = value(&mut it, "--port")?
                        .parse()
                        .map_err(|e| format!("--port: {e}"))?;
                }
                "--topology" => {
                    once("topology")?;
                    cli.topology = value(&mut it, "--topology")?;
                }
                "--model" => {
                    once("model")?;
                    cli.model = value(&mut it, "--model")?;
                    if cli.model != "gravity" && cli.model != "bimodal" {
                        return Err(format!(
                            "--model must be gravity or bimodal, got {:?}",
                            cli.model
                        ));
                    }
                }
                "--budget" => {
                    once("budget")?;
                    cli.budget = value(&mut it, "--budget")?
                        .parse()
                        .map_err(|e| format!("--budget: {e}"))?;
                    if cli.budget == 0 {
                        return Err("--budget must be at least 1".to_string());
                    }
                }
                "--no-comparator" => {
                    once("no-comparator")?;
                    cli.no_comparator = true;
                }
                flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
                command if cli.command.is_empty() => cli.command = command.to_string(),
                extra => return Err(format!("unexpected argument {extra}")),
            }
        }
        if cli.command.is_empty() {
            cli.command = "help".to_string();
        }
        Ok(cli)
    }

    /// Emits one report in the requested format, to stdout or `--out`.
    /// `csv` is `None` for commands whose result has no tabular CSV shape.
    fn emit(
        &self,
        text: String,
        json: String,
        csv: Option<String>,
    ) -> Result<(), Box<dyn std::error::Error>> {
        let rendered = match self.format {
            ReportFormat::Text => text,
            ReportFormat::Json => json,
            ReportFormat::Csv => {
                csv.ok_or_else(|| format!("--format csv is not supported for {}", self.command))?
            }
        };
        match &self.out {
            Some(path) => {
                std::fs::write(path, rendered)?;
                println!("wrote {path}");
            }
            None => print!(
                "{}{}",
                rendered,
                if rendered.ends_with('\n') { "" } else { "\n" }
            ),
        }
        Ok(())
    }
}

/// Scoped observability session for the sweep/conform drivers: installs a
/// fresh [`coyote_obs::Registry`] as the global sink when any of
/// `--profile`, `--trace-out` or `--metrics-out` is given, and on
/// [`finish`](Profiler::finish) writes the requested artifacts and renders
/// the per-stage footer for the text report.
struct Profiler {
    registry: Option<std::sync::Arc<coyote_obs::Registry>>,
}

impl Profiler {
    fn start(cli: &Cli) -> Self {
        let active = cli.profile || cli.trace_out.is_some() || cli.metrics_out.is_some();
        let registry = active.then(|| {
            let r = std::sync::Arc::new(coyote_obs::Registry::new());
            coyote_obs::install(r.clone());
            r
        });
        Self { registry }
    }

    /// Uninstalls the sink, writes `--trace-out` / `--metrics-out` and
    /// returns the footer to append to the text report (empty when
    /// profiling is off).
    fn finish(self, cli: &Cli) -> Result<String, Box<dyn std::error::Error>> {
        let Some(registry) = self.registry else {
            return Ok(String::new());
        };
        coyote_obs::uninstall();
        let snapshot = registry.snapshot();
        if let Some(path) = &cli.trace_out {
            std::fs::write(path, coyote_obs::chrome_trace_json(&registry))?;
            eprintln!("wrote chrome trace to {path} (load in chrome://tracing or Perfetto)");
        }
        if let Some(path) = &cli.metrics_out {
            std::fs::write(path, coyote_obs::metrics_json(&snapshot))?;
            eprintln!("wrote metrics snapshot to {path}");
        }
        Ok(profile_text(&snapshot))
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match Cli::parse(&args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    if let Err(e) = run(&cli) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn run(cli: &Cli) -> Result<(), Box<dyn std::error::Error>> {
    match cli.command.as_str() {
        "fig1" => cmd_fig1(cli)?,
        "gadget" => cmd_gadget(cli)?,
        "lowerbound" => cmd_lowerbound(cli)?,
        "fig6" => cmd_margin_figure(
            cli,
            "fig6",
            "Geant",
            BaseModel::Gravity,
            WeightHeuristic::InverseCapacity,
        )?,
        "fig7" => cmd_margin_figure(
            cli,
            "fig7",
            "Digex",
            BaseModel::Gravity,
            WeightHeuristic::InverseCapacity,
        )?,
        "fig8" => cmd_margin_figure(
            cli,
            "fig8",
            "AS1755",
            BaseModel::Bimodal,
            WeightHeuristic::InverseCapacity,
        )?,
        "fig9" => cmd_fig9(cli)?,
        "fig10" => cmd_fig10(cli)?,
        "fig11" => cmd_fig11(cli)?,
        "fig12" => cmd_fig12(cli)?,
        "table1" => cmd_table1(cli)?,
        "sweep" => cmd_sweep(cli)?,
        "conform" => cmd_conform(cli)?,
        "failures" => cmd_failures(cli)?,
        "serve" => cmd_serve(cli)?,
        "all" => {
            // `all` prints a stream of reports; a single --out file would be
            // overwritten by each sub-command and CSV has no shared schema.
            if cli.out.is_some() {
                return Err("--out is not supported with all (each sub-report would \
                            overwrite the file); run commands individually"
                    .into());
            }
            if cli.format == ReportFormat::Csv {
                return Err("--format csv is not supported with all (the sub-reports \
                            have different schemas); run commands individually"
                    .into());
            }
            cmd_fig1(cli)?;
            cmd_gadget(cli)?;
            cmd_lowerbound(cli)?;
            cmd_margin_figure(
                cli,
                "fig6",
                "Geant",
                BaseModel::Gravity,
                WeightHeuristic::InverseCapacity,
            )?;
            cmd_margin_figure(
                cli,
                "fig7",
                "Digex",
                BaseModel::Gravity,
                WeightHeuristic::InverseCapacity,
            )?;
            cmd_margin_figure(
                cli,
                "fig8",
                "AS1755",
                BaseModel::Bimodal,
                WeightHeuristic::InverseCapacity,
            )?;
            cmd_fig9(cli)?;
            cmd_fig10(cli)?;
            cmd_fig11(cli)?;
            cmd_fig12(cli)?;
            cmd_table1(cli)?;
        }
        _ => {
            println!(
                "usage: experiments <fig1|gadget|lowerbound|fig6|fig7|fig8|fig9|fig10|fig11|fig12|table1|sweep|conform|failures|serve|all> \
                 [--full] [--threads N] [--format json|csv|text] [--out PATH] [--filter SUBSTR] [--limit N] [--tolerance T] \
                 [--compress] [--compress-epsilon E] [--pareto] \
                 [--events link|node|srlg|spike|all] [--profile] [--trace-out PATH] [--metrics-out PATH] \
                 [--port N] [--topology T] [--model gravity|bimodal] [--budget N] [--no-comparator]"
            );
        }
    }
    Ok(())
}

fn cmd_fig1(cli: &Cli) -> Result<(), Box<dyn std::error::Error>> {
    let r = fig1_running_example()?;
    let rows = vec![
        vec!["ECMP (unit weights)".to_string(), ratio(r.ecmp_ratio)],
        vec!["Fig. 1c configuration".to_string(), ratio(r.fig1c_ratio)],
        vec!["Golden-ratio optimum".to_string(), ratio(r.golden_ratio)],
        vec!["COYOTE (optimized)".to_string(), ratio(r.coyote_ratio)],
    ];
    let text = format!(
        "== Fig. 1 / Appendix B: running example (exact oblivious ratios) ==\n{}",
        format_table(&["configuration", "oblivious ratio"], &rows)
    );
    cli.emit(text, serde_json::to_string_pretty(&r)?, None)
}

fn cmd_gadget(cli: &Cli) -> Result<(), Box<dyn std::error::Error>> {
    let r = theorem1_gadget(&[1.0, 2.0, 3.0, 4.0])?;
    let rows = vec![
        vec!["balanced orientation".to_string(), ratio(r.balanced_ratio)],
        vec![
            "unbalanced orientation".to_string(),
            ratio(r.unbalanced_ratio),
        ],
    ];
    let text = format!(
        "== Theorem 1: BIPARTITION gadget (weights {:?}) ==\n{}",
        r.weights,
        format_table(&["gadget orientation", "ratio"], &rows)
    );
    cli.emit(text, serde_json::to_string_pretty(&r)?, None)
}

fn cmd_lowerbound(cli: &Cli) -> Result<(), Box<dyn std::error::Error>> {
    let mut rows = Vec::new();
    let mut results = Vec::new();
    for n in [3usize, 5, 8, 12] {
        let r = theorem4_lower_bound(n)?;
        rows.push(vec![
            r.n.to_string(),
            ratio(r.oblivious_ratio),
            ratio(r.optimum),
        ]);
        results.push(r);
    }
    let text = format!(
        "== Theorem 4: Ω(|V|) lower bound for oblivious IP routing ==\n{}",
        format_table(&["n", "oblivious ratio", "demands-aware optimum"], &rows)
    );
    cli.emit(text, serde_json::to_string_pretty(&results)?, None)
}

fn protocol_series(rows: &[ProtocolRatios]) -> Vec<Series> {
    vec![
        Series {
            label: "ECMP".into(),
            points: rows.iter().map(|r| (r.margin, r.ecmp)).collect(),
        },
        Series {
            label: "Base-TM-opt".into(),
            points: rows.iter().map(|r| (r.margin, r.base)).collect(),
        },
        Series {
            label: "COYOTE-obl".into(),
            points: rows
                .iter()
                .map(|r| (r.margin, r.coyote_oblivious))
                .collect(),
        },
        Series {
            label: "COYOTE-partial".into(),
            points: rows.iter().map(|r| (r.margin, r.coyote_partial)).collect(),
        },
    ]
}

fn cmd_margin_figure(
    cli: &Cli,
    figure: &str,
    topology: &str,
    model: BaseModel,
    heuristic: WeightHeuristic,
) -> Result<(), Box<dyn std::error::Error>> {
    let margins = fig6_margins(cli.effort);
    let rows = margin_sweep(
        topology,
        model,
        heuristic,
        &margins,
        cli.effort,
        cli.threads,
    )?;
    let text = format!(
        "== {figure}: {topology}, {} model, {} weights (ratio vs margin) ==\n{}",
        model.name(),
        heuristic.name(),
        format_series("margin", &protocol_series(&rows))
    );
    cli.emit(
        text,
        serde_json::to_string_pretty(&rows)?,
        Some(ratios_csv(&rows)),
    )
}

fn cmd_fig9(cli: &Cli) -> Result<(), Box<dyn std::error::Error>> {
    let margins = match cli.effort {
        Effort::Quick => vec![1.0, 2.0, 3.0, 5.0],
        Effort::Full => vec![1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0],
    };
    let rows = margin_sweep(
        "Abilene",
        BaseModel::Bimodal,
        WeightHeuristic::LocalSearch,
        &margins,
        cli.effort,
        cli.threads,
    )?;
    let text = format!(
        "== fig9: Abilene, bimodal model, local-search weights ==\n{}",
        format_series("margin", &protocol_series(&rows))
    );
    cli.emit(
        text,
        serde_json::to_string_pretty(&rows)?,
        Some(ratios_csv(&rows)),
    )
}

fn cmd_fig10(cli: &Cli) -> Result<(), Box<dyn std::error::Error>> {
    let (topology, margin) = match cli.effort {
        Effort::Quick => ("Abilene", 2.0),
        Effort::Full => ("AS1755", 2.0),
    };
    let r = fig10_approximation(topology, margin, cli.effort)?;
    let mut rows = vec![vec![
        "ECMP".to_string(),
        ratio(r.ecmp_ratio),
        "0".to_string(),
    ]];
    for p in &r.points {
        let label = match p.budget {
            Some(n) => format!("COYOTE {n} NHs"),
            None => "COYOTE ideal".to_string(),
        };
        rows.push(vec![label, ratio(p.ratio), p.fake_nodes.to_string()]);
    }
    let text = format!(
        "== fig10: {} (margin {}): splitting-ratio approximation ==\n{}",
        r.topology,
        r.margin,
        format_table(&["configuration", "ratio", "fake nodes"], &rows)
    );
    cli.emit(text, serde_json::to_string_pretty(&r)?, None)
}

fn cmd_fig11(cli: &Cli) -> Result<(), Box<dyn std::error::Error>> {
    let topologies = fig11_topologies(cli.effort);
    let rows = fig11_stretch(&topologies, cli.effort, cli.threads)?;
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.topology.clone(),
                format!("{:.3}", r.oblivious_stretch),
                format!("{:.3}", r.partial_stretch),
            ]
        })
        .collect();
    let text = format!(
        "== fig11: average path stretch vs ECMP (margin 2.5) ==\n{}",
        format_table(
            &["topology", "COYOTE-oblivious", "COYOTE-partial-knowledge"],
            &table
        )
    );
    cli.emit(text, serde_json::to_string_pretty(&rows)?, None)
}

fn cmd_fig12(cli: &Cli) -> Result<(), Box<dyn std::error::Error>> {
    let results = fig12_prototype();
    let mut rows = Vec::new();
    for r in &results {
        for (i, phase) in r.phases.iter().enumerate() {
            rows.push(vec![
                r.scheme.clone(),
                format!("phase {}", i + 1),
                format!("({:.0}, {:.0}) Mbps", phase.offered.0, phase.offered.1),
                percent(phase.drop_rate),
            ]);
        }
        rows.push(vec![
            r.scheme.clone(),
            "cumulative".to_string(),
            "-".to_string(),
            percent(r.cumulative_drop_rate()),
        ]);
    }
    let text = format!(
        "== fig12: prototype packet-drop experiment (1 Mbps links) ==\n{}",
        format_table(&["scheme", "phase", "offered (t1, t2)", "drop rate"], &rows)
    );
    cli.emit(text, serde_json::to_string_pretty(&results)?, None)
}

fn cmd_table1(cli: &Cli) -> Result<(), Box<dyn std::error::Error>> {
    let topologies = table1_topologies(cli.effort);
    let margins = table1_margins(cli.effort);
    let rows = table1(
        &topologies,
        &margins,
        BaseModel::Gravity,
        cli.effort,
        cli.threads,
    )?;
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.topology.clone(),
                format!("{:.1}", r.margin),
                ratio(r.ecmp),
                ratio(r.base),
                ratio(r.coyote_oblivious),
                ratio(r.coyote_partial),
            ]
        })
        .collect();
    // A summary the paper states in prose: how much further from optimal
    // ECMP is, on average, compared to COYOTE.
    let avg: f64 =
        rows.iter().map(ProtocolRatios::ecmp_vs_coyote).sum::<f64>() / rows.len().max(1) as f64;
    let text = format!(
        "== Table I: gravity base model, reverse-capacity weights ==\n{}ECMP is on average {:.0}% further from optimum than COYOTE.",
        format_table(
            &["network", "margin", "ECMP", "Base", "COYOTE obl.", "COYOTE par.know."],
            &table
        ),
        (avg - 1.0) * 100.0
    );
    cli.emit(
        text,
        serde_json::to_string_pretty(&rows)?,
        Some(ratios_csv(&rows)),
    )
}

fn cmd_sweep(cli: &Cli) -> Result<(), Box<dyn std::error::Error>> {
    let mut grid = SweepGrid::full(cli.effort);
    if let Some(pattern) = &cli.filter {
        grid = grid.filter(pattern);
    }
    if let Some(n) = cli.limit {
        grid = grid.limit(n);
    }
    if grid.is_empty() {
        return Err("the filter/limit selection matched no scenarios".into());
    }
    eprintln!(
        "sweeping {} scenario(s) on {} thread(s)...",
        grid.len(),
        if cli.threads == 0 {
            "auto".to_string()
        } else {
            cli.threads.to_string()
        }
    );
    let profiler = Profiler::start(cli);
    let report = run_sweep(&grid, cli.threads)?;
    let footer = profiler.finish(cli)?;
    let mut selection = String::new();
    if let Some(pattern) = &cli.filter {
        selection.push_str(&format!(", filter {pattern:?}"));
    }
    if let Some(n) = cli.limit {
        selection.push_str(&format!(", limit {n}"));
    }
    let scope = if selection.is_empty() {
        "full scenario grid".to_string()
    } else {
        format!("grid slice{selection}")
    };
    let text = format!(
        "== sweep: {scope} ({} of {} topologies × models × margins cells) ==\n{}{}",
        grid.len(),
        SweepGrid::full(cli.effort).len(),
        sweep_text(&report),
        footer
    );
    cli.emit(
        text,
        serde_json::to_string_pretty(&report)?,
        Some(sweep_csv(&report)),
    )
}

fn cmd_conform(cli: &Cli) -> Result<(), Box<dyn std::error::Error>> {
    let mut grid = SweepGrid::conformance(cli.effort);
    if let Some(pattern) = &cli.filter {
        grid = grid.filter(pattern);
    }
    if let Some(n) = cli.limit {
        grid = grid.limit(n);
    }
    if grid.is_empty() {
        return Err("the filter/limit selection matched no scenarios".into());
    }
    let level = if cli.compress {
        CompressionLevel::Lossy {
            epsilon: cli.compress_epsilon.unwrap_or(DEFAULT_EPSILON),
        }
    } else {
        CompressionLevel::Off
    };
    if cli.pareto {
        return cmd_conform_pareto(cli, &grid);
    }
    eprintln!(
        "checking conformance of {} cell(s) on {} thread(s), tolerance {}, compression {}...",
        grid.len(),
        if cli.threads == 0 {
            "auto".to_string()
        } else {
            cli.threads.to_string()
        },
        cli.tolerance,
        level.label()
    );
    let profiler = Profiler::start(cli);
    let report = run_conformance_with(&grid, cli.threads, cli.tolerance, level)?;
    let footer = profiler.finish(cli)?;
    let mut selection = String::new();
    if let Some(pattern) = &cli.filter {
        selection.push_str(&format!(", filter {pattern:?}"));
    }
    if let Some(n) = cli.limit {
        selection.push_str(&format!(", limit {n}"));
    }
    let scope = if selection.is_empty() {
        "full conformance grid".to_string()
    } else {
        format!("grid slice{selection}")
    };
    let text = format!(
        "== conform: {scope} ({} of {} topology × model cells) ==\n{}{}",
        grid.len(),
        SweepGrid::conformance(cli.effort).len(),
        conformance_text(&report),
        footer
    );
    cli.emit(
        text,
        serde_json::to_string_pretty(&report)?,
        Some(conformance_csv(&report)),
    )
}

/// The `conform --pareto` path: sweep the selected grid once per
/// compression level and emit the fake-nodes-vs-split-error trade-off.
fn cmd_conform_pareto(cli: &Cli, grid: &SweepGrid) -> Result<(), Box<dyn std::error::Error>> {
    let levels = default_pareto_levels();
    eprintln!(
        "pareto sweep: {} cell(s) x {} compression level(s) on {} thread(s), tolerance {}...",
        grid.len(),
        levels.len(),
        if cli.threads == 0 {
            "auto".to_string()
        } else {
            cli.threads.to_string()
        },
        cli.tolerance
    );
    let profiler = Profiler::start(cli);
    let report = run_pareto(grid, cli.threads, cli.tolerance, &levels)?;
    let footer = profiler.finish(cli)?;
    let text = format!(
        "== conform --pareto: compression trade-off over {} cell(s) ==\n{}{}",
        grid.len(),
        pareto_text(&report),
        footer
    );
    cli.emit(
        text,
        serde_json::to_string_pretty(&report)?,
        Some(pareto_csv(&report)),
    )
}

/// The `serve` command: start the long-running incremental TE daemon.
///
/// Before the server comes up (unless `--no-comparator`), the *batch
/// pipeline* is run once for the same topology/model — the full joint
/// oblivious optimization a sweep cell performs — and its wall-clock time is
/// exposed through `/state` as `batch_recompile_micros`. That is the
/// "full-grid recompile" comparator the serving layer's incremental re-opt
/// latencies are benchmarked against in `BENCH_serve.json`.
fn cmd_serve(cli: &Cli) -> Result<(), Box<dyn std::error::Error>> {
    use coyote_serve::{DemandModel, EngineConfig, Server, ServerConfig, TeEngine};

    let model = match cli.model.as_str() {
        "bimodal" => DemandModel::Bimodal { seed: 42 },
        _ => DemandModel::Gravity { total: Some(100.0) },
    };
    let base_model = match cli.model.as_str() {
        "bimodal" => BaseModel::Bimodal,
        _ => BaseModel::Gravity,
    };

    let batch_recompile_micros = if cli.no_comparator {
        None
    } else {
        eprintln!(
            "measuring batch-pipeline comparator ({} / {} model, one margin cell)...",
            cli.topology, cli.model
        );
        let start = std::time::Instant::now();
        margin_sweep(
            &cli.topology,
            base_model,
            WeightHeuristic::InverseCapacity,
            &[2.0],
            Effort::Quick,
            1,
        )?;
        let micros = start.elapsed().as_micros() as u64;
        eprintln!("batch comparator: {} us per full recompile", micros);
        Some(micros)
    };

    // The daemon exposes /metrics from the global obs sink; install one for
    // the whole server lifetime.
    let registry = std::sync::Arc::new(coyote_obs::Registry::new());
    coyote_obs::install(registry);

    let engine = TeEngine::new(&EngineConfig {
        topology: cli.topology.clone(),
        model,
        budget: cli.budget,
    })
    .map_err(|e| format!("starting engine: {e}"))?;
    let server = Server::start(
        engine,
        &ServerConfig {
            addr: format!("127.0.0.1:{}", cli.port),
            threads: if cli.threads == 0 { 2 } else { cli.threads },
            batch_recompile_micros,
        },
    )
    .map_err(|e| format!("starting server: {e}"))?;
    eprintln!(
        "coyote-serve daemon listening on {} (topology {}, {} model, budget {}); \
         POST /shutdown to stop",
        server.addr(),
        cli.topology,
        cli.model,
        cli.budget
    );
    server.join();
    coyote_obs::uninstall();
    eprintln!("daemon stopped");
    Ok(())
}

fn cmd_failures(cli: &Cli) -> Result<(), Box<dyn std::error::Error>> {
    let full_len = FailureGrid::standard(cli.effort, cli.events)?.len();
    let mut grid = FailureGrid::standard(cli.effort, cli.events)?;
    if let Some(pattern) = &cli.filter {
        grid = grid.filter(pattern);
    }
    if let Some(n) = cli.limit {
        grid = grid.limit(n);
    }
    if grid.is_empty() {
        return Err("the filter/limit selection matched no failure cells".into());
    }
    eprintln!(
        "injecting {} failure cell(s) ({} events) on {} thread(s), tolerance {}...",
        grid.len(),
        cli.events.name(),
        if cli.threads == 0 {
            "auto".to_string()
        } else {
            cli.threads.to_string()
        },
        cli.tolerance
    );
    let profiler = Profiler::start(cli);
    let report = run_failures(&grid, cli.threads, cli.tolerance)?;
    let footer = profiler.finish(cli)?;
    let mut selection = String::new();
    if let Some(pattern) = &cli.filter {
        selection.push_str(&format!(", filter {pattern:?}"));
    }
    if let Some(n) = cli.limit {
        selection.push_str(&format!(", limit {n}"));
    }
    let scope = if selection.is_empty() {
        format!("full failure grid, {} events", cli.events.name())
    } else {
        format!("grid slice ({} events){selection}", cli.events.name())
    };
    let text = format!(
        "== failures: {scope} ({} of {} scenario × event cells) ==\n{}{}",
        grid.len(),
        full_len,
        failures_text(&report),
        footer
    );
    cli.emit(
        text,
        serde_json::to_string_pretty(&report)?,
        Some(failures_csv(&report)),
    )
}

// Unwrap audit (ISSUE 10 satellite): the only `unwrap` left in this binary
// is the `it.next().cloned().unwrap()` inside `Cli::value`, which is guarded
// by the `it.peek()` match arm on the immediately preceding line and can
// therefore never fire. Every user-reachable failure — malformed flag
// values, repeated flags, unknown flags, unwritable `--out` paths — flows
// through `Result` and surfaces as an `error:` line with a non-zero exit.
#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Cli, String> {
        let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        Cli::parse(&owned)
    }

    #[test]
    fn repeated_flag_is_rejected() {
        let err = parse(&["sweep", "--threads", "1", "--threads", "4"]).unwrap_err();
        assert!(err.contains("more than once"), "{err}");
        let err = parse(&["failures", "--filter", "a", "--filter", "b"]).unwrap_err();
        assert!(err.contains("more than once"), "{err}");
    }

    #[test]
    fn json_and_format_share_one_slot() {
        let err = parse(&["sweep", "--json", "--format", "csv"]).unwrap_err();
        assert!(err.contains("--format") && err.contains("more than once"), "{err}");
        let err = parse(&["sweep", "--format", "csv", "--json"]).unwrap_err();
        assert!(err.contains("more than once"), "{err}");
    }

    #[test]
    fn a_flag_does_not_swallow_the_next_flag_as_its_value() {
        let err = parse(&["sweep", "--filter", "--threads"]).unwrap_err();
        assert!(err.contains("--filter needs a value"), "{err}");
        let err = parse(&["sweep", "--out"]).unwrap_err();
        assert!(err.contains("--out needs a value"), "{err}");
    }

    #[test]
    fn serve_flags_parse() {
        let cli = parse(&[
            "serve",
            "--port",
            "8080",
            "--topology",
            "nsf",
            "--model",
            "bimodal",
            "--budget",
            "3",
            "--no-comparator",
        ])
        .unwrap();
        assert_eq!(cli.command, "serve");
        assert_eq!(cli.port, 8080);
        assert_eq!(cli.topology, "nsf");
        assert_eq!(cli.model, "bimodal");
        assert_eq!(cli.budget, 3);
        assert!(cli.no_comparator);
    }

    #[test]
    fn serve_flag_validation() {
        let err = parse(&["serve", "--model", "bogus"]).unwrap_err();
        assert!(err.contains("gravity or bimodal"), "{err}");
        let err = parse(&["serve", "--budget", "0"]).unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
        let err = parse(&["serve", "--port", "notaport"]).unwrap_err();
        assert!(err.contains("--port"), "{err}");
    }

    #[test]
    fn numeric_flag_values_are_validated_not_unwrapped() {
        let err = parse(&["sweep", "--tolerance", "peanut"]).unwrap_err();
        assert!(err.contains("--tolerance"), "{err}");
        let err = parse(&["sweep", "--tolerance", "-0.5"]).unwrap_err();
        assert!(err.contains("non-negative"), "{err}");
        let err = parse(&["conform", "--compress-epsilon", "NaN"]).unwrap_err();
        assert!(err.contains("non-negative"), "{err}");
        let err = parse(&["sweep", "--limit", "three"]).unwrap_err();
        assert!(err.contains("--limit"), "{err}");
    }

    #[test]
    fn unknown_flags_and_extra_arguments_error() {
        let err = parse(&["sweep", "--frobnicate"]).unwrap_err();
        assert!(err.contains("unknown flag --frobnicate"), "{err}");
        let err = parse(&["sweep", "extra"]).unwrap_err();
        assert!(err.contains("unexpected argument extra"), "{err}");
    }

    #[test]
    fn unwritable_out_path_is_an_error_not_a_panic() {
        // Regression for the user-reachable write path: `--out` pointing at a
        // directory that does not exist must surface as Err from emit().
        let cli = parse(&["sweep", "--out", "/nonexistent-dir-for-sure/x.json"]).unwrap();
        let err = cli
            .emit("text".to_string(), "{}".to_string(), None)
            .unwrap_err();
        assert!(err.to_string().contains("No such file"), "{err}");
    }
}
