//! The `experiments` binary: regenerates every table and figure of the
//! paper from the command line.
//!
//! ```text
//! experiments <command> [--full] [--json]
//!
//! Commands:
//!   fig1        Running example (Fig. 1, Appendix B)
//!   gadget      Theorem 1 BIPARTITION gadget
//!   lowerbound  Theorem 4 Ω(|V|) instance
//!   fig6        Geant, gravity model, ratio vs margin
//!   fig7        Digex, gravity model
//!   fig8        AS1755, bimodal model
//!   fig9        Abilene, bimodal model, local-search weights
//!   fig10       Splitting-ratio approximation with 3/5/10 virtual next hops
//!   fig11       Average path stretch across topologies
//!   fig12       Prototype packet-drop experiment
//!   table1      Full ratio table (topologies × margins)
//!   all         Everything above
//! ```
//!
//! Without `--full` the quick configuration is used (fewer margins,
//! topologies and optimizer iterations) so every command finishes in
//! minutes on a laptop; `--full` runs the paper-scale sweeps.

use coyote_bench::report::{format_series, format_table, percent, ratio, Series};
use coyote_bench::{
    evaluate_scenario, fig10_approximation, fig11_stretch, fig11_topologies, fig12_prototype,
    fig1_running_example, fig6_margins, margin_sweep, table1, table1_margins, table1_topologies,
    theorem1_gadget, theorem4_lower_bound, BaseModel, Effort, ProtocolRatios, Scenario,
    WeightHeuristic,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let json = args.iter().any(|a| a == "--json");
    let effort = if full { Effort::Full } else { Effort::Quick };
    let command = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "help".to_string());

    let result = run(&command, effort, json);
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn run(command: &str, effort: Effort, json: bool) -> Result<(), Box<dyn std::error::Error>> {
    match command {
        "fig1" => cmd_fig1(json)?,
        "gadget" => cmd_gadget(json)?,
        "lowerbound" => cmd_lowerbound(json)?,
        "fig6" => cmd_margin_figure("fig6", "Geant", BaseModel::Gravity, WeightHeuristic::InverseCapacity, effort, json)?,
        "fig7" => cmd_margin_figure("fig7", "Digex", BaseModel::Gravity, WeightHeuristic::InverseCapacity, effort, json)?,
        "fig8" => cmd_margin_figure("fig8", "AS1755", BaseModel::Bimodal, WeightHeuristic::InverseCapacity, effort, json)?,
        "fig9" => cmd_fig9(effort, json)?,
        "fig10" => cmd_fig10(effort, json)?,
        "fig11" => cmd_fig11(effort, json)?,
        "fig12" => cmd_fig12(json)?,
        "table1" => cmd_table1(effort, json)?,
        "all" => {
            cmd_fig1(json)?;
            cmd_gadget(json)?;
            cmd_lowerbound(json)?;
            cmd_margin_figure("fig6", "Geant", BaseModel::Gravity, WeightHeuristic::InverseCapacity, effort, json)?;
            cmd_margin_figure("fig7", "Digex", BaseModel::Gravity, WeightHeuristic::InverseCapacity, effort, json)?;
            cmd_margin_figure("fig8", "AS1755", BaseModel::Bimodal, WeightHeuristic::InverseCapacity, effort, json)?;
            cmd_fig9(effort, json)?;
            cmd_fig10(effort, json)?;
            cmd_fig11(effort, json)?;
            cmd_fig12(json)?;
            cmd_table1(effort, json)?;
        }
        _ => {
            println!(
                "usage: experiments <fig1|gadget|lowerbound|fig6|fig7|fig8|fig9|fig10|fig11|fig12|table1|all> [--full] [--json]"
            );
        }
    }
    Ok(())
}

fn cmd_fig1(json: bool) -> Result<(), Box<dyn std::error::Error>> {
    let r = fig1_running_example()?;
    if json {
        println!("{}", serde_json::to_string_pretty(&r)?);
        return Ok(());
    }
    println!("== Fig. 1 / Appendix B: running example (exact oblivious ratios) ==");
    let rows = vec![
        vec!["ECMP (unit weights)".to_string(), ratio(r.ecmp_ratio)],
        vec!["Fig. 1c configuration".to_string(), ratio(r.fig1c_ratio)],
        vec!["Golden-ratio optimum".to_string(), ratio(r.golden_ratio)],
        vec!["COYOTE (optimized)".to_string(), ratio(r.coyote_ratio)],
    ];
    println!("{}", format_table(&["configuration", "oblivious ratio"], &rows));
    Ok(())
}

fn cmd_gadget(json: bool) -> Result<(), Box<dyn std::error::Error>> {
    let r = theorem1_gadget(&[1.0, 2.0, 3.0, 4.0])?;
    if json {
        println!("{}", serde_json::to_string_pretty(&r)?);
        return Ok(());
    }
    println!("== Theorem 1: BIPARTITION gadget (weights {:?}) ==", r.weights);
    let rows = vec![
        vec!["balanced orientation".to_string(), ratio(r.balanced_ratio)],
        vec!["unbalanced orientation".to_string(), ratio(r.unbalanced_ratio)],
    ];
    println!("{}", format_table(&["gadget orientation", "ratio"], &rows));
    Ok(())
}

fn cmd_lowerbound(json: bool) -> Result<(), Box<dyn std::error::Error>> {
    println!("== Theorem 4: Ω(|V|) lower bound for oblivious IP routing ==");
    let mut rows = Vec::new();
    let mut results = Vec::new();
    for n in [3usize, 5, 8, 12] {
        let r = theorem4_lower_bound(n)?;
        rows.push(vec![
            r.n.to_string(),
            ratio(r.oblivious_ratio),
            ratio(r.optimum),
        ]);
        results.push(r);
    }
    if json {
        println!("{}", serde_json::to_string_pretty(&results)?);
        return Ok(());
    }
    println!(
        "{}",
        format_table(&["n", "oblivious ratio", "demands-aware optimum"], &rows)
    );
    Ok(())
}

fn protocol_series(rows: &[ProtocolRatios]) -> Vec<Series> {
    vec![
        Series {
            label: "ECMP".into(),
            points: rows.iter().map(|r| (r.margin, r.ecmp)).collect(),
        },
        Series {
            label: "Base-TM-opt".into(),
            points: rows.iter().map(|r| (r.margin, r.base)).collect(),
        },
        Series {
            label: "COYOTE-obl".into(),
            points: rows.iter().map(|r| (r.margin, r.coyote_oblivious)).collect(),
        },
        Series {
            label: "COYOTE-partial".into(),
            points: rows.iter().map(|r| (r.margin, r.coyote_partial)).collect(),
        },
    ]
}

fn cmd_margin_figure(
    figure: &str,
    topology: &str,
    model: BaseModel,
    heuristic: WeightHeuristic,
    effort: Effort,
    json: bool,
) -> Result<(), Box<dyn std::error::Error>> {
    let margins = fig6_margins(effort);
    let rows = margin_sweep(topology, model, heuristic, &margins, effort)?;
    if json {
        println!("{}", serde_json::to_string_pretty(&rows)?);
        return Ok(());
    }
    println!(
        "== {figure}: {topology}, {} model, {} weights (ratio vs margin) ==",
        model.name(),
        heuristic.name()
    );
    println!("{}", format_series("margin", &protocol_series(&rows)));
    Ok(())
}

fn cmd_fig9(effort: Effort, json: bool) -> Result<(), Box<dyn std::error::Error>> {
    let margins = match effort {
        Effort::Quick => vec![1.0, 2.0, 3.0, 5.0],
        Effort::Full => vec![1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0],
    };
    let rows = margin_sweep(
        "Abilene",
        BaseModel::Bimodal,
        WeightHeuristic::LocalSearch,
        &margins,
        effort,
    )?;
    if json {
        println!("{}", serde_json::to_string_pretty(&rows)?);
        return Ok(());
    }
    println!("== fig9: Abilene, bimodal model, local-search weights ==");
    println!("{}", format_series("margin", &protocol_series(&rows)));
    Ok(())
}

fn cmd_fig10(effort: Effort, json: bool) -> Result<(), Box<dyn std::error::Error>> {
    let (topology, margin) = match effort {
        Effort::Quick => ("Abilene", 2.0),
        Effort::Full => ("AS1755", 2.0),
    };
    let r = fig10_approximation(topology, margin, effort)?;
    if json {
        println!("{}", serde_json::to_string_pretty(&r)?);
        return Ok(());
    }
    println!(
        "== fig10: {} (margin {}): splitting-ratio approximation ==",
        r.topology, r.margin
    );
    let mut rows = vec![vec!["ECMP".to_string(), ratio(r.ecmp_ratio), "0".to_string()]];
    for p in &r.points {
        let label = match p.budget {
            Some(n) => format!("COYOTE {n} NHs"),
            None => "COYOTE ideal".to_string(),
        };
        rows.push(vec![label, ratio(p.ratio), p.fake_nodes.to_string()]);
    }
    println!(
        "{}",
        format_table(&["configuration", "ratio", "fake nodes"], &rows)
    );
    Ok(())
}

fn cmd_fig11(effort: Effort, json: bool) -> Result<(), Box<dyn std::error::Error>> {
    let topologies = fig11_topologies(effort);
    let rows = fig11_stretch(&topologies, effort)?;
    if json {
        println!("{}", serde_json::to_string_pretty(&rows)?);
        return Ok(());
    }
    println!("== fig11: average path stretch vs ECMP (margin 2.5) ==");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.topology.clone(),
                format!("{:.3}", r.oblivious_stretch),
                format!("{:.3}", r.partial_stretch),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &["topology", "COYOTE-oblivious", "COYOTE-partial-knowledge"],
            &table
        )
    );
    Ok(())
}

fn cmd_fig12(json: bool) -> Result<(), Box<dyn std::error::Error>> {
    let results = fig12_prototype();
    if json {
        println!("{}", serde_json::to_string_pretty(&results)?);
        return Ok(());
    }
    println!("== fig12: prototype packet-drop experiment (1 Mbps links) ==");
    let mut rows = Vec::new();
    for r in &results {
        for (i, phase) in r.phases.iter().enumerate() {
            rows.push(vec![
                r.scheme.clone(),
                format!("phase {}", i + 1),
                format!("({:.0}, {:.0}) Mbps", phase.offered.0, phase.offered.1),
                percent(phase.drop_rate),
            ]);
        }
        rows.push(vec![
            r.scheme.clone(),
            "cumulative".to_string(),
            "-".to_string(),
            percent(r.cumulative_drop_rate()),
        ]);
    }
    println!(
        "{}",
        format_table(&["scheme", "phase", "offered (t1, t2)", "drop rate"], &rows)
    );
    Ok(())
}

fn cmd_table1(effort: Effort, json: bool) -> Result<(), Box<dyn std::error::Error>> {
    let topologies = table1_topologies(effort);
    let margins = table1_margins(effort);
    let rows = table1(&topologies, &margins, BaseModel::Gravity, effort)?;
    if json {
        println!("{}", serde_json::to_string_pretty(&rows)?);
        return Ok(());
    }
    println!("== Table I: gravity base model, reverse-capacity weights ==");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.topology.clone(),
                format!("{:.1}", r.margin),
                ratio(r.ecmp),
                ratio(r.base),
                ratio(r.coyote_oblivious),
                ratio(r.coyote_partial),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &["network", "margin", "ECMP", "Base", "COYOTE obl.", "COYOTE par.know."],
            &table
        )
    );
    // A summary the paper states in prose: how much further from optimal
    // ECMP is, on average, compared to COYOTE.
    let avg: f64 =
        rows.iter().map(ProtocolRatios::ecmp_vs_coyote).sum::<f64>() / rows.len().max(1) as f64;
    println!("ECMP is on average {:.0}% further from optimum than COYOTE.", (avg - 1.0) * 100.0);
    Ok(())
}

// Kept for ad-hoc exploration from this binary (also exercised by the
// library's unit tests).
#[allow(dead_code)]
fn ad_hoc(scenario: &Scenario) {
    let _ = evaluate_scenario(scenario);
}
