//! The failure-scenario engine: fault injection, OSPF reconvergence, and
//! graceful degradation across the sweep grid.
//!
//! The sweep and conformance engines only ever score *healthy* topologies.
//! The paper's deployability story, however, rests on Fibbing surviving the
//! realities of a live IGP — links and routers die, and the lied-to LSDB
//! must reconverge around the failure. This module closes that gap,
//! following the evaluation shape of the semi-oblivious TE literature:
//! score how a routing computed *before* an event degrades under it,
//! against a routing re-optimized *after* it.
//!
//! For every Table-I-eligible scenario × [`FailureEvent`] cell:
//!
//! 1. **Inject** — fail the event's links/nodes on the scenario graph
//!    ([`Graph::without_edges`], node-set stable so all id spaces survive)
//!    and derive the post-failure demand matrix (dead-endpoint demands
//!    zeroed, flash-crowd spikes applied).
//! 2. **Oblivious mode** — keep the pre-failure Fibbing program, withdraw
//!    the failed elements from the lied-to LSDB ([`Lsdb::pruned`]), re-run
//!    the routers' SPF over the pruned database, and flow-simulate the
//!    post-failure matrix on the reconverged routing.
//! 3. **Re-optimized mode** — rebuild DAGs on the post-failure topology,
//!    re-solve the demands-aware LP on the routable part of the matrix
//!    ([`split_routable_within_dags`]), recompile the Fibbing program, and
//!    flow-simulate the realized routing.
//! 4. **Verdict** — emit one [`FailureRecord`] with both modes' post-failure
//!    max-utilization and drop rate, the oblivious/re-optimized degradation
//!    ratio, the reconvergence fake-LSA delta, and a structured
//!    [`CellOutcome`].
//!
//! Graceful degradation is the design invariant: a partitioned topology, a
//! demand whose endpoint died, or an infeasible post-failure LP must never
//! abort the grid. Per-cell failures are captured into
//! [`CellOutcome::Degraded`]/[`CellOutcome::Unroutable`] verdicts — the fan-
//! out uses the non-short-circuiting [`WorkerPool::par_map_results`], so
//! every healthy cell still completes and the report stays bit-identical
//! across thread counts.
//!
//! [`Lsdb::pruned`]: coyote_ospf::Lsdb::pruned
//! [`split_routable_within_dags`]: coyote_core::split_routable_within_dags
//! [`Graph::without_edges`]: coyote_graph::Graph::without_edges
//! [`WorkerPool::par_map_results`]: coyote_runtime::WorkerPool::par_map_results

use crate::conformance::COMPILE_BUDGET;
use crate::scenario::{evaluate_scenario, Effort};
use crate::sweep::{SweepGrid, SweepSpec};
use coyote_core::{
    build_all_dags, optimal_routing_within_dags, split_routable_within_dags, CoreError, DagMode,
    PdRouting,
};
use coyote_graph::{EdgeId, Graph, NodeId};
use coyote_ospf::{
    compute_fib, compute_program, realized_routing, FibbingProgram, OspfError, VirtualLinkBudget,
};
use coyote_runtime::WorkerPool;
use coyote_sim::{FlowSimulator, SimOutcome};
use coyote_topology::{zoo, Topology};
use coyote_traffic::DemandMatrix;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::time::Instant;

/// Seed of the deterministic event generators (SRLG grouping and demand
/// spikes). Fixed so the same grid always enumerates the same events.
pub const DEFAULT_FAILURE_SEED: u64 = 0x00C0_707E_FA11;

/// Largest shared-risk link group: a correlated failure takes down at most
/// this many links sharing an endpoint.
const MAX_SRLG_SIZE: usize = 3;

/// Flash-crowd events enumerated per scenario.
const SPIKE_EVENTS: usize = 3;

/// Fraction of the (non-zero) demand pairs a flash crowd inflates.
const SPIKE_FRACTION: f64 = 0.2;

/// Multiplier a flash crowd applies to the selected demand pairs.
const SPIKE_FACTOR: f64 = 4.0;

/// SplitMix64: the tiny, high-quality mixing function both deterministic
/// event generators are built on. Implemented inline so the engine depends
/// on nothing but the seed.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One injectable event. Link indices refer to [`Topology::links`] (each
/// bidirectional link lowers to two anti-parallel graph edges).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FailureEvent {
    /// A single bidirectional link dies.
    LinkFailure {
        /// Index into [`Topology::links`].
        link: usize,
    },
    /// A router dies: every incident link is withdrawn, the node stays in
    /// the id space as an isolated node.
    NodeFailure {
        /// Node index.
        node: usize,
    },
    /// A correlated (SRLG-style) failure: a seeded group of links sharing
    /// the `hub` endpoint die together.
    SrlgFailure {
        /// The shared endpoint of the group.
        hub: usize,
        /// The link indices that die together (sorted).
        links: Vec<usize>,
    },
    /// A flash crowd: the topology is untouched, but a seeded subset of the
    /// demand pairs is scaled up (4x on ~20% of the pairs).
    DemandSpike {
        /// Position among the scenario's spike events (stable id).
        index: usize,
        /// Derived seed selecting which pairs spike.
        seed: u64,
    },
}

impl FailureEvent {
    /// Stable, greppable identifier: `link-3`, `node-7`, `srlg-2`,
    /// `spike-0`.
    pub fn id(&self) -> String {
        match self {
            FailureEvent::LinkFailure { link } => format!("link-{link}"),
            FailureEvent::NodeFailure { node } => format!("node-{node}"),
            FailureEvent::SrlgFailure { hub, .. } => format!("srlg-{hub}"),
            FailureEvent::DemandSpike { index, .. } => format!("spike-{index}"),
        }
    }

    /// The event class this event belongs to.
    pub fn class(&self) -> EventClass {
        match self {
            FailureEvent::LinkFailure { .. } => EventClass::Link,
            FailureEvent::NodeFailure { .. } => EventClass::Node,
            FailureEvent::SrlgFailure { .. } => EventClass::Srlg,
            FailureEvent::DemandSpike { .. } => EventClass::Spike,
        }
    }

    /// The dead routers this event implies.
    fn dead_nodes(&self) -> Vec<NodeId> {
        match self {
            FailureEvent::NodeFailure { node } => vec![NodeId(*node)],
            _ => Vec::new(),
        }
    }

    /// The dead bidirectional links (indices into `topo.links`).
    fn dead_links(&self, topo: &Topology) -> Vec<usize> {
        match self {
            FailureEvent::LinkFailure { link } => vec![*link],
            FailureEvent::NodeFailure { node } => topo.incident_links(*node),
            FailureEvent::SrlgFailure { links, .. } => links.clone(),
            FailureEvent::DemandSpike { .. } => Vec::new(),
        }
    }
}

/// Which event classes a failure grid enumerates (`--events` on the CLI).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventClass {
    /// Every single-link failure.
    Link,
    /// Every single-node failure.
    Node,
    /// Seeded shared-risk link groups.
    Srlg,
    /// Flash-crowd demand spikes.
    Spike,
    /// All of the above.
    All,
}

impl EventClass {
    /// The CLI spelling.
    pub fn name(&self) -> &'static str {
        match self {
            EventClass::Link => "link",
            EventClass::Node => "node",
            EventClass::Srlg => "srlg",
            EventClass::Spike => "spike",
            EventClass::All => "all",
        }
    }

    /// True if this selector admits `class`.
    pub fn includes(&self, class: EventClass) -> bool {
        *self == EventClass::All || *self == class
    }
}

impl std::str::FromStr for EventClass {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "link" => Ok(EventClass::Link),
            "node" => Ok(EventClass::Node),
            "srlg" => Ok(EventClass::Srlg),
            "spike" => Ok(EventClass::Spike),
            "all" => Ok(EventClass::All),
            other => Err(format!(
                "unknown event class '{other}' (expected link|node|srlg|spike|all)"
            )),
        }
    }
}

/// Deterministically enumerates the events of the requested classes for one
/// topology: every single-link failure, every single-node failure, one
/// seeded SRLG per node of degree ≥ 2, and three flash crowds.
pub fn enumerate_events(topo: &Topology, classes: EventClass, seed: u64) -> Vec<FailureEvent> {
    let mut events = Vec::new();
    if classes.includes(EventClass::Link) {
        for link in 0..topo.link_count() {
            events.push(FailureEvent::LinkFailure { link });
        }
    }
    if classes.includes(EventClass::Node) {
        for node in 0..topo.node_count() {
            events.push(FailureEvent::NodeFailure { node });
        }
    }
    if classes.includes(EventClass::Srlg) {
        for hub in 0..topo.node_count() {
            let incident = topo.incident_links(hub);
            if incident.len() < 2 {
                continue;
            }
            events.push(srlg_at(hub, &incident, seed));
        }
    }
    if classes.includes(EventClass::Spike) {
        for index in 0..SPIKE_EVENTS {
            let seed = splitmix64(seed ^ (0x5149_E000 + index as u64));
            events.push(FailureEvent::DemandSpike { index, seed });
        }
    }
    events
}

/// The seeded SRLG at one hub: group size in `2..=min(3, degree)`, members
/// drawn by a partial Fisher-Yates over the incident links. Pure function
/// of `(hub, incident, seed)`.
fn srlg_at(hub: usize, incident: &[usize], seed: u64) -> FailureEvent {
    let max_size = incident.len().min(MAX_SRLG_SIZE);
    let mut h = splitmix64(seed ^ ((hub as u64) << 1 | 1));
    let size = 2 + (h % (max_size as u64 - 1).max(1)) as usize;
    let size = size.min(max_size);
    let mut pool = incident.to_vec();
    let mut links = Vec::with_capacity(size);
    for k in 0..size {
        h = splitmix64(h);
        let j = k + (h as usize) % (pool.len() - k);
        pool.swap(k, j);
        links.push(pool[k]);
    }
    links.sort_unstable();
    FailureEvent::SrlgFailure { hub, links }
}

/// One cell of the failure grid: a sweep scenario crossed with an event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureCell {
    /// The healthy scenario the event is injected into.
    pub spec: SweepSpec,
    /// The injected event.
    pub event: FailureEvent,
}

impl FailureCell {
    /// Stable identifier, e.g. `Abilene/gravity/reverse-capacities/m2.0+link-3`.
    /// The `--filter` CLI flag matches a case-insensitive substring of it.
    pub fn id(&self) -> String {
        format!("{}+{}", self.spec.id(), self.event.id())
    }
}

/// The work list of one failure run: scenarios × events, in deterministic
/// (spec-major, event-enumeration) order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureGrid {
    /// The cells, in evaluation (and report) order.
    pub cells: Vec<FailureCell>,
}

impl FailureGrid {
    /// Crosses the specs of `grid` with the enumerated events of the
    /// requested classes. Fails fast on unknown topologies (a configuration
    /// error, unlike per-cell failures which are captured).
    pub fn build(grid: &SweepGrid, classes: EventClass, seed: u64) -> Result<Self, CoreError> {
        let mut cells = Vec::new();
        for spec in &grid.specs {
            let topo = zoo::by_name(&spec.topology).ok_or_else(|| {
                CoreError::DimensionMismatch(format!("unknown topology {}", spec.topology))
            })?;
            for event in enumerate_events(&topo, classes, seed) {
                cells.push(FailureCell {
                    spec: spec.clone(),
                    event,
                });
            }
        }
        Ok(Self { cells })
    }

    /// The standard failure registry: the Table-I-eligible conformance grid
    /// crossed with the requested event classes under the default seed.
    pub fn standard(effort: Effort, classes: EventClass) -> Result<Self, CoreError> {
        Self::build(
            &SweepGrid::conformance(effort),
            classes,
            DEFAULT_FAILURE_SEED,
        )
    }

    /// Keeps only cells whose [`FailureCell::id`] contains `pattern`
    /// (case-insensitive substring match).
    pub fn filter(mut self, pattern: &str) -> Self {
        let needle = pattern.to_ascii_lowercase();
        self.cells
            .retain(|c| c.id().to_ascii_lowercase().contains(&needle));
        self
    }

    /// Truncates the grid to its first `n` cells.
    pub fn limit(mut self, n: usize) -> Self {
        self.cells.truncate(n);
        self
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

/// The structured per-cell verdict. Every cell gets one — cells never abort
/// the grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CellOutcome {
    /// Post-failure behaviour within tolerance: no demand lost to the
    /// failure and the oblivious routing degrades gracefully.
    Within,
    /// The network still carries all demand, but degraded beyond tolerance
    /// (excess drops, a reconvergence forwarding loop, or an oblivious/
    /// re-optimized gap above the margin).
    Degraded {
        /// What degraded.
        reason: String,
    },
    /// Some demand volume is provably undeliverable: an endpoint died or
    /// the failure partitioned it from its destination.
    Unroutable {
        /// Which volume was lost.
        reason: String,
    },
}

impl CellOutcome {
    /// Short machine-readable verdict name (`within`/`degraded`/`unroutable`).
    pub fn name(&self) -> &'static str {
        match self {
            CellOutcome::Within => "within",
            CellOutcome::Degraded { .. } => "degraded",
            CellOutcome::Unroutable { .. } => "unroutable",
        }
    }
}

/// Headline numbers of one post-failure steady state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureSimSummary {
    /// Total offered rate (post-failure matrix).
    pub offered: f64,
    /// Total delivered rate.
    pub delivered: f64,
    /// Fraction of offered traffic dropped (congestion + disconnection).
    pub drop_rate: f64,
    /// Rate stranded without any route (see `SimOutcome::unrouted`).
    pub unrouted: f64,
    /// Simulated maximum link utilization (carried / capacity, ≤ 1).
    pub max_utilization: f64,
}

impl FailureSimSummary {
    fn of(sim: &FlowSimulator, outcome: &SimOutcome) -> Self {
        Self {
            offered: outcome.offered,
            delivered: outcome.delivered,
            drop_rate: outcome.drop_rate(),
            unrouted: outcome.unrouted,
            max_utilization: sim.max_utilization(outcome),
        }
    }
}

/// One mode's (oblivious or re-optimized) post-failure measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModeOutcome {
    /// Analytic max link utilization of the mode's routing on the
    /// post-failure matrix (uncapped — may exceed 1).
    pub max_utilization: f64,
    /// Flow-level simulation of the same matrix (drops modelled).
    pub sim: FailureSimSummary,
    /// Fake nodes the mode's LSDB carries after the event.
    pub fake_nodes: usize,
}

/// The verdict of one failure cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureRecord {
    /// The healthy scenario.
    pub spec: SweepSpec,
    /// The injected event.
    pub event: FailureEvent,
    /// Stable cell identifier ([`FailureCell::id`]).
    pub cell: String,
    /// The structured verdict.
    pub outcome: CellOutcome,
    /// Pre-failure program kept, LSDB pruned, SPF reconverged. `None` if
    /// reconvergence produced no usable routing (captured in `outcome`).
    pub oblivious: Option<ModeOutcome>,
    /// Program recompiled on the post-failure topology. `None` if
    /// re-optimization failed (captured in `outcome`).
    pub reoptimized: Option<ModeOutcome>,
    /// Oblivious / re-optimized analytic max-utilization ratio (≥ 1 means
    /// the oblivious routing is worse). `None` when either mode is missing
    /// or the ratio is not finite.
    pub degradation_ratio: Option<f64>,
    /// Fake-node LSAs the reconvergence withdrew from the pre-failure
    /// program (the controller's repair bill): lies the failure invalidated
    /// structurally plus emergency per-prefix retractions that broke
    /// post-failure forwarding loops.
    pub fake_lsa_delta: usize,
    /// Demand volume whose source or destination died.
    pub dead_demand_volume: f64,
    /// Demand volume between live endpoints with no surviving path.
    pub unroutable_volume: f64,
    /// Wall-clock seconds this cell took on its worker.
    pub wall_secs: f64,
}

impl FailureRecord {
    /// This record with its non-deterministic wall-clock timing zeroed out,
    /// for bit-identity comparisons across thread counts (same contract as
    /// `ConformanceRecord::deterministic_view`).
    pub fn deterministic_view(&self) -> FailureRecord {
        FailureRecord {
            wall_secs: 0.0,
            ..self.clone()
        }
    }
}

/// A machine-readable failure run: configuration, per-cell records in grid
/// order, and the total wall-clock time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureReport {
    /// Worker threads the run used.
    pub threads: usize,
    /// Cells evaluated.
    pub cells: usize,
    /// Tolerance the verdicts were computed against.
    pub tolerance: f64,
    /// Event-generator seed the grid was built with.
    pub seed: u64,
    /// End-to-end wall-clock seconds.
    pub wall_secs: f64,
    /// One record per grid cell, in grid order.
    pub records: Vec<FailureRecord>,
}

impl FailureReport {
    /// Sum of the per-cell wall-clock times.
    pub fn cpu_secs(&self) -> f64 {
        self.records.iter().map(|r| r.wall_secs).sum()
    }

    /// Cells within tolerance.
    pub fn within_count(&self) -> usize {
        self.count(|o| matches!(o, CellOutcome::Within))
    }

    /// Cells with a degraded verdict.
    pub fn degraded_count(&self) -> usize {
        self.count(|o| matches!(o, CellOutcome::Degraded { .. }))
    }

    /// Cells with an unroutable verdict.
    pub fn unroutable_count(&self) -> usize {
        self.count(|o| matches!(o, CellOutcome::Unroutable { .. }))
    }

    fn count(&self, pred: impl Fn(&CellOutcome) -> bool) -> usize {
        self.records.iter().filter(|r| pred(&r.outcome)).count()
    }

    /// The largest finite degradation ratio across all cells, if any cell
    /// produced one.
    pub fn worst_degradation_ratio(&self) -> Option<f64> {
        self.records
            .iter()
            .filter_map(|r| r.degradation_ratio)
            .fold(None, |acc, r| Some(acc.map_or(r, |a: f64| a.max(r))))
    }

    /// Total demand volume lost to dead endpoints or partitions.
    pub fn lost_volume(&self) -> f64 {
        self.records
            .iter()
            .map(|r| r.dead_demand_volume + r.unroutable_volume)
            .sum()
    }
}

/// The per-spec state shared by every event cell of one scenario: the
/// healthy graph, base matrix, optimized routing, and compiled Fibbing
/// program. Computed once per spec (phase 1), then every event cell reuses
/// it (phase 2) — recompiling the scenario per cell would multiply the grid
/// cost by the event count.
struct CellBase {
    topo: Topology,
    graph: Graph,
    base: DemandMatrix,
    program: FibbingProgram,
}

fn cell_base(spec: &SweepSpec) -> Result<CellBase, CoreError> {
    let _span = coyote_obs::span("failures.base");
    let topo = zoo::by_name(&spec.topology).ok_or_else(|| {
        CoreError::DimensionMismatch(format!("unknown topology {}", spec.topology))
    })?;
    let scenario = spec.to_scenario()?;
    let eval = evaluate_scenario(&scenario)?;
    let program = compute_program(
        &eval.graph,
        &eval.coyote_routing,
        VirtualLinkBudget::per_prefix(COMPILE_BUDGET),
    )
    .map_err(|e| CoreError::InvalidRouting(e.to_string()))?;
    Ok(CellBase {
        topo,
        graph: eval.graph,
        base: eval.base,
        program,
    })
}

/// The post-spike demand matrix: every non-zero pair whose seeded hash
/// lands below [`SPIKE_FRACTION`] is scaled by [`SPIKE_FACTOR`].
fn spiked_matrix(dm: &DemandMatrix, seed: u64) -> DemandMatrix {
    let n = dm.node_count();
    let mut out = dm.clone();
    for (s, t, v) in dm.pairs() {
        let h = splitmix64(seed ^ ((s.index() * n + t.index()) as u64));
        if ((h % 1_000_000) as f64) < SPIKE_FRACTION * 1e6 {
            out.set(s, t, v * SPIKE_FACTOR);
        }
    }
    out
}

fn measure_mode(
    graph: &Graph,
    routing: &PdRouting,
    dm: &DemandMatrix,
    fake_nodes: usize,
) -> ModeOutcome {
    let _span = coyote_obs::span("failures.flowsim");
    let analytic = routing.max_link_utilization(graph, dm);
    let sim = FlowSimulator::from_pd_routing(graph, routing);
    let outcome = sim.run_matrix(dm);
    ModeOutcome {
        max_utilization: analytic,
        sim: FailureSimSummary::of(&sim, &outcome),
        fake_nodes,
    }
}

/// Evaluates one failure cell against its precomputed [`CellBase`]. Pure
/// and deterministic. Per-cell *evaluation* failures inside the modes are
/// captured into the record; only impossible configurations (which phase 1
/// would already have rejected) surface as `Err`.
fn failure_record(
    cell: &FailureCell,
    base: &CellBase,
    tolerance: f64,
) -> Result<FailureRecord, CoreError> {
    let _cell_span = coyote_obs::span("failures.cell");
    coyote_obs::counter("failures.cells", 1);
    let started = Instant::now();
    let n = base.graph.node_count();

    // 1. Inject: translate the event into dead graph elements.
    let dead_nodes = cell.event.dead_nodes();
    let dead_link_ids = cell.event.dead_links(&base.topo);
    let dead_pairs: Vec<(NodeId, NodeId)> = dead_link_ids
        .iter()
        .map(|&i| {
            let l = &base.topo.links[i];
            (NodeId(l.a), NodeId(l.b))
        })
        .collect();
    let mut failed_edges: Vec<EdgeId> = Vec::with_capacity(2 * dead_pairs.len());
    for &(a, b) in &dead_pairs {
        if let Some(e) = base.graph.find_edge(a, b) {
            failed_edges.push(e);
        }
        if let Some(e) = base.graph.find_edge(b, a) {
            failed_edges.push(e);
        }
    }
    let pruned_graph = base.graph.without_edges(&failed_edges);

    // 2. The post-failure demand matrix: spikes applied, dead-endpoint
    //    demands zeroed (their volume is unconditionally lost), partitioned
    //    live pairs *kept* — the simulator must account them as unrouted.
    let mut post = match &cell.event {
        FailureEvent::DemandSpike { seed, .. } => spiked_matrix(&base.base, *seed),
        _ => base.base.clone(),
    };
    let mut dead_demand_volume = 0.0;
    for (s, t, v) in post.clone().pairs() {
        if dead_nodes.contains(&s) || dead_nodes.contains(&t) {
            post.set(s, t, 0.0);
            dead_demand_volume += v;
        }
    }
    let mut unroutable_volume = 0.0;
    for (s, t, v) in post.pairs() {
        if !pruned_graph.is_reachable(s, t) {
            unroutable_volume += v;
        }
    }
    if coyote_obs::enabled() {
        // Micro-units: counters are integral, volumes are rates.
        coyote_obs::counter(
            "failures.unroutable_microvol",
            (((dead_demand_volume + unroutable_volume) * 1e6).round()) as u64,
        );
    }

    // 3. Oblivious mode: prune the lied-to LSDB, reconverge SPF, keep going
    //    even if the surviving lies now form a transient forwarding loop.
    let (pruned_lsdb, prune_stats) = {
        let _span = coyote_obs::span("failures.prune");
        base.program.lsdb.pruned(&dead_nodes, &dead_pairs)
    };
    // Surviving lies were loop-free on the pre-failure topology, but real
    // shortest paths change under the failure and can close a cycle through
    // a lie. The controller's emergency fallback is to withdraw the looping
    // prefix's lies entirely (plain SPF is provably loop-free), so we
    // retract prefix by prefix until the reconverged FIB validates.
    let mut emergency_retractions = 0usize;
    let (oblivious, oblivious_err) = {
        let _span = coyote_obs::span("failures.reconverge");
        let mut lsdb = pruned_lsdb;
        let result = loop {
            coyote_obs::counter("failures.reconvergence.spf_runs", n as u64);
            let fib = compute_fib(&lsdb, n);
            match fib.to_routing(&pruned_graph) {
                Ok(routing) => break Ok((routing, lsdb.fake_count())),
                Err(OspfError::ForwardingLoop { destination, .. }) => {
                    let dropped = lsdb.retract_fakes_for(NodeId(destination));
                    if dropped == 0 {
                        // A loop with no lies left to blame cannot be
                        // repaired by retraction; give up on this mode.
                        break Err(format!(
                            "oblivious reconvergence: unrepairable loop towards {destination}"
                        ));
                    }
                    emergency_retractions += dropped;
                }
                Err(e) => break Err(format!("oblivious reconvergence: {e}")),
            }
        };
        match result {
            Ok((routing, fakes)) => (
                Some(measure_mode(&pruned_graph, &routing, &post, fakes)),
                None,
            ),
            Err(e) => (None, Some(e)),
        }
    };

    // 4. Re-optimized mode: rebuild DAGs and the LP on the post-failure
    //    topology, masking the demand the DAGs provably cannot carry.
    let (reoptimized, reopt_err) = {
        let _span = coyote_obs::span("failures.reopt");
        match reoptimize(&pruned_graph, &post) {
            Ok((routing, fake_nodes)) => (
                Some(measure_mode(&pruned_graph, &routing, &post, fake_nodes)),
                None,
            ),
            Err(e) => (None, Some(format!("re-optimization: {e}"))),
        }
    };

    // 5. Verdict.
    let degradation_ratio = match (&oblivious, &reoptimized) {
        (Some(obl), Some(re)) => {
            let ratio = obl.max_utilization / re.max_utilization;
            ratio.is_finite().then_some(ratio)
        }
        _ => None,
    };
    let mode_errors: Vec<String> = [oblivious_err, reopt_err].into_iter().flatten().collect();
    let outcome = if dead_demand_volume > 0.0 || unroutable_volume > 0.0 {
        let mut reason = format!(
            "{dead_demand_volume:.3} demand units lost their endpoint, \
             {unroutable_volume:.3} lost every path"
        );
        if !mode_errors.is_empty() {
            reason.push_str("; ");
            reason.push_str(&mode_errors.join("; "));
        }
        CellOutcome::Unroutable { reason }
    } else if !mode_errors.is_empty() {
        CellOutcome::Degraded {
            reason: mode_errors.join("; "),
        }
    } else {
        // Both modes present (no errors), no volume lost.
        let obl = oblivious.as_ref().expect("no mode errors");
        let ratio_excess = degradation_ratio.filter(|r| *r > 1.0 + tolerance);
        if obl.sim.drop_rate > tolerance {
            CellOutcome::Degraded {
                reason: format!(
                    "oblivious drop rate {:.4} above tolerance {tolerance}",
                    obl.sim.drop_rate
                ),
            }
        } else if let Some(r) = ratio_excess {
            CellOutcome::Degraded {
                reason: format!("degradation ratio {r:.3} above 1 + {tolerance}"),
            }
        } else {
            CellOutcome::Within
        }
    };

    Ok(FailureRecord {
        spec: cell.spec.clone(),
        event: cell.event.clone(),
        cell: cell.id(),
        outcome,
        oblivious,
        reoptimized,
        degradation_ratio,
        fake_lsa_delta: prune_stats.dropped_fakes + emergency_retractions,
        dead_demand_volume,
        unroutable_volume,
        wall_secs: started.elapsed().as_secs_f64(),
    })
}

/// Rebuilds an optimal routing on the post-failure topology and compiles it
/// back into router state: augmented DAGs → routable-demand mask → LP →
/// Fibbing program → realized routing. Returns the realized routing and the
/// new program's fake-node count.
fn reoptimize(graph: &Graph, dm: &DemandMatrix) -> Result<(PdRouting, usize), CoreError> {
    let dags = build_all_dags(graph, DagMode::Augmented)
        .map_err(|e| CoreError::InvalidRouting(e.to_string()))?;
    let split = split_routable_within_dags(graph, &dags, dm)?;
    let (routing, _) = optimal_routing_within_dags(graph, &dags, &split.routable)?;
    let program = compute_program(
        graph,
        &routing,
        VirtualLinkBudget::per_prefix(COMPILE_BUDGET),
    )
    .map_err(|e| CoreError::InvalidRouting(e.to_string()))?;
    let realized =
        realized_routing(graph, &program).map_err(|e| CoreError::InvalidRouting(e.to_string()))?;
    Ok((realized, program.stats.fake_nodes))
}

/// Runs the failure grid: phase 1 evaluates each distinct healthy scenario
/// once (fatal on configuration errors, exactly like the sweep), phase 2
/// fans the event cells out with [`WorkerPool::par_map_results`] so no
/// per-cell failure can abort the run — a cell whose evaluation errs
/// becomes an [`CellOutcome::Unroutable`] record instead. Records come back
/// in grid order, bit-identical for every thread count under
/// [`FailureRecord::deterministic_view`].
pub fn run_failures(
    grid: &FailureGrid,
    threads: usize,
    tolerance: f64,
) -> Result<FailureReport, CoreError> {
    let pool = WorkerPool::new(threads);
    let started = Instant::now();

    // Phase 1: distinct specs, first-appearance order.
    let mut specs: Vec<SweepSpec> = Vec::new();
    for cell in &grid.cells {
        if !specs.contains(&cell.spec) {
            specs.push(cell.spec.clone());
        }
    }
    let bases = pool.try_par_map(&specs, cell_base)?;
    let by_id: HashMap<String, CellBase> = specs.iter().map(|s| s.id()).zip(bases).collect();

    // Phase 2: every event cell, failures captured per cell.
    let results = pool.par_map_results(&grid.cells, |cell| {
        failure_record(cell, &by_id[&cell.spec.id()], tolerance)
    });
    let records = results
        .into_iter()
        .zip(&grid.cells)
        .map(|(result, cell)| match result {
            Ok(record) => record,
            Err(e) => FailureRecord {
                spec: cell.spec.clone(),
                event: cell.event.clone(),
                cell: cell.id(),
                outcome: CellOutcome::Unroutable {
                    reason: format!("cell evaluation failed: {e}"),
                },
                oblivious: None,
                reoptimized: None,
                degradation_ratio: None,
                fake_lsa_delta: 0,
                dead_demand_volume: 0.0,
                unroutable_volume: 0.0,
                wall_secs: 0.0,
            },
        })
        .collect();

    Ok(FailureReport {
        threads: pool.threads(),
        cells: grid.cells.len(),
        tolerance,
        seed: DEFAULT_FAILURE_SEED,
        wall_secs: started.elapsed().as_secs_f64(),
        records,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformance::DEFAULT_TOLERANCE;
    use crate::scenario::{BaseModel, WeightHeuristic};

    fn abilene_spec() -> SweepSpec {
        SweepSpec {
            topology: "Abilene".into(),
            model: BaseModel::Gravity,
            margin: 2.0,
            heuristic: WeightHeuristic::InverseCapacity,
            effort: Effort::Quick,
        }
    }

    fn abilene_grid(classes: EventClass) -> FailureGrid {
        FailureGrid::build(
            &SweepGrid {
                specs: vec![abilene_spec()],
            },
            classes,
            DEFAULT_FAILURE_SEED,
        )
        .unwrap()
    }

    #[test]
    fn event_enumeration_covers_every_link_and_node() {
        let topo = zoo::by_name("Abilene").unwrap();
        let all = enumerate_events(&topo, EventClass::All, DEFAULT_FAILURE_SEED);
        let links = all
            .iter()
            .filter(|e| matches!(e, FailureEvent::LinkFailure { .. }))
            .count();
        let nodes = all
            .iter()
            .filter(|e| matches!(e, FailureEvent::NodeFailure { .. }))
            .count();
        let spikes = all
            .iter()
            .filter(|e| matches!(e, FailureEvent::DemandSpike { .. }))
            .count();
        assert_eq!(links, topo.link_count());
        assert_eq!(nodes, topo.node_count());
        assert_eq!(spikes, SPIKE_EVENTS);
        // Every node of degree >= 2 contributes one SRLG.
        let expected_srlgs = (0..topo.node_count())
            .filter(|&v| topo.degree(v) >= 2)
            .count();
        let srlgs = all
            .iter()
            .filter(|e| matches!(e, FailureEvent::SrlgFailure { .. }))
            .count();
        assert_eq!(srlgs, expected_srlgs);
    }

    #[test]
    fn srlg_generation_is_deterministic_for_a_fixed_seed() {
        let topo = zoo::by_name("Abilene").unwrap();
        let a = enumerate_events(&topo, EventClass::Srlg, DEFAULT_FAILURE_SEED);
        let b = enumerate_events(&topo, EventClass::Srlg, DEFAULT_FAILURE_SEED);
        assert_eq!(a, b);
        // A different seed picks different groups somewhere.
        let c = enumerate_events(&topo, EventClass::Srlg, DEFAULT_FAILURE_SEED ^ 0xDEAD);
        assert_eq!(a.len(), c.len());
        assert_ne!(a, c, "seed change should reshuffle at least one group");
        // Structural sanity: 2..=3 incident links of the hub, sorted, unique.
        for ev in &a {
            let FailureEvent::SrlgFailure { hub, links } = ev else {
                panic!("non-SRLG event in SRLG enumeration");
            };
            assert!((2..=MAX_SRLG_SIZE).contains(&links.len()));
            assert!(
                links.windows(2).all(|w| w[0] < w[1]),
                "unsorted/dup {links:?}"
            );
            for &l in links {
                let link = &topo.links[l];
                assert!(link.a == *hub || link.b == *hub);
            }
        }
    }

    #[test]
    fn spike_selection_is_deterministic_and_partial() {
        let mut dm = DemandMatrix::zeros(8);
        for s in 0..8 {
            for t in 0..8 {
                if s != t {
                    dm.set(NodeId(s), NodeId(t), 1.0);
                }
            }
        }
        let a = spiked_matrix(&dm, 42);
        let b = spiked_matrix(&dm, 42);
        for (s, t, v) in a.pairs() {
            assert_eq!(v, b.get(s, t));
        }
        let spiked = a.pairs().filter(|&(_, _, v)| v > 1.0).count();
        assert!(spiked > 0, "no pair spiked");
        assert!(spiked < 56, "every pair spiked");
        for (_, _, v) in a.pairs() {
            assert!(v == 1.0 || v == SPIKE_FACTOR);
        }
    }

    #[test]
    fn grid_ids_are_stable_and_filterable() {
        let grid = abilene_grid(EventClass::Link);
        assert_eq!(grid.len(), zoo::by_name("Abilene").unwrap().link_count());
        assert_eq!(
            grid.cells[3].id(),
            "Abilene/gravity/reverse-capacities/m2.0+link-3"
        );
        let filtered = grid.clone().filter("LINK-3");
        assert_eq!(filtered.len(), 1);
        assert_eq!(grid.clone().limit(2).len(), 2);
    }

    #[test]
    fn single_link_cell_degrades_gracefully() {
        let grid = abilene_grid(EventClass::Link).limit(1);
        let report = run_failures(&grid, 1, DEFAULT_TOLERANCE).expect("run");
        assert_eq!(report.cells, 1);
        let r = &report.records[0];
        // Abilene is 2-edge-connected: one link failure cannot partition it.
        assert_eq!(r.dead_demand_volume, 0.0);
        assert_eq!(r.unroutable_volume, 0.0);
        let obl = r.oblivious.as_ref().expect("oblivious mode");
        let re = r.reoptimized.as_ref().expect("reoptimized mode");
        assert!(obl.max_utilization.is_finite());
        assert!(re.max_utilization.is_finite());
        assert!(r.degradation_ratio.expect("finite ratio") > 0.0);
        assert!(obl.sim.unrouted.abs() < 1e-9, "no stranded traffic");
    }

    #[test]
    fn node_failure_cells_report_dead_demand_not_errors() {
        // Fail a node: its demand dies with it, the grid must not abort.
        let grid = abilene_grid(EventClass::Node).limit(1);
        let report = run_failures(&grid, 1, DEFAULT_TOLERANCE).expect("run");
        let r = &report.records[0];
        assert!(matches!(r.outcome, CellOutcome::Unroutable { .. }));
        assert!(r.dead_demand_volume > 0.0);
    }

    #[test]
    fn spike_cells_keep_the_topology_healthy() {
        let grid = abilene_grid(EventClass::Spike).limit(1);
        let report = run_failures(&grid, 1, DEFAULT_TOLERANCE).expect("run");
        let r = &report.records[0];
        assert_eq!(r.dead_demand_volume, 0.0);
        assert_eq!(r.unroutable_volume, 0.0);
        assert_eq!(r.fake_lsa_delta, 0, "no topology change, no LSA withdrawal");
        let obl = r.oblivious.as_ref().expect("oblivious");
        // The spiked matrix offers more than the base matrix.
        assert!(obl.sim.offered > 0.0);
    }

    #[test]
    fn unknown_topology_is_a_grid_build_error() {
        let grid = SweepGrid {
            specs: vec![SweepSpec {
                topology: "NoSuchNet".into(),
                ..abilene_spec()
            }],
        };
        let err = FailureGrid::build(&grid, EventClass::All, 1).unwrap_err();
        assert!(err.to_string().contains("NoSuchNet"), "{err}");
    }
}
