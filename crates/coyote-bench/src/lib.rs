//! # coyote-bench
//!
//! The experiment harness of the COYOTE reproduction: scenario definitions,
//! drivers that regenerate every table and figure of the paper's evaluation
//! (Section VI–VII), a parallel scenario-sweep engine ([`sweep`]) over the
//! full evaluation grid, a full-stack conformance engine ([`conformance`])
//! that drives every cell through compile → realized Fibbing routing →
//! flow-level simulation, and text/JSON/CSV report rendering ([`report`]).
//!
//! Run the harness with the `experiments` binary:
//!
//! ```text
//! cargo run --release -p coyote-bench --bin experiments -- table1
//! cargo run --release -p coyote-bench --bin experiments -- fig6 --full
//! cargo run --release -p coyote-bench --bin experiments -- all
//! cargo run --release -p coyote-bench --bin experiments -- \
//!     sweep --threads 0 --filter Abilene --format csv --out report.csv
//! ```
//!
//! Scenario evaluations are independent, so the sweep engine (and the
//! multi-scenario drivers `margin_sweep`/`table1`/`fig11_stretch`) fan out
//! across a [`coyote_runtime::WorkerPool`]; thread count changes wall-clock
//! time only, never results.
//!
//! Criterion benchmarks (`cargo bench --workspace`) time both the pipeline
//! kernels and reduced versions of each experiment.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod conformance;
pub mod experiments;
pub mod failures;
pub mod report;
pub mod scenario;
pub mod sweep;

pub use conformance::{
    conformance_record, conformance_record_with, default_pareto_levels, run_conformance,
    run_conformance_with, run_pareto, ConformanceRecord, ConformanceReport, MatrixConformance,
    ParetoPoint, ParetoReport, SimSummary,
};

pub use failures::{
    enumerate_events, run_failures, CellOutcome, EventClass, FailureCell, FailureEvent,
    FailureGrid, FailureRecord, FailureReport, FailureSimSummary, ModeOutcome,
    DEFAULT_FAILURE_SEED,
};

pub use experiments::{
    fig10_approximation, fig11_stretch, fig11_topologies, fig12_prototype, fig1_running_example,
    fig6_margins, margin_sweep, table1, table1_margins, table1_topologies, theorem1_gadget,
    theorem4_lower_bound,
};
pub use scenario::{
    evaluate_scenario, BaseModel, Effort, ProtocolRatios, Scenario, ScenarioEvaluation,
    WeightHeuristic,
};
pub use sweep::{run_sweep, SweepGrid, SweepRecord, SweepReport, SweepSpec};
